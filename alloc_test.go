// Allocation gates for the simulation engine's steady state. The scratch-
// reuse contracts (StepResult's plain performed-task int, Schedule writing
// into an engine-owned Decision, pooled Multicast records with Delivery
// references, payload recycling) exist so that a warmed-up engine runs
// whole simulations without a single heap allocation. These tests pin that
// property: a full steady-state run at p ≥ 64 under the fair adversary
// must average exactly zero allocations — which bounds the allocations
// per simulated step and per multicast at zero, since every run performs
// thousands of both. Any regression (a slice born on the hot path, a
// payload that stopped being recycled, an adversary allocating per tick)
// fails the gate.
package doall_test

import (
	"fmt"
	"testing"

	"doall"
	"doall/internal/adversary"
	"doall/internal/harness"
	"doall/internal/sim"
)

// assertZeroSteadyStateAllocs warms one engine + one machine set with a
// full run, then measures whole re-runs (machines reset in place, same
// engine) and requires them to be allocation-free.
func assertZeroSteadyStateAllocs(t *testing.T, name string, machines []sim.Machine, adv sim.Adversary, p, tasks int) {
	t.Helper()
	assertZeroSteadyStateAllocsCfg(t, name, machines, adv, sim.Config{P: p, T: tasks})
}

// assertZeroSteadyStateAllocsCfg is the config-explicit form, used by the
// sharded gate to pass Config.Shards through unchanged.
func assertZeroSteadyStateAllocsCfg(t *testing.T, name string, machines []sim.Machine, adv sim.Adversary, cfg sim.Config) {
	t.Helper()
	p := cfg.P
	eng := sim.NewEngine()
	// A MachineSet asserts the Resetter facets once up front; per-run
	// m.(Resetter) assertions would leave a tiny per-run chance of the
	// runtime populating an itab assertion cache (one heap allocation)
	// inside the measured window — the cause of the historical flake here.
	set := sim.NewMachineSet(machines)

	run := func() *sim.Result {
		if !set.Reset() {
			t.Fatalf("%s: machines do not support Reset", name)
		}
		res, err := eng.Run(cfg, machines, adv)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res
	}
	// Warm-up: grows inboxes, wheel buckets, decision slices, and the
	// multicast and payload pools to their steady sizes.
	warm := run()
	if !warm.Solved || warm.TotalSteps < int64(p) || warm.TotalMessages < int64(p) {
		t.Fatalf("%s: warm-up run not representative: %+v", name, warm)
	}

	var steps, multicasts int64
	allocs := testing.AllocsPerRun(3, func() {
		res := run()
		steps = res.TotalSteps
		multicasts = res.TotalMessages / int64(p-1)
	})
	if allocs != 0 {
		t.Fatalf("%s: %v allocations per steady-state run, want 0 (run = %d steps, ~%d multicasts)",
			name, allocs, steps, multicasts)
	}
}

// TestZeroSteadyStateAllocsPA gates the permutation algorithm: PaRan1 at
// p=64 under the fair adversary runs allocation-free once warmed up
// (0 allocations per step and per multicast).
func TestZeroSteadyStateAllocsPA(t *testing.T) {
	const p, tasks = 64, 256
	ms := doall.NewPaRan1(p, tasks, 42)
	assertZeroSteadyStateAllocs(t, "PaRan1/fair", ms, adversary.NewFair(4), p, tasks)
}

// TestZeroSteadyStateAllocsPADelay1 repeats the PA gate at the fastest
// legal network (d = 1), where delivery and consumption interleave every
// unit — the densest recycling schedule.
func TestZeroSteadyStateAllocsPADelay1(t *testing.T) {
	const p, tasks = 64, 256
	ms := doall.NewPaRan1(p, tasks, 7)
	fair := adversary.NewFair(1)
	assertZeroSteadyStateAllocs(t, "PaRan1/fair-d1", ms, fair, p, tasks)
}

// TestZeroSteadyStateAllocsDA gates the progress-tree algorithm: DA(2) at
// p=64 under the fair adversary runs allocation-free once warmed up.
func TestZeroSteadyStateAllocsDA(t *testing.T) {
	const p, tasks = 64, 256
	ms, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoDA, P: p, T: tasks, D: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	assertZeroSteadyStateAllocs(t, "DA/fair", ms, adversary.NewFair(4), p, tasks)
}

// TestResetReplaysExactly pins what the allocation gates rely on: a reset
// deterministic machine set re-run on a reused engine reproduces the
// fresh-build Result byte for byte, trial after trial.
func TestResetReplaysExactly(t *testing.T) {
	const p, tasks = 16, 64
	for _, algo := range []harness.Algo{harness.AlgoAllToAll, harness.AlgoObliDo, harness.AlgoDA, harness.AlgoPaRan1, harness.AlgoPaDet} {
		spec := harness.Spec{Algo: algo, P: p, T: tasks, D: 3, Seed: 5}
		fresh, err := harness.Execute(spec)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		ms, err := harness.BuildMachines(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		for trial := 0; trial < 3; trial++ {
			if !sim.ResetMachines(ms) {
				t.Fatalf("%s: not resettable", algo)
			}
			res, err := eng.Run(sim.Config{P: p, T: tasks}, ms, adversary.NewFair(3))
			if err != nil {
				t.Fatalf("%s trial %d: %v", algo, trial, err)
			}
			if res.Work != fresh.Work || res.Messages != fresh.Messages || res.SolvedAt != fresh.SolvedAt {
				t.Fatalf("%s trial %d diverged: fresh work=%d msgs=%d σ=%d, reset work=%d msgs=%d σ=%d",
					algo, trial, fresh.Work, fresh.Messages, fresh.SolvedAt, res.Work, res.Messages, res.SolvedAt)
			}
		}
	}
}

// TestZeroSteadyStateAllocsPA1024 extends the PA gate to p=1024 under
// the grouped delivery path and the versioned-snapshot payload
// lifecycle: batches, combined knowledge caches, snapshot delta chains,
// epoch bases, and the batch ring must all come from warmed pools, so a
// whole re-run still allocates exactly nothing.
func TestZeroSteadyStateAllocsPA1024(t *testing.T) {
	const p, tasks = 1024, 4096
	ms := doall.NewPaRan1(p, tasks, 42)
	assertZeroSteadyStateAllocs(t, "PaRan1-1024/fair", ms, adversary.NewFair(4), p, tasks)
}

// TestZeroSteadyStateAllocsSharded1024 gates the parallel tick engine: a
// sharded run at p=1024 must hit the same zero-allocation steady state as
// the sequential one. The shard machinery is pre-grown in reset (worker
// goroutines are launched once and parked on their wake channels; scratch,
// shadow-batch, and per-step result slices are reused), so once warmed,
// a whole re-run — wake sends, WaitGroup handoffs, shadow seeding, and the
// phase-B replay included — allocates exactly nothing per worker shard.
func TestZeroSteadyStateAllocsSharded1024(t *testing.T) {
	const p, tasks = 1024, 4096
	for _, shards := range []int{2, 4} {
		ms := doall.NewPaRan1(p, tasks, 42)
		assertZeroSteadyStateAllocsCfg(t, fmt.Sprintf("PaRan1-1024/fair-shards%d", shards),
			ms, adversary.NewFair(4), sim.Config{P: p, T: tasks, Shards: shards})
	}
}

// TestZeroSteadyStateAllocsDA1024 is the DA gate at p=1024: tree
// snapshot chains and closure propagation must also be allocation-free
// in steady state.
func TestZeroSteadyStateAllocsDA1024(t *testing.T) {
	const p, tasks = 1024, 4096
	ms, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoDA, P: p, T: tasks, D: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	assertZeroSteadyStateAllocs(t, "DA-1024/fair", ms, adversary.NewFair(4), p, tasks)
}

// TestLargeShapeSmokePaRan1 is the large-shape smoke cell CI runs as a
// dedicated -short job: one PaRan1 p=2048/t=65536 sweep cell through the
// public Scenario path, solved and plausible. Full (non-short) runs add
// a second execution to pin determinism at scale; the short job skips it
// so the smoke stays a single cell (and the -race job pays for one run,
// not two).
func TestLargeShapeSmokePaRan1(t *testing.T) {
	sc := doall.Scenario{Algorithm: "PaRan1", P: 2048, T: 65536, D: 8, Seed: 7}
	res, err := doall.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved() || res.Work() <= 65536 {
		t.Fatalf("large-shape cell implausible: solved=%v work=%d", res.Solved(), res.Work())
	}
	if testing.Short() {
		return
	}
	// Determinism at scale: a second run reproduces exactly.
	again, err := doall.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Work() != res.Work() || again.Messages() != res.Messages() {
		t.Fatalf("large shape not deterministic: work %d→%d messages %d→%d",
			res.Work(), again.Work(), res.Messages(), again.Messages())
	}
}
