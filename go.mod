module doall

go 1.21
