// Package bitset provides a compact, fixed-size bit set used for the
// algorithms' knowledge payloads (progress-tree snapshots and done-job
// sets). Compared with []bool it is 8× denser, supports O(words) union —
// the monotone merge every algorithm relies on — and serializes directly.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bit set. The zero value is unusable; create
// sets with New.
type Set struct {
	n     int
	words []uint64
}

// New returns a set with capacity for n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBools builds a set from a []bool.
func FromBools(b []bool) *Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Len returns the capacity n.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// All reports whether every bit is set.
func (s *Set) All() bool { return s.Count() == s.n }

// None reports whether no bit is set.
func (s *Set) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith ORs other into s (the monotone knowledge merge). It returns
// the number of bits newly set in s. Both sets must have the same length.
func (s *Set) UnionWith(other *Set) int {
	if other.n != s.n {
		panic("bitset: UnionWith length mismatch")
	}
	return unionWords(s.words, other.words)
}

// OrWith ORs other into s without counting the change — the count-free
// sibling of UnionWith for scratch accumulators. Both sets must have the
// same length.
func (s *Set) OrWith(other *Set) {
	if other.n != s.n {
		panic("bitset: OrWith length mismatch")
	}
	orWords(s.words, other.words)
}

// onesCount is bits.OnesCount64, aliased so hot merge loops in this
// package read uniformly.
func onesCount(w uint64) int { return bits.OnesCount64(w) }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with other's bits. Both sets must have the same
// length. It is the allocation-free counterpart of Clone, used by payload
// pools that reuse snapshot buffers.
func (s *Set) CopyFrom(other *Set) {
	if other.n != s.n {
		panic("bitset: CopyFrom length mismatch")
	}
	copy(s.words, other.words)
}

// ClearAll clears every bit, keeping the capacity.
func (s *Set) ClearAll() {
	clear(s.words)
}

// Equal reports whether both sets have identical length and contents.
func (s *Set) Equal(other *Set) bool {
	if other.n != s.n {
		return false
	}
	for i, w := range s.words {
		if other.words[i] != w {
			return false
		}
	}
	return true
}

// ToBools expands the set to a []bool.
func (s *Set) ToBools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		out[i] = s.Get(i)
	}
	return out
}

// NextSet returns the index of the first set bit at or after from, or -1
// if none. Iterating set bits with NextSet costs O(words), not O(n):
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (s *Set) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from >> 6
	if w := s.words[wi] >> (uint(from) & 63); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if w := s.words[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit at or after from, or
// -1 if none.
func (s *Set) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < s.n; i++ {
		w := s.words[i>>6]
		if w == ^uint64(0) { // word full: skip it
			i |= 63
			continue
		}
		if w&(1<<(uint(i)&63)) == 0 {
			return i
		}
	}
	return -1
}

// Words exposes the raw backing words for serialization. The final word's
// unused high bits are always zero.
func (s *Set) Words() []uint64 { return s.words }

// SetWords overwrites the backing words (used by deserialization); the
// slice length must match.
func (s *Set) SetWords(w []uint64) {
	if len(w) != len(s.words) {
		panic("bitset: SetWords length mismatch")
	}
	copy(s.words, w)
	s.maskTail()
}

// maskTail zeroes bits beyond n in the last word.
func (s *Set) maskTail() {
	if s.n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % 64)) - 1
	}
}

// String renders the set as a 0/1 string, lowest index first (diagnostic).
func (s *Set) String() string {
	b := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
