package bitset

import "math/bits"

// Word-level merge kernels. The profiles that motivated them are the two
// loops every knowledge merge bottoms out in: the counting union
// (UnionWith — the monotone merge with undone-count maintenance) and the
// count-free accumulate (OrWith — batch builders folding snapshots into
// scratch). Both are processed in blocks of eight words: the block's new
// bits are computed in straight-line code first, and a block that
// contributes nothing — the overwhelmingly common case late in a run,
// when most knowledge is already shared — is skipped without any
// per-word branching or popcounts. Only contributing blocks pay for
// bits.OnesCount64 per changed word.

const kernelBlock = 8

// unionWords ORs src into dst and returns the number of bits newly set.
// Both slices must have the same length.
func unionWords(dst, src []uint64) int {
	added := 0
	n := len(dst)
	i := 0
	for ; i+kernelBlock <= n; i += kernelBlock {
		d := dst[i : i+kernelBlock : i+kernelBlock]
		s := src[i : i+kernelBlock : i+kernelBlock]
		n0 := s[0] &^ d[0]
		n1 := s[1] &^ d[1]
		n2 := s[2] &^ d[2]
		n3 := s[3] &^ d[3]
		n4 := s[4] &^ d[4]
		n5 := s[5] &^ d[5]
		n6 := s[6] &^ d[6]
		n7 := s[7] &^ d[7]
		if n0|n1|n2|n3|n4|n5|n6|n7 == 0 {
			continue
		}
		added += bits.OnesCount64(n0) + bits.OnesCount64(n1) +
			bits.OnesCount64(n2) + bits.OnesCount64(n3) +
			bits.OnesCount64(n4) + bits.OnesCount64(n5) +
			bits.OnesCount64(n6) + bits.OnesCount64(n7)
		d[0] |= n0
		d[1] |= n1
		d[2] |= n2
		d[3] |= n3
		d[4] |= n4
		d[5] |= n5
		d[6] |= n6
		d[7] |= n7
	}
	for ; i < n; i++ {
		if neu := src[i] &^ dst[i]; neu != 0 {
			added += bits.OnesCount64(neu)
			dst[i] |= neu
		}
	}
	return added
}

// orWords ORs src into dst without counting. Both slices must have the
// same length.
func orWords(dst, src []uint64) {
	n := len(dst)
	i := 0
	for ; i+kernelBlock <= n; i += kernelBlock {
		d := dst[i : i+kernelBlock : i+kernelBlock]
		s := src[i : i+kernelBlock : i+kernelBlock]
		d[0] |= s[0]
		d[1] |= s[1]
		d[2] |= s[2]
		d[3] |= s[3]
		d[4] |= s[4]
		d[5] |= s[5]
		d[6] |= s[6]
		d[7] |= s[7]
	}
	for ; i < n; i++ {
		dst[i] |= src[i]
	}
}

// unionDirty ORs src into v's words, stamping every changed word dirty,
// and returns the number of bits newly set. It is the Versioned sibling
// of unionWords: blocks whose words are all already known are skipped
// before any touch bookkeeping.
func (v *Versioned) unionDirty(src []uint64) int {
	dst := v.set.words
	added := 0
	n := len(dst)
	i := 0
	for ; i+kernelBlock <= n; i += kernelBlock {
		d := dst[i : i+kernelBlock : i+kernelBlock]
		s := src[i : i+kernelBlock : i+kernelBlock]
		n0 := s[0] &^ d[0]
		n1 := s[1] &^ d[1]
		n2 := s[2] &^ d[2]
		n3 := s[3] &^ d[3]
		n4 := s[4] &^ d[4]
		n5 := s[5] &^ d[5]
		n6 := s[6] &^ d[6]
		n7 := s[7] &^ d[7]
		if n0|n1|n2|n3|n4|n5|n6|n7 == 0 {
			continue
		}
		for j, neu := range [kernelBlock]uint64{n0, n1, n2, n3, n4, n5, n6, n7} {
			if neu != 0 {
				added += bits.OnesCount64(neu)
				d[j] |= neu
				v.touch(i + j)
			}
		}
	}
	for ; i < n; i++ {
		if neu := src[i] &^ dst[i]; neu != 0 {
			added += bits.OnesCount64(neu)
			dst[i] |= neu
			v.touch(i)
		}
	}
	return added
}
