package scenario

import (
	"strings"
	"testing"
)

func TestParseAdvExpr(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() form
	}{
		{"fair", "fair"},
		{"fair()", "fair"},
		{" fair ", "fair"},
		{"fair(delay=2)", "fair(delay=2)"},
		{"random(activity=0.5, seed=9)", "random(activity=0.5,seed=9)"},
		{"crashing(crash=0@3, crash=2@9)", "crashing(crash=0@3,crash=2@9)"},
		{"crashing(fair)", "crashing(fair)"},
		{"crashing(slow-set(fair))", "crashing(slow-set(fair))"},
		{"crashing(slow-set(fair, slow=1, period=8), crash=0@5)", "crashing(slow-set(fair,slow=1,period=8),crash=0@5)"},
		{"slow-set( random(activity=0.9) , period=2 )", "slow-set(random(activity=0.9),period=2)"},
	}
	for _, tc := range cases {
		e, err := parseAdvExpr(tc.in)
		if err != nil {
			t.Errorf("parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseAdvExprErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"(",
		"fair(",
		"fair(delay=2",
		"fair)x",
		"fair(,)",
		"crashing(fair))",
		"fair extra",
	} {
		if _, err := parseAdvExpr(in); err == nil {
			t.Errorf("parse(%q) accepted, want error", in)
		}
	}
}

func TestParseAdvExprNested(t *testing.T) {
	e, err := parseAdvExpr("crashing(slow-set(fair,slow=3),crash=1@4,crash=2@6)")
	if err != nil {
		t.Fatal(err)
	}
	if e.name != "crashing" || len(e.inners) != 1 || len(e.params) != 2 {
		t.Fatalf("unexpected shape: %+v", e)
	}
	inner := e.inners[0]
	if inner.name != "slow-set" || len(inner.inners) != 1 || inner.inners[0].name != "fair" {
		t.Fatalf("unexpected inner shape: %+v", inner)
	}
	if inner.params[0] != (Param{Key: "slow", Value: "3"}) {
		t.Fatalf("inner params = %+v", inner.params)
	}
}

func TestAdversaryContextParams(t *testing.T) {
	ctx := &AdversaryContext{Params: []Param{
		{"crash", "0@1"}, {"crash", "2@3"}, {"period", "7"}, {"activity", "0.5"},
	}}
	if got := ctx.ParamAll("crash"); len(got) != 2 || got[0] != "0@1" || got[1] != "2@3" {
		t.Fatalf("ParamAll(crash) = %v", got)
	}
	if v, err := ctx.IntParam("period", 4); err != nil || v != 7 {
		t.Fatalf("IntParam(period) = %d, %v", v, err)
	}
	if v, err := ctx.IntParam("missing", 4); err != nil || v != 4 {
		t.Fatalf("IntParam(missing) = %d, %v", v, err)
	}
	if v, err := ctx.FloatParam("activity", 1); err != nil || v != 0.5 {
		t.Fatalf("FloatParam(activity) = %v, %v", v, err)
	}
	if _, err := ctx.IntParam("activity", 0); err == nil {
		t.Fatal("IntParam on a float accepted")
	}
	if err := ctx.checkParams("crash", "period", "activity"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.checkParams("crash"); err == nil || !strings.Contains(err.Error(), "period") {
		t.Fatalf("checkParams missed unknown key: %v", err)
	}
}
