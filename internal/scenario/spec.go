package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SweepSpec is the JSON-serializable declaration of a sweep grid: what
// SweepConfig declares, minus the per-process execution knobs (worker
// count, progress callback) that make SweepConfig unmarshalable and
// meaningless across a wire. It is the document the service plane accepts
// over HTTP and records in its checkpoint log; Config() turns it back
// into a runnable SweepConfig. The field names match cmd/experiments'
// sweep flags.
type SweepSpec struct {
	// Algos, Ps, Ts, Ds span the grid; every combination is one cell.
	Algos []string `json:"algos"`
	Ps    []int    `json:"p"`
	Ts    []int    `json:"t"`
	Ds    []int64  `json:"d"`
	// Adversary applies to every cell (default "fair") when Adversaries
	// is empty; Adversaries adds an adversary-expression grid axis.
	Adversary   string   `json:"adversary,omitempty"`
	Adversaries []string `json:"adversaries,omitempty"`
	// BaseSeed feeds the per-cell seed derivation (CellSeed).
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Trials runs each cell this many times and averages (default 1).
	Trials int `json:"trials,omitempty"`
	// MaxSteps overrides the simulator step cap per run (0 = default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Theory adds the paper's closed-form bound columns to every cell.
	Theory bool `json:"theory,omitempty"`
	// Shards is each cell's intra-run parallelism (Scenario.Shards):
	// 0/1 sequential, -1 (ShardsAuto) resolved per cell at run time.
	// Results are shard-invariant; only wall-clock time changes.
	Shards int `json:"shards,omitempty"`
	// Q is each cell's DA progress-tree arity (0 = default binary tree);
	// the DA theory column's ε follows it per Theorem 5.5.
	Q int `json:"q,omitempty"`
}

// ParseSweepSpec decodes a JSON sweep document, rejecting unknown fields
// so typos fail loudly.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	var s SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("sweep: parse: %w", err)
	}
	return s, nil
}

// Config converts the spec into a runnable SweepConfig; execution knobs
// (Workers, Progress) are the caller's to set.
func (s SweepSpec) Config() SweepConfig {
	return SweepConfig{
		Algos:       s.Algos,
		Ps:          s.Ps,
		Ts:          s.Ts,
		Ds:          s.Ds,
		Adversary:   s.Adversary,
		Adversaries: s.Adversaries,
		BaseSeed:    s.BaseSeed,
		Trials:      s.Trials,
		MaxSteps:    s.MaxSteps,
		Theory:      s.Theory,
		Shards:      s.Shards,
		Q:           s.Q,
	}
}

// Cells returns the grid size without enumerating it.
func (s SweepSpec) Cells() int {
	advs := len(s.Adversaries)
	if advs == 0 {
		advs = 1
	}
	return len(s.Algos) * advs * len(s.Ps) * len(s.Ts) * len(s.Ds)
}

// Validate checks the spec declares a runnable grid: every axis is
// non-empty and positive, and every algorithm × adversary pair resolves
// through the registries. Adversary parameters are probed against the
// grid's largest shape, mirroring cmd/experiments' fail-fast validation:
// shape-dependent parameters (fair(delay=8) with d=8, slow-set(slow=9)
// with p=16) validate against what the cells will actually run, and
// smaller cells that still violate a parameter surface as per-cell errors
// in the results.
func (s SweepSpec) Validate() error {
	switch {
	case len(s.Algos) == 0:
		return fmt.Errorf("sweep: empty algos axis")
	case len(s.Ps) == 0:
		return fmt.Errorf("sweep: empty p axis")
	case len(s.Ts) == 0:
		return fmt.Errorf("sweep: empty t axis")
	case len(s.Ds) == 0:
		return fmt.Errorf("sweep: empty d axis")
	}
	maxP, maxT, maxD := s.Ps[0], s.Ts[0], s.Ds[0]
	for _, p := range s.Ps {
		if p < 1 {
			return fmt.Errorf("sweep: p=%d out of range (want ≥ 1)", p)
		}
		if p > maxP {
			maxP = p
		}
	}
	for _, t := range s.Ts {
		if t < 1 {
			return fmt.Errorf("sweep: t=%d out of range (want ≥ 1)", t)
		}
		if t > maxT {
			maxT = t
		}
	}
	for _, d := range s.Ds {
		if d < 1 {
			return fmt.Errorf("sweep: d=%d out of range (want ≥ 1)", d)
		}
		if d > maxD {
			maxD = d
		}
	}
	if s.Shards < ShardsAuto {
		return fmt.Errorf("sweep: shards=%d out of range (want ≥ -1; -1 = auto)", s.Shards)
	}
	if s.Q != 0 && s.Q < 2 {
		return fmt.Errorf("sweep: q=%d out of range (want 0 = default, or ≥ 2)", s.Q)
	}
	advs := s.Adversaries
	if len(advs) == 0 {
		adv := s.Adversary
		if adv == "" {
			adv = AdvFair
		}
		advs = []string{adv}
	}
	probe := Scenario{P: maxP, T: maxT, D: maxD, Seed: 1, Q: s.Q}
	for _, algo := range s.Algos {
		for _, adv := range advs {
			probe.Algorithm, probe.Adversary = algo, adv
			if err := probe.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
