package harness

import (
	"fmt"
	"math/rand"

	"doall/internal/adversary"
	"doall/internal/bounds"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

// Scale selects experiment sizes: Quick keeps each experiment under ~1s
// for tests and benchmarks; Full is what cmd/experiments uses for
// EXPERIMENTS.md.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) pick(quick, full int) int {
	if s == Quick {
		return quick
	}
	return full
}

// DSweep returns the delay values the work experiments sweep.
func (s Scale) DSweep(t int) []int {
	var ds []int
	for d := 1; d <= 2*t; d *= 4 {
		ds = append(ds, d)
	}
	return ds
}

// E1LowerBoundDet measures the work that the Theorem 3.1 off-line
// adversary forces out of the deterministic algorithms (DA, PaDet) and
// compares it to the Ω(t + p·min{d,t}·log_{d+1}(d+t)) formula.
func E1LowerBoundDet(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	tb := NewTable("E1", fmt.Sprintf("Theorem 3.1: forced work of deterministic algorithms, p=%d t=%d", p, t),
		"d", "algo", "forced W", "Ω-bound", "W/Ω", "stages")
	tb.Note = "Work forced by the off-line stage adversary; W/Ω should stay bounded below and above by constants across d (shape agreement)."
	for _, algo := range []Algo{AlgoDA, AlgoPaDet} {
		for _, d := range sc.DSweep(t) {
			spec := Spec{Algo: algo, P: p, T: t, D: int64(d), Adversary: AdvStageDet, Seed: 3}
			ms, err := BuildMachines(spec)
			if err != nil {
				return nil, err
			}
			adv := adversary.NewStageDeterministic(int64(d), t)
			res, err := sim.Run(sim.Config{P: p, T: t}, ms, adv)
			if err != nil {
				return nil, err
			}
			lb := bounds.LowerBound(p, t, d)
			tb.AddRow(d, string(algo), res.Work, lb, bounds.Overhead(res.Work, lb), adv.Stages)
		}
	}
	return tb, nil
}

// E2LowerBoundRand measures the expected work the Theorem 3.4 adaptive
// adversary forces out of the randomized algorithms.
func E2LowerBoundRand(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	trials := sc.pick(3, 10)
	tb := NewTable("E2", fmt.Sprintf("Theorem 3.4: forced expected work of randomized algorithms, p=%d t=%d (%d trials)", p, t, trials),
		"d", "algo", "E[W] forced", "Ω-bound", "W/Ω")
	tb.Note = "Expected work under the adaptive intent-observing adversary."
	for _, algo := range []Algo{AlgoPaRan1, AlgoPaRan2} {
		for _, d := range sc.DSweep(t) {
			var total float64
			for i := 0; i < trials; i++ {
				ms, err := BuildMachines(Spec{Algo: algo, P: p, T: t, Seed: int64(100 + i)})
				if err != nil {
					return nil, err
				}
				adv := adversary.NewStageOnline(int64(d), t)
				res, err := sim.Run(sim.Config{P: p, T: t}, ms, adv)
				if err != nil {
					return nil, err
				}
				total += float64(res.Work)
			}
			avg := total / float64(trials)
			lb := bounds.LowerBound(p, t, d)
			tb.AddRow(d, string(algo), avg, lb, avg/lb)
		}
	}
	return tb, nil
}

// E3Contention reproduces Lemma 4.1/4.2: the searched schedule lists meet
// the 3nH_n contention bound, and ObliDo's primary job executions stay
// below Cont(Σ).
func E3Contention(sc Scale) (*Table, error) {
	tb := NewTable("E3", "Lemma 4.1/4.2: contention of searched lists and ObliDo primary executions",
		"n", "Cont(Σ)", "3nH_n", "primary execs (max over d)", "n² (oblivious)")
	tb.Note = "Cont(Σ) is exact (exhaustive over S_n). Primary executions measured under fair adversaries with d ∈ {1,2,4}; Lemma 4.2 requires primary ≤ Cont(Σ)."
	restarts := sc.pick(100, 400)
	for _, n := range []int{3, 4, 5, 6} {
		r := rand.New(rand.NewSource(int64(n)))
		res := perm.FindLowContentionList(n, n, restarts, r)
		var maxPrimary int64
		for _, d := range []int64{1, 2, 4} {
			ms := core.NewObliDo(n, n, res.List)
			rr, err := sim.Run(sim.Config{P: n, T: n}, ms, adversary.NewFair(d))
			if err != nil {
				return nil, err
			}
			if rr.PrimaryExecutions > maxPrimary {
				maxPrimary = rr.PrimaryExecutions
			}
		}
		tb.AddRow(n, res.Cont, perm.HarmonicBound(n), maxPrimary, n*n)
	}
	return tb, nil
}

// E4DContention reproduces Lemma 4.3/Theorem 4.4: the d-contention of
// random schedule lists stays below n·ln n + 8pd·ln(e+n/d) for every d.
func E4DContention(sc Scale) (*Table, error) {
	n := sc.pick(128, 512)
	p := sc.pick(8, 16)
	samples := sc.pick(30, 100)
	tb := NewTable("E4", fmt.Sprintf("Theorem 4.4: d-contention of a random list, n=%d p=%d", n, p),
		"d", "(d)-Cont estimate", "bound n·ln n+8pd·ln(e+n/d)", "est/bound")
	tb.Note = "The estimate maximizes over random σ probes (a lower bound on the true d-contention); the theorem guarantees the true value is below the bound w.h.p."
	r := rand.New(rand.NewSource(4))
	l := perm.RandomList(p, n, r)
	for d := 1; d <= n/4; d *= 4 {
		est := perm.DContEstimate(l, d, samples, r)
		b := perm.DContBound(n, p, d)
		tb.AddRow(d, est, b, float64(est)/b)
	}
	return tb, nil
}

// E5DAWork reproduces Theorem 5.4/5.5: DA(q) work as a function of d, with
// the O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) curve and the oblivious p·t ceiling.
func E5DAWork(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	tb := NewTable("E5", fmt.Sprintf("Theorem 5.5: DA(q) work vs delay, p=%d t=%d", p, t),
		"d", "q", "W", "M", "UB(ε=0.5)", "W/UB", "p·t")
	tb.Note = "W must grow with d, stay below p·t for d ≪ t, and approach it as d → t."
	for _, q := range []int{2, 4} {
		for _, d := range sc.DSweep(t) {
			res, err := Execute(Spec{Algo: AlgoDA, P: p, T: t, Q: q, D: int64(d), Seed: 5})
			if err != nil {
				return nil, err
			}
			ub := bounds.DAUpperBound(p, t, d, 0.5)
			tb.AddRow(d, q, res.Work, res.Messages, ub, bounds.Overhead(res.Work, ub), p*t)
		}
	}
	return tb, nil
}

// E6PaRanWork reproduces Theorem 6.2/Corollary 6.4: expected work of the
// randomized permutation algorithms vs the O(t·log p + p·d·log(2+t/d))
// curve.
func E6PaRanWork(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	trials := sc.pick(3, 10)
	tb := NewTable("E6", fmt.Sprintf("Theorem 6.2: PaRan expected work vs delay, p=%d t=%d (%d trials)", p, t, trials),
		"d", "algo", "E[W]", "E[M]", "UB", "W/UB", "p·t")
	for _, algo := range []Algo{AlgoPaRan1, AlgoPaRan2} {
		for _, d := range sc.DSweep(t) {
			avg, err := ExecuteAvg(Spec{Algo: algo, P: p, T: t, D: int64(d), Seed: 6}, trials)
			if err != nil {
				return nil, err
			}
			ub := bounds.PAUpperBound(p, t, d)
			tb.AddRow(d, string(algo), avg.Work, avg.Messages, ub, avg.Work/ub, p*t)
		}
	}
	return tb, nil
}

// E7PaDetWork reproduces Theorem 6.3/Corollary 6.5: PaDet work with a
// searched low-d-contention schedule list.
func E7PaDetWork(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	tb := NewTable("E7", fmt.Sprintf("Theorem 6.3: PaDet work vs delay, p=%d t=%d", p, t),
		"d", "W", "M", "UB", "W/UB")
	for _, d := range sc.DSweep(t) {
		res, err := Execute(Spec{Algo: AlgoPaDet, P: p, T: t, D: int64(d), Seed: 7})
		if err != nil {
			return nil, err
		}
		ub := bounds.PAUpperBound(p, t, d)
		tb.AddRow(d, res.Work, res.Messages, ub, bounds.Overhead(res.Work, ub))
	}
	return tb, nil
}

// E8LargeDelay reproduces Proposition 2.2: when d = Ω(t), every algorithm
// is forced to ~p·t work and the oblivious algorithm is optimal.
func E8LargeDelay(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(128, 512)
	tb := NewTable("E8", fmt.Sprintf("Proposition 2.2: work at d = Ω(t), p=%d t=%d", p, t),
		"algo", "d", "W", "p·t", "W/(p·t)")
	tb.Note = "At d ≥ t no algorithm can beat the oblivious bound by more than a constant."
	for _, algo := range []Algo{AlgoAllToAll, AlgoDA, AlgoPaRan1, AlgoPaDet} {
		for _, d := range []int{t, 2 * t} {
			res, err := Execute(Spec{Algo: algo, P: p, T: t, D: int64(d), Seed: 8})
			if err != nil {
				return nil, err
			}
			tb.AddRow(string(algo), d, res.Work, p*t, float64(res.Work)/float64(p*t))
		}
	}
	return tb, nil
}

// E9Messages reproduces Theorem 5.6 and the message bounds of Theorems
// 6.2/6.3: M ≤ (p-1)·W for every algorithm (each step broadcasts at most
// once), and the PA message totals against their analytic bound.
func E9Messages(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	t := sc.pick(256, 1024)
	d := 4
	tb := NewTable("E9", fmt.Sprintf("Theorems 5.6/6.2: message complexity, p=%d t=%d d=%d", p, t, d),
		"algo", "W", "M", "M/W", "(p-1) ceiling", "PA M-bound")
	for _, algo := range []Algo{AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet} {
		res, err := Execute(Spec{Algo: algo, P: p, T: t, D: int64(d), Seed: 9})
		if err != nil {
			return nil, err
		}
		ratio := float64(res.Messages) / float64(res.Work)
		paBound := ""
		if algo != AlgoDA {
			paBound = trimFloat(bounds.PAMessageBound(p, t, d))
		}
		tb.AddRow(string(algo), res.Work, res.Messages, ratio, p-1, paBound)
	}
	return tb, nil
}

// E10Crossover runs DA and the PA family head-to-head across the (t, d)
// grid and reports the winner, reproducing the Section 1.2 discussion:
// PA's t·log p beats DA's t·p^ε for large t/d; for tiny instances DA's
// constant-size permutations can win.
func E10Crossover(sc Scale) (*Table, error) {
	p := sc.pick(8, 16)
	tb := NewTable("E10", fmt.Sprintf("Section 1.2: DA vs PA head-to-head, p=%d", p),
		"t", "d", "W(DA q=2)", "W(PaDet)", "W(PaRan1)", "winner")
	ts := []int{sc.pick(64, 256), sc.pick(256, 1024), sc.pick(512, 4096)}
	for _, t := range ts {
		for _, d := range []int{1, 8, 64} {
			wDA, err := Execute(Spec{Algo: AlgoDA, P: p, T: t, D: int64(d), Seed: 10})
			if err != nil {
				return nil, err
			}
			wDet, err := Execute(Spec{Algo: AlgoPaDet, P: p, T: t, D: int64(d), Seed: 10})
			if err != nil {
				return nil, err
			}
			avg, err := ExecuteAvg(Spec{Algo: AlgoPaRan1, P: p, T: t, D: int64(d), Seed: 10}, sc.pick(3, 5))
			if err != nil {
				return nil, err
			}
			winner := "DA"
			best := wDA.Work
			if wDet.Work < best {
				winner, best = "PaDet", wDet.Work
			}
			if int64(avg.Work) < best {
				winner = "PaRan1"
			}
			tb.AddRow(t, d, wDA.Work, wDet.Work, avg.Work, winner)
		}
	}
	return tb, nil
}

// AllExperiments runs every experiment at the given scale, in index order.
func AllExperiments(sc Scale) ([]*Table, error) {
	fns := []func(Scale) (*Table, error){
		E1LowerBoundDet, E2LowerBoundRand, E3Contention, E4DContention,
		E5DAWork, E6PaRanWork, E7PaDetWork, E8LargeDelay, E9Messages,
		E10Crossover,
	}
	out := make([]*Table, 0, len(fns))
	for _, fn := range fns {
		t, err := fn(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
