package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"doall"
)

func TestVersionFlagPrintsBuild(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "experiments ") || !strings.Contains(out.String(), doall.Version()) {
		t.Fatalf("-version printed %q", out.String())
	}
}

// An expired -timeout still writes the report — with the cells completed
// so far and "partial": true — instead of discarding finished work.
func TestSweepTimeoutWritesPartialReport(t *testing.T) {
	var out, errw bytes.Buffer
	err := runWithStderr([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "1,2",
		"-timeout", "1ns"}, &out, &errw)
	if err != nil {
		t.Fatalf("timed-out sweep must still succeed, got %v", err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("partial report is not valid JSON: %v\n%s", err, out.Bytes())
	}
	if !rep.Partial {
		t.Fatal("interrupted report not marked partial")
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("partial report names %d cells, want the full grid (2)", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Err == "" && c.SolvedAt == 0 {
			t.Fatalf("cell neither ran nor carries the interruption: %+v", c)
		}
	}
	if !strings.Contains(errw.String(), "partial") {
		t.Fatalf("no interruption notice on stderr: %q", errw.String())
	}
}

// A canceled context (the SIGINT path) behaves like -timeout: partial
// report, marked as such.
func TestSweepSigintCancelsAndFlushes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate ^C before the sweep starts
	var out, errw bytes.Buffer
	err := runContext(ctx, []string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "1"}, &out, &errw)
	if err != nil {
		t.Fatalf("canceled sweep must still flush, got %v", err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("canceled report not marked partial")
	}
}

// A sweep that finishes inside its budget is indistinguishable from one
// with no budget at all.
func TestSweepTimeoutUnexpiredIsComplete(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "1",
		"-timeout", time.Hour.String()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("complete sweep marked partial")
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell carries error: %+v", c)
		}
	}
}
