// Package doall is a Go implementation of the message-delay-sensitive
// Do-All algorithms of Kowalski and Shvartsman ("Performing work with
// asynchronous processors: message-delay-sensitive bounds", PODC 2003;
// full version in Information and Computation 203 (2005) 181–210).
//
// The Do-All problem: given t similar, idempotent tasks, perform them all
// using p asynchronous message-passing processors, tolerating arbitrary
// delays and any number of crashes short of all p. Work is charged for
// every local step of every live processor until all tasks are done and
// some processor knows it; a broadcast to m recipients costs m messages.
//
// The package exposes:
//
//   - A declarative Scenario API: a JSON-serializable spec naming an
//     algorithm, an adversary expression, the problem shape, and a
//     backend, resolved through open registries (RegisterAlgorithm,
//     RegisterAdversary). Adversary expressions compose combinators —
//     "crashing(slow-set(fair))" layers crash failures over a slow subset
//     over fixed delays.
//   - The algorithms as step machines: the oblivious baselines
//     (NewAllToAll, NewObliDo), the deterministic progress-tree family
//     DA(q) (NewDA), and the permutation family PA (NewPaRan1, NewPaRan2,
//     NewPaDet). All run unchanged under both execution substrates.
//   - A deterministic simulator (Simulate) in which an Adversary controls
//     processor speeds, crashes (fail-stop and restartable, with
//     rebase-on-revive rejoin), message omission, and message delays up
//     to an unknown bound d — the model in which the paper's bounds are
//     stated — with optional zero-cost-when-nil Observer hooks for
//     tracing and metrics.
//   - A goroutine runtime (Execute, or Backend "runtime") that runs the
//     same machines on real concurrency with user task bodies.
//   - The combinatorial toolkit of Section 4 (contention of permutation
//     schedules) and closed-form bound evaluators for comparing measured
//     work against theory.
//
// A minimal use:
//
//	sc := doall.Scenario{Algorithm: "DA", P: 8, T: 64, Q: 2, D: 4, Seed: 42}
//	res, _ := doall.RunScenario(sc)
//	fmt.Println(res.Sim.Work, res.Sim.Messages)
//
// Scenarios are plain data — the same run can come from a JSON document:
//
//	sc, _ := doall.ParseScenario([]byte(`{"algorithm": "PaRan1", "adversary": "crashing(crash=0@5)", "p": 8, "t": 256, "d": 4}`))
//	res, _ := doall.RunScenario(sc)
package doall

import (
	"math/rand"
	"time"

	"doall/internal/adversary"
	"doall/internal/bounds"
	"doall/internal/core"
	"doall/internal/perm"
	rt "doall/internal/runtime"
	"doall/internal/sim"
)

// Core model types, aliased from the simulator so user code and internal
// packages interoperate directly.
type (
	// Machine is one processor's algorithm state; Step is called once per
	// local step with the deliveries made since the previous step.
	Machine = sim.Machine
	// Message is a fully materialized point-to-point message (observer
	// hooks and the goroutine runtime; the simulator's hot path uses
	// Delivery references instead).
	Message = sim.Message
	// Delivery is one delivered message: a two-word reference into the
	// Multicast record shared by every recipient of a broadcast.
	Delivery = sim.Delivery
	// Multicast is one broadcast stored once regardless of recipient count.
	Multicast = sim.Multicast
	// StepResult reports what one local step performed (StepResult.Perform
	// / PerformedTask), broadcast, and whether the processor voluntarily
	// halted.
	StepResult = sim.StepResult
	// SimEngine is the reusable simulation engine: one engine per trial
	// loop reuses wheel buckets, inboxes, result arrays, and the multicast
	// pool across runs (NewSimEngine).
	SimEngine = sim.Engine
	// Adversary controls asynchrony in the simulator: per-unit scheduling,
	// crashes, and per-message delays up to its bound D().
	Adversary = sim.Adversary
	// MulticastDelayer is the optional Adversary extension that answers a
	// whole broadcast's delays in one call; the engine adapts adversaries
	// that lack it, at one Delay call per recipient.
	MulticastDelayer = sim.MulticastDelayer
	// UniformDelayer is the optional Adversary extension for recipient-
	// independent delays: one delay query schedules a whole broadcast.
	UniformDelayer = sim.UniformDelayer
	// MachineResetter is the optional Machine extension restoring a
	// machine to its initial state without reallocating (trial reuse).
	MachineResetter = sim.Resetter
	// MachineRejoiner is the optional Machine extension for the
	// crash-restart fault model: Rejoin restores fresh initial knowledge
	// mid-run without invalidating in-flight payloads (the next broadcast
	// travels as a full rebase). All six paper algorithms implement it.
	MachineRejoiner = sim.Rejoiner
	// Omitter is the optional Adversary extension for message-omission
	// faults: individual copies of a multicast are dropped before
	// delivery while the send is still charged.
	Omitter = sim.Omitter
	// PayloadRecycler is the optional Machine extension receiving payload
	// buffers back once every recipient has consumed them.
	PayloadRecycler = sim.PayloadRecycler
	// Decision is an adversary's per-unit scheduling choice, including the
	// optional NextWake idle-fast-forward promise.
	Decision = sim.Decision
	// View is the adversary's omniscient per-unit picture of the system.
	View = sim.View
	// Payload is the optional wire-size-aware payload interface; payload
	// values are shared, uncopied, by every recipient of a multicast and
	// must be immutable once sent.
	Payload = sim.Payload
	// Result carries the measured complexities of a simulated execution.
	Result = sim.Result
	// SimConfig configures Simulate.
	SimConfig = sim.Config
	// Perm is a permutation of {0,…,n-1} used as a task schedule.
	Perm = perm.Perm
	// Schedules is an ordered list of permutations (the paper's Σ).
	Schedules = perm.List
	// DAConfig parameterizes the DA(q) family.
	DAConfig = core.DAConfig
	// RunConfig configures the goroutine runtime.
	RunConfig = rt.Config
	// RunReport is the goroutine runtime's execution summary.
	RunReport = rt.Report
)

// NoTask is StepResult.PerformedTask's value for a step that performed no
// task.
const NoTask = sim.NoTask

// Simulate runs machines under the adversary in the deterministic
// simulator and returns exact work/message/time measurements
// (Definitions 2.1–2.2 of the paper). It uses the multicast-native
// engine: one broadcast is one stored Multicast plus one timing-wheel
// event, so large (p, t, d) sweeps run orders of magnitude faster than
// under the per-message legacy engine while producing identical Results.
func Simulate(cfg SimConfig, machines []Machine, adv Adversary) (*Result, error) {
	return sim.Run(cfg, machines, adv)
}

// NewSimEngine returns a reusable simulation engine. One engine held
// across a trial loop reuses its wheel buckets, inboxes, result arrays,
// and multicast pool run to run — in steady state a run allocates
// nothing — while producing Results byte-identical to Simulate's. The
// Result returned by SimEngine.Run is engine-owned and overwritten by the
// next run.
func NewSimEngine() *SimEngine { return sim.NewEngine() }

// ResetSimMachines restores every machine to its initial state via the
// optional MachineResetter extension, reporting whether all machines
// supported it. All six paper algorithms do.
func ResetSimMachines(machines []Machine) bool { return sim.ResetMachines(machines) }

// CloneSimMachines deep-copies a machine set via the optional Cloner
// extension (false when any machine is not cloneable, e.g. PaRan2).
func CloneSimMachines(machines []Machine) ([]Machine, bool) { return sim.CloneMachines(machines) }

// SimulateLegacy runs the original per-message reference engine. It is
// kept for equivalence checking and engine benchmarking; Results are
// identical to Simulate's on every algorithm × adversary pair.
func SimulateLegacy(cfg SimConfig, machines []Machine, adv Adversary) (*Result, error) {
	return sim.RunLegacy(cfg, machines, adv)
}

// Execute runs machines on real goroutines with delayed channels; cfg.Task
// is invoked for every performed task id.
func Execute(cfg RunConfig, machines []Machine) (*RunReport, error) {
	return rt.Run(cfg, machines)
}

// NewAllToAll builds the oblivious baseline: every processor performs
// every task; work Θ(p·t), zero messages.
func NewAllToAll(p, t int) []Machine { return core.NewAllToAll(p, t) }

// NewObliDo builds the Fig. 2 oblivious scheduler over the schedule list.
func NewObliDo(p, t int, schedules Schedules) []Machine { return core.NewObliDo(p, t, schedules) }

// NewDA builds the deterministic progress-tree algorithm DA(q); work
// O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) for suitable q and schedules.
func NewDA(cfg DAConfig) ([]Machine, error) { return core.NewDA(cfg) }

// NewPaRan1 builds the randomized permutation algorithm that draws one
// random schedule per processor at start-up; expected work
// O(t·log p + p·d·log(2+t/d)).
func NewPaRan1(p, t int, seed int64) []Machine { return core.NewPaRan1(p, t, seed) }

// NewPaRan2 builds the randomized permutation algorithm that draws each
// next task uniformly among those not known done; same expected work as
// PaRan1 with far fewer random bits.
func NewPaRan2(p, t int, seed int64) []Machine { return core.NewPaRan2(p, t, seed) }

// NewPaDet builds the deterministic permutation algorithm over a fixed
// schedule list with low d-contention (Corollary 4.5).
func NewPaDet(p, t int, schedules Schedules) ([]Machine, error) {
	return core.NewPaDet(p, t, schedules)
}

// NewFairAdversary returns the benign d-adversary: full processor speed,
// every message delayed exactly d.
func NewFairAdversary(d int64) Adversary { return adversary.NewFair(d) }

// NewRandomAdversary returns a d-adversary with random processor activity
// and uniform delays in [1, d].
func NewRandomAdversary(d int64, activity float64, seed int64) Adversary {
	return adversary.NewRandom(d, activity, seed)
}

// NewCrashingAdversary wraps another adversary with scheduled crash
// failures; it never crashes the last live processor.
func NewCrashingAdversary(inner Adversary, events []CrashEvent) Adversary {
	ev := make([]adversary.CrashEvent, len(events))
	for i, e := range events {
		ev[i] = adversary.CrashEvent{Pid: e.Pid, At: e.At}
	}
	return adversary.NewCrashing(inner, ev)
}

// CrashEvent schedules processor Pid to crash at simulated time At.
type CrashEvent struct {
	Pid int
	At  int64
}

// RestartEvent schedules a restartable-crash fault: processor Pid
// crashes at CrashAt and revives at ReviveAt with fresh initial
// knowledge (deliveries missed while down are lost, and the revived
// processor's next broadcast travels as a full snapshot rebase).
type RestartEvent = adversary.RestartEvent

// OmitWindow schedules message-omission faults: every multicast sent by
// processor Pid at a time in [From, Until) loses its copies (they are
// charged as sent but never delivered).
type OmitWindow = adversary.OmitWindow

// NewRestartingAdversary wraps another adversary with scheduled
// crash-restart faults (the "restarting(...)" expression combinator); it
// never crashes the last live processor.
func NewRestartingAdversary(inner Adversary, events []RestartEvent) Adversary {
	return adversary.NewRestarting(inner, events)
}

// NewOmittingAdversary wraps another adversary with scheduled
// message-omission faults (the "omitting(...)" expression combinator).
// A non-empty to list restricts the dropped copies to the listed
// recipients, modeling deliver-to-subset omission.
func NewOmittingAdversary(inner Adversary, windows []OmitWindow, to []int) Adversary {
	return adversary.NewOmitting(inner, windows, to)
}

// NewSlowSetAdversary returns a d-adversary that runs the processors in
// slow at a fraction of full speed (one step every period units) while
// the rest run at full speed; messages are delayed by the full bound d.
func NewSlowSetAdversary(d int64, slow []int, period int64) Adversary {
	return adversary.NewSlowSet(d, slow, period)
}

// NewSlowSetOverAdversary is the composable form: it wraps inner so the
// slow processors step only every period units, leaving inner's crashes
// and message delays untouched (the "slow-set(...)" expression
// combinator).
func NewSlowSetOverAdversary(inner Adversary, slow []int, period int64) Adversary {
	return adversary.NewSlowSetOver(inner, slow, period)
}

// NewLowerBoundAdversaryDet returns the Theorem 3.1 off-line adversary
// that forces Ω(t + p·min{d,t}·log_{d+1}(d+t)) work out of deterministic
// algorithms (machines must support cloning).
func NewLowerBoundAdversaryDet(d int64, t int) Adversary {
	return adversary.NewStageDeterministic(d, t)
}

// NewLowerBoundAdversaryRand returns the Theorem 3.4 adaptive adversary
// that forces the same expected work out of randomized algorithms.
func NewLowerBoundAdversaryRand(d int64, t int) Adversary {
	return adversary.NewStageOnline(d, t)
}

// FindSchedules searches for a list of k low-contention permutations of
// {0,…,n-1} (Lemma 4.1) usable with NewDA (k = n = q) and NewObliDo.
func FindSchedules(n, restarts int, seed int64) Schedules {
	r := rand.New(rand.NewSource(seed))
	return perm.FindLowContentionList(n, n, restarts, r).List
}

// FindDelaySchedules searches for a list of k permutations of {0,…,n-1}
// with low d-contention (Corollary 4.5) usable with NewPaDet; n should be
// the number of jobs, min(p, t).
func FindDelaySchedules(k, n, d, restarts int, seed int64) Schedules {
	r := rand.New(rand.NewSource(seed))
	return perm.FindLowDContentionList(k, n, d, restarts, r).List
}

// ScheduleSearchResult describes a schedule list found by one of the
// search functions together with its (estimated or exact) contention and
// how many candidates were examined.
type ScheduleSearchResult = perm.SearchResult

// SearchSchedules searches for a list of k low-contention permutations of
// {0,…,n-1} (Lemma 4.1), reporting the contention found; FindSchedules is
// the list-only convenience form.
func SearchSchedules(k, n, restarts int, seed int64) ScheduleSearchResult {
	r := rand.New(rand.NewSource(seed))
	return perm.FindLowContentionList(k, n, restarts, r)
}

// SearchDelaySchedules searches for a list of k permutations of {0,…,n-1}
// with low d-contention (Corollary 4.5), reporting the contention found.
func SearchDelaySchedules(k, n, d, restarts int, seed int64) ScheduleSearchResult {
	r := rand.New(rand.NewSource(seed))
	return perm.FindLowDContentionList(k, n, d, restarts, r)
}

// RandomSchedules returns k uniformly random permutations of {0,…,n-1}.
func RandomSchedules(k, n int, seed int64) Schedules {
	r := rand.New(rand.NewSource(seed))
	return perm.RandomList(k, n, r)
}

// Contention returns the exact contention Cont(Σ) of a schedule list
// (exponential in the permutation length; intended for small n).
func Contention(s Schedules) int { return perm.Cont(s) }

// DContentionEstimate lower-estimates the d-contention of a schedule list
// by probing `samples` random completion orders.
func DContentionEstimate(s Schedules, d, samples int, seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return perm.DContEstimate(s, d, samples, r)
}

// HarmonicBound returns ⌈3·n·H_n⌉, the Lemma 4.1 contention bound.
func HarmonicBound(n int) int { return perm.HarmonicBound(n) }

// DContentionBound returns the Theorem 4.4/Corollary 4.5 bound
// n·ln n + 8·p·d·ln(e + n/d) on the d-contention of p schedules over [n].
func DContentionBound(n, p, d int) float64 { return perm.DContBound(n, p, d) }

// DContention returns the exact d-contention (d)-Cont(Σ) of a schedule
// list (exponential in the permutation length).
func DContention(s Schedules, d int) int { return perm.DCont(s, d) }

// LowerBound evaluates the Ω(t + p·min{d,t}·log_{d+1}(d+t)) delay-
// sensitive lower bound of Theorems 3.1/3.4 (constants suppressed).
func LowerBound(p, t, d int) float64 { return bounds.LowerBound(p, t, d) }

// DAUpperBound evaluates the O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) work bound of
// Theorem 5.5 (constants suppressed).
func DAUpperBound(p, t, d int, eps float64) float64 { return bounds.DAUpperBound(p, t, d, eps) }

// PAUpperBound evaluates the O(t·log p + p·min{t,d}·log(2+t/d)) work
// bound of Theorems 6.2/6.3 (constants suppressed).
func PAUpperBound(p, t, d int) float64 { return bounds.PAUpperBound(p, t, d) }

// ObliviousWork returns p·t, the work of the communication-free oblivious
// algorithm (Proposition 2.2's ceiling).
func ObliviousWork(p, t int) float64 { return bounds.ObliviousWork(p, t) }

// DefaultRunConfig returns a RunConfig with sensible pacing for the
// goroutine runtime.
func DefaultRunConfig(p, t, d int) RunConfig {
	return RunConfig{P: p, T: t, D: d, Unit: 200 * time.Microsecond, Timeout: 30 * time.Second}
}
