package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSetGetClear(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			s.Get(i)
		}()
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestCountAllNone(t *testing.T) {
	s := New(70)
	if !s.None() || s.All() || s.Count() != 0 {
		t.Fatal("fresh set state wrong")
	}
	for i := 0; i < 70; i++ {
		s.Set(i)
	}
	if s.Count() != 70 || !s.All() || s.None() {
		t.Fatal("full set state wrong")
	}

	z := New(0)
	if !z.All() || !z.None() {
		t.Fatal("empty set should be both All and None")
	}
}

func TestUnionWithCountsNewBits(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	added := a.UnionWith(b)
	if added != 1 {
		t.Fatalf("added = %d, want 1 (only bit 99 is new)", added)
	}
	for _, i := range []int{1, 50, 99} {
		if !a.Get(i) {
			t.Fatalf("bit %d missing after union", i)
		}
	}
	if a.Count() != 3 {
		t.Fatalf("count = %d, want 3", a.Count())
	}
	// Idempotent.
	if again := a.UnionWith(b); again != 0 {
		t.Fatalf("second union added %d bits", again)
	}
}

func TestUnionLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestCloneEqualIndependent(t *testing.T) {
	a := New(65)
	a.Set(64)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0)
	if a.Get(0) {
		t.Fatal("clone shares storage")
	}
	if a.Equal(New(66)) {
		t.Fatal("Equal across lengths")
	}
}

func TestFromToBools(t *testing.T) {
	in := []bool{true, false, true, true, false}
	s := FromBools(in)
	out := s.ToBools()
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestNextClear(t *testing.T) {
	s := New(130)
	if got := s.NextClear(0); got != 0 {
		t.Fatalf("NextClear(0) = %d, want 0", got)
	}
	for i := 0; i < 128; i++ {
		s.Set(i)
	}
	if got := s.NextClear(0); got != 128 {
		t.Fatalf("NextClear(0) = %d, want 128 (skips two full words)", got)
	}
	if got := s.NextClear(129); got != 129 {
		t.Fatalf("NextClear(129) = %d, want 129", got)
	}
	s.Set(128)
	s.Set(129)
	if got := s.NextClear(0); got != -1 {
		t.Fatalf("NextClear on full set = %d, want -1", got)
	}
	if got := s.NextClear(-5); got != -1 {
		t.Fatalf("NextClear(-5) on full set = %d, want -1", got)
	}
}

func TestSetWordsMasksTail(t *testing.T) {
	s := New(5)
	s.SetWords([]uint64{^uint64(0)}) // all 64 bits, but only 5 valid
	if s.Count() != 5 {
		t.Fatalf("count = %d after SetWords, want 5 (tail masked)", s.Count())
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Set(1)
	s.Set(3)
	if got := s.String(); got != "0101" {
		t.Fatalf("String() = %q, want 0101", got)
	}
}

// Property: union behaves exactly like the boolean-slice union.
func TestQuickUnionMatchesBoolModel(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		ba, bb := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			ba[i] = ra.Intn(2) == 1
			bb[i] = rb.Intn(2) == 1
		}
		sa, sb := FromBools(ba), FromBools(bb)
		sa.UnionWith(sb)
		for i := 0; i < n; i++ {
			if sa.Get(i) != (ba[i] || bb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of distinct Set calls.
func TestQuickCount(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%250) + 1
		r := rand.New(rand.NewSource(seed))
		s := New(n)
		distinct := map[int]bool{}
		for k := 0; k < 50; k++ {
			i := r.Intn(n)
			s.Set(i)
			distinct[i] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	if got := s.NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty set = %d, want -1", got)
	}
	for _, i := range []int{0, 63, 64, 130, 199} {
		s.Set(i)
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 130, 199}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if s.NextSet(200) != -1 || s.NextSet(-5) != 0 {
		t.Fatal("boundary handling wrong")
	}
	if got := s.NextSet(65); got != 130 {
		t.Fatalf("NextSet(65) = %d, want 130", got)
	}
}
