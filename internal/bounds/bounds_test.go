package bounds

import (
	"math"
	"testing"
)

func TestLowerBoundDegenerate(t *testing.T) {
	if LowerBound(0, 10, 1) != 0 || LowerBound(10, 0, 1) != 0 || LowerBound(10, 10, 0) != 0 {
		t.Fatal("degenerate arguments should give 0")
	}
}

func TestLowerBoundAtLeastT(t *testing.T) {
	for _, c := range [][3]int{{1, 100, 1}, {8, 64, 4}, {16, 1024, 32}} {
		if lb := LowerBound(c[0], c[1], c[2]); lb < float64(c[1]) {
			t.Errorf("LowerBound%v = %v below t", c, lb)
		}
	}
}

func TestLowerBoundGrowsWithD(t *testing.T) {
	// For d ≤ t the bound must grow in d (more delay ⇒ more forced work).
	prev := 0.0
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		lb := LowerBound(16, 64, d)
		if lb <= prev {
			t.Fatalf("LowerBound not increasing at d=%d: %v ≤ %v", d, lb, prev)
		}
		prev = lb
	}
}

func TestLowerBoundApproachesQuadratic(t *testing.T) {
	// As d → t the bound reaches Ω(p·t): at d = t it is within a constant
	// factor of p·t.
	p, tt := 8, 256
	lb := LowerBound(p, tt, tt)
	if lb < ObliviousWork(p, tt) {
		t.Fatalf("LowerBound at d=t is %v, want ≥ p·t = %v", lb, ObliviousWork(p, tt))
	}
}

func TestDAUpperBoundDominatesLowerBoundShape(t *testing.T) {
	// Upper bound must sit above the lower bound for all tested configs
	// (same model, so UB ≥ LB up to constants; with constant 1 both, DA's
	// p^ε term keeps it above).
	for _, d := range []int{1, 2, 8, 32, 128} {
		ub := DAUpperBound(16, 256, d, 0.5)
		lb := LowerBound(16, 256, d)
		if ub < lb/10 {
			t.Errorf("d=%d: DA UB %v implausibly below LB %v", d, ub, lb)
		}
	}
}

func TestDAUpperBoundMonotoneInEps(t *testing.T) {
	// Larger ε means more work in the t·p^ε term for p > 1.
	if DAUpperBound(16, 64, 2, 0.2) >= DAUpperBound(16, 64, 2, 0.8) {
		t.Fatal("DA bound not increasing in ε")
	}
}

func TestPAUpperBoundSubquadraticForSmallD(t *testing.T) {
	// For d = o(t) the PA bound must be well below p·t at scale.
	p, tt, d := 64, 4096, 4
	if PAUpperBound(p, tt, d) >= ObliviousWork(p, tt) {
		t.Fatal("PA bound not subquadratic for small d")
	}
}

func TestPABeatsDAForLargeT(t *testing.T) {
	// Section 1.2: efficient PA algorithms are within a log factor of
	// optimal while DA carries a p^ε overhead, so for large t PA's bound
	// is smaller.
	p, tt, d := 64, 1<<16, 8
	if PAUpperBound(p, tt, d) >= DAUpperBound(p, tt, d, 0.5) {
		t.Fatal("PA bound should beat DA bound for large t")
	}
}

func TestPAMessageBound(t *testing.T) {
	p, tt, d := 8, 64, 2
	if PAMessageBound(p, tt, d) != float64(p)*PAUpperBound(p, tt, d) {
		t.Fatal("PAMessageBound ≠ p·PAUpperBound")
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(100, 0) != 0 {
		t.Fatal("Overhead with zero bound should be 0")
	}
	if math.Abs(Overhead(150, 100)-1.5) > 1e-12 {
		t.Fatal("Overhead(150,100) ≠ 1.5")
	}
}
