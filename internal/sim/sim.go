// Package sim is a deterministic discrete-time simulator of the
// asynchronous message-passing model of Kowalski & Shvartsman (Section 2).
//
// Time advances in global units (the smallest gap between any two clock
// ticks of any processor; unknown to the processors themselves). At every
// unit an Adversary decides which processors take a local step and may
// crash processors; it also assigns each message a delivery delay of at
// most d units. Work and message complexity are accounted exactly as in
// Definitions 2.1 and 2.2: every local step of a live, non-halted processor
// costs one work unit until the problem is solved (all tasks performed and
// at least one processor informed), and a broadcast to m recipients costs m
// point-to-point messages.
package sim

import (
	"errors"
	"fmt"
)

// Message is a point-to-point message in flight or delivered.
type Message struct {
	// From and To are processor ids.
	From, To int
	// SentAt is the global time at which the send step occurred.
	SentAt int64
	// DeliverAt is the global time at which the message enters the
	// recipient's inbox. Invariant: SentAt < DeliverAt ≤ SentAt + d.
	DeliverAt int64
	// Payload is the algorithm-specific content. Payloads must be treated
	// as immutable by receivers (they are shared between the recipients of
	// one multicast).
	Payload any
}

// StepResult is what a processor's single local step produced.
type StepResult struct {
	// Performed lists ids of tasks executed during this step. In the
	// paper's unit-cost model a step performs at most one task; machines
	// must respect that (the simulator enforces it).
	Performed []int
	// Broadcast, when non-nil, is a payload multicast to every other
	// processor (p-1 point-to-point messages).
	Broadcast any
	// Sends lists additional point-to-point messages (used by the
	// message-frugal gossip variants; one message each). A step may use
	// Sends and Broadcast together, though the standard algorithms use at
	// most one of them.
	Sends []Send
	// Halt indicates the processor voluntarily halts after this step. Per
	// Proposition 2.1 correct algorithms halt only when they know all
	// tasks are done; the simulator records but does not forbid early
	// halts (the lower-bound experiments rely on observing them).
	Halt bool
}

// Send is a directed point-to-point message produced by a step.
type Send struct {
	To      int
	Payload any
}

// Machine is the step-machine interface every Do-All algorithm implements.
// One Machine instance is one processor's local state.
type Machine interface {
	// Step executes one local step: process all messages in inbox (in one
	// unit of work, per the model), optionally perform a task, optionally
	// broadcast. It is called only for live, non-halted processors.
	Step(now int64, inbox []Message) StepResult
	// KnowsAllDone reports whether this processor's local knowledge
	// implies every task has been performed.
	KnowsAllDone() bool
}

// TaskIntender is an optional Machine extension exposing which task the
// machine would perform on its next step, or -1 when it would not perform
// any. Adaptive adversaries (Theorem 3.4's construction) use it to delay
// processors that are about to perform protected tasks.
type TaskIntender interface {
	NextTask() int
}

// Cloner is an optional Machine extension for deterministic machines whose
// state can be deep-copied. The off-line adversary of Theorem 3.1 clones
// machines to look ahead one stage.
type Cloner interface {
	CloneMachine() Machine
}

// View is the adversary's omniscient picture of the system at the start of
// a time unit.
type View struct {
	// Now is the current global time.
	Now int64
	// P is the number of processors; T the number of tasks.
	P, T int
	// DoneTasks[z] reports whether task z has been performed by anyone.
	DoneTasks []bool
	// Undone is the number of tasks not yet performed.
	Undone int
	// Machines exposes processor state for intent probing and cloning.
	// Adversaries must not call Step on these.
	Machines []Machine
	// Inboxes[i] holds the messages delivered to processor i but not yet
	// consumed by a step. Adversaries must treat them as read-only; the
	// off-line lower-bound adversary copies them into machine clones when
	// looking a stage ahead.
	Inboxes [][]Message
	// Crashed[i] and Halted[i] report processor i's status.
	Crashed, Halted []bool
	// InFlight is the number of undelivered messages.
	InFlight int
}

// Decision is the adversary's scheduling choice for one time unit.
type Decision struct {
	// Active lists processors that take a local step this unit. Crashed
	// and halted processors in the list are ignored.
	Active []int
	// Crash lists processors that crash at the start of this unit.
	Crash []int
}

// Adversary controls asynchrony: per-unit scheduling, crashes, and message
// delays. Implementations must respect the d-adversary contract: Delay
// must return a value in [1, D()].
type Adversary interface {
	// D returns the message-delay bound d ≥ 1 this adversary honors.
	D() int64
	// Schedule is called once per global time unit.
	Schedule(v *View) Decision
	// Delay returns the delivery delay (in global time units, ≥ 1 and
	// ≤ D()) for a message from processor `from` to `to` sent at `sentAt`.
	Delay(from, to int, sentAt int64) int64
}

// Result aggregates the complexity measures of one execution.
type Result struct {
	// Solved reports whether all tasks were performed and some processor
	// learned it before the step cap.
	Solved bool
	// SolvedAt is the global time σ at which the problem became solved
	// (all tasks done and ≥ 1 processor informed); -1 if never.
	SolvedAt int64
	// Work is W of Definition 2.1: total local steps of live processors
	// summed up to and including time σ.
	Work int64
	// Messages is M of Definition 2.2: point-to-point messages sent up to
	// and including time σ.
	Messages int64
	// TotalSteps and TotalMessages extend the counts to the whole
	// execution (until every processor halted or crashed, or the cap).
	TotalSteps, TotalMessages int64
	// Bytes is the wire volume (in bytes) of the point-to-point messages
	// counted in Messages, for payloads that implement
	// interface{ WireSize() int }; other payloads contribute zero. Byte
	// volume is an engineering metric — the paper's message complexity is
	// the count in Messages.
	Bytes int64
	// TaskExecutions counts every task performance, with multiplicity.
	TaskExecutions int64
	// PrimaryExecutions counts performances of tasks not performed by
	// anyone at any earlier time unit (Section 4: "primary"); concurrent
	// first performances all count. SecondaryExecutions is the rest.
	PrimaryExecutions, SecondaryExecutions int64
	// PerProcWork[i] is the number of steps processor i was charged.
	PerProcWork []int64
	// FirstDoneAt[z] is the time task z was first performed, or -1.
	FirstDoneAt []int64
	// HaltedEarly reports whether some processor halted before the
	// problem was solved (a Proposition 2.1 violation by the algorithm).
	HaltedEarly bool
}

// Config configures a simulation run.
type Config struct {
	// P is the number of processors; machines must have length P.
	P int
	// T is the number of tasks.
	T int
	// MaxSteps caps global time to guard against non-terminating
	// executions; 0 means the default of 10^7.
	MaxSteps int64
	// StopAtSolved stops the simulation at time σ instead of running
	// until all processors halt. Work/Messages are identical either way;
	// TotalSteps/TotalMessages differ.
	StopAtSolved bool
}

// ErrStepCap is returned when the simulation hits MaxSteps before the
// problem is solved.
var ErrStepCap = errors.New("sim: step cap exceeded before Do-All was solved")

// Run executes machines under the adversary and returns the measured
// complexities. It is deterministic given deterministic machines and
// adversary.
func Run(cfg Config, machines []Machine, adv Adversary) (*Result, error) {
	if len(machines) != cfg.P {
		return nil, fmt.Errorf("sim: %d machines for P=%d", len(machines), cfg.P)
	}
	if cfg.P < 1 || cfg.T < 1 {
		return nil, fmt.Errorf("sim: need P ≥ 1 and T ≥ 1, got P=%d T=%d", cfg.P, cfg.T)
	}
	if adv.D() < 1 {
		return nil, fmt.Errorf("sim: adversary delay bound %d < 1", adv.D())
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}

	s := &state{
		cfg:      cfg,
		machines: machines,
		adv:      adv,
		inbox:    make([][]Message, cfg.P),
		pending:  newDelayQueue(),
		crashed:  make([]bool, cfg.P),
		halted:   make([]bool, cfg.P),
		done:     make([]bool, cfg.T),
		res: &Result{
			SolvedAt:    -1,
			PerProcWork: make([]int64, cfg.P),
			FirstDoneAt: make([]int64, cfg.T),
		},
	}
	for z := range s.res.FirstDoneAt {
		s.res.FirstDoneAt[z] = -1
	}

	for now := int64(0); now < maxSteps; now++ {
		if s.allStopped() {
			break
		}
		s.tick(now)
		if s.res.Solved && cfg.StopAtSolved {
			break
		}
	}
	if !s.res.Solved {
		return s.res, ErrStepCap
	}
	return s.res, nil
}

type state struct {
	cfg      Config
	machines []Machine
	adv      Adversary
	inbox    [][]Message
	pending  *delayQueue
	crashed  []bool
	halted   []bool
	done     []bool
	undone   int
	res      *Result
	inited   bool
}

func (s *state) allStopped() bool {
	for i := range s.machines {
		if !s.crashed[i] && !s.halted[i] {
			return false
		}
	}
	return true
}

// tick advances one global time unit.
func (s *state) tick(now int64) {
	if !s.inited {
		s.undone = s.cfg.T
		s.inited = true
	}

	// 1. Deliver messages due now (or earlier, defensively).
	for _, m := range s.pending.popDue(now) {
		if !s.crashed[m.To] && !s.halted[m.To] {
			s.inbox[m.To] = append(s.inbox[m.To], m)
		}
	}

	// 2. Ask the adversary for this unit's schedule.
	v := &View{
		Now:       now,
		P:         s.cfg.P,
		T:         s.cfg.T,
		DoneTasks: s.done, // shared; adversaries must not mutate
		Undone:    s.undone,
		Machines:  s.machines,
		Inboxes:   s.inbox,
		Crashed:   s.crashed,
		Halted:    s.halted,
		InFlight:  s.pending.len(),
	}
	dec := s.adv.Schedule(v)
	for _, i := range dec.Crash {
		if i >= 0 && i < s.cfg.P {
			s.crashed[i] = true
		}
	}

	// 3. Execute the scheduled local steps.
	informed := false
	for _, i := range dec.Active {
		if i < 0 || i >= s.cfg.P || s.crashed[i] || s.halted[i] {
			continue
		}
		inbox := s.inbox[i]
		s.inbox[i] = nil
		r := s.machines[i].Step(now, inbox)
		if len(r.Performed) > 1 {
			panic(fmt.Sprintf("sim: machine %d performed %d tasks in one step", i, len(r.Performed)))
		}

		s.res.TotalSteps++
		s.res.PerProcWork[i]++
		if !s.res.Solved {
			s.res.Work++
		}

		for _, z := range r.Performed {
			if z < 0 || z >= s.cfg.T {
				panic(fmt.Sprintf("sim: machine %d performed out-of-range task %d", i, z))
			}
			s.res.TaskExecutions++
			if s.res.FirstDoneAt[z] == -1 || s.res.FirstDoneAt[z] == now {
				s.res.PrimaryExecutions++
			} else {
				s.res.SecondaryExecutions++
			}
			if !s.done[z] {
				s.done[z] = true
				s.undone--
				s.res.FirstDoneAt[z] = now
			}
		}

		if r.Broadcast != nil {
			var wireSize int64
			if sz, ok := r.Broadcast.(interface{ WireSize() int }); ok {
				wireSize = int64(sz.WireSize())
			}
			for j := 0; j < s.cfg.P; j++ {
				if j == i {
					continue
				}
				delay := s.adv.Delay(i, j, now)
				if delay < 1 || delay > s.adv.D() {
					panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, s.adv.D()))
				}
				s.pending.push(Message{From: i, To: j, SentAt: now, DeliverAt: now + delay, Payload: r.Broadcast})
				s.res.TotalMessages++
				if !s.res.Solved {
					s.res.Messages++
					s.res.Bytes += wireSize
				}
			}
		}

		for _, snd := range r.Sends {
			if snd.To < 0 || snd.To >= s.cfg.P || snd.To == i || snd.Payload == nil {
				continue
			}
			delay := s.adv.Delay(i, snd.To, now)
			if delay < 1 || delay > s.adv.D() {
				panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, s.adv.D()))
			}
			s.pending.push(Message{From: i, To: snd.To, SentAt: now, DeliverAt: now + delay, Payload: snd.Payload})
			s.res.TotalMessages++
			if !s.res.Solved {
				s.res.Messages++
				if sz, ok := snd.Payload.(interface{ WireSize() int }); ok {
					s.res.Bytes += int64(sz.WireSize())
				}
			}
		}

		if r.Halt {
			s.halted[i] = true
			if !s.res.Solved && !(s.undone == 0 && s.machines[i].KnowsAllDone()) {
				s.res.HaltedEarly = true
			}
		}
		if s.undone == 0 && s.machines[i].KnowsAllDone() {
			informed = true
		}
	}

	// 4. Solved check: all tasks done and some live processor informed.
	if !s.res.Solved && s.undone == 0 {
		if !informed {
			for i, m := range s.machines {
				if !s.crashed[i] && m.KnowsAllDone() {
					informed = true
					break
				}
			}
		}
		if informed {
			s.res.Solved = true
			s.res.SolvedAt = now
		}
	}
}
