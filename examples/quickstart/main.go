// Quickstart: solve a small Do-All instance with the deterministic
// algorithm DA(q) in the simulator and print the complexity measures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

func main() {
	const (
		p = 8   // processors
		t = 64  // tasks
		q = 2   // progress-tree arity
		d = 4   // message-delay bound (unknown to the algorithm!)
	)

	// 1. Find a low-contention schedule list Σ for the tree traversals.
	r := rand.New(rand.NewSource(42))
	search := perm.FindLowContentionList(q, q, 100, r)
	fmt.Printf("schedule list: Cont(Σ) = %d (bound 3nH_n = %d)\n",
		search.Cont, perm.HarmonicBound(q))

	// 2. Build one DA machine per processor.
	machines, err := core.NewDA(core.DAConfig{P: p, T: t, Q: q, Perms: search.List})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run under a d-adversary. The algorithm never learns d; only the
	//    analysis does.
	res, err := sim.Run(sim.Config{P: p, T: t}, machines, adversary.NewFair(d))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved: %v at global time %d\n", res.Solved, res.SolvedAt)
	fmt.Printf("work W = %d   (oblivious algorithm would use p·t = %d)\n", res.Work, p*t)
	fmt.Printf("messages M = %d\n", res.Messages)
	fmt.Printf("task executions: %d primary + %d secondary\n",
		res.PrimaryExecutions, res.SecondaryExecutions)
}
