package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doall"
)

// newDaemon stands up a real in-process service behind httptest and
// returns its base URL.
func newDaemon(t *testing.T, workers int) string {
	t.Helper()
	svc, err := doall.NewService(doall.ServiceConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return ts.URL
}

func ctl(t *testing.T, addr string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(context.Background(), append([]string{"-addr", addr}, args...), &out, &strings.Builder{})
	return out.String(), err
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), doall.Version()) {
		t.Fatalf("-version printed %q", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := ctl(t, "http://127.0.0.1:1", "transmogrify"); err == nil {
		t.Fatal("unknown command accepted")
	}
	var errw strings.Builder
	if err := run(context.Background(), nil, &strings.Builder{}, &errw); err == nil {
		t.Fatal("no command accepted")
	} else if !strings.Contains(errw.String(), "usage:") {
		t.Fatalf("no usage printed: %q", errw.String())
	}
}

func TestSubmitWaitStatusResultsList(t *testing.T) {
	addr := newDaemon(t, 2)
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "job.json")
	doc := `{"sweep":{"algos":["PaRan1"],"p":[4,8],"t":[16],"d":[1,2]},"timeout":"5m"}`
	if err := os.WriteFile(jobFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := ctl(t, addr, "submit", "-f", jobFile, "-wait")
	if err != nil {
		t.Fatal(err)
	}
	var st doall.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit -wait printed %q: %v", out, err)
	}
	if st.State != doall.JobDone || st.CellsDone != 4 {
		t.Fatalf("job after -wait: %+v", st)
	}

	out, err = ctl(t, addr, "status", st.ID)
	if err != nil || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("status: %q, %v", out, err)
	}

	resFile := filepath.Join(dir, "cells.ndjson")
	if _, err := ctl(t, addr, "results", st.ID, "-o", resFile); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(resFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // 4 cells + trailer
		t.Fatalf("results wrote %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[4], `"done":true`) {
		t.Fatalf("last line is not a done trailer: %s", lines[4])
	}

	out, err = ctl(t, addr, "list")
	if err != nil || !strings.Contains(out, st.ID) {
		t.Fatalf("list: %q, %v", out, err)
	}
}

func TestCancelAndDrain(t *testing.T) {
	addr := newDaemon(t, -1) // no fleet: jobs stay queued
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(jobFile, []byte(`{"algos":["DA"],"p":[4],"t":[16],"d":[1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, addr, "submit", "-f", jobFile, "-priority", "7")
	if err != nil {
		t.Fatal(err)
	}
	var st doall.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatal(err)
	}
	if st.Priority != 7 {
		t.Fatalf("-priority override lost: %+v", st)
	}

	out, err = ctl(t, addr, "cancel", st.ID)
	if err != nil || !strings.Contains(out, `"state": "canceled"`) {
		t.Fatalf("cancel: %q, %v", out, err)
	}

	if _, err := ctl(t, addr, "drain"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl(t, addr, "submit", "-f", jobFile); err == nil {
		t.Fatal("submit after drain succeeded")
	}

	// version against a live daemon reports both sides.
	out, err = ctl(t, addr, "version")
	if err != nil || !strings.Contains(out, "client:") || !strings.Contains(out, "daemon:") {
		t.Fatalf("version: %q, %v", out, err)
	}
}

func TestSubmitRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nonsense":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Malformed documents fail client-side — no daemon needed.
	if _, err := ctl(t, "http://127.0.0.1:1", "submit", "-f", bad); err == nil {
		t.Fatal("malformed job accepted")
	}
	if _, err := ctl(t, "http://127.0.0.1:1", "submit"); err == nil {
		t.Fatal("submit without -f accepted")
	}
}

// newTwinDaemon stands up a daemon carrying a small calibrated twin
// whose DA/fair envelope is p∈[16,64], t∈[256,1024], d∈[1,8].
func newTwinDaemon(t *testing.T) string {
	t.Helper()
	var samples []doall.TwinSample
	for _, p := range []int{16, 64} {
		for _, tt := range []int{256, 1024} {
			for _, d := range []int64{1, 8} {
				samples = append(samples, doall.TwinSample{
					Algo: "DA", Family: "fair", P: p, T: tt, D: d,
					Work: float64(p * tt), Messages: float64(p), SolvedAt: float64(tt),
				})
			}
		}
	}
	tw, err := doall.CalibrateTwin(samples, []string{"synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := doall.NewService(doall.ServiceConfig{Workers: 1, Twin: tw})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return ts.URL
}

func TestPredictCommand(t *testing.T) {
	addr := newTwinDaemon(t)

	out, err := ctl(t, addr, "predict", "-algo", "DA", "-p", "32", "-t", "512", "-d", "4")
	if err != nil {
		t.Fatal(err)
	}
	var res doall.TwinPredictResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("predict output not JSON: %v\n%s", err, out)
	}
	if res.Mode != "twin" || !res.Prediction.InEnvelope || res.Prediction.Work <= 0 {
		t.Fatalf("in-envelope predict: %+v", res)
	}

	// Out-of-envelope shapes come back mode=fallback, answered by one
	// real bounded simulation.
	out, err = ctl(t, addr, "predict", "-algo", "PaRan1", "-p", "4", "-t", "16")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("predict output not JSON: %v\n%s", err, out)
	}
	if res.Mode != "fallback" || res.Prediction.Work <= 0 {
		t.Fatalf("out-of-envelope predict: %+v", res)
	}

	// Flag validation is client-side and fast.
	if _, err := ctl(t, addr, "predict", "-p", "16", "-t", "256"); err == nil {
		t.Fatal("predict without -algo accepted")
	}
	if _, err := ctl(t, addr, "predict", "-algo", "DA", "-p", "16", "-t", "256", "stray"); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	// Server-side rejections surface as errors.
	if _, err := ctl(t, addr, "predict", "-algo", "NoSuchAlgo", "-p", "16", "-t", "256"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
