// Package twin fits and serves the analytical twin: per (algorithm,
// adversary-family) closed-form prediction models for the three model
// measures — work, messages, solved-at — as functions of the cell shape
// (p, t, d, q). The twin closes the paper's loop in the other direction:
// the recorded BENCH grids prove the simulator tracks the paper's
// delay-sensitive curves, so a model built *on those curves* can answer
// "what does this algorithm cost at shape X?" in microseconds, no
// simulation required.
//
// Model form. Each measure is fit by least squares in log space:
//
//	log(1+measure) ≈ Σ_k coef[k] · f_k(p,t,d,q)
//
// where the basis features f_k are the logarithms of the paper's own
// bound shapes (LowerBound of Theorems 3.1/3.4, the DA(q) upper bound of
// Theorem 5.5 with ε = EpsilonForQ(q), the PA upper bound of Theorems
// 6.2/6.3) plus log p, log t, log(d+1) and a constant. Fitting on the
// bound shapes means the regression learns constants and low-order
// corrections, not the growth law — the theorems carry the asymptotics.
// The log1p target keeps zero-valued measures (a communication-free
// algorithm's messages) finite.
//
// Honesty machinery. Every model carries its calibration residuals
// distilled into a confidence band (a log-space half-width covering every
// calibration residual, floored at two residual standard deviations), an
// R²/max-relative-error goodness-of-fit summary, and the group's
// calibrated envelope — the axis-aligned box of (p,t,d,q) it was fit on.
// Callers are expected to trust the twin only inside the envelope and
// when the band is tight, and fall back to real simulation otherwise
// (the coverage rule: trust the fit only where calibration data covers).
package twin

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"doall/internal/bounds"
)

// Sample is one calibration observation: a measured sweep cell reduced
// to its shape coordinates and measure averages.
type Sample struct {
	Algo     string
	Family   string // adversary family (root of the expression); "" = fair
	P, T     int
	D        int64
	Q        int // progress-tree arity; < 2 means the default 2
	Work     float64
	Messages float64
	SolvedAt float64
}

// Query asks the twin for a prediction at one shape.
type Query struct {
	Algo      string `json:"algo"`
	Adversary string `json:"adversary,omitempty"` // expression or family; "" = fair
	P         int    `json:"p"`
	T         int    `json:"t"`
	D         int64  `json:"d"`
	Q         int    `json:"q,omitempty"`
}

// Prediction is the twin's answer: point estimates with confidence
// bands for every measure, plus the coverage verdict the fallback rule
// keys on.
type Prediction struct {
	Algo   string `json:"algo"`
	Family string `json:"family"`
	// Point estimates.
	Work     float64 `json:"work"`
	Messages float64 `json:"messages"`
	SolvedAt float64 `json:"solved_at"`
	// Confidence bands: [Lo, Hi] covers every calibration residual of the
	// measure's model (and at least ±2 residual standard deviations).
	WorkLo     float64 `json:"work_lo"`
	WorkHi     float64 `json:"work_hi"`
	MessagesLo float64 `json:"messages_lo"`
	MessagesHi float64 `json:"messages_hi"`
	SolvedAtLo float64 `json:"solved_at_lo"`
	SolvedAtHi float64 `json:"solved_at_hi"`
	// InEnvelope reports whether (p,t,d,q) lies inside the box the group
	// was calibrated on. Outside it the estimates are extrapolations.
	InEnvelope bool `json:"in_envelope"`
	// BandRatio is the widest measure's Hi/Lo ratio in (1+measure) space,
	// exp(2·band): 1 = perfect fit, large = the model admits it knows
	// little. Serving layers fall back to simulation above a threshold.
	BandRatio float64 `json:"band_ratio"`
}

// Model is one fitted measure of one (algorithm, family) group.
type Model struct {
	// Coef are the least-squares weights over the log-space basis
	// features, in features() order.
	Coef []float64 `json:"coef"`
	// Sigma is the residual standard deviation in log space.
	Sigma float64 `json:"sigma"`
	// MaxAbsResid is the largest absolute calibration residual (log space).
	MaxAbsResid float64 `json:"max_abs_resid"`
	// Band is the confidence half-width (log space) used for Lo/Hi:
	// max(2·Sigma, MaxAbsResid) plus a strict-covering epsilon.
	Band float64 `json:"band"`
	// R2 is the coefficient of determination in log space (1 = exact).
	R2 float64 `json:"r2"`
	// MaxRelErr is the largest relative error in linear space,
	// |pred−actual| / max(actual, 1), over the calibration set.
	MaxRelErr float64 `json:"max_rel_err"`
	// N is the number of calibration samples.
	N int `json:"n"`
}

// Envelope is the axis-aligned calibration box of one group.
type Envelope struct {
	MinP int   `json:"min_p"`
	MaxP int   `json:"max_p"`
	MinT int   `json:"min_t"`
	MaxT int   `json:"max_t"`
	MinD int64 `json:"min_d"`
	MaxD int64 `json:"max_d"`
	MinQ int   `json:"min_q"`
	MaxQ int   `json:"max_q"`
}

// Contains reports whether the shape lies inside the calibration box.
func (e Envelope) Contains(p, t int, d int64, q int) bool {
	q = effectiveQ(q)
	return p >= e.MinP && p <= e.MaxP &&
		t >= e.MinT && t <= e.MaxT &&
		d >= e.MinD && d <= e.MaxD &&
		q >= e.MinQ && q <= e.MaxQ
}

// Group is the fitted model set of one (algorithm, adversary-family).
type Group struct {
	Algo     string   `json:"algo"`
	Family   string   `json:"family"`
	Envelope Envelope `json:"envelope"`
	Work     Model    `json:"work"`
	Messages Model    `json:"messages"`
	SolvedAt Model    `json:"solved_at"`
}

// Twin is the calibrated model collection, the in-memory form of
// TWIN_FIT.json.
type Twin struct {
	// Version guards the serialized schema.
	Version int `json:"version"`
	// Sources names the calibration inputs (e.g. the BENCH files).
	Sources []string `json:"sources"`
	// Groups is sorted by (algo, family) for deterministic serialization.
	Groups []Group `json:"groups"`
}

// FitVersion is the current TWIN_FIT.json schema version.
const FitVersion = 1

// Family reduces an adversary expression to its family: the registry
// name before the first parameter list, with "" meaning the default
// fair adversary. "crashing(crash=3@7)" → "crashing".
func Family(expr string) string {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return "fair"
	}
	if i := strings.IndexByte(expr, '('); i >= 0 {
		expr = expr[:i]
	}
	return strings.TrimSpace(expr)
}

func effectiveQ(q int) int {
	if q < 2 {
		return 2
	}
	return q
}

// features evaluates the log-space basis at one shape. The first three
// non-constant features are the paper's bound shapes, so the fit learns
// constants against the theorems' growth laws.
func features(p, t int, d int64, q int) []float64 {
	lb := bounds.LowerBound(p, t, int(d))
	da := bounds.DAUpperBound(p, t, int(d), bounds.EpsilonForQ(q))
	pa := bounds.PAUpperBound(p, t, int(d))
	return []float64{
		1,
		math.Log1p(lb),
		math.Log1p(da),
		math.Log1p(pa),
		math.Log(float64(p)),
		math.Log(float64(t)),
		math.Log1p(float64(d)),
	}
}

const nFeatures = 7

// ridge is the Tikhonov weight added to the normal equations' diagonal:
// large enough to keep tiny calibration sets (a family measured at two
// shapes) solvable, small enough to leave well-determined fits
// numerically unchanged.
const ridge = 1e-6

// bandEps strictly widens the band beyond the largest calibration
// residual, so every calibration point is inside its own band by
// construction rather than by floating-point luck.
const bandEps = 1e-9

// fitModel least-squares-fits one measure over the samples' feature rows.
func fitModel(rows [][]float64, ys []float64) Model {
	n := len(rows)
	// Normal equations with ridge: (XᵀX + λI)·coef = Xᵀy.
	var ata [nFeatures][nFeatures]float64
	var atb [nFeatures]float64
	for r, row := range rows {
		for i := 0; i < nFeatures; i++ {
			atb[i] += row[i] * ys[r]
			for j := 0; j < nFeatures; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < nFeatures; i++ {
		ata[i][i] += ridge
	}
	coef := solve(&ata, &atb)

	// Residual statistics in log space.
	var ssRes, ssTot, mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	maxAbs, maxRel := 0.0, 0.0
	for r, row := range rows {
		pred := dot(coef, row)
		resid := ys[r] - pred
		ssRes += resid * resid
		dTot := ys[r] - mean
		ssTot += dTot * dTot
		if a := math.Abs(resid); a > maxAbs {
			maxAbs = a
		}
		// Linear-space relative error against the actual measure.
		lin := math.Expm1(ys[r])
		plin := math.Expm1(pred)
		if rel := math.Abs(plin-lin) / math.Max(lin, 1); rel > maxRel {
			maxRel = rel
		}
	}
	sigma := math.Sqrt(ssRes / float64(n))
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	band := math.Max(2*sigma, maxAbs*(1+bandEps)) + bandEps
	return Model{
		Coef:        coef,
		Sigma:       sigma,
		MaxAbsResid: maxAbs,
		Band:        band,
		R2:          r2,
		MaxRelErr:   maxRel,
		N:           n,
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting on the
// (ridge-regularized, hence nonsingular) normal equations.
func solve(a *[nFeatures][nFeatures]float64, b *[nFeatures]float64) []float64 {
	for col := 0; col < nFeatures; col++ {
		// Pivot on the largest magnitude in this column.
		piv := col
		for r := col + 1; r < nFeatures; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < nFeatures; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < nFeatures; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	coef := make([]float64, nFeatures)
	for r := nFeatures - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < nFeatures; c++ {
			s -= a[r][c] * coef[c]
		}
		coef[r] = s / a[r][r]
	}
	return coef
}

// Calibrate fits one Group per (algo, family) present in the samples and
// returns the assembled Twin. Calibration is deterministic: identical
// samples (in any order) produce a byte-identical serialized fit, which
// is what lets CI re-derive TWIN_FIT.json from the checked-in BENCH
// grids and diff it.
func Calibrate(samples []Sample, sources []string) (*Twin, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("twin: no calibration samples")
	}
	type key struct{ algo, family string }
	byGroup := map[key][]Sample{}
	for _, s := range samples {
		if s.P < 1 || s.T < 1 || s.D < 1 {
			return nil, fmt.Errorf("twin: degenerate sample shape p=%d t=%d d=%d", s.P, s.T, s.D)
		}
		k := key{s.Algo, Family(s.Family)}
		byGroup[k] = append(byGroup[k], s)
	}
	keys := make([]key, 0, len(byGroup))
	for k := range byGroup {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].algo != keys[j].algo {
			return keys[i].algo < keys[j].algo
		}
		return keys[i].family < keys[j].family
	})
	tw := &Twin{Version: FitVersion, Sources: append([]string(nil), sources...)}
	for _, k := range keys {
		ss := byGroup[k]
		// Order-independence: sort the group's samples by shape so the
		// accumulated normal equations see one canonical order.
		sort.Slice(ss, func(i, j int) bool {
			a, b := ss[i], ss[j]
			if a.P != b.P {
				return a.P < b.P
			}
			if a.T != b.T {
				return a.T < b.T
			}
			if a.D != b.D {
				return a.D < b.D
			}
			return effectiveQ(a.Q) < effectiveQ(b.Q)
		})
		rows := make([][]float64, len(ss))
		work := make([]float64, len(ss))
		msgs := make([]float64, len(ss))
		solved := make([]float64, len(ss))
		env := Envelope{
			MinP: ss[0].P, MaxP: ss[0].P,
			MinT: ss[0].T, MaxT: ss[0].T,
			MinD: ss[0].D, MaxD: ss[0].D,
			MinQ: effectiveQ(ss[0].Q), MaxQ: effectiveQ(ss[0].Q),
		}
		for i, s := range ss {
			rows[i] = features(s.P, s.T, s.D, s.Q)
			work[i] = math.Log1p(math.Max(0, s.Work))
			msgs[i] = math.Log1p(math.Max(0, s.Messages))
			solved[i] = math.Log1p(math.Max(0, s.SolvedAt))
			env.MinP = min(env.MinP, s.P)
			env.MaxP = max(env.MaxP, s.P)
			env.MinT = min(env.MinT, s.T)
			env.MaxT = max(env.MaxT, s.T)
			env.MinD = min(env.MinD, s.D)
			env.MaxD = max(env.MaxD, s.D)
			env.MinQ = min(env.MinQ, effectiveQ(s.Q))
			env.MaxQ = max(env.MaxQ, effectiveQ(s.Q))
		}
		tw.Groups = append(tw.Groups, Group{
			Algo:     k.algo,
			Family:   k.family,
			Envelope: env,
			Work:     fitModel(rows, work),
			Messages: fitModel(rows, msgs),
			SolvedAt: fitModel(rows, solved),
		})
	}
	return tw, nil
}

// Group returns the fitted group for an (algorithm, adversary) pair, or
// nil when the twin was not calibrated for it.
func (tw *Twin) Group(algo, adversary string) *Group {
	fam := Family(adversary)
	for i := range tw.Groups {
		if tw.Groups[i].Algo == algo && tw.Groups[i].Family == fam {
			return &tw.Groups[i]
		}
	}
	return nil
}

// Predict evaluates the twin at one shape. It errors only when the twin
// has no model for the query's (algorithm, adversary-family); coverage
// problems are reported in-band via InEnvelope and BandRatio, so the
// serving layer owns the fallback decision.
func (tw *Twin) Predict(q Query) (Prediction, error) {
	if q.P < 1 || q.T < 1 || q.D < 1 {
		return Prediction{}, fmt.Errorf("twin: degenerate query shape p=%d t=%d d=%d", q.P, q.T, q.D)
	}
	g := tw.Group(q.Algo, q.Adversary)
	if g == nil {
		return Prediction{}, fmt.Errorf("twin: no model for algorithm %q under adversary family %q", q.Algo, Family(q.Adversary))
	}
	row := features(q.P, q.T, q.D, q.Q)
	pred := Prediction{
		Algo:       g.Algo,
		Family:     g.Family,
		InEnvelope: g.Envelope.Contains(q.P, q.T, q.D, q.Q),
	}
	eval := func(m Model, val, lo, hi *float64) {
		y := dot(m.Coef, row)
		*val = math.Max(0, math.Expm1(y))
		*lo = math.Max(0, math.Expm1(y-m.Band))
		*hi = math.Max(0, math.Expm1(y+m.Band))
		if ratio := math.Exp(2 * m.Band); ratio > pred.BandRatio {
			pred.BandRatio = ratio
		}
	}
	eval(g.Work, &pred.Work, &pred.WorkLo, &pred.WorkHi)
	eval(g.Messages, &pred.Messages, &pred.MessagesLo, &pred.MessagesHi)
	eval(g.SolvedAt, &pred.SolvedAt, &pred.SolvedAtLo, &pred.SolvedAtHi)
	return pred, nil
}
