package scenario

// Per-worker memory pre-estimation for sweeps. A large-shape grid cell
// (p = 4096, t = 262144) allocates machine sets, engine arrays, and
// in-flight snapshot chains per worker; launching a multi-hour sweep that
// OOMs halfway through is the worst possible failure mode, so
// cmd/experiments -maxmem asks for an estimate up front and refuses to
// start when the budget cannot hold the largest shape. The estimate is a
// deliberate over-approximation (worst-case pools, every processor's
// snapshots in flight) of steady-state heap, not an accounting of every
// byte: transient construction garbage can exceed it briefly, and the Go
// runtime roughly doubles live heap under the default GOGC.

// EstimateCellBytes returns a rough upper estimate of the steady-state
// heap one worker needs to simulate the scenario's shape: machine state
// (permutations, versioned sets with stamps, progress trees), the
// engine's per-processor and per-task arrays, the timing wheel, and the
// worst-case pool of in-flight snapshot chains and multicast records.
func EstimateCellBytes(sc Scenario) int64 {
	sc = sc.WithDefaults()
	p, t, d := int64(sc.P), int64(sc.T), sc.D
	if p < 1 || t < 1 {
		return 0
	}
	jobs := p
	if t < p {
		jobs = t
	}
	jobWords := (jobs + 63) / 64
	// DA's progress tree has at most q·jobs/(q-1) + 1 ≤ 2·jobs + 1 nodes.
	treeWords := (2*jobs + 64) / 64

	// Schedule-permutation backing, the PA-family's dominant term: PaRan1
	// and PaDet materialize one int per (processor, job) into a single
	// shared backing array — p·jobs·8 bytes, 32 GiB at p = 65536 — while
	// PaRan2 draws its permutation lazily from a seeded selector and the
	// non-permutation algorithms (DA's digit/stack walk, AllToAll's and
	// ObliDo's flat scans) carry only polylog or per-word state already
	// covered below. Charging the backing to every algorithm would veto
	// affordable DA sweeps at large p; unknown algorithm strings keep the
	// conservative charge.
	perm := p * jobs * 8
	switch sc.Algorithm {
	case AlgoDA, AlgoAllToAll, AlgoObliDo, AlgoPaRan2:
		perm = 0
	}

	// Per-machine state, taking the larger of the PA and DA layouts: the
	// versioned set (bits + stamps, an epoch base, and up to two epochs'
	// worth of delta segments at the rebase threshold) and struct
	// overhead.
	words := jobWords
	if treeWords > words {
		words = treeWords
	}
	perMachine := words*8*2 + // set + stamps
		words*8*3 + // pooled epoch bases (current + retiring)
		words*8*4 + // delta segments up to ~2 rebase thresholds
		512 // structs, stack, scratch, digit/stack arrays

	// Engine state: per-task result arrays (FirstDoneAt int64 + ledger
	// bits), per-processor arrays (inboxes, cursors, work counters, delay
	// scratch), wheel buckets, and in-flight multicast/batch records
	// (bounded by one broadcast per processor per delay window).
	wheelBuckets := d + 1
	if wheelBuckets > 1<<15 {
		wheelBuckets = 1 << 15
	}
	inflight := p * 4 // multicast records + batch slots, worst case
	engine := t*9 +   // FirstDoneAt + task ledger
		p*(24*8+64) + // inbox headers + slack, cursors, counters
		wheelBuckets*24 +
		inflight*96

	return perm + p*perMachine + engine
}

// EstimateSweepBytes returns a rough upper estimate of the sweep's peak
// steady-state heap: the per-worker estimate of the grid's largest shape
// times the number of workers that run concurrently.
func EstimateSweepBytes(c SweepConfig) int64 {
	c = c.withDefaults()
	specs := c.Specs()
	var worst int64
	for _, sc := range specs {
		if b := EstimateCellBytes(sc); b > worst {
			worst = b
		}
	}
	workers := int64(c.Workers)
	if n := int64(len(specs)); workers > n {
		workers = n
	}
	return worst * workers
}
