package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveReceiver mirrors a Merger-driven receiver with the semantics the
// versioned plane must preserve: every delivered snapshot means the
// sender's full set, merged by a plain full-width union.
type naiveReceiver struct {
	set     *Set
	scratch *Set
}

func (r *naiveReceiver) merge(s *Snapshot) int {
	s.Materialize(r.scratch)
	return r.set.UnionWith(r.scratch)
}

// TestQuickVersionedMergeEqualsNaiveUnion is the knowledge-plane
// soundness property: for random mutation/snapshot schedules delivered
// with reordering, drops, and the version gaps those induce (plus forced
// rebases), merging through the versioned Merger leaves the receiver
// set-equal to the naive full-bitset union after EVERY delivery — and
// with the same newly-added-bit count, which PA's remain accounting
// depends on.
func TestQuickVersionedMergeEqualsNaiveUnion(t *testing.T) {
	f := func(seed int64, sendersRaw, bitsRaw, roundsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nSenders := 1 + int(sendersRaw%4)
		n := 1 + int(bitsRaw)%200 // spans 1..200 bits: 1–4 words, tail masks
		rounds := 20 + int(roundsRaw)%100

		senders := make([]*Versioned, nSenders)
		for i := range senders {
			senders[i] = NewVersioned(n)
		}
		recv := NewVersioned(n)
		mg := NewMerger(nSenders)
		naive := naiveReceiver{set: New(n), scratch: New(n)}

		type pending struct {
			from int
			s    *Snapshot
		}
		var queue []pending

		for r := 0; r < rounds; r++ {
			// A random sender learns a few random bits and snapshots.
			from := rng.Intn(nSenders)
			for k := rng.Intn(4); k >= 0; k-- {
				senders[from].Set(rng.Intn(n))
			}
			queue = append(queue, pending{from, senders[from].Snapshot()})

			// Deliver a random queued snapshot (not necessarily the
			// oldest: reordering) or drop one (gaps), sometimes both.
			for pass := 0; pass < 2 && len(queue) > 0; pass++ {
				i := rng.Intn(len(queue))
				d := queue[i]
				queue = append(queue[:i], queue[i+1:]...)
				if pass == 1 || rng.Intn(4) == 0 {
					// Dropped: the receiver never sees this version.
					senders[d.from].Recycle(d.s)
					continue
				}
				got := mg.Merge(recv, d.from, d.s)
				want := naive.merge(d.s)
				senders[d.from].Recycle(d.s)
				if got != want || !recv.Bits().Equal(naive.set) {
					t.Logf("seed=%d round=%d from=%d: added %d want %d\nversioned %v\nnaive     %v",
						seed, r, d.from, got, want, recv.Bits(), naive.set)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStaleCursorIsSafe pins the invariant the batched path relies
// on: a receiver whose Merger cursor is arbitrarily stale (here: a fresh
// Merger per delivery, so every cursor is 0) still converges to the naive
// union — staleness costs redundant merging, never a missed word.
func TestQuickStaleCursorIsSafe(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(bitsRaw)%150
		sender := NewVersioned(n)
		recv := NewVersioned(n)
		naive := naiveReceiver{set: New(n), scratch: New(n)}
		for r := 0; r < 40; r++ {
			for k := rng.Intn(3); k >= 0; k-- {
				sender.Set(rng.Intn(n))
			}
			s := sender.Snapshot()
			if rng.Intn(3) != 0 {
				stale := NewMerger(1) // cursor 0: worst-case staleness
				stale.Merge(recv, 0, s)
				naive.merge(s)
				if !recv.Bits().Equal(naive.set) {
					return false
				}
			}
			sender.Recycle(s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVersionedSnapshotImmutable pins snapshot immutability: a snapshot
// taken, then followed by further mutations and snapshots of the owner,
// still materializes exactly the owner's contents at its version.
func TestVersionedSnapshotImmutable(t *testing.T) {
	v := NewVersioned(130)
	v.Set(1)
	v.Set(64)
	s1 := v.Snapshot()
	want1 := v.Bits().Clone()

	v.Set(2)
	v.Set(129)
	s2 := v.Snapshot()
	want2 := v.Bits().Clone()
	for i := 0; i < 60; i++ { // force rebases past the threshold
		v.Set(i)
		v.Snapshot()
	}

	got := New(130)
	s1.Materialize(got)
	if !got.Equal(want1) {
		t.Fatalf("s1 materialized %v, want %v", got, want1)
	}
	s2.Materialize(got)
	if !got.Equal(want2) {
		t.Fatalf("s2 materialized %v, want %v", got, want2)
	}
}

// TestVersionedRecyclePoolsBuffers pins the allocation loop: snapshots
// recycled after a rebase retire their epoch, and the pooled buffers are
// reused by later epochs (outstanding count returns to the live set).
func TestVersionedRecyclePoolsBuffers(t *testing.T) {
	v := NewVersioned(64)
	var snaps []*Snapshot
	for i := 0; i < 200; i++ {
		v.Set(i % 64)
		snaps = append(snaps, v.Snapshot())
	}
	if got := v.OutstandingSnapshots(); got != 200 {
		t.Fatalf("outstanding = %d, want 200", got)
	}
	for _, s := range snaps {
		v.Recycle(s)
	}
	if got := v.OutstandingSnapshots(); got != 0 {
		t.Fatalf("outstanding after recycle = %d, want 0", got)
	}
	if len(v.old) != 0 {
		t.Fatalf("retired epochs not reclaimed: %d", len(v.old))
	}
	if len(v.freeSets) == 0 || len(v.freeSegs) == 0 || len(v.freeSnaps) == 0 {
		t.Fatalf("pools empty after recycling: sets=%d segs=%d snaps=%d",
			len(v.freeSets), len(v.freeSegs), len(v.freeSnaps))
	}
}

// TestVersionedResetRestartsVersioning pins Reset: version 0, empty set,
// and snapshots from the fresh run merge correctly into fresh receivers.
func TestVersionedResetRestartsVersioning(t *testing.T) {
	v := NewVersioned(70)
	v.Set(3)
	s := v.Snapshot()
	v.Recycle(s)
	v.Reset()
	if v.Ver() != 0 || v.Count() != 0 {
		t.Fatalf("after Reset: ver=%d count=%d", v.Ver(), v.Count())
	}
	v.Set(65)
	s = v.Snapshot()
	if s.Ver() != 1 {
		t.Fatalf("first post-reset snapshot ver = %d, want 1", s.Ver())
	}
	recv, mg := NewVersioned(70), NewMerger(1)
	if added := mg.Merge(recv, 0, s); added != 1 || !recv.Get(65) || recv.Get(3) {
		t.Fatalf("post-reset merge: added=%d bits=%v", added, recv.Bits())
	}
}

// TestMergerSkipsStaleVersions pins the O(1) duplicate/stale-delivery
// path: re-merging an older snapshot after a newer one adds nothing.
func TestMergerSkipsStaleVersions(t *testing.T) {
	v := NewVersioned(64)
	v.Set(1)
	s1 := v.Snapshot()
	v.Set(2)
	s2 := v.Snapshot()

	recv, mg := NewVersioned(64), NewMerger(1)
	if added := mg.Merge(recv, 0, s2); added != 2 {
		t.Fatalf("merge v2 added %d, want 2", added)
	}
	if added := mg.Merge(recv, 0, s1); added != 0 {
		t.Fatalf("stale merge added %d, want 0", added)
	}
	if mg.Last(0) != 2 {
		t.Fatalf("cursor = %d, want 2", mg.Last(0))
	}
}

// TestCloneIsIndependent pins Versioned.Clone: the clone's snapshots
// carry the full state (its fresh epoch over-approximates safely) and
// mutating either side does not leak into the other.
func TestCloneIsIndependent(t *testing.T) {
	v := NewVersioned(64)
	v.Set(1)
	v.Snapshot()
	v.Set(2) // pending, not yet snapshot
	c := v.Clone()
	if c.Ver() != v.Ver() {
		t.Fatalf("clone ver %d != %d", c.Ver(), v.Ver())
	}
	v.Set(3)
	c.Set(4)
	if v.Get(4) || c.Get(3) {
		t.Fatal("clone shares storage with original")
	}
	s := c.Snapshot()
	recv, mg := NewVersioned(64), NewMerger(1)
	mg.Merge(recv, 0, s)
	for _, want := range []int{1, 2, 4} {
		if !recv.Get(want) {
			t.Fatalf("clone snapshot lost bit %d: %v", want, recv.Bits())
		}
	}
}
