// Package wire defines the compact message encoding used when the
// algorithms' knowledge payloads are sent over a real transport, and the
// byte-size accounting the simulator reports. The paper measures message
// complexity in message *count* (Definition 2.2); wire sizes are an
// engineering extra that lets experiments also report bytes on the wire.
//
// A payload is a monotone bit vector (a progress-tree snapshot or a
// done-job set). The encoding is a varint header (version, kind, length)
// followed by the bit words, with an RLE fast path for the common
// mostly-zero/mostly-one cases.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"doall/internal/bitset"
)

// Kind tags what a payload describes.
type Kind uint8

// Payload kinds.
const (
	// KindTree is a DA progress-tree snapshot (bits = tree nodes).
	KindTree Kind = 1
	// KindDoneSet is a PA done-job set (bits = jobs).
	KindDoneSet Kind = 2
)

const version = 1

// Encoding selects the body layout.
type encoding uint8

const (
	encRaw encoding = 0 // words verbatim
	encRLE encoding = 1 // run-length encoded words
)

// ErrCorrupt is returned for malformed messages.
var ErrCorrupt = errors.New("wire: corrupt message")

// Encode serializes a bit set with its kind, choosing the smaller of the
// raw and RLE encodings.
func Encode(kind Kind, s *bitset.Set) []byte {
	raw := encodeBody(encRaw, s)
	rle := encodeBody(encRLE, s)
	body := raw
	enc := encRaw
	if len(rle) < len(raw) {
		body, enc = rle, encRLE
	}

	header := make([]byte, 0, 16)
	header = append(header, version, byte(kind), byte(enc))
	header = binary.AppendUvarint(header, uint64(s.Len()))
	return append(header, body...)
}

func encodeBody(enc encoding, s *bitset.Set) []byte {
	words := s.Words()
	switch enc {
	case encRaw:
		out := make([]byte, 0, 8*len(words))
		for _, w := range words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
		return out
	case encRLE:
		// Runs of identical words: (count varint, word).
		var out []byte
		for i := 0; i < len(words); {
			j := i
			for j < len(words) && words[j] == words[i] {
				j++
			}
			out = binary.AppendUvarint(out, uint64(j-i))
			out = binary.LittleEndian.AppendUint64(out, words[i])
			i = j
		}
		return out
	default:
		panic("wire: unknown encoding")
	}
}

// Decode parses a message produced by Encode.
func Decode(msg []byte) (Kind, *bitset.Set, error) {
	if len(msg) < 4 {
		return 0, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if msg[0] != version {
		return 0, nil, fmt.Errorf("%w: version %d", ErrCorrupt, msg[0])
	}
	kind := Kind(msg[1])
	if kind != KindTree && kind != KindDoneSet {
		return 0, nil, fmt.Errorf("%w: kind %d", ErrCorrupt, msg[1])
	}
	enc := encoding(msg[2])
	rest := msg[3:]
	n64, consumed := binary.Uvarint(rest)
	if consumed <= 0 || n64 > 1<<40 {
		return 0, nil, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	n := int(n64)
	rest = rest[consumed:]

	nWords := (n + 63) / 64
	words := make([]uint64, 0, nWords)
	switch enc {
	case encRaw:
		if len(rest) != 8*nWords {
			return 0, nil, fmt.Errorf("%w: raw body %d bytes, want %d", ErrCorrupt, len(rest), 8*nWords)
		}
		for i := 0; i < nWords; i++ {
			words = append(words, binary.LittleEndian.Uint64(rest[8*i:]))
		}
	case encRLE:
		for len(rest) > 0 {
			count, c := binary.Uvarint(rest)
			if c <= 0 || count == 0 || count > uint64(nWords) {
				return 0, nil, fmt.Errorf("%w: bad run length", ErrCorrupt)
			}
			rest = rest[c:]
			if len(rest) < 8 {
				return 0, nil, fmt.Errorf("%w: truncated run word", ErrCorrupt)
			}
			w := binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			for k := uint64(0); k < count; k++ {
				words = append(words, w)
			}
			if len(words) > nWords {
				return 0, nil, fmt.Errorf("%w: run overflow", ErrCorrupt)
			}
		}
		if len(words) != nWords {
			return 0, nil, fmt.Errorf("%w: rle body decoded %d words, want %d", ErrCorrupt, len(words), nWords)
		}
	default:
		return 0, nil, fmt.Errorf("%w: encoding %d", ErrCorrupt, enc)
	}

	s := bitset.New(n)
	if nWords > 0 {
		s.SetWords(words)
	}
	return kind, s, nil
}

// Size returns the encoded size in bytes of a payload without allocating
// anything (used by the simulator's byte accounting, which queries it
// once per multicast on the hot path). It computes len(Encode(kind, s))
// arithmetically: header bytes plus the smaller of the raw and RLE body
// sizes; the equality is asserted by tests.
func Size(kind Kind, s *bitset.Set) int {
	words := s.Words()
	raw := 8 * len(words)
	rle := 0
	for i := 0; i < len(words); {
		j := i
		for j < len(words) && words[j] == words[i] {
			j++
		}
		rle += uvarintLen(uint64(j-i)) + 8
		i = j
	}
	body := raw
	if rle < raw {
		body = rle
	}
	return 3 + uvarintLen(uint64(s.Len())) + body
}

// uvarintLen returns the number of bytes binary.AppendUvarint emits for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
