// Command doalld is the Do-All service daemon: a long-running process
// that accepts scenario and sweep jobs over a local HTTP JSON API, runs
// them cell by cell on a shared fleet of reusable simulation engines,
// streams per-cell results as they complete, and checkpoints progress to
// a write-ahead log so jobs survive restarts. cmd/doallctl is the
// matching client.
//
// Usage:
//
//	doalld                                   # listen on 127.0.0.1:7117
//	doalld -listen 127.0.0.1:0               # ephemeral port (printed)
//	doalld -checkpoint doalld.wal            # persist and resume jobs
//	doalld -workers 8 -queue 128 -maxmem 4g  # fleet, queue, admission
//	doalld -timeout 10m                      # default per-job budget
//	doalld -twin TWIN_FIT.json               # serve analytical predictions
//	doalld -version
//
// API: POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/results (live NDJSON), DELETE /v1/jobs/{id},
// POST /v1/predict, POST /v1/drain, GET /healthz, GET /metrics,
// GET /v1/version.
//
// SIGINT/SIGTERM shut down gracefully: admission stops, in-flight cells
// finish and are checkpointed, result streams end with an interrupted
// trailer, and queued work resumes on the next start with the same
// -checkpoint path. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"doall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, stop, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "doalld:", err)
		os.Exit(1)
	}
}

// run is the daemon body with injectable context and streams, so tests
// can drive a full serve/shutdown cycle in-process. secondSignal restores
// default signal handling so a second ^C kills the process immediately.
func run(ctx context.Context, secondSignal context.CancelFunc, args []string, w, errw io.Writer) error {
	var (
		listen     string
		workers    int
		queue      int
		maxcells   int
		checkpoint string
		fsync      bool
		maxmem     string
		timeout    time.Duration
		shards     string
		twinPath   string
		twinBand   float64
		version    bool
	)
	fs := flag.NewFlagSet("doalld", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&listen, "listen", "127.0.0.1:7117", "address to serve the API on (host:0 picks an ephemeral port)")
	fs.IntVar(&workers, "workers", 0, "engine fleet size: cells simulated concurrently (0 = GOMAXPROCS)")
	fs.IntVar(&queue, "queue", 64, "max jobs admitted but not yet finished")
	fs.IntVar(&maxcells, "maxcells", 0, "max cells in one job's grid (0 = default 1048576)")
	fs.StringVar(&checkpoint, "checkpoint", "", "write-ahead checkpoint log path; jobs resume from it on restart (empty = no persistence)")
	fs.BoolVar(&fsync, "fsync", false, "fsync the checkpoint log per record (survives machine crashes, not just process deaths)")
	fs.StringVar(&maxmem, "maxmem", "", "reject sweep jobs whose estimated memory exceeds this budget (e.g. 4g, 512m)")
	fs.DurationVar(&timeout, "timeout", 0, "default wall-clock budget per job (0 = unlimited; jobs may declare their own)")
	fs.StringVar(&shards, "shards", "1", "default intra-run parallel shards per cell — a count, or 'auto'; jobs may declare their own (results are identical at any value)")
	fs.StringVar(&twinPath, "twin", "", "calibrated analytical-twin fit (TWIN_FIT.json); POST /v1/predict answers in-envelope queries from it without simulating")
	fs.Float64Var(&twinBand, "twin-band", 0, "widest confidence-band hi/lo ratio served analytically; wider predictions fall back to simulation (0 = default 8)")
	fs.BoolVar(&version, "version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if version {
		fmt.Fprintln(w, "doalld", doall.Version())
		return nil
	}

	cfg := doall.ServiceConfig{
		Workers:        workers,
		QueueLimit:     queue,
		MaxCells:       maxcells,
		Checkpoint:     checkpoint,
		Fsync:          fsync,
		DefaultTimeout: timeout,
	}
	if twinPath != "" {
		data, err := os.ReadFile(twinPath)
		if err != nil {
			return fmt.Errorf("-twin: %w", err)
		}
		tw, err := doall.LoadTwin(data)
		if err != nil {
			return fmt.Errorf("-twin %s: %w", twinPath, err)
		}
		cfg.Twin = tw
		cfg.TwinMaxBandRatio = twinBand
	}
	switch shards {
	case "", "1":
		cfg.Shards = 1
	case "auto":
		cfg.Shards = doall.ShardsAuto
	default:
		n, err := strconv.Atoi(shards)
		if err != nil || n < 1 {
			return fmt.Errorf("-shards wants a count ≥ 1 or 'auto', got %q", shards)
		}
		cfg.Shards = n
	}
	if maxmem != "" {
		budget, err := parseBytes(maxmem)
		if err != nil {
			return fmt.Errorf("-maxmem: %w", err)
		}
		cfg.MaxMem = budget
	}

	svc, err := doall.NewService(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		svc.Close()
		return err
	}
	// The addr line is machine-readable on purpose: with -listen host:0,
	// scripts (and the CI smoke test) scrape the assigned port from it.
	fmt.Fprintf(w, "doalld %s listening on %s\n", doall.Version(), ln.Addr())
	if checkpoint != "" {
		if n := svc.ActiveJobs(); n > 0 {
			fmt.Fprintf(w, "doalld: resumed %d unfinished job(s) from %s\n", n, checkpoint)
		}
	}
	if cfg.Twin != nil {
		fmt.Fprintf(w, "doalld: analytical twin loaded from %s (%d model groups)\n", twinPath, len(cfg.Twin.Groups))
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: a second signal now kills the process the
	// default way; meanwhile admission stops, in-flight cells finish and
	// checkpoint, then the HTTP server drains.
	if secondSignal != nil {
		secondSignal()
	}
	fmt.Fprintln(w, "doalld: shutting down — finishing in-flight cells (signal again to kill)")
	svc.Drain()
	closeErr := svc.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	fmt.Fprintln(w, "doalld: checkpointed and stopped")
	return closeErr
}

// parseBytes parses a byte budget: a plain integer, or with a k/m/g/t
// suffix (binary units, case-insensitive, optional trailing 'b'/'ib').
func parseBytes(s string) (int64, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.TrimSuffix(s, "ib")
	s = strings.TrimSuffix(s, "b")
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1<<40, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad byte budget %q (want e.g. 4g, 512m, 1073741824)", orig)
	}
	return v * mult, nil
}
