// Gridcompute: a SETI-like distributed search on the goroutine runtime.
//
// A batch of signal chunks must each be scanned for a synthetic "pulse";
// worker processors cooperate via PaRan2 (random next-task selection) so
// that the batch completes even though half of the workers crash midway.
// Tasks are idempotent — rescanning a chunk gives the same answer — which
// is exactly the paper's task model.
//
// The whole setup is one Scenario with Backend "runtime": the same spec
// that drives the simulator runs on real goroutines, with the task body
// and crash schedule supplied as (non-serializable) run options.
//
//	go run ./examples/gridcompute
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"doall"
)

const (
	workers = 6
	chunks  = 48
)

// scanChunk is the task body: a toy DSP pass that "detects" a pulse in
// chunks whose index satisfies a property. Deterministic and idempotent.
func scanChunk(id int) bool {
	x := 0.0
	for i := 0; i < 200; i++ {
		x += math.Sin(float64(id*31+i) * 0.1)
	}
	return math.Mod(math.Abs(x), 1) > 0.5
}

func main() {
	var (
		mu     sync.Mutex
		pulses []int
		scans  int
	)

	sc := doall.Scenario{
		Algorithm: "PaRan2",
		Backend:   doall.BackendRuntime,
		P:         workers,
		T:         chunks,
		D:         3,
		Seed:      99,
	}

	res, err := doall.RunScenarioWith(sc, doall.ScenarioOptions{
		Unit: 100 * time.Microsecond,
		Task: func(id int) {
			hit := scanChunk(id)
			mu.Lock()
			scans++
			if hit {
				pulses = append(pulses, id)
			}
			mu.Unlock()
		},
		// Half the grid disappears early — the survivors finish the batch.
		CrashAfter: map[int]int{1: 10, 3: 15, 5: 20},
		Timeout:    30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Runtime

	mu.Lock()
	defer mu.Unlock()
	seen := map[int]bool{}
	var unique []int
	for _, id := range pulses {
		if !seen[id] {
			seen[id] = true
			unique = append(unique, id)
		}
	}

	fmt.Printf("batch solved: %v in %v\n", rep.Solved, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("workers crashed: %d of %d\n", count(rep.Crashed), workers)
	fmt.Printf("chunk scans: %d (%d chunks; extra scans are the price of asynchrony)\n", scans, chunks)
	fmt.Printf("total local steps: %d, messages: %d\n", rep.Steps, rep.Messages)
	fmt.Printf("pulses detected in %d chunks\n", len(unique))
}

func count(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}
