package core

import (
	"testing"
)

func TestNewJobsShapes(t *testing.T) {
	cases := []struct {
		p, t, n, g int
	}{
		{4, 4, 4, 1},   // p == t: unit jobs
		{8, 4, 4, 1},   // p > t: t unit jobs
		{4, 8, 4, 2},   // p < t: p jobs of 2
		{4, 10, 4, 3},  // ⌈10/4⌉ = 3 → 4 jobs (3,3,3,1)
		{3, 7, 3, 3},   // jobs (3,3,1)
		{5, 7, 4, 2},   // g=⌈7/5⌉=2 → only 4 non-empty jobs
		{1, 5, 1, 5},   // single processor: one job with everything
	}
	for _, c := range cases {
		j := NewJobs(c.p, c.t)
		if j.N != c.n || j.MaxSize() != c.g {
			t.Errorf("NewJobs(%d,%d): N=%d g=%d, want N=%d g=%d", c.p, c.t, j.N, j.MaxSize(), c.n, c.g)
		}
	}
}

func TestJobsCoverExactlyOnce(t *testing.T) {
	for _, pt := range [][2]int{{4, 4}, {3, 10}, {7, 100}, {16, 16}, {5, 23}, {10, 3}} {
		j := NewJobs(pt[0], pt[1])
		seen := make([]int, j.T)
		for job := 0; job < j.N; job++ {
			if j.Size(job) < 1 {
				t.Fatalf("NewJobs(%d,%d): empty job %d", pt[0], pt[1], job)
			}
			for z := j.Start(job); z < j.End(job); z++ {
				seen[z]++
				if j.JobOf(z) != job {
					t.Fatalf("JobOf(%d) = %d, want %d", z, j.JobOf(z), job)
				}
			}
		}
		for z, c := range seen {
			if c != 1 {
				t.Fatalf("NewJobs(%d,%d): task %d covered %d times", pt[0], pt[1], z, c)
			}
		}
	}
}

func TestJobsPanicOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewJobs(0,1) should panic")
		}
	}()
	NewJobs(0, 1)
}
