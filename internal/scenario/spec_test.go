package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSweepSpec(t *testing.T) {
	doc := []byte(`{
		"algos": ["PaRan1", "DA"],
		"p": [4, 8],
		"t": [16],
		"d": [1, 2],
		"adversaries": ["fair", "crashing"],
		"base_seed": 7,
		"trials": 2,
		"theory": true
	}`)
	s, err := ParseSweepSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Cells(), 2*2*2*1*2; got != want {
		t.Fatalf("Cells() = %d, want %d", got, want)
	}
	cfg := s.Config()
	if cfg.BaseSeed != 7 || cfg.Trials != 2 || !cfg.Theory || len(cfg.Adversaries) != 2 {
		t.Fatalf("Config() dropped fields: %+v", cfg)
	}
	if got := len(cfg.Specs()); got != s.Cells() {
		t.Fatalf("Specs() enumerated %d cells, Cells() says %d", got, s.Cells())
	}
}

func TestParseSweepSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweepSpec([]byte(`{"algos":["DA"],"p":[4],"t":[16],"d":[1],"trails":3}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestSweepSpecValidateRejects(t *testing.T) {
	base := SweepSpec{Algos: []string{"DA"}, Ps: []int{4}, Ts: []int{16}, Ds: []int64{1}}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SweepSpec)
		want string
	}{
		{"empty algos", func(s *SweepSpec) { s.Algos = nil }, "algos"},
		{"empty p", func(s *SweepSpec) { s.Ps = nil }, "p axis"},
		{"zero t", func(s *SweepSpec) { s.Ts = []int{0} }, "t=0"},
		{"negative d", func(s *SweepSpec) { s.Ds = []int64{-1} }, "d=-1"},
		{"unknown algo", func(s *SweepSpec) { s.Algos = []string{"NoSuchAlgo"} }, "algorithm"},
		{"unknown adversary", func(s *SweepSpec) { s.Adversary = "confused" }, "adversary"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// stripNs zeroes the wall-clock column so value comparisons see only
// model quantities.
func stripNs(cells []Cell) []Cell {
	out := make([]Cell, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].NsPerRun = 0
	}
	return out
}

// A background-context sweep must be indistinguishable from RunSweep.
func TestRunSweepContextMatchesRunSweep(t *testing.T) {
	cfg := SweepConfig{
		Algos: []string{"PaRan1"}, Ps: []int{4, 8}, Ts: []int{16}, Ds: []int64{1, 2},
		Trials: 2, Workers: 3,
	}
	plain := stripNs(RunSweep(cfg))
	got, err := RunSweepContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got = stripNs(got)
	for i := range plain {
		if plain[i] != got[i] {
			t.Fatalf("cell %d differs:\nRunSweep:        %+v\nRunSweepContext: %+v", i, plain[i], got[i])
		}
	}
}

func TestRunSweepContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any cell runs
	cfg := SweepConfig{
		Algos: []string{"PaRan1"}, Ps: []int{4}, Ts: []int{16}, Ds: []int64{1, 2},
		Workers: 2,
	}
	cells, err := RunSweepContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want the full grid stamped", len(cells))
	}
	specs := cfg.Specs()
	for i, c := range cells {
		if c.Err == "" {
			continue // a cell may legitimately finish before the flag is seen
		}
		if c.Algo != specs[i].Algorithm || c.P != specs[i].P || c.Seed != specs[i].Seed {
			t.Fatalf("unrun cell %d lost its identity columns: %+v", i, c)
		}
		if c.Work != 0 || c.SolvedAt != 0 {
			t.Fatalf("unrun cell %d carries measures: %+v", i, c)
		}
	}
}

func TestNewSweepReportContextPartial(t *testing.T) {
	cfg := SweepConfig{
		Algos: []string{"PaRan1"}, Ps: []int{4}, Ts: []int{16}, Ds: []int64{1},
		Workers: 1,
	}
	rep, err := NewSweepReportContext(context.Background(), cfg)
	if err != nil || rep.Partial {
		t.Fatalf("complete sweep: err=%v partial=%v", err, rep.Partial)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err = NewSweepReportContext(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if !rep.Partial {
		t.Fatal("interrupted report not marked partial")
	}
}

// Cancellation mid-sweep: the completed prefix must be byte-identical to
// the full run's cells (resumability is a sweep-level property, not just
// a service one).
func TestRunSweepContextPartialPrefixMatches(t *testing.T) {
	cfg := SweepConfig{
		Algos: []string{"PaRan1"}, Ps: []int{4, 8}, Ts: []int{16, 32}, Ds: []int64{1, 2},
		Workers: 1,
	}
	full := stripNs(RunSweep(cfg))

	// Cancel after the second completed cell via the Progress hook.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfgC := cfg
	cfgC.Progress = func(done, total int) {
		if done == 2 {
			cancel()
		}
	}
	cells, err := RunSweepContext(ctx, cfgC)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	cells = stripNs(cells)
	ran := 0
	for i, c := range cells {
		if c.Err != "" {
			continue
		}
		ran++
		if c != full[i] {
			t.Fatalf("completed cell %d differs from full run:\nfull:    %+v\npartial: %+v", i, full[i], c)
		}
	}
	if ran < 2 || ran == len(full) {
		t.Fatalf("expected a strict partial prefix, got %d/%d cells", ran, len(full))
	}
}
