package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doall"
)

// newDaemon stands up a real in-process service behind httptest and
// returns its base URL.
func newDaemon(t *testing.T, workers int) string {
	t.Helper()
	svc, err := doall.NewService(doall.ServiceConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return ts.URL
}

func ctl(t *testing.T, addr string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(context.Background(), append([]string{"-addr", addr}, args...), &out, &strings.Builder{})
	return out.String(), err
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), doall.Version()) {
		t.Fatalf("-version printed %q", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := ctl(t, "http://127.0.0.1:1", "transmogrify"); err == nil {
		t.Fatal("unknown command accepted")
	}
	var errw strings.Builder
	if err := run(context.Background(), nil, &strings.Builder{}, &errw); err == nil {
		t.Fatal("no command accepted")
	} else if !strings.Contains(errw.String(), "usage:") {
		t.Fatalf("no usage printed: %q", errw.String())
	}
}

func TestSubmitWaitStatusResultsList(t *testing.T) {
	addr := newDaemon(t, 2)
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "job.json")
	doc := `{"sweep":{"algos":["PaRan1"],"p":[4,8],"t":[16],"d":[1,2]},"timeout":"5m"}`
	if err := os.WriteFile(jobFile, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := ctl(t, addr, "submit", "-f", jobFile, "-wait")
	if err != nil {
		t.Fatal(err)
	}
	var st doall.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit -wait printed %q: %v", out, err)
	}
	if st.State != doall.JobDone || st.CellsDone != 4 {
		t.Fatalf("job after -wait: %+v", st)
	}

	out, err = ctl(t, addr, "status", st.ID)
	if err != nil || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("status: %q, %v", out, err)
	}

	resFile := filepath.Join(dir, "cells.ndjson")
	if _, err := ctl(t, addr, "results", st.ID, "-o", resFile); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(resFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // 4 cells + trailer
		t.Fatalf("results wrote %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[4], `"done":true`) {
		t.Fatalf("last line is not a done trailer: %s", lines[4])
	}

	out, err = ctl(t, addr, "list")
	if err != nil || !strings.Contains(out, st.ID) {
		t.Fatalf("list: %q, %v", out, err)
	}
}

func TestCancelAndDrain(t *testing.T) {
	addr := newDaemon(t, -1) // no fleet: jobs stay queued
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(jobFile, []byte(`{"algos":["DA"],"p":[4],"t":[16],"d":[1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, addr, "submit", "-f", jobFile, "-priority", "7")
	if err != nil {
		t.Fatal(err)
	}
	var st doall.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatal(err)
	}
	if st.Priority != 7 {
		t.Fatalf("-priority override lost: %+v", st)
	}

	out, err = ctl(t, addr, "cancel", st.ID)
	if err != nil || !strings.Contains(out, `"state": "canceled"`) {
		t.Fatalf("cancel: %q, %v", out, err)
	}

	if _, err := ctl(t, addr, "drain"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl(t, addr, "submit", "-f", jobFile); err == nil {
		t.Fatal("submit after drain succeeded")
	}

	// version against a live daemon reports both sides.
	out, err = ctl(t, addr, "version")
	if err != nil || !strings.Contains(out, "client:") || !strings.Contains(out, "daemon:") {
		t.Fatalf("version: %q, %v", out, err)
	}
}

func TestSubmitRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nonsense":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Malformed documents fail client-side — no daemon needed.
	if _, err := ctl(t, "http://127.0.0.1:1", "submit", "-f", bad); err == nil {
		t.Fatal("malformed job accepted")
	}
	if _, err := ctl(t, "http://127.0.0.1:1", "submit"); err == nil {
		t.Fatal("submit without -f accepted")
	}
}
