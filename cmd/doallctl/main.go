// Command doallctl is the thin client of the Do-All service daemon
// (cmd/doalld). It holds no state: every subcommand is one or two HTTP
// calls against the daemon's JSON API.
//
// Usage:
//
//	doallctl [-addr http://127.0.0.1:7117] <command> [flags]
//
//	doallctl submit -f job.json            # submit a job document
//	doallctl submit -f sweep.json -wait    # ...and follow it to completion
//	echo '{"algorithm":"DA",...}' | doallctl submit -f -
//	doallctl status j000001                # one job's progress
//	doallctl results j000001               # stream cells as NDJSON (live)
//	doallctl results j000001 -o cells.ndjson
//	doallctl cancel j000001
//	doallctl list                          # all jobs, submission order
//	doallctl predict -algo DA -p 1024 -t 65536 -d 8
//	doallctl drain                         # stop the daemon's admission
//	doallctl version                       # client and daemon versions
//
// The daemon address comes from -addr or $DOALLD_ADDR. A submitted job
// document is either {"scenario": {...}} / {"sweep": {...}} with
// optional "priority" and "timeout" ("30s"), a bare scenario document,
// or a bare sweep spec — the same JSON forms the rest of the toolchain
// reads and writes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"doall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "doallctl:", err)
		os.Exit(1)
	}
}

func usage(errw io.Writer) {
	fmt.Fprintln(errw, `usage: doallctl [-addr URL] <command> [flags]

commands:
  submit   submit a job document (-f file, "-" for stdin; -priority, -timeout, -wait)
  status   show one job: doallctl status <id>
  results  stream a job's cells as NDJSON: doallctl results <id> [-o file]
  cancel   cancel a job: doallctl cancel <id>
  list     list all jobs
  predict  ask the daemon's analytical twin for a cost prediction:
           doallctl predict -algo DA [-adv fair] -p 1024 -t 65536 [-d 8] [-q 2]
  drain    stop the daemon's admission (running jobs finish)
  version  print client and daemon versions

The daemon address defaults to $DOALLD_ADDR, then http://127.0.0.1:7117.`)
}

func run(ctx context.Context, args []string, w, errw io.Writer) error {
	defaultAddr := os.Getenv("DOALLD_ADDR")
	if defaultAddr == "" {
		defaultAddr = "http://127.0.0.1:7117"
	}
	var (
		addr    string
		version bool
	)
	fs := flag.NewFlagSet("doallctl", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.Usage = func() { usage(errw) }
	fs.StringVar(&addr, "addr", defaultAddr, "daemon base URL")
	fs.BoolVar(&version, "version", false, "print the client build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if version {
		fmt.Fprintln(w, "doallctl", doall.Version())
		return nil
	}
	if fs.NArg() == 0 {
		usage(errw)
		return fmt.Errorf("no command")
	}
	c := &doall.ServiceClient{Base: addr}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(ctx, c, rest, w, errw)
	case "status":
		return cmdStatus(ctx, c, rest, w, errw)
	case "results":
		return cmdResults(ctx, c, rest, w, errw)
	case "cancel":
		return cmdCancel(ctx, c, rest, w, errw)
	case "list":
		return cmdList(ctx, c, w)
	case "predict":
		return cmdPredict(ctx, c, rest, w, errw)
	case "drain":
		n, err := c.Drain(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "draining; %d job(s) still open\n", n)
		return nil
	case "version":
		fmt.Fprintln(w, "client:", doall.Version())
		v, err := c.Version(ctx)
		if err != nil {
			return fmt.Errorf("daemon unreachable at %s: %w", addr, err)
		}
		fmt.Fprintln(w, "daemon:", v)
		return nil
	default:
		usage(errw)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdSubmit(ctx context.Context, c *doall.ServiceClient, args []string, w, errw io.Writer) error {
	var (
		file     string
		priority int
		timeout  time.Duration
		wait     bool
	)
	fs := flag.NewFlagSet("doallctl submit", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&file, "f", "", `job document file ("-" = stdin)`)
	fs.IntVar(&priority, "priority", 0, "queue priority (higher runs first; overrides the document)")
	fs.DurationVar(&timeout, "timeout", 0, "wall-clock budget for the job (overrides the document)")
	fs.BoolVar(&wait, "wait", false, "block until the job is terminal and exit non-zero if it failed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if file == "" {
		return fmt.Errorf("submit: -f required (a job document, or \"-\" for stdin)")
	}
	var (
		doc []byte
		err error
	)
	if file == "-" {
		doc, err = io.ReadAll(os.Stdin)
	} else {
		doc, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	// Re-parse locally so flag overrides compose with any form of
	// document, and malformed jobs fail client-side with the same error
	// the daemon would give.
	job, err := doall.ParseJob(doc)
	if err != nil {
		return err
	}
	if priority != 0 {
		job.Priority = priority
	}
	if timeout != 0 {
		job.Timeout = doall.JobDuration(timeout)
	}
	st, err := c.Submit(ctx, job)
	if err != nil {
		return err
	}
	if !wait {
		return printJSON(w, st)
	}
	fmt.Fprintf(errw, "submitted %s (%d cells); waiting\n", st.ID, st.CellsTotal)
	st, err = c.WaitDone(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		return err
	}
	if err := printJSON(w, st); err != nil {
		return err
	}
	if st.State != doall.JobDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Err)
	}
	return nil
}

func cmdStatus(ctx context.Context, c *doall.ServiceClient, args []string, w, errw io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("status: want exactly one job id")
	}
	st, err := c.Status(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(w, st)
}

func cmdResults(ctx context.Context, c *doall.ServiceClient, args []string, w, errw io.Writer) error {
	// Accept "results <id> -o file" as well as "results -o file <id>".
	id := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	var out string
	fs := flag.NewFlagSet("doallctl results", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&out, "o", "", "write the NDJSON stream to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case id == "" && fs.NArg() == 1:
		id = fs.Arg(0)
	case id != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("results: want exactly one job id")
	}
	dst := w
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	tr, err := c.Results(ctx, id, func(rc doall.ResultCell) error {
		return enc.Encode(rc)
	})
	if err != nil {
		return err
	}
	if err := enc.Encode(tr); err != nil {
		return err
	}
	if tr.Interrupted {
		return fmt.Errorf("stream interrupted (daemon shutting down); re-run after restart to resume")
	}
	return nil
}

func cmdPredict(ctx context.Context, c *doall.ServiceClient, args []string, w, errw io.Writer) error {
	var q doall.TwinQuery
	var p, t int
	var d int64
	fs := flag.NewFlagSet("doallctl predict", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&q.Algo, "algo", "", "algorithm name (e.g. DA, PaRan1)")
	fs.StringVar(&q.Adversary, "adv", "", "adversary expression or family (default fair)")
	fs.IntVar(&p, "p", 0, "processors")
	fs.IntVar(&t, "t", 0, "tasks")
	fs.Int64Var(&d, "d", 1, "message-delay bound")
	fs.IntVar(&q.Q, "q", 0, "DA progress-tree arity (0 = default binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("predict: unexpected argument %q", fs.Arg(0))
	}
	if q.Algo == "" || p < 1 || t < 1 {
		return fmt.Errorf("predict: -algo, -p, and -t are required")
	}
	q.P, q.T, q.D = p, t, d
	res, err := c.Predict(ctx, q)
	if err != nil {
		return err
	}
	return printJSON(w, res)
}

func cmdCancel(ctx context.Context, c *doall.ServiceClient, args []string, w, errw io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel: want exactly one job id")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(w, st)
}

func cmdList(ctx context.Context, c *doall.ServiceClient, w io.Writer) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return nil
	}
	fmt.Fprintf(w, "%-10s %-9s %-9s %5s  %11s  %s\n", "ID", "KIND", "STATE", "PRIO", "CELLS", "ERR")
	for _, j := range jobs {
		fmt.Fprintf(w, "%-10s %-9s %-9s %5d  %5d/%5d  %s\n",
			j.ID, j.Kind, j.State, j.Priority, j.CellsDone, j.CellsTotal, j.Err)
	}
	return nil
}
