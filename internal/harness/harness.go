// Package harness builds algorithm instances from declarative specs, runs
// them under configurable adversaries in the simulator, and formats the
// results as aligned text or Markdown tables. It is the engine behind
// cmd/experiments and the benchmark suite: every experiment in DESIGN.md's
// index (E1–E10) is a function here returning a Table whose rows pair
// measured work/messages with the paper's closed-form bounds.
package harness

import (
	"fmt"
	"math/rand"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

// Algo identifies one of the implemented Do-All algorithms.
type Algo string

// The implemented algorithms.
const (
	AlgoAllToAll Algo = "AllToAll"
	AlgoObliDo   Algo = "ObliDo"
	AlgoDA       Algo = "DA"
	AlgoPaRan1   Algo = "PaRan1"
	AlgoPaRan2   Algo = "PaRan2"
	AlgoPaDet    Algo = "PaDet"
)

// Adv identifies an adversary strategy.
type Adv string

// The available adversaries.
const (
	AdvFair        Adv = "fair"         // full speed, every message delayed exactly d
	AdvRandom      Adv = "random"       // random activity and delays in [1, d]
	AdvStageDet    Adv = "stage-det"    // Theorem 3.1 off-line construction
	AdvStageOnline Adv = "stage-online" // Theorem 3.4 adaptive construction
)

// Spec declares one simulation run.
type Spec struct {
	Algo Algo
	P, T int
	// Q is the progress-tree arity (DA only; default 2).
	Q int
	// D is the message-delay bound.
	D int64
	// Adversary selects the d-adversary (default AdvFair).
	Adversary Adv
	// Seed drives all randomness (schedule search, machine randomness,
	// random adversary).
	Seed int64
	// SearchRestarts bounds permutation-list search work (default 32).
	SearchRestarts int
	// MaxSteps overrides the simulator's step cap (0 = default).
	MaxSteps int64
}

func (s Spec) withDefaults() Spec {
	if s.Q == 0 {
		s.Q = 2
	}
	if s.Adversary == "" {
		s.Adversary = AdvFair
	}
	if s.SearchRestarts == 0 {
		s.SearchRestarts = 32
	}
	if s.D == 0 {
		s.D = 1
	}
	return s
}

// BuildMachines constructs the processor machines for the spec.
func BuildMachines(s Spec) ([]sim.Machine, error) {
	s = s.withDefaults()
	r := rand.New(rand.NewSource(s.Seed))
	switch s.Algo {
	case AlgoAllToAll:
		return core.NewAllToAll(s.P, s.T), nil
	case AlgoObliDo:
		jobs := core.NewJobs(s.P, s.T)
		l := perm.RandomList(s.P, jobs.N, r)
		return core.NewObliDo(s.P, s.T, l), nil
	case AlgoDA:
		l := perm.FindLowContentionList(s.Q, s.Q, s.SearchRestarts, r).List
		return core.NewDA(core.DAConfig{P: s.P, T: s.T, Q: s.Q, Perms: l})
	case AlgoPaRan1:
		return core.NewPaRan1(s.P, s.T, s.Seed), nil
	case AlgoPaRan2:
		return core.NewPaRan2(s.P, s.T, s.Seed), nil
	case AlgoPaDet:
		jobs := core.NewJobs(s.P, s.T)
		l := perm.FindLowDContentionList(s.P, jobs.N, int(s.D), s.SearchRestarts, r).List
		return core.NewPaDet(s.P, s.T, l)
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", s.Algo)
	}
}

// BuildAdversary constructs the adversary for the spec.
func BuildAdversary(s Spec) (sim.Adversary, error) {
	s = s.withDefaults()
	switch s.Adversary {
	case AdvFair:
		return adversary.NewFair(s.D), nil
	case AdvRandom:
		return adversary.NewRandom(s.D, 0.75, s.Seed^0x5eed), nil
	case AdvStageDet:
		return adversary.NewStageDeterministic(s.D, s.T), nil
	case AdvStageOnline:
		return adversary.NewStageOnline(s.D, s.T), nil
	default:
		return nil, fmt.Errorf("harness: unknown adversary %q", s.Adversary)
	}
}

// Execute builds and runs the spec once.
func Execute(s Spec) (*sim.Result, error) {
	s = s.withDefaults()
	ms, err := BuildMachines(s)
	if err != nil {
		return nil, err
	}
	adv, err := BuildAdversary(s)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{P: s.P, T: s.T, MaxSteps: s.MaxSteps}, ms, adv)
}

// Avg holds trial-averaged complexity measures.
type Avg struct {
	Work, Messages, Time float64
	Trials               int
}

// ExecuteAvg runs the spec `trials` times with seeds seed, seed+1, … and
// averages work, messages, and completion time. Use it for randomized
// algorithms and the random adversary; deterministic spec+seed pairs just
// return the same value each trial.
func ExecuteAvg(s Spec, trials int) (Avg, error) {
	if trials < 1 {
		trials = 1
	}
	var a Avg
	for i := 0; i < trials; i++ {
		run := s
		run.Seed = s.Seed + int64(i)
		res, err := Execute(run)
		if err != nil {
			return Avg{}, fmt.Errorf("harness: trial %d: %w", i, err)
		}
		a.Work += float64(res.Work)
		a.Messages += float64(res.Messages)
		a.Time += float64(res.SolvedAt)
	}
	a.Work /= float64(trials)
	a.Messages /= float64(trials)
	a.Time /= float64(trials)
	a.Trials = trials
	return a, nil
}
