package scenario

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSweepAdversaryGrid exercises the adversary-expression axis: every
// algorithm cell is measured under each expression, cells record their
// adversary, and crashing/slow-set are reachable from a sweep.
func TestSweepAdversaryGrid(t *testing.T) {
	cfg := SweepConfig{
		Algos:       []string{AlgoPaRan1},
		Ps:          []int{4},
		Ts:          []int{16},
		Ds:          []int64{2},
		Adversaries: []string{"fair", "crashing", "slow-set(period=2)"},
		BaseSeed:    3,
	}
	cells := RunSweep(cfg)
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3", len(cells))
	}
	for i, want := range cfg.Adversaries {
		c := cells[i]
		if c.Adversary != want {
			t.Errorf("cell %d adversary = %q, want %q", i, c.Adversary, want)
		}
		if c.Err != "" {
			t.Errorf("cell %d (%s) failed: %s", i, want, c.Err)
		}
		if c.Work <= 0 {
			t.Errorf("cell %d (%s): work %v", i, want, c.Work)
		}
	}
	// Same seed, same machines: the slow-set run must cost at least as
	// much time as the fair run (slow processors stretch the execution).
	if cells[2].SolvedAt < cells[0].SolvedAt {
		t.Errorf("slow-set solved at %v before fair's %v", cells[2].SolvedAt, cells[0].SolvedAt)
	}
	rep := NewSweepReport(cfg)
	if rep.Adversary != "fair;crashing;slow-set(period=2)" {
		t.Errorf("report adversary = %q", rep.Adversary)
	}
}

// TestBench0SchemaStillReadable guards the BENCH_*.json contract: the
// baseline recorded before the adversary axis existed must keep parsing
// under the extended Cell schema.
func TestBench0SchemaStillReadable(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_0.json")
	if err != nil {
		t.Skipf("BENCH_0.json not present: %v", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_0.json no longer parses: %v", err)
	}
	if rep.Engine != "multicast-wheel" || len(rep.Cells) == 0 {
		t.Fatalf("BENCH_0.json lost shape: engine=%q cells=%d", rep.Engine, len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Algo == "" || c.P == 0 || c.T == 0 {
			t.Fatalf("cell lost fields: %+v", c)
		}
		if c.Adversary != "" {
			t.Fatalf("pre-axis cell unexpectedly has adversary %q", c.Adversary)
		}
	}
}
