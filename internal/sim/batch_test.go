package sim

import (
	"testing"
)

// batchFair is a uniform-delay, always-active, InboxAgnostic adversary
// driving the grouped delivery path in tests.
type batchFair struct{ d int64 }

func (a *batchFair) D() int64 { return a.d }
func (a *batchFair) Schedule(v *View, dec *Decision) {
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}
func (a *batchFair) Delay(from, to int, sentAt int64) int64            { return a.d }
func (a *batchFair) DelayUniform(from int, sentAt int64) (int64, bool) { return a.d, true }
func (a *batchFair) InboxAgnostic() bool                               { return true }

// chatty is a plain (non-BatchConsumer) machine: every step it broadcasts
// its pid and counts every distinct message it received. Under the
// grouped engine its inbox is materialized from the shared batches; the
// counts must match the eager engine's exactly.
type chatty struct {
	pid      int
	steps    int
	received int
	own      int // own multicasts seen (must stay 0: senders skip their own)
	limit    int
}

func (m *chatty) Step(now int64, inbox []Delivery) StepResult {
	for _, d := range inbox {
		if d.From() == m.pid {
			m.own++
		}
		m.received++
	}
	m.steps++
	if m.steps >= m.limit {
		return StepResult{Halt: true}
	}
	return StepResult{Broadcast: m.pid}
}

func (m *chatty) KnowsAllDone() bool { return true }

// TestGroupedMaterializationMatchesEager runs plain machines (no
// BatchConsumer) under the grouped engine and under the same engine with
// grouping disabled (via an observer), checking the delivered message
// flow is identical — materialized batches must be indistinguishable
// from eager per-recipient delivery.
func TestGroupedMaterializationMatchesEager(t *testing.T) {
	run := func(obs Observer) []*chatty {
		const p = 5
		ms := make([]Machine, p)
		cs := make([]*chatty, p)
		for i := range ms {
			cs[i] = &chatty{pid: i, limit: 12}
			ms[i] = cs[i]
		}
		// The first machine performs every task so the run solves.
		cfg := Config{P: p, T: 1, Observer: obs}
		ms[0] = &solver{chatty: cs[0]}
		if _, err := Run(cfg, ms, &batchFair{d: 2}); err != nil {
			t.Fatal(err)
		}
		return cs
	}
	grouped := run(nil)         // InboxAgnostic adversary, no observer: grouped
	eager := run(NopObserver{}) // observer forces the eager path
	for i := range grouped {
		if grouped[i].own != 0 || eager[i].own != 0 {
			t.Fatalf("machine %d saw its own multicast (grouped=%d eager=%d)",
				i, grouped[i].own, eager[i].own)
		}
		if grouped[i].received != eager[i].received || grouped[i].steps != eager[i].steps {
			t.Fatalf("machine %d: grouped received=%d steps=%d, eager received=%d steps=%d",
				i, grouped[i].received, grouped[i].steps, eager[i].received, eager[i].steps)
		}
	}
}

// solver wraps chatty and performs task 0 on its first step.
type solver struct{ *chatty }

func (s *solver) Step(now int64, inbox []Delivery) StepResult {
	r := s.chatty.Step(now, inbox)
	if s.chatty.steps == 1 {
		r.Perform(0)
	}
	return r
}

// countingConsumer implements BatchConsumer and records how it was fed.
// Unlike materialized inboxes, batches DO contain the consumer's own
// multicasts (the shared group is identical for everyone); the consumer
// is responsible for skipping them, and skippedOwn counts those.
type countingConsumer struct {
	chatty
	batchedCalls int
	skippedOwn   int
}

func (m *countingConsumer) StepBatched(now int64, batches []*Batch, tail []Delivery) StepResult {
	m.batchedCalls++
	for _, b := range batches {
		for _, mc := range b.MCs {
			if mc.From == m.pid {
				m.skippedOwn++
				continue
			}
			m.received++
		}
	}
	return m.chatty.Step(now, tail)
}

// TestBatchConsumerReceivesGroups checks BatchConsumer machines get the
// shared groups directly (no materialization) and exactly once each.
func TestBatchConsumerReceivesGroups(t *testing.T) {
	const p = 4
	ms := make([]Machine, p)
	cs := make([]*countingConsumer, p)
	for i := range ms {
		cs[i] = &countingConsumer{chatty: chatty{pid: i, limit: 10}}
		ms[i] = cs[i]
	}
	res, err := Run(Config{P: p, T: 1}, append([]Machine{&solver{&cs[0].chatty}}, ms[1:]...), &batchFair{d: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	// Every consumer must have been fed through StepBatched (grouping
	// active for BatchConsumer machines), must have seen (and skipped) its
	// own multicasts inside the shared groups, and must have received
	// peers' multicasts through them.
	for i := 1; i < p; i++ {
		if cs[i].batchedCalls == 0 {
			t.Fatalf("machine %d never received a batch (grouping inactive?)", i)
		}
		if cs[i].skippedOwn == 0 {
			t.Fatalf("machine %d never saw its own multicast in a shared group", i)
		}
		if cs[i].received == 0 {
			t.Fatalf("machine %d received nothing through batches", i)
		}
	}
}
