// Package sim is a deterministic discrete-time simulator of the
// asynchronous message-passing model of Kowalski & Shvartsman (Section 2).
//
// Time advances in global units (the smallest gap between any two clock
// ticks of any processor; unknown to the processors themselves). At every
// unit an Adversary decides which processors take a local step and may
// crash processors; it also assigns each message a delivery delay of at
// most d units. Work and message complexity are accounted exactly as in
// Definitions 2.1 and 2.2: every local step of a live, non-halted processor
// costs one work unit until the problem is solved (all tasks performed and
// at least one processor informed), and a broadcast to m recipients costs m
// point-to-point messages.
//
// # Allocation discipline
//
// The per-step contracts are designed so the engine allocates nothing in
// steady state: a step reports at most one performed task as a plain int
// (StepResult), the adversary writes its schedule into an engine-owned
// Decision whose slices are reused across ticks, and a broadcast is one
// pooled Multicast record shared by every recipient — inboxes hold
// lightweight Delivery references into it, never per-recipient copies.
// Machines that implement PayloadRecycler get their payload buffers back
// once every recipient has consumed them, closing the last allocation
// loop. The allocation gates in the repo root assert zero steady-state
// allocations per simulated step and per multicast.
package sim

import (
	"errors"

	"doall/internal/bitset"
)

// Message is a fully materialized point-to-point message. The hot path
// never builds one — inboxes hold Delivery references into shared
// Multicast records — but observers (Observer.OnDeliver), the legacy
// reference engine's delay queue, and the goroutine runtime's channels
// still speak in whole messages.
type Message struct {
	// From and To are processor ids.
	From, To int
	// SentAt is the global time at which the send step occurred.
	SentAt int64
	// DeliverAt is the global time at which the message enters the
	// recipient's inbox. Invariant: SentAt < DeliverAt ≤ SentAt + d.
	DeliverAt int64
	// Payload is the algorithm-specific content. Payloads must be treated
	// as immutable by receivers (they are shared between the recipients of
	// one multicast).
	Payload any
}

// Multicast is one broadcast stored once, regardless of recipient count.
// Recipients receive Delivery references into the record, so a broadcast
// costs O(1) stored state instead of p-1 message copies. The engine pools
// Multicast records: once every recipient has consumed (or missed) its
// delivery the record is recycled, so steady-state broadcasts allocate
// nothing.
type Multicast struct {
	// From is the sender's processor id.
	From int
	// SentAt is the global time of the send step.
	SentAt int64
	// Payload is the shared, immutable content.
	Payload any
	// Recipients is the recipient set for uniform-delay multicasts (every
	// recipient shares one delivery time, so one timing-wheel event covers
	// the whole set). It is nil when the adversary assigned non-uniform
	// delays and the multicast was scheduled per recipient, and for
	// point-to-point sends.
	Recipients *bitset.Set
	// outstanding counts deliveries not yet consumed or dropped; when it
	// reaches zero the engine recycles the record (and hands the payload
	// back to the sender if it implements PayloadRecycler). Only the
	// multicast engine maintains it.
	outstanding int32
}

// Delivery is one delivered message in a processor's inbox: a reference
// into the multicast record shared by all recipients, plus the delivery
// time. Copying a Delivery copies two words, not the five fields of a
// Message, which is what keeps the delivery fan-out of a broadcast cheap.
type Delivery struct {
	// MC is the shared multicast record. Receivers must treat it (and the
	// payload inside) as immutable.
	MC *Multicast
	// At is the global time the message entered the inbox.
	At int64
}

// From returns the sender's processor id.
func (d Delivery) From() int { return d.MC.From }

// SentAt returns the global time of the send step.
func (d Delivery) SentAt() int64 { return d.MC.SentAt }

// DeliverAt returns the global time the message entered the inbox.
func (d Delivery) DeliverAt() int64 { return d.At }

// Payload returns the shared, immutable payload.
func (d Delivery) Payload() any { return d.MC.Payload }

// NoTask is returned by StepResult.PerformedTask when the step performed
// no task.
const NoTask = -1

// StepResult is what a processor's single local step produced. Its zero
// value means "no task performed, nothing sent, keep running"; report a
// performed task with Perform. In the paper's unit-cost model a step
// performs at most one task, which the representation enforces by
// construction (there is no room for a second task — the old slice-typed
// field required a per-step allocation and a runtime check instead).
type StepResult struct {
	// performed holds 1 + the id of the task performed this step, zero
	// when none. It is encapsulated so the zero value safely means "no
	// task"; use Perform and PerformedTask.
	performed int
	// Broadcast, when non-nil, is a payload multicast to every other
	// processor (p-1 point-to-point messages).
	Broadcast any
	// Sends lists additional point-to-point messages (used by the
	// message-frugal gossip variants; one message each). A step may use
	// Sends and Broadcast together, though the standard algorithms use at
	// most one of them.
	Sends []Send
	// Halt indicates the processor voluntarily halts after this step. Per
	// Proposition 2.1 correct algorithms halt only when they know all
	// tasks are done; the simulator records but does not forbid early
	// halts (the lower-bound experiments rely on observing them).
	Halt bool
}

// Perform records task z as performed by this step (at most one per step).
func (r *StepResult) Perform(z int) { r.performed = z + 1 }

// PerformedTask returns the id of the task performed this step, or NoTask
// (-1) when the step performed none.
func (r *StepResult) PerformedTask() int { return r.performed - 1 }

// PerformStep returns a StepResult performing task z — the common
// "perform one task, nothing else" step as a single expression.
func PerformStep(z int) StepResult { return StepResult{performed: z + 1} }

// Send is a directed point-to-point message produced by a step.
type Send struct {
	To      int
	Payload any
}

// Payload is the optional interface for wire-size-aware message payloads.
// Payloads implementing it contribute their encoded size to Result.Bytes;
// the engine queries the size once per multicast, never per recipient.
// Implementations must be immutable once sent: one payload value is shared,
// uncopied, by every recipient of a multicast (and by the sender).
type Payload interface {
	// WireSize returns the encoded size of the payload in bytes.
	WireSize() int
}

// Machine is the step-machine interface every Do-All algorithm implements.
// One Machine instance is one processor's local state.
type Machine interface {
	// Step executes one local step: process all messages in inbox (in one
	// unit of work, per the model), optionally perform a task, optionally
	// broadcast. It is called only for live, non-halted processors.
	//
	// The inbox slice is owned by the engine and reused after Step
	// returns: machines must consume the deliveries during the call and
	// must not retain the slice, the Delivery values, or the Multicast
	// records they reference (the engine recycles the records once all
	// recipients have consumed them). Copy any payload data that needs to
	// outlive the step.
	Step(now int64, inbox []Delivery) StepResult
	// KnowsAllDone reports whether this processor's local knowledge
	// implies every task has been performed.
	KnowsAllDone() bool
}

// TaskIntender is an optional Machine extension exposing which task the
// machine would perform on its next step, or -1 when it would not perform
// any. Adaptive adversaries (Theorem 3.4's construction) use it to delay
// processors that are about to perform protected tasks.
type TaskIntender interface {
	NextTask() int
}

// Cloner is an optional Machine extension for deterministic machines whose
// state can be deep-copied. The off-line adversary of Theorem 3.1 clones
// machines to look ahead one stage.
type Cloner interface {
	CloneMachine() Machine
}

// Resetter is an optional Machine extension restoring a machine to its
// initial, pre-execution state without reallocating, so trial loops and
// the allocation gates can reuse one machine set. Deterministic machines
// replay the exact same execution after Reset; machines drawing from a
// live random stream (PaRan2) start a fresh trial instead of a replay.
type Resetter interface {
	Reset()
}

// Rejoiner is an optional Machine extension for the crash-restart fault
// model: Rejoin restores the machine to fresh initial knowledge when the
// adversary revives it after a crash (Decision.Revive). Rejoin differs
// from Resetter.Reset in one crucial way — it is called mid-run, while
// snapshots the machine broadcast before crashing may still be in flight,
// so implementations must not invalidate or recycle previously published
// payload buffers. Knowledge-bearing machines rejoin by rebasing: the
// next broadcast travels as a full (non-delta) snapshot and receivers'
// stale per-sender cursors fall back to full merges, which is safe by
// monotonicity. Machines without Rejoin are revived via Resetter when
// they implement it, and with their pre-crash state otherwise (see
// RejoinMachine).
type Rejoiner interface {
	Rejoin()
}

// RejoinMachine restores a machine for crash-restart re-entry: Rejoin
// when supported, falling back to Reset (safe for machines that never
// publish pooled payloads), reporting whether either ran. Both engines
// and the goroutine runtime use it, so revival semantics are identical
// across substrates.
func RejoinMachine(m Machine) bool {
	if rj, ok := m.(Rejoiner); ok {
		rj.Rejoin()
		return true
	}
	if rs, ok := m.(Resetter); ok {
		rs.Reset()
		return true
	}
	return false
}

// PayloadRecycler is an optional Machine extension closing the payload
// allocation loop: when every recipient of a multicast has consumed (or,
// being crashed or halted, missed) its delivery, the engine hands the
// payload back to the sending machine, which may reuse the buffer for a
// later broadcast. Machines that pool payload buffers this way broadcast
// allocation-free in steady state. The engine guarantees no live
// reference to the payload remains when RecyclePayload is called; the
// legacy reference engine and the goroutine runtime never recycle.
type PayloadRecycler interface {
	RecyclePayload(payload any)
}

// PayloadSizer is an optional Machine extension for allocation-free byte
// accounting: it returns the wire size of one of this machine's own
// payload values (0 for values it does not recognize). The engine
// prefers a sender's PayloadSizer over asserting payload.(Payload)
// because implementations check concrete payload types — a direct
// type-descriptor compare — whereas the interface assertion goes through
// the runtime's lazily, randomly populated per-site itab cache, whose
// population is itself a rare steady-state heap allocation.
type PayloadSizer interface {
	PayloadWireSize(payload any) int
}

// View is the adversary's omniscient picture of the system at the start of
// a time unit.
type View struct {
	// Now is the current global time.
	Now int64
	// P is the number of processors; T the number of tasks.
	P, T int
	// Tasks is the chunked global done-task ledger: which tasks anyone has
	// performed, how many remain, with skip-scanning over done regions.
	// Read-only for adversaries.
	Tasks *TaskLedger
	// Machines exposes processor state for intent probing and cloning.
	// Adversaries must not call Step on these.
	Machines []Machine
	// Inboxes[i] holds the per-recipient deliveries made to processor i
	// but not yet consumed by a step. Adversaries must treat them as
	// read-only; the off-line lower-bound adversary copies them into
	// machine clones when looking a stage ahead. Under the multicast
	// engine's grouped delivery path, pending uniform multicasts live in
	// shared delivery groups instead of per-recipient inboxes — that path
	// is only enabled for adversaries that declare themselves
	// InboxAgnostic, so adversaries that read Inboxes always see every
	// pending delivery here.
	Inboxes [][]Delivery
	// Crashed[i] and Halted[i] report processor i's status.
	Crashed, Halted []bool
	// InFlight is the number of undelivered messages.
	InFlight int
}

// Undone returns the number of tasks not yet performed by anyone
// (shorthand for Tasks.Undone()).
func (v *View) Undone() int { return v.Tasks.Undone() }

// InboxAgnostic is an optional Adversary extension declaring that the
// adversary never reads View.Inboxes. The multicast engine enables its
// grouped delivery path — one shared delivery group per time unit of
// uniform multicasts instead of p-1 per-recipient inbox appends — only
// for adversaries that return true, because grouped pending deliveries
// are not visible in View.Inboxes. Combinators forward the question to
// their inner adversary.
type InboxAgnostic interface {
	InboxAgnostic() bool
}

// Batch is one shared delivery group of the multicast engine's grouped
// path: every uniform multicast delivered at one time unit, stored once
// and consumed by reference by every live processor. Recipients skip
// multicasts they sent themselves.
//
// Combined is the batch's shared knowledge cache: the first consuming
// machine that understands the payloads may fold the batch's whole new
// knowledge into one accumulated structure and publish it here (setting
// Builder to its pid), so every later consumer pays one merge instead of
// one per sender. The engine returns Combined to the builder machine via
// its PayloadRecycler hook when the batch is retired. Machines that use
// the cache must treat published Combined values as immutable.
type Batch struct {
	// At is the delivery time shared by every multicast in the batch.
	At int64
	// MCs are the delivered multicasts in delivery order.
	MCs []*Multicast
	// Combined is the machine-built shared knowledge cache (nil until a
	// consumer builds it); Builder is the pid whose machine owns its
	// buffers, -1 while unset.
	Combined any
	Builder  int32
	// remaining counts live processors that have not yet consumed the
	// batch; the engine retires the batch when it reaches zero.
	remaining int32
}

// BatchConsumer is an optional Machine extension for the grouped delivery
// path: StepBatched is Step with the pending deliveries presented as
// shared delivery groups (batches, oldest first) plus any per-recipient
// deliveries (tail). It must be semantically identical to calling Step
// with the same deliveries materialized in time order; implementations
// must therefore be merge-order-insensitive (the algorithms' monotone
// knowledge unions are). Machines that do not implement the interface
// still run under the grouped engine — their batches are materialized
// into an ordinary inbox slice.
type BatchConsumer interface {
	Machine
	StepBatched(now int64, batches []*Batch, tail []Delivery) StepResult
}

// CombinedBuilder is an optional BatchConsumer extension for the parallel
// tick engine's sharded cache construction (phase A1): BuildCombined
// builds and publishes b's combined knowledge cache (Batch.Combined /
// Batch.Builder) from this machine's receive-cursor state — exactly the
// cache its own StepBatched would build on first consuming b — without
// consuming the batch. The machine's knowledge must not change; its
// per-sender merge cursors advance exactly as the in-step build would.
// The split is what makes cache construction parallelizable: the builds
// read only the builder's private cursors plus the batch's immutable
// payloads, so distinct builders can construct their (disjoint) batch
// ranges concurrently, and the builder's own later StepBatched finds the
// published caches and applies them — monotone unions land it on the
// same state the combined build-and-apply would have.
//
// BuildCombined must return false — publishing nothing and mutating
// nothing (aborted accumulation scratch excepted, exactly as an in-step
// aborted build) — when the batch's payloads are not combinable by this
// machine; the engine then leaves the batch cache-less, which every
// consumer handles by its eager fallback.
type CombinedBuilder interface {
	BatchConsumer
	BuildCombined(b *Batch) bool
}

// Decision is the adversary's scheduling choice for one time unit. The
// engine owns one Decision and passes it to Adversary.Schedule every
// unit with Active and Crash emptied (capacity retained) and NextWake
// zeroed; adversaries append into the slices instead of allocating fresh
// ones, so scheduling is allocation-free in steady state.
type Decision struct {
	// Active lists processors that take a local step this unit. Crashed
	// and halted processors in the list are ignored.
	Active []int
	// Crash lists processors that crash at the start of this unit.
	Crash []int
	// Revive lists crashed processors that restart at the start of this
	// unit (the restartable-crash fault model). A revived processor
	// re-enters the live set with fresh initial knowledge (RejoinMachine);
	// deliveries it missed while down are lost. Entries naming live,
	// halted, or out-of-range processors are ignored. Crashes are applied
	// before revives within one unit.
	Revive []int
	// NextWake, when positive and Active is empty (or contains only
	// crashed/halted processors), promises that the adversary will not
	// activate any processor strictly before time NextWake. The engine
	// uses the promise to fast-forward idle stretches: global time jumps
	// to min(NextWake, next message delivery) instead of ticking through
	// units in which nothing can happen. Zero means no promise (the
	// engine ticks unit by unit, exactly like the legacy engine).
	//
	// The promise covers every Schedule side effect, not just
	// activations: the skipped units' Schedule calls never happen, so an
	// adversary whose Schedule does anything time-dependent before
	// NextWake — injecting a crash at an exact time, in particular —
	// must clamp NextWake to that time (see adversary.Crashing).
	NextWake int64
}

// reset empties the decision for the next Schedule call, retaining slice
// capacity.
func (d *Decision) reset() {
	d.Active = d.Active[:0]
	d.Crash = d.Crash[:0]
	d.Revive = d.Revive[:0]
	d.NextWake = 0
}

// Adversary controls asynchrony: per-unit scheduling, crashes, and message
// delays. Implementations must respect the d-adversary contract: Delay
// must return a value in [1, D()].
type Adversary interface {
	// D returns the message-delay bound d ≥ 1 this adversary honors.
	D() int64
	// Schedule is called once per global time unit. It writes this unit's
	// decision into dec, which arrives emptied (see Decision): append the
	// active and crashing processors to dec.Active and dec.Crash and set
	// dec.NextWake if promising idleness. The engine owns dec and its
	// slices; adversaries must not retain them across calls. Combinators
	// forward the same dec to their inner adversary and then edit it in
	// place.
	Schedule(v *View, dec *Decision)
	// Delay returns the delivery delay (in global time units, ≥ 1 and
	// ≤ D()) for a message from processor `from` to `to` sent at `sentAt`.
	Delay(from, to int, sentAt int64) int64
}

// MulticastDelayer is an optional Adversary extension that assigns the
// delays of a whole multicast in one call, so a broadcast costs the
// adversary one invocation instead of p-1. Implementations fill
// out[j] ∈ [1, D()] for every recipient j != from (out has length p;
// out[from] is ignored). Adversaries that draw delays from a random
// stream must consume it in ascending recipient order, matching the
// per-recipient Delay loop, so that both engine paths see identical
// delay sequences. Adversaries that do not implement the interface are
// adapted automatically: the engine falls back to one Delay call per
// recipient.
type MulticastDelayer interface {
	DelayMulticast(from int, sentAt int64, out []int64)
}

// UniformDelayer is an optional Adversary extension for adversaries whose
// multicast delays never depend on the recipient: DelayUniform returns
// the delay shared by every recipient of a multicast from `from` at
// `sentAt`, with ok = true. The engine then schedules the whole broadcast
// as one wheel event without materializing (or validating) p-1
// per-recipient delays — the last O(p) term on the broadcast hot path.
// Implementations must satisfy DelayUniform(from, t) == (Delay(from, j,
// t), true) for every j (asserted by the adversary contract tests).
// Combinators whose uniformity depends on the wrapped adversary return
// ok = false when the inner adversary's delays are recipient-dependent,
// and the engine falls back to the per-recipient path.
type UniformDelayer interface {
	DelayUniform(from int, sentAt int64) (delay int64, ok bool)
}

// Omitter is an optional Adversary extension modeling message-omission
// faults: individual copies of a multicast are dropped by the network and
// never delivered, while the send is still charged to the sender's
// message complexity (omission is a network fault, not a refund). Both
// methods must be pure functions of their arguments — the engines consult
// them on different schedules (the multicast engine asks OmitsAt once per
// broadcast and Omit only per recipient of an omitting one; the legacy
// engine and the runtime ask Omit per recipient unconditionally), so
// stateful implementations would diverge across substrates.
type Omitter interface {
	// OmitsAt reports whether any copy of a multicast sent by `from` at
	// `sentAt` may be omitted. A false return lets the engine keep its
	// uniform single-event broadcast fast path for that send.
	OmitsAt(from int, sentAt int64) bool
	// Omit reports whether the copy addressed to `to` is dropped.
	// Dropping a strict subset of the recipients models
	// deliver-to-subset omission.
	Omit(from, to int, sentAt int64) bool
}

// Result aggregates the complexity measures of one execution.
type Result struct {
	// Solved reports whether all tasks were performed and some processor
	// learned it before the step cap.
	Solved bool
	// SolvedAt is the global time σ at which the problem became solved
	// (all tasks done and ≥ 1 processor informed); -1 if never.
	SolvedAt int64
	// Work is W of Definition 2.1: total local steps of live processors
	// summed up to and including time σ.
	Work int64
	// Messages is M of Definition 2.2: point-to-point messages sent up to
	// and including time σ.
	Messages int64
	// TotalSteps and TotalMessages extend the counts to the whole
	// execution (until every processor halted or crashed, or the cap).
	TotalSteps, TotalMessages int64
	// Bytes is the wire volume (in bytes) of the point-to-point messages
	// counted in Messages, for payloads that implement
	// interface{ WireSize() int }; other payloads contribute zero. Byte
	// volume is an engineering metric — the paper's message complexity is
	// the count in Messages.
	Bytes int64
	// TaskExecutions counts every task performance, with multiplicity.
	TaskExecutions int64
	// PrimaryExecutions counts performances of tasks not performed by
	// anyone at any earlier time unit (Section 4: "primary"); concurrent
	// first performances all count. SecondaryExecutions is the rest.
	PrimaryExecutions, SecondaryExecutions int64
	// PerProcWork[i] is the number of steps processor i was charged.
	PerProcWork []int64
	// FirstDoneAt[z] is the time task z was first performed, or -1.
	FirstDoneAt []int64
	// HaltedEarly reports whether some processor halted before the
	// problem was solved (a Proposition 2.1 violation by the algorithm).
	HaltedEarly bool
}

// reset clears the result for a fresh run, reusing the per-processor and
// per-task slices when the shape matches.
func (r *Result) reset(p, t int) {
	per, first := r.PerProcWork, r.FirstDoneAt
	*r = Result{SolvedAt: -1}
	if cap(per) >= p {
		per = per[:p]
		clear(per)
	} else {
		per = make([]int64, p)
	}
	if cap(first) >= t {
		first = first[:t]
	} else {
		first = make([]int64, t)
	}
	for z := range first {
		first[z] = -1
	}
	r.PerProcWork, r.FirstDoneAt = per, first
}

// Config configures a simulation run.
type Config struct {
	// P is the number of processors; machines must have length P.
	P int
	// T is the number of tasks.
	T int
	// MaxSteps caps global time to guard against non-terminating
	// executions; 0 means the default of 10^7.
	MaxSteps int64
	// StopAtSolved stops the simulation at time σ instead of running
	// until all processors halt. Work/Messages are identical either way;
	// TotalSteps/TotalMessages differ.
	StopAtSolved bool
	// Observer, when non-nil, receives a callback at every observable
	// event of the execution (see Observer). Nil costs nothing on the hot
	// path. The legacy reference engine (RunLegacy) ignores it.
	Observer Observer
	// Shards enables the intra-run parallel tick engine: each time unit's
	// live-processor schedule is split into Shards contiguous ranges whose
	// Machine.Step calls run on worker goroutines, followed by a serial
	// reduction in schedule order that applies broadcasts, sends, ledger
	// updates, and accounting. Results are byte-identical at every shard
	// count (asserted by the equivalence tests); only wall-clock time
	// changes. Values ≤ 1 select the sequential engine; values above P are
	// clamped. Shards must be a resolved count — callers offering an
	// "auto" policy translate it before building the Config (see
	// scenario.ResolveShards). The legacy reference engine ignores it.
	Shards int
}

// ErrStepCap is returned when the simulation hits MaxSteps before the
// problem is solved.
var ErrStepCap = errors.New("sim: step cap exceeded before Do-All was solved")

// ResetMachines restores every machine to its initial state via the
// Resetter extension, reporting whether all of them supported it. It is
// the machine half of an allocation-free re-trial (Engine.Run being the
// engine half); on a false return some machines were not reset and the
// set must be rebuilt instead.
func ResetMachines(machines []Machine) bool {
	ok := true
	for _, m := range machines {
		if r, can := m.(Resetter); can {
			r.Reset()
		} else {
			ok = false
		}
	}
	return ok
}

// MachineSet pairs a machine slice with its Resetter facets, asserted
// once at construction, so steady-state trial loops can reset machines
// with plain interface method calls. The distinction matters for the
// zero-allocation contract: the runtime populates each m.(Resetter)
// assertion site's itab cache lazily and randomly (~1/1024 of cache
// misses allocate a new site cache), so a loop that calls ResetMachines
// every trial keeps a small per-trial chance of one stray heap
// allocation alive for on the order of a thousand trials — the root
// cause of the intermittent 1 alloc/op in the steady-state gates. A
// MachineSet front-loads the assertions into construction and its Reset
// performs none.
type MachineSet struct {
	machines  []Machine
	resetters []Resetter // resetters[i] is machines[i]'s Resetter, nil when unsupported
	all       bool       // every machine supports Reset
}

// NewMachineSet captures the machines (the slice is aliased, not copied)
// and asserts their Resetter facets once.
func NewMachineSet(machines []Machine) *MachineSet {
	s := &MachineSet{machines: machines, resetters: make([]Resetter, len(machines)), all: true}
	for i, m := range machines {
		r, can := m.(Resetter)
		if !can {
			s.all = false
		}
		s.resetters[i] = r
	}
	return s
}

// Machines returns the captured machine slice, for handing to Engine.Run.
func (s *MachineSet) Machines() []Machine { return s.machines }

// Reset restores every Resetter machine to its initial state, reporting
// whether all machines supported it — identical semantics to
// ResetMachines, minus the per-call interface assertions.
func (s *MachineSet) Reset() bool {
	for _, r := range s.resetters {
		if r != nil {
			r.Reset()
		}
	}
	return s.all
}

// CloneMachines deep-copies a machine set via the Cloner extension,
// reporting whether every machine supported it (on false the returned
// slice is nil). Benchmarks and look-ahead harnesses use it to stamp out
// fresh trials from one pristine, possibly expensive-to-build set.
func CloneMachines(machines []Machine) ([]Machine, bool) {
	out := make([]Machine, len(machines))
	for i, m := range machines {
		c, can := m.(Cloner)
		if !can {
			return nil, false
		}
		cm := c.CloneMachine()
		if cm == nil {
			return nil, false
		}
		out[i] = cm
	}
	return out, true
}
