package runtime

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

func fastCfg(p, t, d int) Config {
	return Config{
		P: p, T: t, D: d,
		Unit:    50 * time.Microsecond,
		Seed:    1,
		Timeout: 20 * time.Second,
	}
}

func TestRunDA(t *testing.T) {
	p, tasks := 4, 16
	r := rand.New(rand.NewSource(2))
	l := perm.FindLowContentionList(2, 2, 10, r).List
	ms, err := core.NewDA(core.DAConfig{P: p, T: tasks, Q: 2, Perms: l})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(fastCfg(p, tasks, 2), ms)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved {
		t.Fatal("not solved")
	}
	if rep.TaskExecutions < int64(tasks) {
		t.Fatalf("executions %d < t", rep.TaskExecutions)
	}
	if rep.Steps <= 0 || rep.Elapsed <= 0 {
		t.Fatal("missing accounting")
	}
}

func TestRunPaRan1ExecutesEveryTaskBody(t *testing.T) {
	p, tasks := 3, 30
	var hits [30]atomic.Int64
	cfg := fastCfg(p, tasks, 3)
	cfg.Task = func(id int) { hits[id].Add(1) }
	rep, err := Run(cfg, core.NewPaRan1(p, tasks, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved {
		t.Fatal("not solved")
	}
	for id := range hits {
		if hits[id].Load() == 0 {
			t.Fatalf("task %d body never executed", id)
		}
	}
}

func TestRunWithCrashes(t *testing.T) {
	p, tasks := 4, 20
	cfg := fastCfg(p, tasks, 2)
	cfg.CrashAfter = map[int]int{1: 3, 2: 5, 3: 2}
	rep, err := Run(cfg, core.NewPaRan1(p, tasks, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved {
		t.Fatal("survivor failed to finish")
	}
	for _, pid := range []int{1, 2, 3} {
		if !rep.Crashed[pid] {
			t.Fatalf("processor %d should have crashed", pid)
		}
	}
	if rep.Crashed[0] {
		t.Fatal("processor 0 crashed unexpectedly")
	}
}

func TestRunAllToAllNoMessages(t *testing.T) {
	p, tasks := 3, 9
	rep, err := Run(fastCfg(p, tasks, 2), core.NewAllToAll(p, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != 0 {
		t.Fatalf("oblivious algorithm sent %d messages", rep.Messages)
	}
	if rep.TaskExecutions != int64(p*tasks) {
		t.Fatalf("executions = %d, want p·t = %d", rep.TaskExecutions, p*tasks)
	}
}

func TestRunTimeout(t *testing.T) {
	cfg := fastCfg(1, 1, 1)
	cfg.Timeout = 20 * time.Millisecond
	_, err := Run(cfg, []sim.Machine{stuckMachine{}})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

type stuckMachine struct{}

func (stuckMachine) Step(now int64, inbox []sim.Delivery) sim.StepResult { return sim.StepResult{} }
func (stuckMachine) KnowsAllDone() bool                                  { return false }

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{P: 2, T: 1, D: 1}, nil); err == nil {
		t.Fatal("machine count mismatch accepted")
	}
	if _, err := Run(Config{P: 1, T: 0, D: 1}, []sim.Machine{stuckMachine{}}); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := Run(Config{P: 1, T: 1, D: 0}, []sim.Machine{stuckMachine{}}); err == nil {
		t.Fatal("D=0 accepted")
	}
}

func TestRunManyProcessorsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	p, tasks := 16, 128
	rep, err := Run(fastCfg(p, tasks, 4), core.NewPaRan2(p, tasks, 77))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved {
		t.Fatal("not solved")
	}
}
