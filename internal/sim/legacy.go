package sim

import "fmt"

// RunLegacy executes machines under the adversary using the original
// per-message engine: every broadcast is materialized as p-1 separately
// queued Message values pushed through a delivery min-heap, and the
// adversary's Delay is consulted once per recipient. It is kept verbatim
// (modulo the shared step/schedule contracts) as the reference
// implementation for the multicast-native engine (Run): both must produce
// identical Results for every algorithm × adversary pair. New code should
// call Run; RunLegacy exists for equivalence tests and benchmarks.
func RunLegacy(cfg Config, machines []Machine, adv Adversary) (*Result, error) {
	maxSteps, err := validateRun(cfg, machines, adv)
	if err != nil {
		return nil, err
	}

	s := &legacyState{
		cfg:      cfg,
		machines: machines,
		adv:      adv,
		inbox:    make([][]Delivery, cfg.P),
		pending:  newDelayQueue(),
		crashed:  make([]bool, cfg.P),
		halted:   make([]bool, cfg.P),
		tasks:    NewTaskLedger(cfg.T),
		res: &Result{
			SolvedAt:    -1,
			PerProcWork: make([]int64, cfg.P),
			FirstDoneAt: make([]int64, cfg.T),
		},
	}
	s.omitter, _ = adv.(Omitter)
	for z := range s.res.FirstDoneAt {
		s.res.FirstDoneAt[z] = -1
	}

	for now := int64(0); now < maxSteps; now++ {
		if s.allStopped() {
			break
		}
		s.tick(now)
		if s.res.Solved && cfg.StopAtSolved {
			break
		}
	}
	if !s.res.Solved {
		return s.res, ErrStepCap
	}
	return s.res, nil
}

// validateRun checks a run configuration; shared by both engines.
func validateRun(cfg Config, machines []Machine, adv Adversary) (int64, error) {
	if len(machines) != cfg.P {
		return 0, fmt.Errorf("sim: %d machines for P=%d", len(machines), cfg.P)
	}
	if cfg.P < 1 || cfg.T < 1 {
		return 0, fmt.Errorf("sim: need P ≥ 1 and T ≥ 1, got P=%d T=%d", cfg.P, cfg.T)
	}
	if adv.D() < 1 {
		return 0, fmt.Errorf("sim: adversary delay bound %d < 1", adv.D())
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}
	return maxSteps, nil
}

type legacyState struct {
	cfg      Config
	machines []Machine
	adv      Adversary
	omitter  Omitter // adv, when it may omit deliveries
	inbox    [][]Delivery
	pending  *delayQueue
	crashed  []bool
	halted   []bool
	tasks    *TaskLedger
	res      *Result
	dec      Decision
}

func (s *legacyState) allStopped() bool {
	for i := range s.machines {
		if !s.crashed[i] && !s.halted[i] {
			return false
		}
	}
	return true
}

// tick advances one global time unit.
func (s *legacyState) tick(now int64) {
	// 1. Deliver messages due now (or earlier, defensively). Each queued
	// Message is wrapped in its own single-recipient Multicast record —
	// the per-message allocations are exactly what makes this engine the
	// slow reference.
	for _, m := range s.pending.popDue(now) {
		if !s.crashed[m.To] && !s.halted[m.To] {
			mc := &Multicast{From: m.From, SentAt: m.SentAt, Payload: m.Payload}
			s.inbox[m.To] = append(s.inbox[m.To], Delivery{MC: mc, At: m.DeliverAt})
		}
	}

	// 2. Ask the adversary for this unit's schedule.
	v := &View{
		Now:      now,
		P:        s.cfg.P,
		T:        s.cfg.T,
		Tasks:    s.tasks, // shared; adversaries must not mutate
		Machines: s.machines,
		Inboxes:  s.inbox,
		Crashed:  s.crashed,
		Halted:   s.halted,
		InFlight: s.pending.len(),
	}
	s.dec.reset()
	dec := &s.dec
	s.adv.Schedule(v, dec)
	for _, i := range dec.Crash {
		if i >= 0 && i < s.cfg.P {
			if !s.crashed[i] {
				// Deliveries received but never consumed are lost with the
				// crash (matching the multicast engine), so a later revive
				// starts with an empty inbox.
				s.inbox[i] = nil
			}
			s.crashed[i] = true
		}
	}
	for _, i := range dec.Revive {
		if i >= 0 && i < s.cfg.P && s.crashed[i] && !s.halted[i] {
			s.crashed[i] = false
			RejoinMachine(s.machines[i])
		}
	}

	// 3. Execute the scheduled local steps.
	informed := false
	for _, i := range dec.Active {
		if i < 0 || i >= s.cfg.P || s.crashed[i] || s.halted[i] {
			continue
		}
		inbox := s.inbox[i]
		s.inbox[i] = nil
		r := s.machines[i].Step(now, inbox)

		s.res.TotalSteps++
		s.res.PerProcWork[i]++
		if !s.res.Solved {
			s.res.Work++
		}

		if z := r.PerformedTask(); z != NoTask {
			if z < 0 || z >= s.cfg.T {
				panic(fmt.Sprintf("sim: machine %d performed out-of-range task %d", i, z))
			}
			s.res.TaskExecutions++
			if s.res.FirstDoneAt[z] == -1 || s.res.FirstDoneAt[z] == now {
				s.res.PrimaryExecutions++
			} else {
				s.res.SecondaryExecutions++
			}
			if s.tasks.MarkDone(z) {
				s.res.FirstDoneAt[z] = now
			}
		}

		if r.Broadcast != nil {
			var wireSize int64
			if sz, ok := r.Broadcast.(Payload); ok {
				wireSize = int64(sz.WireSize())
			}
			for j := 0; j < s.cfg.P; j++ {
				if j == i {
					continue
				}
				delay := s.adv.Delay(i, j, now)
				if delay < 1 || delay > s.adv.D() {
					panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, s.adv.D()))
				}
				// An omitted copy is charged as sent but never queued (the
				// delay was still drawn, keeping stateful delay streams
				// aligned with the multicast engine).
				if s.omitter == nil || !s.omitter.Omit(i, j, now) {
					s.pending.push(Message{From: i, To: j, SentAt: now, DeliverAt: now + delay, Payload: r.Broadcast})
				}
				s.res.TotalMessages++
				if !s.res.Solved {
					s.res.Messages++
					s.res.Bytes += wireSize
				}
			}
		}

		for _, snd := range r.Sends {
			if snd.To < 0 || snd.To >= s.cfg.P || snd.To == i || snd.Payload == nil {
				continue
			}
			delay := s.adv.Delay(i, snd.To, now)
			if delay < 1 || delay > s.adv.D() {
				panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, s.adv.D()))
			}
			if s.omitter == nil || !s.omitter.Omit(i, snd.To, now) {
				s.pending.push(Message{From: i, To: snd.To, SentAt: now, DeliverAt: now + delay, Payload: snd.Payload})
			}
			s.res.TotalMessages++
			if !s.res.Solved {
				s.res.Messages++
				if sz, ok := snd.Payload.(Payload); ok {
					s.res.Bytes += int64(sz.WireSize())
				}
			}
		}

		if r.Halt {
			s.halted[i] = true
			if !s.res.Solved && !(s.tasks.Undone() == 0 && s.machines[i].KnowsAllDone()) {
				s.res.HaltedEarly = true
			}
		}
		if s.tasks.Undone() == 0 && s.machines[i].KnowsAllDone() {
			informed = true
		}
	}

	// 4. Solved check: all tasks done and some live processor informed.
	if !s.res.Solved && s.tasks.Undone() == 0 {
		if !informed {
			for i, m := range s.machines {
				if !s.crashed[i] && m.KnowsAllDone() {
					informed = true
					break
				}
			}
		}
		if informed {
			s.res.Solved = true
			s.res.SolvedAt = now
		}
	}
}
