package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"doall/internal/twin"
)

// Client is the thin HTTP client half of the service plane — what
// cmd/doallctl is built from. It holds no state beyond the base URL:
// all job state lives in the daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:7117".
	Base string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// apiError decodes the server's {"error": "..."} body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		if resp.StatusCode == http.StatusNotFound {
			return fmt.Errorf("%w: %s", ErrNotFound, e.Error)
		}
		return fmt.Errorf("doalld: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("doalld: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitDoc submits a raw job document (any form ParseJob accepts) and
// returns the assigned status.
func (c *Client) SubmitDoc(ctx context.Context, doc []byte) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(doc))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Submit marshals and submits a typed Job.
func (c *Client) Submit(ctx context.Context, job Job) (JobStatus, error) {
	doc, err := json.Marshal(job)
	if err != nil {
		return JobStatus{}, err
	}
	return c.SubmitDoc(ctx, doc)
}

// Status fetches one job's progress.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// List fetches every job the daemon knows, in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.getJSON(ctx, "/v1/jobs", &out)
	return out.Jobs, err
}

// Cancel asks the daemon to cancel a job and returns its status after.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Drain stops the daemon's admission; running jobs continue. Returns the
// number of jobs still open.
func (c *Client) Drain(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/drain"), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	var out struct {
		ActiveJobs int `json:"active_jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out.ActiveJobs, err
}

// Predict asks the daemon for one twin prediction. The result's Mode
// says whether it came from the analytical twin or a fallback
// simulation.
func (c *Client) Predict(ctx context.Context, q twin.Query) (PredictResult, error) {
	doc, err := json.Marshal(q)
	if err != nil {
		return PredictResult{}, err
	}
	var res PredictResult
	err = c.postJSON(ctx, "/v1/predict", doc, &res)
	return res, err
}

// PredictBatch answers several queries in one round trip.
func (c *Client) PredictBatch(ctx context.Context, qs []twin.Query) ([]PredictResult, error) {
	doc, err := json.Marshal(map[string]any{"queries": qs})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []PredictResult `json:"results"`
	}
	err = c.postJSON(ctx, "/v1/predict", doc, &out)
	return out.Results, err
}

func (c *Client) postJSON(ctx context.Context, path string, doc []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Version fetches the daemon's build version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var out struct {
		Version string `json:"version"`
	}
	err := c.getJSON(ctx, "/v1/version", &out)
	return out.Version, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) (ok, draining bool, err error) {
	var out struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	err = c.getJSON(ctx, "/healthz", &out)
	return out.OK, out.Draining, err
}

// Results follows a job's live NDJSON cell stream, invoking fn for every
// completed cell in completion order, and returns the stream's trailer.
// A nil fn just drains. If the stream ends without a trailer (daemon
// died mid-stream), an Interrupted trailer is synthesized.
func (c *Client) Results(ctx context.Context, id string, fn func(ResultCell) error) (ResultTrailer, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/results"), nil)
	if err != nil {
		return ResultTrailer{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return ResultTrailer{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ResultTrailer{}, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		// Cell lines carry "cell"; the single trailer line carries "done".
		var line struct {
			I    *int            `json:"i"`
			Cell json.RawMessage `json:"cell"`
			ResultTrailer
			DonePresent *bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			return ResultTrailer{}, fmt.Errorf("doalld: bad stream line: %w", err)
		}
		if line.DonePresent != nil {
			tr := line.ResultTrailer
			tr.Done = *line.DonePresent
			return tr, sc.Err()
		}
		if line.Cell != nil && line.I != nil && fn != nil {
			var rc ResultCell
			if err := json.Unmarshal(raw, &rc); err != nil {
				return ResultTrailer{}, fmt.Errorf("doalld: bad cell line: %w", err)
			}
			if err := fn(rc); err != nil {
				return ResultTrailer{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return ResultTrailer{}, err
	}
	return ResultTrailer{Interrupted: true}, nil
}

// WaitDone polls until the job reaches a terminal state, the context
// expires, or the daemon stops answering.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
