// Command contention explores the combinatorial machinery of Section 4:
// it searches for low-contention schedule lists, reports Cont(Σ) against
// the 3nH_n bound of Lemma 4.1, and sweeps (d)-Cont(Σ) against the
// n·ln n + 8pd·ln(e+n/d) bound of Theorem 4.4.
//
// Usage:
//
//	contention -n 6 -k 6 -restarts 500        # exact contention search
//	contention -n 256 -k 16 -dsweep            # d-contention of a random list
package main

import (
	"flag"
	"fmt"
	"os"

	"doall"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "contention:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 6, "permutation length (schedules over [n])")
		k        = flag.Int("k", 0, "number of permutations in the list (default n)")
		restarts = flag.Int("restarts", 200, "random-restart search iterations")
		seed     = flag.Int64("seed", 1, "random seed")
		dsweep   = flag.Bool("dsweep", false, "sweep d-contention of a random list instead of searching")
		samples  = flag.Int("samples", 100, "σ probes for contention estimates")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("contention", doall.Version())
		return nil
	}
	if *k == 0 {
		*k = *n
	}

	if *dsweep {
		l := doall.RandomSchedules(*k, *n, *seed)
		fmt.Printf("random list: k=%d permutations of [%d]\n", *k, *n)
		fmt.Printf("%6s  %14s  %14s  %8s\n", "d", "(d)-Cont est", "Thm 4.4 bound", "ratio")
		for d := 1; d <= *n; d *= 2 {
			est := doall.DContentionEstimate(l, d, *samples, *seed)
			b := doall.DContentionBound(*n, *k, d)
			fmt.Printf("%6d  %14d  %14.0f  %8.3f\n", d, est, b, float64(est)/b)
		}
		return nil
	}

	res := doall.SearchSchedules(*k, *n, *restarts, *seed)
	kind := "estimated"
	if res.Exact {
		kind = "exact"
	}
	fmt.Printf("searched %d candidate lists (k=%d, n=%d)\n", res.Candidates, *k, *n)
	fmt.Printf("best Cont(Σ) = %d (%s); Lemma 4.1 bound 3nH_n = %d\n",
		res.Cont, kind, doall.HarmonicBound(*n))
	fmt.Printf("trivial bounds: n = %d ≤ Cont ≤ n² = %d\n", *n, *n**n)
	for i, p := range res.List {
		fmt.Printf("  π_%d = %v\n", i, []int(p))
	}
	return nil
}
