package core

import (
	"doall/internal/perm"
	"doall/internal/sim"
)

// ObliDo is the oblivious scheduling algorithm of Fig. 2: n processors
// perform n jobs, processor i in the order given by permutation π_i of the
// schedule list Σ, with no communication and no completion checks. Every
// processor performs every job, so its work is always n² job units; its
// role in the paper (Lemma 4.2) is that the number of *primary* job
// executions — executions of jobs not previously performed by anyone — is
// at most Cont(Σ). The simulator's Result.PrimaryExecutions measures
// exactly that, which experiment E3 compares against Cont(Σ).
type ObliDo struct {
	pid   int
	order perm.Perm // schedule over jobs
	jobs  Jobs
	jobIx int // index into order
	unit  int // tasks of the current job already performed
}

var (
	_ sim.Machine      = (*ObliDo)(nil)
	_ sim.TaskIntender = (*ObliDo)(nil)
	_ sim.Cloner       = (*ObliDo)(nil)
	_ sim.Resetter     = (*ObliDo)(nil)
	_ sim.Rejoiner     = (*ObliDo)(nil)
)

// NewObliDo builds p ObliDo machines for t tasks using the schedule list
// l; processor i uses permutation l[i mod len(l)]. The permutations must
// be over NewJobs(p, t).N elements.
func NewObliDo(p, t int, l perm.List) []sim.Machine {
	jobs := NewJobs(p, t)
	if l.N() != jobs.N {
		panic("core: ObliDo schedule list length must equal the number of jobs")
	}
	ms := make([]sim.Machine, p)
	for i := range ms {
		ms[i] = &ObliDo{pid: i, order: l[i%len(l)], jobs: jobs}
	}
	return ms
}

// Step implements sim.Machine.
func (m *ObliDo) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	if m.jobIx >= len(m.order) {
		return sim.StepResult{Halt: true}
	}
	job := m.order[m.jobIx]
	z := m.jobs.Start(job) + m.unit
	m.unit++
	if m.unit >= m.jobs.Size(job) {
		m.jobIx++
		m.unit = 0
	}
	r := sim.StepResult{Halt: m.jobIx >= len(m.order)}
	r.Perform(z)
	return r
}

// KnowsAllDone implements sim.Machine.
func (m *ObliDo) KnowsAllDone() bool { return m.jobIx >= len(m.order) }

// NextTask implements sim.TaskIntender.
func (m *ObliDo) NextTask() int {
	if m.jobIx >= len(m.order) {
		return -1
	}
	return m.jobs.Start(m.order[m.jobIx]) + m.unit
}

// CloneMachine implements sim.Cloner.
func (m *ObliDo) CloneMachine() sim.Machine {
	c := *m
	return &c
}

// Reset implements sim.Resetter.
func (m *ObliDo) Reset() { m.jobIx, m.unit = 0, 0 }

// Rejoin implements sim.Rejoiner: the schedule restarts from the top of
// the processor's permutation (ObliDo communicates nothing, so rejoining
// is a plain reset).
func (m *ObliDo) Rejoin() { m.Reset() }
