// Package runtime executes Do-All step machines on real goroutines
// connected by delayed channels, complementing the deterministic simulator
// (internal/sim). Each processor runs in its own goroutine at its own
// speed; messages travel through a postman goroutine that holds each one
// for an adversary-chosen delay ≤ D. This is the substrate the examples
// use: the same sim.Machine implementations, but with genuine asynchrony
// and user-supplied task bodies.
//
// The runtime measures work in local steps and message complexity in
// point-to-point sends; because goroutine scheduling is nondeterministic,
// these are single-execution observations, not worst cases — use the
// simulator for reproducible experiments.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"doall/internal/sim"
)

// Config configures a runtime execution.
type Config struct {
	// P is the number of processors, T the number of tasks.
	P, T int
	// D is the maximum message delay, in Units.
	D int
	// Unit is the real-time length of one delay unit (default 200µs).
	// Processor step pacing is Unit as well, so D units ≈ D steps, mirroring
	// the model's "a processor takes at most d local steps during any
	// global period of duration d".
	Unit time.Duration
	// Seed drives message-delay randomness.
	Seed int64
	// Task, when non-nil, is invoked for every performed task id (possibly
	// multiple times per id — tasks must be idempotent, as in the model).
	Task func(id int)
	// Timeout aborts the run (default 30s).
	Timeout time.Duration
	// CrashAfter, when non-nil, maps pid → number of local steps after
	// which the processor crashes silently.
	CrashAfter map[int]int
	// ReviveAfter, when non-nil, maps pid → number of units of downtime
	// after which a processor crashed by CrashAfter restarts: it discards
	// everything delivered while it was down, rejoins its machine with
	// fresh initial knowledge (sim.RejoinMachine — the same rebase-on-
	// revive rule as the simulator), and resumes stepping. Pids without a
	// CrashAfter entry never crash, so their ReviveAfter entry is inert.
	ReviveAfter map[int]int
}

// Report summarizes one runtime execution.
type Report struct {
	// Solved reports whether every task was performed.
	Solved bool
	// Steps is the total number of local steps across processors; Work in
	// the model's sense (charging until solved) is bounded above by it.
	Steps int64
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// TaskExecutions counts task performances with multiplicity.
	TaskExecutions int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// PerProcSteps[i] is processor i's local step count.
	PerProcSteps []int64
	// Crashed[i] reports whether processor i was crashed by CrashAfter.
	Crashed []bool
	// Revived[i] reports whether processor i restarted after its crash
	// (ReviveAfter).
	Revived []bool
}

// ErrTimeout is returned when the run exceeds its Timeout before solving.
var ErrTimeout = errors.New("runtime: timed out before Do-All was solved")

// Run executes the machines until every live processor halts, then reports.
func Run(cfg Config, machines []sim.Machine) (*Report, error) {
	if len(machines) != cfg.P {
		return nil, fmt.Errorf("runtime: %d machines for P=%d", len(machines), cfg.P)
	}
	if cfg.P < 1 || cfg.T < 1 {
		return nil, fmt.Errorf("runtime: need P ≥ 1 and T ≥ 1")
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("runtime: need D ≥ 1")
	}
	unit := cfg.Unit
	if unit <= 0 {
		unit = 200 * time.Microsecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	r := &runner{
		cfg:      cfg,
		unit:     unit,
		post:     make(chan sim.Message, 16*cfg.P),
		inboxes:  make([]chan sim.Message, cfg.P),
		done:     make(chan struct{}),
		taskDone: make([]atomic.Bool, cfg.T),
		report: &Report{
			PerProcSteps: make([]int64, cfg.P),
			Crashed:      make([]bool, cfg.P),
			Revived:      make([]bool, cfg.P),
		},
	}
	for i := range r.inboxes {
		r.inboxes[i] = make(chan sim.Message, 64*cfg.P)
	}
	r.undone.Store(int64(cfg.T))

	start := time.Now()

	var postWG sync.WaitGroup
	postWG.Add(1)
	go func() {
		defer postWG.Done()
		r.postman()
	}()

	var procWG sync.WaitGroup
	for i := 0; i < cfg.P; i++ {
		procWG.Add(1)
		go func(pid int) {
			defer procWG.Done()
			r.processor(pid, machines[pid])
		}(i)
	}

	finished := make(chan struct{})
	go func() {
		procWG.Wait()
		close(finished)
	}()

	var err error
	select {
	case <-finished:
	case <-time.After(timeout):
		err = ErrTimeout
	}
	close(r.done)
	<-finished // processors observe done and exit even on timeout
	postWG.Wait()

	r.finishCounters()
	r.report.Elapsed = time.Since(start)
	r.report.Solved = r.undone.Load() == 0 && err == nil
	if !r.report.Solved && err == nil {
		err = fmt.Errorf("runtime: all processors halted with %d tasks undone", r.undone.Load())
	}
	return r.report, err
}

type runner struct {
	cfg      Config
	unit     time.Duration
	post     chan sim.Message
	inboxes  []chan sim.Message
	done     chan struct{}
	taskDone []atomic.Bool
	undone   atomic.Int64
	report   *Report
	steps    atomic.Int64
	msgs     atomic.Int64
	execs    atomic.Int64
}

// postman delays and delivers messages. One goroutine per in-flight
// message would also work; a single goroutine with timers keeps shutdown
// simple and leak-free.
func (r *runner) postman() {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case <-r.done:
			return
		case m := <-r.post:
			delay := time.Duration(1+rng.Intn(r.cfg.D)) * r.unit
			wg.Add(1)
			time.AfterFunc(delay, func() {
				defer wg.Done()
				select {
				case r.inboxes[m.To] <- m:
				case <-r.done:
				default: // receiver's inbox full or gone: drop (it halted)
				}
			})
		}
	}
}

func (r *runner) processor(pid int, m sim.Machine) {
	crashAt := -1
	if r.cfg.CrashAfter != nil {
		if v, ok := r.cfg.CrashAfter[pid]; ok {
			crashAt = v
		}
	}
	reviveAfter := -1
	if r.cfg.ReviveAfter != nil {
		if v, ok := r.cfg.ReviveAfter[pid]; ok && v >= 0 {
			reviveAfter = v
		}
	}
	var local int64
	ticker := time.NewTicker(r.unit)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			r.report.PerProcSteps[pid] = local
			return
		case <-ticker.C:
		}
		if crashAt >= 0 && local >= int64(crashAt) {
			r.report.Crashed[pid] = true
			if reviveAfter < 0 {
				r.report.PerProcSteps[pid] = local
				return
			}
			// Restartable crash: stay down for the configured number of
			// units, lose everything delivered in the meantime, rejoin the
			// machine with fresh knowledge, and resume. The crash fires
			// only once — a revived processor runs to completion.
			for k := 0; k < reviveAfter; k++ {
				select {
				case <-r.done:
					r.report.PerProcSteps[pid] = local
					return
				case <-ticker.C:
				}
			}
		discard:
			for {
				select {
				case <-r.inboxes[pid]:
				default:
					break discard
				}
			}
			sim.RejoinMachine(m)
			r.report.Revived[pid] = true
			crashAt = -1
			continue
		}

		// Drain the inbox without blocking: processing any number of
		// pending messages is part of this one step, per the model. Each
		// channel message is wrapped in its own delivery record; the
		// runtime is paced by wall-clock units, so the per-message
		// allocation is noise here (the simulator's engine pools these).
		var inbox []sim.Delivery
	drain:
		for {
			select {
			case msg := <-r.inboxes[pid]:
				mc := &sim.Multicast{From: msg.From, SentAt: msg.SentAt, Payload: msg.Payload}
				inbox = append(inbox, sim.Delivery{MC: mc, At: local})
			default:
				break drain
			}
		}

		res := m.Step(local, inbox)
		local++
		r.steps.Add(1)

		if z := res.PerformedTask(); z != sim.NoTask {
			r.execs.Add(1)
			if !r.taskDone[z].Swap(true) {
				r.undone.Add(-1)
			}
			if r.cfg.Task != nil {
				r.cfg.Task(z)
			}
		}
		if res.Broadcast != nil {
			for j := 0; j < r.cfg.P; j++ {
				if j == pid {
					continue
				}
				if !r.send(pid, j, local, res.Broadcast) {
					return
				}
			}
		}
		for _, snd := range res.Sends {
			if snd.To < 0 || snd.To >= r.cfg.P || snd.To == pid || snd.Payload == nil {
				continue
			}
			if !r.send(pid, snd.To, local, snd.Payload) {
				return
			}
		}
		if res.Halt {
			r.report.PerProcSteps[pid] = local
			return
		}
	}
}

// send enqueues one point-to-point message, returning false if the run is
// shutting down (the caller should exit its loop).
func (r *runner) send(from, to int, local int64, payload any) bool {
	r.msgs.Add(1)
	select {
	case r.post <- sim.Message{From: from, To: to, SentAt: local, Payload: payload}:
		return true
	case <-r.done:
		r.report.PerProcSteps[from] = local
		return false
	}
}

// finishCounters copies atomics into the report after all processor
// goroutines have joined.
func (r *runner) finishCounters() {
	r.report.Steps = r.steps.Load()
	r.report.Messages = r.msgs.Load()
	r.report.TaskExecutions = r.execs.Load()
}
