// Package adversary provides implementations of the d-adversary of
// Kowalski & Shvartsman Section 2.2: schedulers that control processor
// speeds, crashes, and message delays up to a bound d. It includes benign
// adversaries (fair, random) used to measure upper bounds, crash
// adversaries for fault-tolerance tests, and the lower-bound constructions
// of Theorems 3.1 and 3.4.
package adversary

import (
	"math/rand"

	"doall/internal/sim"
)

// Fair is the benign d-adversary: every processor takes a step every time
// unit and every message is delayed exactly Delay units (Delay ≤ d). With
// Delay == 1 it models the fastest legal network.
type Fair struct {
	Bound int64 // d
	Fixed int64 // actual delay applied, 1 ≤ Fixed ≤ Bound (0 means Bound)
}

var (
	_ sim.Adversary        = (*Fair)(nil)
	_ sim.MulticastDelayer = (*Fair)(nil)
	_ sim.UniformDelayer   = (*Fair)(nil)
)

// NewFair returns a Fair adversary with delay bound d that delays every
// message by exactly d.
func NewFair(d int64) *Fair { return &Fair{Bound: d, Fixed: d} }

// D implements sim.Adversary.
func (a *Fair) D() int64 { return a.Bound }

// Schedule implements sim.Adversary: all live processors step. It
// appends into the engine-owned decision, so scheduling allocates nothing
// once dec.Active has grown to capacity P.
func (a *Fair) Schedule(v *sim.View, dec *sim.Decision) {
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}

// Delay implements sim.Adversary.
func (a *Fair) Delay(from, to int, sentAt int64) int64 {
	if a.Fixed >= 1 && a.Fixed <= a.Bound {
		return a.Fixed
	}
	return a.Bound
}

// DelayMulticast implements sim.MulticastDelayer: one call answers a whole
// broadcast with the uniform fixed delay.
func (a *Fair) DelayMulticast(from int, sentAt int64, out []int64) {
	d := a.Delay(from, from, sentAt)
	for j := range out {
		out[j] = d
	}
}

// InboxAgnostic implements sim.InboxAgnostic: Fair never reads
// View.Inboxes, so the engine may run its grouped delivery path.
func (a *Fair) InboxAgnostic() bool { return true }

// DelayUniform implements sim.UniformDelayer: the fixed delay never
// depends on the recipient.
func (a *Fair) DelayUniform(from int, sentAt int64) (int64, bool) {
	return a.Delay(from, from, sentAt), true
}

// Random is a d-adversary that activates each processor independently with
// probability Activity each unit and delays each message uniformly in
// [1, d]. It models "disparate processor speeds and varying message
// latency" (paper Section 1). All randomness is drawn from a seeded source
// so runs are reproducible.
type Random struct {
	Bound    int64
	Activity float64
	rng      *rand.Rand
}

var (
	_ sim.Adversary        = (*Random)(nil)
	_ sim.MulticastDelayer = (*Random)(nil)
)

// NewRandom returns a Random adversary with delay bound d, per-unit
// activation probability activity, and the given seed.
func NewRandom(d int64, activity float64, seed int64) *Random {
	return &Random{Bound: d, Activity: activity, rng: rand.New(rand.NewSource(seed))}
}

// D implements sim.Adversary.
func (a *Random) D() int64 { return a.Bound }

// Schedule implements sim.Adversary. To keep executions live it activates
// at least one non-crashed, non-halted processor each unit.
// InboxAgnostic implements sim.InboxAgnostic: Random's scheduling and
// delays never read View.Inboxes.
func (a *Random) InboxAgnostic() bool { return true }

func (a *Random) Schedule(v *sim.View, dec *sim.Decision) {
	for i := 0; i < v.P; i++ {
		if v.Crashed[i] || v.Halted[i] {
			continue
		}
		if a.rng.Float64() < a.Activity {
			dec.Active = append(dec.Active, i)
		}
	}
	if len(dec.Active) == 0 {
		for i := 0; i < v.P; i++ {
			if !v.Crashed[i] && !v.Halted[i] {
				dec.Active = append(dec.Active, i)
				break
			}
		}
	}
}

// Delay implements sim.Adversary.
func (a *Random) Delay(from, to int, sentAt int64) int64 {
	return 1 + a.rng.Int63n(a.Bound)
}

// DelayMulticast implements sim.MulticastDelayer. It draws delays in
// ascending recipient order, consuming the random stream exactly as the
// per-recipient Delay loop would, so both engine paths are replayable
// against each other.
func (a *Random) DelayMulticast(from int, sentAt int64, out []int64) {
	for j := range out {
		if j != from {
			out[j] = 1 + a.rng.Int63n(a.Bound)
		}
	}
}

// CrashEvent schedules processor Pid to crash at time At.
type CrashEvent struct {
	Pid int
	At  int64
}

// Crashing wraps another adversary and injects crash failures at scheduled
// times. The wrapped adversary's scheduling, delays, and optional engine
// extensions are otherwise used unchanged (forwardInner). It never
// crashes the last live processor (the model requires at least one
// survivor).
type Crashing struct {
	forwardInner
	Events []CrashEvent
}

var (
	_ sim.Adversary        = (*Crashing)(nil)
	_ sim.MulticastDelayer = (*Crashing)(nil)
	_ sim.UniformDelayer   = (*Crashing)(nil)
	_ sim.InboxAgnostic    = (*Crashing)(nil)
	_ sim.Omitter          = (*Crashing)(nil)
)

// NewCrashing wraps inner with the given crash schedule.
func NewCrashing(inner sim.Adversary, events []CrashEvent) *Crashing {
	return &Crashing{forwardInner: forward(inner), Events: events}
}

// Schedule implements sim.Adversary. Crash injection is a Schedule side
// effect tied to exact times, so any NextWake idle promise inherited from
// the inner adversary is clamped to the next pending crash event —
// otherwise the engine's fast-forward would jump over the event's time
// unit and silently drop the crash. The survivor guard counts crashes an
// inner adversary already recorded in dec this unit (pendingLive), so
// composed fault injectors can never kill the last live processor
// between them.
func (a *Crashing) Schedule(v *sim.View, dec *sim.Decision) {
	a.Inner.Schedule(v, dec)
	live := pendingLive(v, dec)
	for _, e := range a.Events {
		if e.Pid < 0 || e.Pid >= v.P {
			continue
		}
		if e.At == v.Now && live > 1 && !v.Crashed[e.Pid] && !crashScheduled(dec, e.Pid) {
			dec.Crash = append(dec.Crash, e.Pid)
			live--
		}
		if dec.NextWake > 0 && e.At > v.Now && e.At < dec.NextWake && !v.Crashed[e.Pid] {
			dec.NextWake = e.At
		}
	}
}

// SlowSet is a d-adversary that runs a designated subset of processors at
// a fraction of full speed (one step every Period units) while the rest
// run at full speed; messages are delayed by the full bound d. It models
// persistent speed disparity.
type SlowSet struct {
	Bound  int64
	Slow   map[int]bool
	Period int64
}

var (
	_ sim.Adversary        = (*SlowSet)(nil)
	_ sim.MulticastDelayer = (*SlowSet)(nil)
	_ sim.UniformDelayer   = (*SlowSet)(nil)
)

// NewSlowSet returns a SlowSet adversary: processors in slow take one step
// every period units.
func NewSlowSet(d int64, slow []int, period int64) *SlowSet {
	m := make(map[int]bool, len(slow))
	for _, i := range slow {
		m[i] = true
	}
	return &SlowSet{Bound: d, Slow: m, Period: period}
}

// D implements sim.Adversary.
func (a *SlowSet) D() int64 { return a.Bound }

// Schedule implements sim.Adversary. When every processor is in the slow
// set and off-period (nothing can step), the decision carries a NextWake
// promise so the engine fast-forwards to the next period boundary.
// InboxAgnostic implements sim.InboxAgnostic: SlowSet never reads
// View.Inboxes.
func (a *SlowSet) InboxAgnostic() bool { return true }

func (a *SlowSet) Schedule(v *sim.View, dec *sim.Decision) {
	for i := 0; i < v.P; i++ {
		if a.Slow[i] && v.Now%a.Period != 0 {
			continue
		}
		dec.Active = append(dec.Active, i)
	}
	if len(dec.Active) == 0 {
		dec.NextWake = (v.Now/a.Period + 1) * a.Period
	}
}

// Delay implements sim.Adversary.
func (a *SlowSet) Delay(from, to int, sentAt int64) int64 { return a.Bound }

// DelayMulticast implements sim.MulticastDelayer.
func (a *SlowSet) DelayMulticast(from int, sentAt int64, out []int64) {
	for j := range out {
		out[j] = a.Bound
	}
}

// DelayUniform implements sim.UniformDelayer.
func (a *SlowSet) DelayUniform(from int, sentAt int64) (int64, bool) { return a.Bound, true }

// SlowSetOver is the composable form of SlowSet: it wraps another
// adversary and removes the designated slow processors from its schedule
// except every Period-th unit, leaving the inner adversary's crashes and
// message delays untouched. Composition makes mixed scenarios declarative —
// e.g. Crashing over SlowSetOver over Fair gives a network with fixed
// delays, a persistently slow subset, and scheduled crash failures. With a
// Fair inner adversary it produces exactly the Results of the standalone
// SlowSet (asserted by tests).
//
// Unlike the standalone SlowSet, SlowSetOver never adds a NextWake
// promise of its own: skipping to the next period boundary would also
// skip the inner adversary's per-unit Schedule calls, and those may carry
// time-dependent side effects (crash injection, stage bookkeeping) that
// the engine's fast-forward must not jump over. It only forwards promises
// the inner adversary itself makes. Prefer plain SlowSet when no inner
// composition is needed.
type SlowSetOver struct {
	forwardInner
	Slow   map[int]bool
	Period int64
}

var (
	_ sim.Adversary        = (*SlowSetOver)(nil)
	_ sim.MulticastDelayer = (*SlowSetOver)(nil)
	_ sim.UniformDelayer   = (*SlowSetOver)(nil)
	_ sim.InboxAgnostic    = (*SlowSetOver)(nil)
	_ sim.Omitter          = (*SlowSetOver)(nil)
)

// NewSlowSetOver wraps inner so processors in slow step only every period
// units (when inner schedules them at all).
func NewSlowSetOver(inner sim.Adversary, slow []int, period int64) *SlowSetOver {
	m := make(map[int]bool, len(slow))
	for _, i := range slow {
		m[i] = true
	}
	if period < 1 {
		period = 1
	}
	return &SlowSetOver{forwardInner: forward(inner), Slow: m, Period: period}
}

// Schedule implements sim.Adversary: the inner decision filtered in
// place to drop slow processors off-period. The inner adversary's
// NextWake promise stays valid — filtering only removes activations,
// never adds them — so idle fast-forwarding still works when the inner
// adversary promises it.
func (a *SlowSetOver) Schedule(v *sim.View, dec *sim.Decision) {
	a.Inner.Schedule(v, dec)
	if v.Now%a.Period != 0 {
		kept := dec.Active[:0]
		for _, i := range dec.Active {
			if !a.Slow[i] {
				kept = append(kept, i)
			}
		}
		dec.Active = kept
	}
}
