package main

import (
	"bytes"
	"strings"
	"testing"

	"doall"
)

func TestScenarioFromFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want doall.Scenario
	}{
		{
			name: "defaults",
			args: nil,
			want: doall.Scenario{Algorithm: "DA", Adversary: "fair", P: 8, T: 64, Q: 2, D: 1,
				Seed: 1, Trials: 1, SearchRestarts: 32, Shards: 1},
		},
		{
			name: "explicit",
			args: []string{"-algo", "PaRan1", "-p", "4", "-t", "32", "-d", "3", "-seed", "9", "-trials", "5"},
			want: doall.Scenario{Algorithm: "PaRan1", Adversary: "fair", P: 4, T: 32, Q: 2, D: 3,
				Seed: 9, Trials: 5, SearchRestarts: 32, Shards: 1},
		},
		{
			name: "adversary expression",
			args: []string{"-adversary", "crashing(slow-set(fair),crash=0@5)"},
			want: doall.Scenario{Algorithm: "DA", Adversary: "crashing(slow-set(fair),crash=0@5)",
				P: 8, T: 64, Q: 2, D: 1, Seed: 1, Trials: 1, SearchRestarts: 32, Shards: 1},
		},
		{
			name: "shards count",
			args: []string{"-shards", "4"},
			want: doall.Scenario{Algorithm: "DA", Adversary: "fair", P: 8, T: 64, Q: 2, D: 1,
				Seed: 1, Trials: 1, SearchRestarts: 32, Shards: 4},
		},
		{
			name: "shards auto",
			args: []string{"-shards", "auto"},
			want: doall.Scenario{Algorithm: "DA", Adversary: "fair", P: 8, T: 64, Q: 2, D: 1,
				Seed: 1, Trials: 1, SearchRestarts: 32, Shards: doall.ShardsAuto},
		},
		{
			name: "json spec",
			args: []string{"-spec", `{"algorithm":"PaDet","p":5,"t":25,"d":2,"seed":7}`},
			want: doall.Scenario{Algorithm: "PaDet", P: 5, T: 25, D: 2, Seed: 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseFlags(tc.args)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := c.scenario()
			if err != nil {
				t.Fatal(err)
			}
			if sc != tc.want {
				t.Fatalf("scenario = %+v, want %+v", sc, tc.want)
			}
		})
	}
}

func TestRunUnknownNamesSurfaceRegistryErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-algo", "NoSuchAlgo", "-p", "2", "-t", "4"}, "unknown algorithm"},
		{[]string{"-adversary", "nope", "-p", "2", "-t", "4"}, "unknown adversary"},
		{[]string{"-adversary", "fair(", "-p", "2", "-t", "4"}, "expected argument"},
		{[]string{"-adversary", "crashing(crash=bad)", "-p", "2", "-t", "4"}, "PID@TIME"},
		{[]string{"-spec", `{"algorithm":"DA","bogus":1}`}, "bogus"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error = %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

func TestRunSlowSetAndCrashingEndToEnd(t *testing.T) {
	for _, adv := range []string{"crashing", "slow-set", "slow-set(slow=1,period=2)"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", "PaRan1", "-p", "4", "-t", "16", "-d", "2", "-adversary", adv}, &out); err != nil {
			t.Fatalf("adversary %q: %v", adv, err)
		}
		if !strings.Contains(out.String(), "work") || !strings.Contains(out.String(), "adversary="+adv) {
			t.Fatalf("adversary %q: unexpected output:\n%s", adv, out.String())
		}
	}
}

// TestRunFaultPlaneEndToEnd drives the crash-restart and omission
// adversaries through the CLI, including the documented
// 'restarting(fair, down=64)' form, and asserts byte-identical repeat
// runs (the CLI's determinism contract for fixed seeds).
func TestRunFaultPlaneEndToEnd(t *testing.T) {
	for _, adv := range []string{
		"restarting(fair, down=64)",
		"restarting",
		"restarting(crash=1@5, down=10)",
		"omitting",
		"omitting(drop=1@0:20, to=0)",
		"restarting(omitting(fair), down=8)",
	} {
		var first string
		for rep := 0; rep < 2; rep++ {
			var out bytes.Buffer
			if err := run([]string{"-algo", "PaRan1", "-p", "6", "-t", "24", "-d", "2", "-adversary", adv}, &out); err != nil {
				t.Fatalf("adversary %q: %v", adv, err)
			}
			if !strings.Contains(out.String(), "work") || !strings.Contains(out.String(), "adversary="+adv) {
				t.Fatalf("adversary %q: unexpected output:\n%s", adv, out.String())
			}
			if rep == 0 {
				first = out.String()
			} else if out.String() != first {
				t.Fatalf("adversary %q: repeat run not byte-identical:\n%s\nvs:\n%s", adv, first, out.String())
			}
		}
	}
}

func TestRunFaultPlaneFlagErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-adversary", "restarting(down=0)", "-p", "2", "-t", "4"}, "down=0"},
		{[]string{"-adversary", "restarting(crash=9@1)", "-p", "2", "-t", "4"}, "outside"},
		{[]string{"-adversary", "omitting(drop=oops)", "-p", "2", "-t", "4"}, "drop="},
		{[]string{"-adversary", "omitting(to=9)", "-p", "2", "-t", "4"}, "to="},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error = %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

func TestRunTrialsAveraging(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "AllToAll", "-p", "3", "-t", "9", "-trials", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E[work]     27.0") {
		t.Fatalf("averaged output missing deterministic E[work]:\n%s", out.String())
	}
}

// TestRunSpecRuntimeBackend: a -spec document selecting the goroutine
// runtime must print the runtime report, not dereference the (nil)
// simulator result.
func TestRunSpecRuntimeBackend(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-spec", `{"algorithm":"AllToAll","p":2,"t":4,"d":1,"backend":"runtime"}`}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "backend     runtime") || !strings.Contains(out.String(), "steps") {
		t.Fatalf("runtime-backend spec output missing runtime report:\n%s", out.String())
	}
}
