package scenario

import "testing"

// TestEstimateAccountsPermutationBacking pins the PA-family permutation
// term of the memory pre-estimation: PaRan1 (and PaDet) at p = 65536
// materialize a shared p·jobs·8-byte schedule backing — 32 GiB — and a
// -maxmem admission below that must fail fast instead of OOMing
// mid-sweep. The permutation-free algorithms must NOT be charged for it,
// or affordable DA sweeps at the same shape would be vetoed.
func TestEstimateAccountsPermutationBacking(t *testing.T) {
	const gib = int64(1) << 30
	shape := Scenario{P: 65536, T: 1 << 20, D: 8}

	pa := shape
	pa.Algorithm = AlgoPaRan1
	if got := EstimateCellBytes(pa); got < 32*gib {
		t.Fatalf("EstimateCellBytes(PaRan1, p=65536, t=2^20) = %d, want ≥ 32 GiB (%d)", got, 32*gib)
	}
	det := shape
	det.Algorithm = AlgoPaDet
	if got := EstimateCellBytes(det); got < 32*gib {
		t.Fatalf("EstimateCellBytes(PaDet, p=65536, t=2^20) = %d, want ≥ 32 GiB", got)
	}

	for _, algo := range []string{AlgoDA, AlgoPaRan2, AlgoAllToAll, AlgoObliDo} {
		sc := shape
		sc.Algorithm = algo
		if got := EstimateCellBytes(sc); got >= 32*gib {
			t.Errorf("EstimateCellBytes(%s, p=65536, t=2^20) = %d: charged the permutation backing it does not allocate", algo, got)
		}
	}

	// The sweep-level admission sees the worst cell: a grid mixing DA and
	// PaRan1 at this shape must estimate ≥ 32 GiB per worker.
	sweep := EstimateSweepBytes(SweepConfig{
		Algos:   []string{AlgoDA, AlgoPaRan1},
		Ps:      []int{65536},
		Ts:      []int{1 << 20},
		Ds:      []int64{8},
		Workers: 1,
	})
	if sweep < 32*gib {
		t.Fatalf("EstimateSweepBytes = %d, want ≥ 32 GiB", sweep)
	}
}
