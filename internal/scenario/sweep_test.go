package scenario

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"

	"doall/internal/bounds"
	"doall/internal/sim"
)

// TestSweepAdversaryGrid exercises the adversary-expression axis: every
// algorithm cell is measured under each expression, cells record their
// adversary, and crashing/slow-set are reachable from a sweep.
func TestSweepAdversaryGrid(t *testing.T) {
	cfg := SweepConfig{
		Algos:       []string{AlgoPaRan1},
		Ps:          []int{4},
		Ts:          []int{16},
		Ds:          []int64{2},
		Adversaries: []string{"fair", "crashing", "slow-set(period=2)"},
		BaseSeed:    3,
	}
	cells := RunSweep(cfg)
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3", len(cells))
	}
	for i, want := range cfg.Adversaries {
		c := cells[i]
		if c.Adversary != want {
			t.Errorf("cell %d adversary = %q, want %q", i, c.Adversary, want)
		}
		if c.Err != "" {
			t.Errorf("cell %d (%s) failed: %s", i, want, c.Err)
		}
		if c.Work <= 0 {
			t.Errorf("cell %d (%s): work %v", i, want, c.Work)
		}
	}
	// Same seed, same machines: the slow-set run must cost at least as
	// much time as the fair run (slow processors stretch the execution).
	if cells[2].SolvedAt < cells[0].SolvedAt {
		t.Errorf("slow-set solved at %v before fair's %v", cells[2].SolvedAt, cells[0].SolvedAt)
	}
	rep := NewSweepReport(cfg)
	if rep.Adversary != "fair;crashing;slow-set(period=2)" {
		t.Errorf("report adversary = %q", rep.Adversary)
	}
}

// TestSweepTheoryEpsilonFollowsQ pins the ε-from-q wiring end to end: a
// q-less sweep stamps Q=0 (so recorded baselines re-serialize
// byte-identically) and computes the DA theory column with the default
// ε = 0.5, while a q=8 sweep of the same grid point stamps Q and uses
// EpsilonForQ(8) — the bug this replaces hardcoded 0.5 for every q.
func TestSweepTheoryEpsilonFollowsQ(t *testing.T) {
	base := SweepConfig{
		Algos: []string{AlgoDA}, Ps: []int{8}, Ts: []int{32}, Ds: []int64{2},
		BaseSeed: 5, Theory: true,
	}
	def := RunSweep(base)[0]
	if def.Err != "" {
		t.Fatalf("default cell failed: %s", def.Err)
	}
	if def.Q != 0 {
		t.Fatalf("q-less sweep stamped Q=%d, want 0 (baseline schema compat)", def.Q)
	}
	if want := bounds.DAUpperBound(8, 32, 2, 0.5); def.DAUpperBound != want {
		t.Fatalf("default DA theory column %v, want ε=0.5 value %v", def.DAUpperBound, want)
	}

	wide := base
	wide.Q = 8
	w := RunSweep(wide)[0]
	if w.Err != "" {
		t.Fatalf("q=8 cell failed: %s", w.Err)
	}
	if w.Q != 8 {
		t.Fatalf("q=8 sweep stamped Q=%d", w.Q)
	}
	if want := bounds.DAUpperBound(8, 32, 2, bounds.EpsilonForQ(8)); w.DAUpperBound != want {
		t.Fatalf("q=8 DA theory column %v, want EpsilonForQ-derived %v", w.DAUpperBound, want)
	}
	if w.DAUpperBound == def.DAUpperBound {
		t.Fatal("q=8 and q=2 DA theory columns should differ")
	}
	// The q knob must reach the machines, not only the theory column: a
	// wider progress tree changes DA's execution.
	if w.Work == def.Work && w.Messages == def.Messages && w.SolvedAt == def.SolvedAt {
		t.Fatal("q=8 cell measured identically to q=2 cell; Q not threaded to machines")
	}
}

// TestBench0SchemaStillReadable guards the BENCH_*.json contract: the
// baseline recorded before the adversary axis existed must keep parsing
// under the extended Cell schema.
func TestBench0SchemaStillReadable(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_0.json")
	if err != nil {
		t.Skipf("BENCH_0.json not present: %v", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_0.json no longer parses: %v", err)
	}
	if rep.Engine != "multicast-wheel" || len(rep.Cells) == 0 {
		t.Fatalf("BENCH_0.json lost shape: engine=%q cells=%d", rep.Engine, len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Algo == "" || c.P == 0 || c.T == 0 {
			t.Fatalf("cell lost fields: %+v", c)
		}
		if c.Adversary != "" {
			t.Fatalf("pre-axis cell unexpectedly has adversary %q", c.Adversary)
		}
	}
}

// TestRunOnMatchesRun pins the reusable-engine path the sweep runner
// stands on: RunOn with one shared engine reproduces Run's Result byte
// for byte across a mix of algorithms, adversaries, and shapes run back
// to back on the same engine.
func TestRunOnMatchesRun(t *testing.T) {
	scs := []Scenario{
		{Algorithm: AlgoPaRan1, P: 8, T: 32, D: 2, Seed: 3},
		{Algorithm: AlgoDA, P: 5, T: 25, D: 4, Seed: 9, Adversary: "crashing(crash=0@2)"},
		{Algorithm: AlgoPaRan2, P: 6, T: 24, D: 3, Seed: 1, Adversary: "random"},
		{Algorithm: AlgoPaRan1, P: 8, T: 32, D: 2, Seed: 3}, // repeat of the first
		{Algorithm: AlgoAllToAll, P: 3, T: 12, D: 1, Seed: 2},
	}
	eng := sim.NewEngine()
	for i, sc := range scs {
		want, errW := Run(sc)
		got, errG := RunOn(eng, sc)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("scenario %d: error mismatch: %v vs %v", i, errW, errG)
		}
		if !reflect.DeepEqual(want.Sim, got.Sim) {
			t.Fatalf("scenario %d (%s): RunOn diverged from Run:\nfresh:  %+v\nreused: %+v",
				i, sc.Algorithm, want.Sim, got.Sim)
		}
	}
}

// TestRunOnFallsBackOffSimBackend: non-sim backends take the plain Run
// path rather than failing.
func TestRunOnFallsBackOffSimBackend(t *testing.T) {
	sc := Scenario{Algorithm: AlgoPaRan1, P: 4, T: 8, D: 2, Seed: 1, Backend: BackendSimLegacy}
	res, err := RunOn(sim.NewEngine(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendSimLegacy || !res.Solved() {
		t.Fatalf("fallback run: backend=%q solved=%v", res.Backend, res.Solved())
	}
}

// TestSweepProgressCallback: the Progress hook must fire once per cell
// with a monotone completion count ending at the grid total, regardless
// of worker count.
func TestSweepProgressCallback(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		cfg := SweepConfig{
			Algos:    []string{AlgoAllToAll, AlgoPaRan1},
			Ps:       []int{2, 4},
			Ts:       []int{8},
			Ds:       []int64{1, 2},
			BaseSeed: 1,
			Workers:  workers,
			Progress: func(done, total int) {
				if total != 8 {
					t.Errorf("total = %d, want 8", total)
				}
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			},
		}
		cells := RunSweep(cfg)
		if len(cells) != 8 {
			t.Fatalf("%d cells, want 8", len(cells))
		}
		if len(seen) != 8 {
			t.Fatalf("workers=%d: Progress fired %d times, want 8", workers, len(seen))
		}
		sort.Ints(seen)
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: completion counts %v, want 1..8", workers, seen)
			}
		}
	}
}

// TestSweepDeterministicAcrossWorkerCounts re-asserts the sharding
// contract now that workers carry reusable engines: any worker count
// yields byte-identical cells (timings aside).
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := SweepConfig{
		Algos:    []string{AlgoPaRan1, AlgoDA},
		Ps:       []int{4, 8},
		Ts:       []int{32},
		Ds:       []int64{2},
		BaseSeed: 11,
		Trials:   2,
	}
	strip := func(cells []Cell) []Cell {
		out := append([]Cell(nil), cells...)
		for i := range out {
			out[i].NsPerRun = 0
		}
		return out
	}
	cfg.Workers = 1
	serial := strip(RunSweep(cfg))
	for _, w := range []int{3, 8} {
		cfg.Workers = w
		if got := strip(RunSweep(cfg)); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d diverged from serial:\nserial: %+v\ngot:    %+v", w, serial, got)
		}
	}
}

// TestBench0CellsReproduce re-runs the cheap corner of the committed
// BENCH_0.json grid (p=16, t=256; PaDet excluded for its schedule-search
// cost) and requires the recorded work/messages/solved_at to reproduce
// exactly. This is the cross-PR determinism contract: engine rewrites may
// only move ns_per_run, never the model quantities.
func TestBench0CellsReproduce(t *testing.T) {
	assertBenchCellsReproduce(t, "BENCH_0.json", 16, 256, 9, 1)
}

// assertBenchCellsReproduce re-runs the (p, t) corner of a committed
// baseline (PaDet excluded for its schedule-search cost) and requires
// the recorded work/messages/solved_at to reproduce exactly. shards is
// the intra-run shard count to replay under — recorded baselines are
// shard-invariant, so every value must reproduce the same bytes.
func assertBenchCellsReproduce(t *testing.T, file string, p, tasks, wantChecked, shards int) {
	t.Helper()
	data, err := os.ReadFile("../../" + file)
	if err != nil {
		t.Skipf("%s not present: %v", file, err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	checked := 0
	eng := sim.NewEngine()
	for _, c := range rep.Cells {
		if c.P != p || c.T != tasks || c.Algo == AlgoPaDet {
			continue
		}
		adv := c.Adversary
		if adv == "" {
			adv = rep.Adversary // pre-adversary-axis baselines (BENCH_0)
		}
		sc := Scenario{Algorithm: c.Algo, Adversary: adv, P: c.P, T: c.T, D: c.D, Seed: c.Seed, Shards: shards}
		got := RunCellOn(context.Background(), eng, sc, c.Trials, false)
		if got.Err != "" {
			t.Fatalf("cell %s/d=%d failed: %s", c.Algo, c.D, got.Err)
		}
		if got.Work != c.Work || got.Messages != c.Messages || got.SolvedAt != c.SolvedAt {
			t.Errorf("cell %s/d=%d diverged from %s: work %v→%v, messages %v→%v, solved_at %v→%v",
				c.Algo, c.D, file, c.Work, got.Work, c.Messages, got.Messages, c.SolvedAt, got.SolvedAt)
		}
		checked++
	}
	if checked != wantChecked {
		t.Fatalf("checked %d cells, want %d (grid layout changed?)", checked, wantChecked)
	}
}

// TestBench1CellsReproduce extends the determinism contract to the
// BENCH_1.json baseline recorded by PR 3: the p=64, t=256 corner must
// reproduce exactly under the versioned knowledge plane and the grouped
// delivery engine.
func TestBench1CellsReproduce(t *testing.T) {
	assertBenchCellsReproduce(t, "BENCH_1.json", 64, 256, 9, 1)
}

// TestBench2CellsReproduce extends the determinism contract to the
// BENCH_2.json large-shape baseline: its p=1024, t=65536 corner (PaRan1
// and DA across all three d values) must reproduce exactly under the
// fault-plane engine — crash-restart and omission support may add no
// observable drift to fault-free executions.
func TestBench2CellsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures large shapes")
	}
	assertBenchCellsReproduce(t, "BENCH_2.json", 1024, 65536, 6, 1)
}

// TestBench2CellsReproduceSharded replays the same BENCH_2 corner under
// the parallel tick engine (4 shards): sharding is a pure execution
// strategy, so the recorded baseline must reproduce byte-identically at
// any shard count.
func TestBench2CellsReproduceSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures large shapes")
	}
	assertBenchCellsReproduce(t, "BENCH_2.json", 1024, 65536, 6, 4)
}

// TestBench3CheapCellReproducesSharded replays BENCH_3's cheapest cell —
// DA under fair at p=65536, t=2^20 — on the staged parallel tick engine
// (4 shards) and requires the recorded work/messages/solved_at to
// reproduce exactly, mirroring TestBench2CellsReproduceSharded at the
// sharding-era flagship shape. One cell keeps the re-measure affordable;
// the full grid is re-recorded only when a PR moves performance.
func TestBench3CheapCellReproducesSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures a p=65536 shape")
	}
	data, err := os.ReadFile("../../BENCH_3.json")
	if err != nil {
		t.Skipf("BENCH_3.json not present: %v", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	checked := 0
	eng := sim.NewEngine()
	defer eng.Close()
	for _, c := range rep.Cells {
		if c.Algo != AlgoDA || c.Adversary != "fair" || c.T != 1048576 {
			continue
		}
		sc := Scenario{Algorithm: c.Algo, Adversary: c.Adversary, P: c.P, T: c.T, D: c.D, Seed: c.Seed, Shards: 4}
		got := RunCellOn(context.Background(), eng, sc, c.Trials, false)
		if got.Err != "" {
			t.Fatalf("cell %s/%s t=%d failed: %s", c.Algo, c.Adversary, c.T, got.Err)
		}
		if got.Work != c.Work || got.Messages != c.Messages || got.SolvedAt != c.SolvedAt {
			t.Errorf("cell %s/%s t=%d diverged from BENCH_3.json: work %v→%v, messages %v→%v, solved_at %v→%v",
				c.Algo, c.Adversary, c.T, c.Work, got.Work, c.Messages, got.Messages, c.SolvedAt, got.SolvedAt)
		}
		checked++
	}
	if checked != 1 {
		t.Fatalf("checked %d cells, want 1 (grid layout changed?)", checked)
	}
}

// TestBench3SchemaReadable guards the BENCH_3.json p=65536 sharding-era
// baseline: it must parse, carry the theory columns, stamp gomaxprocs
// and the per-cell resolved shard count, and reach t=2^22.
func TestBench3SchemaReadable(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_3.json")
	if err != nil {
		t.Skipf("BENCH_3.json not present: %v", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_3.json no longer parses: %v", err)
	}
	if !rep.Theory {
		t.Fatal("BENCH_3.json lost its theory marker")
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("BENCH_3.json gomaxprocs = %d, want ≥ 1", rep.GoMaxProcs)
	}
	maxT := 0
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s p=%d t=%d d=%d recorded an error: %s", c.Algo, c.Adversary, c.P, c.T, c.D, c.Err)
		}
		if c.P != 65536 {
			t.Errorf("cell %s t=%d: p = %d, want 65536", c.Algo, c.T, c.P)
		}
		if c.Shards < 1 {
			t.Errorf("cell %s/%s t=%d missing its resolved shards stamp", c.Algo, c.Adversary, c.T)
		}
		if c.LowerBound <= 0 || c.WorkOverLB <= 0 {
			t.Errorf("cell %s/%s t=%d missing theory columns", c.Algo, c.Adversary, c.T)
		}
		if c.T > maxT {
			maxT = c.T
		}
	}
	if maxT < 4194304 {
		t.Fatalf("BENCH_3 grid tops out at t=%d, want ≥ 4194304 (2^22)", maxT)
	}
}

// TestBench2SchemaReadable guards the BENCH_2.json large-shape baseline:
// it must parse, carry the theory columns, and extend the grid to
// p=4096, t=262144.
func TestBench2SchemaReadable(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Skipf("BENCH_2.json not present: %v", err)
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_2.json no longer parses: %v", err)
	}
	if !rep.Theory {
		t.Fatal("BENCH_2.json lost its theory marker")
	}
	maxP, maxT := 0, 0
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("cell %s p=%d t=%d d=%d recorded an error: %s", c.Algo, c.P, c.T, c.D, c.Err)
		}
		if c.LowerBound <= 0 || c.WorkOverLB <= 0 {
			t.Errorf("cell %s p=%d t=%d d=%d missing theory columns", c.Algo, c.P, c.T, c.D)
		}
		if c.P > maxP {
			maxP = c.P
		}
		if c.T > maxT {
			maxT = c.T
		}
	}
	if maxP < 4096 || maxT < 262144 {
		t.Fatalf("BENCH_2 grid tops out at p=%d t=%d, want ≥ 4096/262144", maxP, maxT)
	}
}
