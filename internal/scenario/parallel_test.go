package scenario

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"doall/internal/sim"
)

// TestParallelMatchesSequential is the parallel tick engine's acceptance
// matrix: every algorithm × fault adversary × shard count must reproduce
// the sequential engine's Result byte for byte. Shards only repartition
// one tick's schedule across goroutines; the serial reduction replays
// all shared-state mutations in schedule order, so nothing observable
// may move.
func TestParallelMatchesSequential(t *testing.T) {
	algos := []string{AlgoAllToAll, AlgoObliDo, AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet}
	advs := []string{
		"fair",
		"crashing(fair, crash=1@3, crash=5@9)",
		"restarting(fair, crash=1@3, crash=5@9, down=8)",
		"omitting(fair, drop=2@0:40, to=0, to=3)",
		"restarting(omitting(fair, drop=2@0:40, to=0, to=3), crash=1@3, crash=5@9, down=8)",
	}
	for _, algo := range algos {
		for _, adv := range advs {
			t.Run(algo+"/"+adv, func(t *testing.T) {
				base := Scenario{Algorithm: algo, Adversary: adv, P: 44, T: 256, D: 3, Seed: 17}
				seq, err := Run(base)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				if !seq.Solved() {
					t.Fatalf("sequential run did not solve")
				}
				for _, shards := range []int{2, 3, 4, 5, 7} {
					sc := base
					sc.Shards = shards
					par, err := Run(sc)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if !reflect.DeepEqual(seq.Sim, par.Sim) {
						t.Fatalf("shards=%d diverged from sequential:\nseq: %+v\npar: %+v",
							shards, seq.Sim, par.Sim)
					}
				}
			})
		}
	}
}

// TestParallelMatchesSequentialObserved repeats a slice of the matrix
// with an observer attached: observers disable the grouped delivery
// path, so this pins the parallel engine's ungrouped (per-delivery
// materialization) route, and additionally checks the observers of both
// engines saw identical event streams.
func TestParallelMatchesSequentialObserved(t *testing.T) {
	for _, algo := range []string{AlgoPaRan1, AlgoDA} {
		t.Run(algo, func(t *testing.T) {
			base := Scenario{
				Algorithm: algo,
				Adversary: "restarting(fair, crash=2@4, down=6)",
				P:         33, T: 128, D: 2, Seed: 5,
			}
			run := func(shards int) (*Result, []string) {
				sc := base
				sc.Shards = shards
				obs := &traceObserver{}
				res, err := RunWith(sc, Options{Observer: obs})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return res, obs.events
			}
			seq, seqEv := run(1)
			par, parEv := run(4)
			if !reflect.DeepEqual(seq.Sim, par.Sim) {
				t.Fatalf("observed results diverged:\nseq: %+v\npar: %+v", seq.Sim, par.Sim)
			}
			if !reflect.DeepEqual(seqEv, parEv) {
				t.Fatalf("observer event streams diverged (%d vs %d events)", len(seqEv), len(parEv))
			}
		})
	}
}

// traceObserver records every engine event as a formatted line so two
// runs' streams can be compared wholesale.
type traceObserver struct{ events []string }

func (o *traceObserver) add(s string) { o.events = append(o.events, s) }

func (o *traceObserver) OnStep(i int, now int64, r *sim.StepResult) {
	o.add(fmt.Sprintf("step %d@%d task=%d halt=%v", i, now, r.PerformedTask(), r.Halt))
}
func (o *traceObserver) OnMulticast(from int, now int64, payload any, n int) {
	o.add(fmt.Sprintf("mc %d@%d n=%d", from, now, n))
}
func (o *traceObserver) OnDeliver(m sim.Message) {
	o.add(fmt.Sprintf("dl %d>%d@%d", m.From, m.To, m.DeliverAt))
}
func (o *traceObserver) OnCrash(i int, now int64)  { o.add(fmt.Sprintf("crash %d@%d", i, now)) }
func (o *traceObserver) OnRevive(i int, now int64) { o.add(fmt.Sprintf("revive %d@%d", i, now)) }
func (o *traceObserver) OnOmit(from, to int, now int64) {
	o.add(fmt.Sprintf("omit %d>%d@%d", from, to, now))
}
func (o *traceObserver) OnSolved(now int64, res *sim.Result) { o.add(fmt.Sprintf("solved@%d", now)) }

// TestParallelRaceShape drives the sharded engine at a p=4096 shape so
// the CI -race job exercises real multi-shard ticks (the small matrix
// shapes keep shards busy but tiny). Under -short it still runs — one
// modest run — so plain `go test ./...` keeps covering it.
func TestParallelRaceShape(t *testing.T) {
	p, tasks := 4096, 16384
	if testing.Short() {
		p, tasks = 1024, 4096
	}
	base := Scenario{Algorithm: AlgoPaRan1, Adversary: "fair", P: p, T: tasks, D: 2, Seed: 23}
	seq, err := Run(base)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	sc := base
	sc.Shards = 4
	par, err := Run(sc)
	if err != nil {
		t.Fatalf("shards=4: %v", err)
	}
	if !reflect.DeepEqual(seq.Sim, par.Sim) {
		t.Fatalf("p=%d shards=4 diverged from sequential", p)
	}
}

// TestSweepClosesShardWorkers pins the shard-worker lifecycle: a sharded
// sweep parks workers-1 × shards-1 goroutines on its per-worker engines,
// and the sweep teardown must Close them all — a fleet that leaks parked
// goroutines accumulates them across every sweep until process exit.
func TestSweepClosesShardWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	cells := RunSweep(SweepConfig{
		Algos:    []string{AlgoPaRan1, AlgoDA},
		Ps:       []int{32},
		Ts:       []int{128},
		Ds:       []int64{2},
		BaseSeed: 11,
		Workers:  4,
		Shards:   4,
	})
	for _, c := range cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Algo, c.Err)
		}
	}
	// Parked workers exit asynchronously after their wake channels close;
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines after sweep: %d, want ≤ %d (shard workers leaked?)", g, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResolveShards pins the shard-policy resolution: 0/1 sequential,
// auto scaling with width, clamping to p.
func TestResolveShards(t *testing.T) {
	for _, tc := range []struct{ req, p, want int }{
		{0, 65536, 1},
		{1, 65536, 1},
		{4, 65536, 4},
		{4, 3, 3},             // clamp to p
		{ShardsAuto, 1024, 1}, // too narrow to shard
	} {
		if got := ResolveShards(tc.req, tc.p); got != tc.want {
			t.Errorf("ResolveShards(%d, %d) = %d, want %d", tc.req, tc.p, got, tc.want)
		}
	}
	if got := ResolveShards(ShardsAuto, 1<<20); got < 1 {
		t.Errorf("auto resolution returned %d", got)
	}
}
