package core

import (
	"fmt"
	"math/rand"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
)

// PA implements one processor of the permutation algorithms of Section 6
// (Fig. 4). The processor keeps a local set of jobs known to be done;
// while it has not ascertained that all jobs are complete it selects the
// next not-known-done job according to its Selector, performs it (one task
// per local step), marks it done, and multicasts its done-set. Received
// done-sets are merged (a monotone union, charged to the step that
// consumes them).
//
// The done-set is an epoch-versioned bit set (bitset.Versioned): each
// broadcast snapshots it as an immutable base-plus-delta-chain share, and
// received snapshots are merged through a per-sender version cursor
// (bitset.Merger), so a delivery costs words-changed, not words-total.
// Under the engine's grouped delivery path (sim.BatchConsumer) a whole
// delivery group is merged as one combined union, built once per group by
// its first consumer.
//
// The three family members differ only in the Selector:
//
//   - PaRan1: a permutation of the jobs drawn uniformly at random at
//     start-up (Order = random, Select = next by local permutation).
//   - PaRan2: each selection is uniform over the jobs not yet known done.
//   - PaDet: a fixed schedule list Σ with low d-contention (Corollary 4.5);
//     processor pid follows π_pid.
//
// Expected (worst-case for PaDet with a suitable Σ) work is
// O(t·log p + p·min{t,d}·log(2+t/d)) — Theorems 6.2 and 6.3.
type PA struct {
	pid      int
	jobs     Jobs
	done     *bitset.Versioned // done job set (known complete)
	mg       *bitset.Merger    // per-sender version cursor
	remain   int               // jobs not known complete
	selector selector
	cur      int // current job, -1 if none selected
	unit     int // tasks of current job already performed
	halted   bool
	comb     combinedPool // pooled batch accumulators
}

// selector abstracts the Order+Select specializations of Fig. 4.
type selector interface {
	// next returns the next job to perform given the done-set, or -1 if
	// every job is known done. It must not return a done job.
	next(done *bitset.Set) int
	// clone returns a deep copy, or nil if the selector is not cloneable
	// (PaRan2's on-line randomness).
	clone() selector
	// reset restores the selector's initial position for a fresh trial.
	reset()
}

var (
	_ sim.Machine         = (*PA)(nil)
	_ sim.BatchConsumer   = (*PA)(nil)
	_ sim.TaskIntender    = (*PA)(nil)
	_ sim.Resetter        = (*PA)(nil)
	_ sim.Rejoiner        = (*PA)(nil)
	_ sim.PayloadRecycler = (*PA)(nil)
)

// permSelector walks a fixed permutation of the jobs (PaRan1, PaDet).
type permSelector struct {
	order perm.Perm
	pos   int
}

func (s *permSelector) next(done *bitset.Set) int {
	for s.pos < len(s.order) {
		j := s.order[s.pos]
		if !done.Get(j) {
			return j
		}
		s.pos++
	}
	return -1
}

func (s *permSelector) clone() selector {
	c := *s
	return &c
}

func (s *permSelector) reset() { s.pos = 0 }

// randSelector draws uniformly among not-known-done jobs (PaRan2). It
// commits to its next draw so that an adaptive adversary may observe it
// (sim.TaskIntender), exactly the knowledge model of Theorem 3.4.
type randSelector struct {
	rng       *rand.Rand
	committed int // -1 when no commitment
}

func (s *randSelector) next(done *bitset.Set) int {
	if s.committed >= 0 && !done.Get(s.committed) {
		return s.committed
	}
	var undone []int
	for j := done.NextClear(0); j >= 0; j = done.NextClear(j + 1) {
		undone = append(undone, j)
	}
	if len(undone) == 0 {
		s.committed = -1
		return -1
	}
	s.committed = undone[s.rng.Intn(len(undone))]
	return s.committed
}

func (s *randSelector) clone() selector { return nil }

// reset drops the commitment; the random stream continues, so a reset
// PaRan2 runs a fresh trial rather than a replay.
func (s *randSelector) reset() { s.committed = -1 }

// NewPaRan1 builds the p machines of algorithm PaRan1 for t tasks; each
// processor draws its job permutation from a rand source seeded with
// seed+pid, so runs are reproducible.
func NewPaRan1(p, t int, seed int64) []sim.Machine {
	jobs := NewJobs(p, t)
	ms := make([]sim.Machine, p)
	// One source, re-seeded per processor: Seed(s) fully reinitializes the
	// generator, so the permutations are bit-identical to fresh
	// rand.NewSource(s) draws while machine construction sheds p-1 source
	// allocations (the dominant construction garbage at large p).
	src := rand.NewSource(seed)
	r := rand.New(src)
	// All p permutations share one backing array (pointer-free, one
	// allocation) instead of p separate ones.
	backing := make([]int, p*jobs.N)
	for i := range ms {
		src.Seed(seed + int64(i))
		order := perm.RandomInto(jobs.N, r, backing[i*jobs.N:])
		ms[i] = newPA(i, p, jobs, &permSelector{order: order})
	}
	return ms
}

// NewPaRan2 builds the p machines of algorithm PaRan2 for t tasks.
func NewPaRan2(p, t int, seed int64) []sim.Machine {
	jobs := NewJobs(p, t)
	ms := make([]sim.Machine, p)
	for i := range ms {
		r := rand.New(rand.NewSource(seed + int64(i)))
		ms[i] = newPA(i, p, jobs, &randSelector{rng: r, committed: -1})
	}
	return ms
}

// NewPaDet builds the p machines of algorithm PaDet for t tasks using the
// schedule list l (p permutations of the job set; processor i follows
// l[i mod len(l)]).
func NewPaDet(p, t int, l perm.List) ([]sim.Machine, error) {
	jobs := NewJobs(p, t)
	if l.N() != jobs.N {
		return nil, fmt.Errorf("core: PaDet schedules are over [%d], want [%d] (jobs)", l.N(), jobs.N)
	}
	if len(l) == 0 {
		return nil, fmt.Errorf("core: PaDet requires a non-empty schedule list")
	}
	if err := perm.CheckList(l); err != nil {
		return nil, err
	}
	ms := make([]sim.Machine, p)
	for i := range ms {
		ms[i] = newPA(i, p, jobs, &permSelector{order: l[i%len(l)]})
	}
	return ms, nil
}

func newPA(pid, p int, jobs Jobs, sel selector) *PA {
	return &PA{
		pid:      pid,
		jobs:     jobs,
		done:     bitset.NewVersioned(jobs.N),
		mg:       bitset.NewMerger(p),
		remain:   jobs.N,
		selector: sel,
		cur:      -1,
	}
}

// Step implements sim.Machine.
func (m *PA) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	m.mergeInbox(inbox)
	return m.advance()
}

// StepBatched implements sim.BatchConsumer: pending delivery groups are
// merged through the shared combined-knowledge cache (one union per
// group), the per-recipient tail individually. Merges are monotone
// unions, so the order difference from Step is unobservable.
func (m *PA) StepBatched(now int64, batches []*sim.Batch, tail []sim.Delivery) sim.StepResult {
	for _, b := range batches {
		m.mergeBatch(b)
	}
	m.mergeInbox(tail)
	return m.advance()
}

// advance is the post-merge step body: select, perform, broadcast.
func (m *PA) advance() sim.StepResult {
	if m.remain == 0 {
		m.halted = true
		return sim.StepResult{Halt: true}
	}

	// (Re)select if we have no current job or a peer finished ours.
	if m.cur < 0 || m.done.Get(m.cur) {
		m.cur = m.selector.next(m.done.Bits())
		m.unit = 0
		if m.cur < 0 {
			m.halted = true
			return sim.StepResult{Halt: true}
		}
	}

	z := m.jobs.Start(m.cur) + m.unit
	m.unit++
	if m.unit < m.jobs.Size(m.cur) {
		return sim.PerformStep(z)
	}

	// Job complete: record, multicast the done-set, possibly halt.
	m.markDone(m.cur)
	m.cur = -1
	m.unit = 0
	halt := m.remain == 0
	m.halted = halt
	r := sim.StepResult{
		Broadcast: m.snapshot(),
		Halt:      halt,
	}
	r.Perform(z)
	return r
}

func (m *PA) mergeInbox(inbox []sim.Delivery) {
	for _, msg := range inbox {
		ds, ok := msg.Payload().(DoneSet)
		if !ok || ds.S.Len() != m.done.Len() {
			continue
		}
		m.remain -= m.mg.Merge(m.done, msg.From(), ds.S)
	}
}

// mergeBatch folds one shared delivery group into the done-set: apply the
// published combined knowledge if compatible, build and publish it if
// absent, and fall back to per-sender merges otherwise.
func (m *PA) mergeBatch(b *sim.Batch) {
	if kc, ok := b.Combined.(*knowledgeCombined); ok {
		if kc.n == m.done.Len() {
			m.applyCombined(kc)
		} else {
			m.mergeBatchEager(b)
		}
		return
	}
	if b.Combined != nil {
		// A foreign cache type: another machine kind built it.
		m.mergeBatchEager(b)
		return
	}
	if !m.BuildCombined(b) {
		m.mergeBatchEager(b)
		return
	}
	m.applyCombined(b.Combined.(*knowledgeCombined))
}

// BuildCombined implements sim.CombinedBuilder: it accumulates the
// batch's unseen knowledge (per this machine's merge cursors) into a
// pooled combined cache, advances the cursors, and publishes the cache —
// the build half of mergeBatch, without the apply. The parallel engine
// calls it ahead of the machine's own step, which then consumes the
// batch through the published cache like any later consumer; because
// the accumulation never reads the done-set and the apply never moves
// the cursors, the split build+apply is state-for-state identical to
// the sequential in-step build.
func (m *PA) BuildCombined(b *sim.Batch) bool {
	kc := m.comb.get(m.done.Len())
	for _, mc := range b.MCs {
		ds, ok := mc.Payload.(DoneSet)
		if !ok || ds.S.Len() != m.done.Len() {
			m.comb.put(kc)
			return false
		}
		var dense bool
		kc.idxs, dense = m.mg.AccumulateInto(kc.bits, mc.From, ds.S, kc.idxs)
		kc.dense = kc.dense || dense
	}
	// Advance the cursors only now that the whole batch accumulated — an
	// aborted build must not claim knowledge it never merged.
	for _, mc := range b.MCs {
		m.mg.Note(mc.From, mc.Payload.(DoneSet).S.Ver())
	}
	if 2*len(kc.idxs) >= len(kc.bits.Words()) {
		kc.dense = true // full-width union is cheaper than the index list
	}
	b.Combined, b.Builder = kc, int32(m.pid)
	return true
}

func (m *PA) applyCombined(kc *knowledgeCombined) {
	if kc.dense {
		m.remain -= m.done.UnionWith(kc.bits)
	} else {
		m.remain -= m.done.MergeWords(kc.bits, kc.idxs)
	}
}

// mergeBatchEager merges a batch's multicasts one by one (the fallback
// when no compatible combined cache applies).
func (m *PA) mergeBatchEager(b *sim.Batch) {
	for _, mc := range b.MCs {
		if mc.From == m.pid {
			continue
		}
		if ds, ok := mc.Payload.(DoneSet); ok && ds.S.Len() == m.done.Len() {
			m.remain -= m.mg.Merge(m.done, mc.From, ds.S)
		}
	}
}

func (m *PA) markDone(j int) {
	if !m.done.Get(j) {
		m.done.Set(j)
		m.remain--
	}
}

// snapshot captures the done-set for a broadcast: an O(changed words)
// versioned snapshot sharing the epoch base, not a full copy. The own
// cursor deliberately does NOT advance here: batch builders must
// accumulate even their own snapshots from the cohort's last-consumed
// version, because the combined cache they publish is consumed by
// everyone (merging one's own words back is a monotone no-op).
func (m *PA) snapshot() DoneSet {
	return DoneSet{S: m.done.Snapshot()}
}

// RecyclePayload implements sim.PayloadRecycler: snapshots whose
// recipients have all consumed them return to the versioned set's pools
// (retiring whole epochs once drained), and combined batch caches this
// machine built return to its accumulator pool.
func (m *PA) RecyclePayload(p any) {
	switch v := p.(type) {
	case DoneSet:
		m.done.Recycle(v.S)
	case *knowledgeCombined:
		m.comb.put(v)
	}
}

// KnowsAllDone implements sim.Machine.
func (m *PA) KnowsAllDone() bool { return m.remain == 0 }

// NextTask implements sim.TaskIntender.
func (m *PA) NextTask() int {
	if m.remain == 0 {
		return -1
	}
	cur, unit := m.cur, m.unit
	if cur < 0 || m.done.Get(cur) {
		cur = m.selector.next(m.done.Bits())
		unit = 0
	}
	if cur < 0 {
		return -1
	}
	return m.jobs.Start(cur) + unit
}

// CloneMachine implements sim.Cloner for the deterministic members of the
// family (PaDet, and PaRan1 after its permutation is fixed). It returns
// nil for PaRan2, whose on-line randomness cannot be replayed; callers
// must type-assert accordingly.
func (m *PA) CloneMachine() sim.Machine {
	sel := m.selector.clone()
	if sel == nil {
		return nil
	}
	c := *m
	c.selector = sel
	c.done = m.done.Clone()
	c.mg = m.mg.Clone()
	c.comb = combinedPool{} // pooled buffers stay with the original
	return &c
}

// Reset implements sim.Resetter: the machine returns to its initial state
// without allocating (the snapshot and accumulator pools are kept).
// PaRan1 and PaDet replay the exact same schedule; PaRan2's random stream
// continues, so a reset machine runs a fresh trial.
func (m *PA) Reset() {
	m.done.Reset()
	m.mg.Reset()
	m.remain = m.jobs.N
	m.selector.reset()
	m.cur = -1
	m.unit = 0
	m.halted = false
}

// Rejoin implements sim.Rejoiner: the machine re-enters after a
// crash-restart with fresh initial knowledge. Unlike Reset it runs
// mid-execution, while pre-crash done-set snapshots may still be in
// flight, so the versioned set rejoins instead of resetting — versions
// stay monotone, the next broadcast travels as a full rebase, and
// receivers' stale cursors fall back to full merges. The machine's own
// per-sender cursors are zeroed (its knowledge is gone, so every peer
// must be re-merged from the base), and the permutation position is
// re-seeded deterministically via the selector's reset.
func (m *PA) Rejoin() {
	m.done.Rejoin()
	m.mg.Reset()
	m.remain = m.jobs.N
	m.selector.reset()
	m.cur = -1
	m.unit = 0
	m.halted = false
}

// Halted reports whether the machine has voluntarily halted.
func (m *PA) Halted() bool { return m.halted }
