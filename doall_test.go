package doall_test

import (
	"sync/atomic"
	"testing"
	"time"

	"doall"
)

func TestPublicAPISimulateDA(t *testing.T) {
	perms := doall.FindSchedules(2, 50, 1)
	ms, err := doall.NewDA(doall.DAConfig{P: 4, T: 32, Q: 2, Perms: perms})
	if err != nil {
		t.Fatal(err)
	}
	res, err := doall.Simulate(doall.SimConfig{P: 4, T: 32}, ms, doall.NewFairAdversary(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if res.Work >= 4*32 {
		t.Fatalf("work %d not subquadratic at d=2", res.Work)
	}
}

func TestPublicAPIPaFamily(t *testing.T) {
	for name, ms := range map[string][]doall.Machine{
		"PaRan1": doall.NewPaRan1(4, 16, 3),
		"PaRan2": doall.NewPaRan2(4, 16, 3),
	} {
		res, err := doall.Simulate(doall.SimConfig{P: 4, T: 16}, ms, doall.NewFairAdversary(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Solved {
			t.Fatalf("%s: not solved", name)
		}
	}

	sched := doall.FindDelaySchedules(4, 4, 2, 20, 4) // n = min(p,t) jobs
	ms, err := doall.NewPaDet(4, 16, sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doall.Simulate(doall.SimConfig{P: 4, T: 16}, ms, doall.NewFairAdversary(2)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICrashes(t *testing.T) {
	ms := doall.NewPaRan1(3, 12, 5)
	adv := doall.NewCrashingAdversary(doall.NewFairAdversary(2), []doall.CrashEvent{
		{Pid: 0, At: 1}, {Pid: 1, At: 2},
	})
	res, err := doall.Simulate(doall.SimConfig{P: 3, T: 12}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("survivor did not finish")
	}
}

func TestPublicAPILowerBoundAdversaries(t *testing.T) {
	perms := doall.FindSchedules(2, 20, 6)
	ms, err := doall.NewDA(doall.DAConfig{P: 4, T: 64, Q: 2, Perms: perms})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doall.Simulate(doall.SimConfig{P: 4, T: 64}, ms,
		doall.NewLowerBoundAdversaryDet(4, 64)); err != nil {
		t.Fatal(err)
	}

	ms2 := doall.NewPaRan2(4, 64, 7)
	if _, err := doall.Simulate(doall.SimConfig{P: 4, T: 64}, ms2,
		doall.NewLowerBoundAdversaryRand(4, 64)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExecuteRuntime(t *testing.T) {
	var hits atomic.Int64
	cfg := doall.DefaultRunConfig(3, 12, 2)
	cfg.Unit = 50 * time.Microsecond
	cfg.Task = func(id int) { hits.Add(1) }
	rep, err := doall.Execute(cfg, doall.NewPaRan1(3, 12, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved {
		t.Fatal("not solved")
	}
	if hits.Load() < 12 {
		t.Fatalf("task body ran %d times, want ≥ 12", hits.Load())
	}
}

func TestPublicAPIBounds(t *testing.T) {
	if doall.LowerBound(8, 64, 4) <= 64 {
		t.Fatal("lower bound should exceed t for p,d > 1")
	}
	if doall.DAUpperBound(8, 64, 4, 0.5) <= 0 || doall.PAUpperBound(8, 64, 4) <= 0 {
		t.Fatal("upper bounds must be positive")
	}
}

func TestPublicAPIScenario(t *testing.T) {
	sc := doall.Scenario{Algorithm: "PaRan1", Adversary: "crashing(slow-set(fair),crash=0@2)", P: 4, T: 16, D: 2, Seed: 3}
	res, err := doall.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved() || res.Sim == nil {
		t.Fatalf("scenario run: %+v", res)
	}
	for _, name := range []string{"fair", "random", "crashing", "slow-set", "stage-det", "stage-online"} {
		found := false
		for _, n := range doall.RegisteredAdversaries() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("adversary %q not pre-registered", name)
		}
	}
	if len(doall.RegisteredAlgorithms()) < 6 {
		t.Fatalf("algorithms registered: %v", doall.RegisteredAlgorithms())
	}
}

func TestPublicAPISweep(t *testing.T) {
	rep := doall.NewSweepReport(doall.SweepConfig{
		Algos:       []string{"PaRan1"},
		Ps:          []int{4},
		Ts:          []int{16},
		Ds:          []int64{2},
		Adversaries: []string{"fair", "crashing"},
		BaseSeed:    1,
	})
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %+v failed", c)
		}
	}
}

func TestPublicAPIObserver(t *testing.T) {
	var steps int64
	ms := doall.NewPaRan1(4, 16, 3)
	res, err := doall.Simulate(doall.SimConfig{P: 4, T: 16, Observer: &doall.FuncObserver{
		Step: func(pid int, now int64, r *doall.StepResult) { steps++ },
	}}, ms, doall.NewFairAdversary(2))
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.TotalSteps {
		t.Fatalf("observed %d steps, engine counted %d", steps, res.TotalSteps)
	}
}

func TestPublicAPIContention(t *testing.T) {
	s := doall.FindSchedules(3, 100, 9)
	c := doall.Contention(s)
	if c < 3 || c > 9 {
		t.Fatalf("Cont out of [n, n²]: %d", c)
	}
	if doall.DContention(s, 3) != 9 {
		t.Fatalf("(n)-Cont should be n² = 9")
	}
}

// TestPublicAPIFaultPlane pins the crash-restart and omission surface:
// the adversary constructors, the Rejoiner contract on public machines,
// and the new observer hooks, all through exported names only.
func TestPublicAPIFaultPlane(t *testing.T) {
	const p, tasks, d = 5, 20, 2
	ms := doall.NewPaRan1(p, tasks, 7)
	for i, m := range ms {
		if _, ok := m.(doall.MachineRejoiner); !ok {
			t.Fatalf("machine %d does not implement MachineRejoiner", i)
		}
	}
	var revives, omits int
	adv := doall.NewRestartingAdversary(
		doall.NewOmittingAdversary(doall.NewFairAdversary(d), []doall.OmitWindow{
			{Pid: 2, From: 0, Until: 10},
		}, []int{0}),
		[]doall.RestartEvent{{Pid: 1, CrashAt: 2, ReviveAt: 6}},
	)
	// The restarting wrapper must forward the inner adversary's omission
	// faults (engines assert extensions on the outermost adversary only).
	om, ok := adv.(doall.Omitter)
	if !ok {
		t.Fatal("restarting(omitting(...)) lost the Omitter extension")
	}
	if !om.Omit(2, 0, 5) || om.Omit(2, 1, 5) || om.Omit(3, 0, 5) {
		t.Fatal("forwarded omission does not match the inner window/subset")
	}
	res, err := doall.Simulate(doall.SimConfig{P: p, T: tasks, Observer: &doall.FuncObserver{
		Revive: func(pid int, now int64) { revives++ },
		Omit:   func(from, to int, sentAt int64) { omits++ },
	}}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if revives != 1 {
		t.Fatalf("OnRevive fired %d times, want 1", revives)
	}
	if omits == 0 {
		t.Fatal("no OnOmit events despite an omission window")
	}
}
