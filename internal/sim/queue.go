package sim

import "container/heap"

// delayQueue is a min-heap of in-flight messages ordered by delivery time.
// Ties are broken by send order (FIFO per channel follows because sends
// carry increasing sequence numbers), keeping executions deterministic.
type delayQueue struct {
	h   msgHeap
	seq int64
}

type queuedMsg struct {
	Message
	seq int64
}

type msgHeap []queuedMsg

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].DeliverAt != h[j].DeliverAt {
		return h[i].DeliverAt < h[j].DeliverAt
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(queuedMsg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newDelayQueue() *delayQueue { return &delayQueue{} }

func (q *delayQueue) push(m Message) {
	q.seq++
	heap.Push(&q.h, queuedMsg{Message: m, seq: q.seq})
}

// popDue removes and returns every message with DeliverAt ≤ now, in
// deterministic (delivery time, send sequence) order.
func (q *delayQueue) popDue(now int64) []Message {
	var out []Message
	for len(q.h) > 0 && q.h[0].DeliverAt <= now {
		out = append(out, heap.Pop(&q.h).(queuedMsg).Message)
	}
	return out
}

func (q *delayQueue) len() int { return len(q.h) }
