package adversary

import "doall/internal/sim"

// OmitWindow schedules message-omission faults: every multicast (or
// point-to-point send) issued by processor Pid with a send time in
// [From, Until) has its copies dropped by the network. The send is still
// charged to message complexity — omission is a network fault, not a
// refund — but the dropped copies are never delivered.
type OmitWindow struct {
	Pid         int
	From, Until int64
}

// Omitting wraps another adversary and injects message-omission faults:
// copies of multicasts matching one of the Windows are dropped before
// delivery. With a non-empty To list only copies addressed to the listed
// recipients are dropped — the complement still receives the multicast,
// modeling deliver-to-subset omission; an empty To drops every copy.
// Scheduling, delays, and optional engine extensions come from the
// wrapped adversary unchanged (forwardInner), so omission composes with
// any asynchrony pattern — including another omitting layer, whose
// windows remain in force through the Omitter forwarding. Omission
// needs no NextWake clamping: it keys on send times, and sends only
// happen in units where some processor steps — units a correct idle
// promise never skips.
type Omitting struct {
	forwardInner
	Windows []OmitWindow
	// To restricts which recipients lose their copies (nil/empty = all).
	To    []int
	toSet map[int]bool
}

var (
	_ sim.Adversary        = (*Omitting)(nil)
	_ sim.MulticastDelayer = (*Omitting)(nil)
	_ sim.UniformDelayer   = (*Omitting)(nil)
	_ sim.InboxAgnostic    = (*Omitting)(nil)
	_ sim.Omitter          = (*Omitting)(nil)
)

// NewOmitting wraps inner with the given omission schedule; to (may be
// nil) restricts the dropped copies to the listed recipients.
func NewOmitting(inner sim.Adversary, windows []OmitWindow, to []int) *Omitting {
	var set map[int]bool
	if len(to) > 0 {
		set = make(map[int]bool, len(to))
		for _, pid := range to {
			set[pid] = true
		}
	}
	return &Omitting{forwardInner: forward(inner), Windows: windows, To: to, toSet: set}
}

// OmitsAt implements sim.Omitter: whether any copy of a multicast sent
// by `from` at `sentAt` may be dropped, by this layer's windows or by a
// wrapped omitting adversary. Pure in its arguments.
func (a *Omitting) OmitsAt(from int, sentAt int64) bool {
	for _, w := range a.Windows {
		if w.Pid == from && sentAt >= w.From && sentAt < w.Until {
			return true
		}
	}
	return a.forwardInner.OmitsAt(from, sentAt)
}

// Omit implements sim.Omitter: whether the copy addressed to `to` is
// dropped — by this layer (window match, recipient in the To subset) or
// by a wrapped omitting adversary. Pure in its arguments.
func (a *Omitting) Omit(from, to int, sentAt int64) bool {
	for _, w := range a.Windows {
		if w.Pid == from && sentAt >= w.From && sentAt < w.Until {
			if a.toSet == nil || a.toSet[to] {
				return true
			}
			break
		}
	}
	return a.forwardInner.Omit(from, to, sentAt)
}
