package adversary

import (
	"math"
	"sort"

	"doall/internal/sim"
)

// stageClock tracks the stage structure shared by the two lower-bound
// adversaries: computation is partitioned into stages of length
// L = max(1, min(d, t/6)) time units, and every message sent during a
// stage is delivered at the stage boundary (Theorem 3.1's "the adversary
// delivers all messages sent in stage s at the end of stage s").
type stageClock struct {
	L int64
}

func newStageClock(d int64, t int) stageClock {
	l := d
	if int64(t/6) < l {
		l = int64(t / 6)
	}
	if l < 1 {
		l = 1
	}
	return stageClock{L: l}
}

// stage returns the stage index containing time now.
func (c stageClock) stage(now int64) int64 { return now / c.L }

// stageStart reports whether now is the first tick of its stage.
func (c stageClock) stageStart(now int64) bool { return now%c.L == 0 }

// delayToStageEnd returns the delay that makes a message sent at sentAt
// arrive exactly at the next stage boundary. It is always in [1, L] ⊆ [1, d].
func (c stageClock) delayToStageEnd(sentAt int64) int64 {
	end := (c.stage(sentAt) + 1) * c.L
	return end - sentAt
}

// maxAdversarialStages returns the number of stages the Theorem 3.1/3.4
// constructions can sustain: roughly log_{base}(t) with base = 3L (det) or
// L+1 (randomized). After that many stages the adversary turns benign so
// the execution terminates.
func maxAdversarialStages(t int, base float64) int64 {
	if base < 2 {
		base = 2
	}
	return int64(math.Ceil(math.Log(float64(t)+1) / math.Log(base)))
}

// StageDeterministic is the off-line adversary from the proof of Theorem
// 3.1, applicable to deterministic algorithms whose machines implement
// sim.Cloner. At the start of each stage it clones every live machine and
// runs the clones one stage ahead (with the machine's current inbox and no
// further deliveries — exactly what the real machines will experience,
// because all mid-stage messages are held to the stage boundary). From the
// look-ahead sets J_s(i) it picks, by the pigeonhole argument, a set J_s of
// ≈ u_s/(3L) low-coverage tasks and delays every processor that would touch
// J_s for the entire stage. This forces u_{s+1} ≥ u_s/(3L) while ≥ p/3
// processors run undelayed, yielding work Ω(p·min{d,t}·log_{d+1}(d+t)).
type StageDeterministic struct {
	Bound int64
	T     int
	clock stageClock
	// maxStages caps adversarial stages so executions terminate.
	maxStages int64
	// delayed[i] reports that processor i is delayed for the current stage.
	delayed  []bool
	curStage int64
	// Stages counts adversarial stages actually executed (for reporting).
	Stages int64
}

var (
	_ sim.Adversary        = (*StageDeterministic)(nil)
	_ sim.MulticastDelayer = (*StageDeterministic)(nil)
	_ sim.UniformDelayer   = (*StageDeterministic)(nil)
)

// NewStageDeterministic builds the Theorem 3.1 adversary for t tasks and
// delay bound d.
func NewStageDeterministic(d int64, t int) *StageDeterministic {
	c := newStageClock(d, t)
	return &StageDeterministic{
		Bound:     d,
		T:         t,
		clock:     c,
		maxStages: maxAdversarialStages(t, 3*float64(c.L)),
		curStage:  -1,
	}
}

// D implements sim.Adversary.
func (a *StageDeterministic) D() int64 { return a.Bound }

// Delay implements sim.Adversary: hold messages to the stage boundary.
func (a *StageDeterministic) Delay(from, to int, sentAt int64) int64 {
	return a.clock.delayToStageEnd(sentAt)
}

// DelayMulticast implements sim.MulticastDelayer: every recipient of a
// multicast shares the same stage-boundary delivery time.
func (a *StageDeterministic) DelayMulticast(from int, sentAt int64, out []int64) {
	d := a.clock.delayToStageEnd(sentAt)
	for j := range out {
		out[j] = d
	}
}

// DelayUniform implements sim.UniformDelayer.
func (a *StageDeterministic) DelayUniform(from int, sentAt int64) (int64, bool) {
	return a.clock.delayToStageEnd(sentAt), true
}

// Schedule implements sim.Adversary. When the construction has delayed
// every live processor for the rest of the stage, the decision promises
// idleness until the stage boundary so the engine can fast-forward.
func (a *StageDeterministic) Schedule(v *sim.View, dec *sim.Decision) {
	if len(a.delayed) != v.P {
		a.delayed = make([]bool, v.P)
	}
	st := a.clock.stage(v.Now)
	if st != a.curStage && a.clock.stageStart(v.Now) {
		a.curStage = st
		a.planStage(v)
	}
	for i := 0; i < v.P; i++ {
		if !a.delayed[i] && !v.Crashed[i] && !v.Halted[i] {
			dec.Active = append(dec.Active, i)
		}
	}
	if len(dec.Active) == 0 {
		dec.NextWake = (a.clock.stage(v.Now) + 1) * a.clock.L
	}
}

// planStage performs the look-ahead and chooses the delayed set.
func (a *StageDeterministic) planStage(v *sim.View) {
	for i := range a.delayed {
		a.delayed[i] = false
	}
	// Turn benign once the construction can no longer sustain itself:
	// either the stage budget is exhausted or u < 3L (the pigeonhole set
	// J_s would be empty).
	if a.curStage >= a.maxStages || int64(v.Undone()) < 3*a.clock.L {
		return
	}
	a.Stages++

	// Look ahead: J_s(i) = tasks processor i would perform this stage.
	cover := make(map[int]int, v.Undone()) // undone task -> #procs touching it
	sets := make([]map[int]bool, v.P)
	for i := 0; i < v.P; i++ {
		if v.Crashed[i] || v.Halted[i] {
			continue
		}
		cl, ok := v.Machines[i].(sim.Cloner)
		if !ok {
			// Machine not cloneable: leave it undelayed (conservative —
			// weakens, never invalidates, the adversary).
			continue
		}
		m := cl.CloneMachine()
		if m == nil {
			continue // cloning unsupported at runtime (e.g. PaRan2)
		}
		set := make(map[int]bool)
		inbox := append([]sim.Delivery(nil), v.Inboxes[i]...)
		for k := int64(0); k < a.clock.L; k++ {
			r := m.Step(v.Now+k, inbox)
			inbox = nil
			if z := r.PerformedTask(); z >= 0 && !v.Tasks.Done(z) {
				set[z] = true
				cover[z]++
			}
			if r.Halt {
				break
			}
		}
		sets[i] = set
	}

	// Pigeonhole: pick the ⌈u/(3L)⌉ undone tasks with the lowest coverage.
	type tc struct{ z, c int }
	cand := make([]tc, 0, v.Undone())
	for z := v.Tasks.NextUndone(0); z >= 0; z = v.Tasks.NextUndone(z + 1) {
		cand = append(cand, tc{z, cover[z]})
	}
	sort.Slice(cand, func(x, y int) bool {
		if cand[x].c != cand[y].c {
			return cand[x].c < cand[y].c
		}
		return cand[x].z < cand[y].z
	})
	k := int(int64(v.Undone()) / (3 * a.clock.L))
	if k < 1 {
		k = 1
	}
	if k > len(cand) {
		k = len(cand)
	}
	protected := make(map[int]bool, k)
	for _, c := range cand[:k] {
		protected[c.z] = true
	}

	// Delay every processor whose look-ahead set intersects J_s.
	for i := 0; i < v.P; i++ {
		for z := range sets[i] {
			if protected[z] {
				a.delayed[i] = true
				break
			}
		}
	}
}

// StageOnline is the adaptive adversary from the proof of Theorem 3.4,
// applicable to any algorithm whose machines implement sim.TaskIntender
// (randomized machines commit to their next task choice, which the
// adaptive adversary may observe). At each stage start it selects a
// protected set J_s of ≈ u/(L+1) undone tasks; during the stage, the
// moment a processor's next intended task lies in J_s the processor is
// delayed to the stage boundary. Lemma 3.3 guarantees that w.h.p. at
// least p/64 processors run undelayed while all of J_s survives the
// stage, forcing expected work Ω(p·min{d,t}·log_{d+1}(d+t)).
type StageOnline struct {
	Bound     int64
	T         int
	clock     stageClock
	maxStages int64
	protected map[int]bool
	delayed   []bool
	curStage  int64
	// Stages counts adversarial stages actually executed.
	Stages int64
}

var (
	_ sim.Adversary        = (*StageOnline)(nil)
	_ sim.MulticastDelayer = (*StageOnline)(nil)
	_ sim.UniformDelayer   = (*StageOnline)(nil)
)

// NewStageOnline builds the Theorem 3.4 adversary for t tasks and delay
// bound d.
func NewStageOnline(d int64, t int) *StageOnline {
	c := newStageClock(d, t)
	return &StageOnline{
		Bound:     d,
		T:         t,
		clock:     c,
		maxStages: maxAdversarialStages(t, float64(c.L)+1),
		curStage:  -1,
	}
}

// D implements sim.Adversary.
func (a *StageOnline) D() int64 { return a.Bound }

// InboxAgnostic implements sim.InboxAgnostic: the adaptive adversary
// probes machine intents (TaskIntender) and the task ledger, never
// View.Inboxes, so the engine may run its grouped delivery path.
func (a *StageOnline) InboxAgnostic() bool { return true }

// Delay implements sim.Adversary.
func (a *StageOnline) Delay(from, to int, sentAt int64) int64 {
	return a.clock.delayToStageEnd(sentAt)
}

// DelayMulticast implements sim.MulticastDelayer.
func (a *StageOnline) DelayMulticast(from int, sentAt int64, out []int64) {
	d := a.clock.delayToStageEnd(sentAt)
	for j := range out {
		out[j] = d
	}
}

// DelayUniform implements sim.UniformDelayer.
func (a *StageOnline) DelayUniform(from int, sentAt int64) (int64, bool) {
	return a.clock.delayToStageEnd(sentAt), true
}

// Schedule implements sim.Adversary.
func (a *StageOnline) Schedule(v *sim.View, dec *sim.Decision) {
	if len(a.delayed) != v.P {
		a.delayed = make([]bool, v.P)
	}
	st := a.clock.stage(v.Now)
	if st != a.curStage && a.clock.stageStart(v.Now) {
		a.curStage = st
		a.planStage(v)
	}
	for i := 0; i < v.P; i++ {
		if a.delayed[i] || v.Crashed[i] || v.Halted[i] {
			continue
		}
		// Adaptive rule: delay i the moment it intends a protected task.
		if len(a.protected) > 0 {
			if ti, ok := v.Machines[i].(sim.TaskIntender); ok {
				if z := ti.NextTask(); z >= 0 && a.protected[z] {
					a.delayed[i] = true
					continue
				}
			}
		}
		dec.Active = append(dec.Active, i)
	}
	if len(dec.Active) == 0 {
		// Everyone is delayed to the stage boundary: promise idleness so
		// the engine fast-forwards instead of ticking through the stage.
		dec.NextWake = (a.clock.stage(v.Now) + 1) * a.clock.L
	}
}

func (a *StageOnline) planStage(v *sim.View) {
	for i := range a.delayed {
		a.delayed[i] = false
	}
	a.protected = nil
	if a.curStage >= a.maxStages || int64(v.Undone()) < a.clock.L+1 {
		return
	}
	a.Stages++

	// Choose J_s: the ⌈u/(L+1)⌉ undone tasks currently intended by the
	// fewest processors (ties to higher ids, so the set is deterministic
	// given the intents).
	intent := make(map[int]int)
	for i := 0; i < v.P; i++ {
		if v.Crashed[i] || v.Halted[i] {
			continue
		}
		if ti, ok := v.Machines[i].(sim.TaskIntender); ok {
			if z := ti.NextTask(); z >= 0 && !v.Tasks.Done(z) {
				intent[z]++
			}
		}
	}
	type tc struct{ z, c int }
	cand := make([]tc, 0, v.Undone())
	for z := v.Tasks.NextUndone(0); z >= 0; z = v.Tasks.NextUndone(z + 1) {
		cand = append(cand, tc{z, intent[z]})
	}
	sort.Slice(cand, func(x, y int) bool {
		if cand[x].c != cand[y].c {
			return cand[x].c < cand[y].c
		}
		return cand[x].z > cand[y].z
	})
	k := int(int64(v.Undone()) / (a.clock.L + 1))
	if k < 1 {
		k = 1
	}
	if k > len(cand) {
		k = len(cand)
	}
	a.protected = make(map[int]bool, k)
	for _, c := range cand[:k] {
		a.protected[c.z] = true
	}
}
