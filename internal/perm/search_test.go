package perm

import (
	"math"
	"math/rand"
	"testing"
)

func TestHarmonic(t *testing.T) {
	if h := Harmonic(1); h != 1 {
		t.Fatalf("H_1 = %v, want 1", h)
	}
	if h := Harmonic(2); math.Abs(h-1.5) > 1e-12 {
		t.Fatalf("H_2 = %v, want 1.5", h)
	}
	// H_n ∈ [ln n, ln n + 1] (used in the paper's Lemma 4.3 proof).
	for _, n := range []int{5, 50, 500} {
		h := Harmonic(n)
		ln := math.Log(float64(n))
		if h < ln || h > ln+1 {
			t.Fatalf("H_%d = %v outside [ln n, ln n + 1] = [%v, %v]", n, h, ln, ln+1)
		}
	}
}

func TestHarmonicBoundPositive(t *testing.T) {
	prev := 0
	for n := 1; n <= 30; n++ {
		b := HarmonicBound(n)
		if b <= 0 {
			t.Fatalf("HarmonicBound(%d) = %d", n, b)
		}
		if b < prev {
			t.Fatalf("HarmonicBound not monotone at n=%d", n)
		}
		prev = b
	}
}

func TestDContBound(t *testing.T) {
	if b := DContBound(0, 5, 1); b != 0 {
		t.Fatalf("DContBound(0,·,·) = %v, want 0", b)
	}
	// Monotone in d and p.
	prev := 0.0
	for d := 1; d <= 10; d++ {
		b := DContBound(100, 10, d)
		if b <= prev {
			t.Fatalf("DContBound not increasing in d at d=%d", d)
		}
		prev = b
	}
	if DContBound(100, 20, 3) <= DContBound(100, 10, 3) {
		t.Fatal("DContBound not increasing in p")
	}
}

func TestFindLowContentionListMeetsLemma41Bound(t *testing.T) {
	// Lemma 4.1: there exists a list of n permutations with Cont ≤ 3nH_n.
	// Our search should find one for small n with a few restarts.
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 4, 5} {
		res := FindLowContentionList(n, n, 200, r)
		if err := CheckList(res.List); err != nil {
			t.Fatal(err)
		}
		if len(res.List) != n {
			t.Fatalf("list has %d perms, want %d", len(res.List), n)
		}
		if !res.Exact {
			t.Fatalf("expected exact contention for n=%d", n)
		}
		if res.Cont > HarmonicBound(n) {
			t.Errorf("n=%d: found Cont=%d > 3nH_n=%d", n, res.Cont, HarmonicBound(n))
		}
		if res.Cont < n {
			t.Errorf("n=%d: Cont=%d below the trivial lower bound n", n, res.Cont)
		}
	}
}

func TestFindLowContentionListLargeNUsesEstimate(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	res := FindLowContentionList(8, 16, 10, r)
	if res.Exact {
		t.Fatal("n=16 should not be evaluated exactly")
	}
	if err := CheckList(res.List); err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 11 {
		t.Fatalf("Candidates = %d, want 11", res.Candidates)
	}
}

func TestFindLowDContentionList(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	res := FindLowDContentionList(4, 6, 2, 100, r)
	if err := CheckList(res.List); err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("n=6 should be exact")
	}
	// d-Cont of any list of 4 perms of S_6 is within [something, 24]; the
	// found list must beat the identical-identity list (worst case 24).
	worst := make(List, 4)
	for i := range worst {
		worst[i] = Identity(6)
	}
	if res.Cont > DCont(worst, 2) {
		t.Fatalf("search result (%d) worse than all-identity list (%d)", res.Cont, DCont(worst, 2))
	}
}

func TestRotationList(t *testing.T) {
	l := RotationList(3, 4)
	if err := CheckList(l); err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 || l.N() != 4 {
		t.Fatalf("RotationList wrong shape: k=%d n=%d", len(l), l.N())
	}
	if l.Distinct() != 3 {
		t.Fatalf("rotations should be distinct, got %d distinct", l.Distinct())
	}
	if !l[0].Equal(Reverse(4)) {
		t.Fatalf("first rotation should be the reverse permutation, got %v", l[0])
	}
}

func TestExhaustiveBestListMatchesRandomSearch(t *testing.T) {
	// For n=3, k=2 the exhaustive optimum is a floor that random search with
	// enough restarts should reach.
	best := ExhaustiveBestList(2, 3)
	r := rand.New(rand.NewSource(45))
	res := FindLowContentionList(2, 3, 500, r)
	if res.Cont != best.Cont {
		t.Fatalf("random search Cont=%d, exhaustive optimum=%d", res.Cont, best.Cont)
	}
	if best.Candidates != 36 {
		t.Fatalf("exhaustive candidates = %d, want (3!)² = 36", best.Candidates)
	}
}

func TestExhaustiveBestListPanicsOnHugeSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for huge search space")
		}
	}()
	ExhaustiveBestList(8, 8)
}

func TestRandomListDContentionMeetsTheorem44Bound(t *testing.T) {
	// Theorem 4.4: a random list violates the bound for *some* d with
	// probability ≤ e^{-n ln n ln(7/e²) - p}. For n=64, p=8 this is
	// astronomically small, so a fixed-seed random list must satisfy it for
	// every d we probe. We check the estimate (a lower bound on the true
	// d-contention) against the analytic bound.
	r := rand.New(rand.NewSource(46))
	n, p := 64, 8
	l := RandomList(p, n, r)
	for _, d := range []int{1, 2, 4, 8, 12} {
		est := DContEstimate(l, d, 50, r)
		bound := DContBound(n, p, d)
		if float64(est) > bound {
			t.Errorf("d=%d: estimated d-contention %d exceeds bound %.1f", d, est, bound)
		}
	}
}

func TestPrefixSumContention(t *testing.T) {
	l := List{Identity(4), Reverse(4)}
	got := PrefixSumContention(l)
	if len(got) != 2 || got[0] != 4 || got[1] != 1 {
		t.Fatalf("PrefixSumContention = %v, want [4 1]", got)
	}
}
