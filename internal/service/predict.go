package service

import (
	"context"
	"fmt"

	"doall/internal/scenario"
	"doall/internal/sim"
	"doall/internal/twin"
)

// The predict plane: POST /v1/predict answers "what would this cell
// cost?" queries. When the daemon carries a calibrated analytical twin
// and the query lands inside its calibrated envelope with a tight
// confidence band, the answer is a model evaluation — microseconds, no
// engine involved. Otherwise the daemon falls back to one real bounded
// simulation of the queried cell on a dedicated predict engine, so the
// endpoint never lies outside the twin's evidence; the response's mode
// field and the doalld_twin_predictions_total{mode} counters make the
// split observable.

// defaultTwinMaxBandRatio is the widest Hi/Lo confidence ratio the
// daemon will serve analytically; above it the model's own uncertainty
// says a real run is worth the cost.
const defaultTwinMaxBandRatio = 8.0

// PredictResult is the POST /v1/predict response: the prediction plus
// how it was produced ("twin" = analytical model, "fallback" = one real
// bounded simulation).
type PredictResult struct {
	Mode       string          `json:"mode"`
	Prediction twin.Prediction `json:"prediction"`
}

func (s *Service) twinMaxBandRatio() float64 {
	if s.cfg.TwinMaxBandRatio > 0 {
		return s.cfg.TwinMaxBandRatio
	}
	return defaultTwinMaxBandRatio
}

// Predict answers one query, preferring the twin and falling back to a
// real bounded simulation when the twin cannot vouch for the shape: no
// twin loaded, no model for the (algorithm, adversary family), outside
// the calibrated envelope, or a confidence band wider than the
// configured ratio.
func (s *Service) Predict(ctx context.Context, q twin.Query) (PredictResult, error) {
	// Scenario.Validate would silently default a degenerate shape; a
	// predict query must mean exactly the shape it names.
	if q.P < 1 || q.T < 1 || q.D < 1 || (q.Q != 0 && q.Q < 2) {
		return PredictResult{}, fmt.Errorf("service: predict: bad shape p=%d t=%d d=%d q=%d (want p,t,d ≥ 1 and q = 0 or ≥ 2)",
			q.P, q.T, q.D, q.Q)
	}
	if tw := s.cfg.Twin; tw != nil {
		pred, err := tw.Predict(q)
		if err == nil && pred.InEnvelope && pred.BandRatio <= s.twinMaxBandRatio() {
			s.metrics.twinPredicts.Add(1)
			return PredictResult{Mode: "twin", Prediction: pred}, nil
		}
		// An unknown algorithm/family or out-of-coverage shape is not an
		// error yet: the registries may still know how to simulate it.
	}
	pred, err := s.predictBySimulation(ctx, q)
	if err != nil {
		return PredictResult{}, err
	}
	s.metrics.twinFallbacks.Add(1)
	return PredictResult{Mode: "fallback", Prediction: pred}, nil
}

// predictBySimulation runs the queried cell once, bounded by the
// daemon's default timeout, on the dedicated predict engine.
func (s *Service) predictBySimulation(ctx context.Context, q twin.Query) (twin.Prediction, error) {
	sc := scenario.Scenario{
		Algorithm: q.Algo,
		Adversary: q.Adversary,
		P:         q.P,
		T:         q.T,
		D:         q.D,
		Q:         q.Q,
		Seed:      scenario.CellSeed(0, q.Algo, q.P, q.T, q.D),
		Shards:    s.cfg.Shards,
	}
	if err := sc.Validate(); err != nil {
		return twin.Prediction{}, err
	}
	if s.cfg.MaxMem > 0 {
		est := scenario.EstimateSweepBytes(scenario.SweepConfig{
			Algos: []string{q.Algo}, Ps: []int{q.P}, Ts: []int{q.T}, Ds: []int64{q.D},
			Adversary: q.Adversary, Q: q.Q, Workers: 1,
		})
		if est > s.cfg.MaxMem {
			return twin.Prediction{}, fmt.Errorf("%w: predict fallback estimated %d bytes > budget %d",
				ErrOverBudget, est, s.cfg.MaxMem)
		}
	}
	if s.cfg.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
	}

	s.predictMu.Lock()
	defer s.predictMu.Unlock()
	// Re-check shutdown under the predict lock: Close() closes the predict
	// engine under this same lock, so a predict that wins the lock first
	// completes and one that loses sees closing.
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		return twin.Prediction{}, ErrDraining
	}
	if s.predictEng == nil {
		s.predictEng = sim.NewEngine()
	}
	s.predictSims.Add(1)
	cell := scenario.RunCellObserved(ctx, s.predictEng, sc, 1, false, nil)
	if cell.Err != "" {
		return twin.Prediction{}, fmt.Errorf("service: predict fallback simulation: %s", cell.Err)
	}
	// A measured cell is exact: point estimate with a collapsed band.
	return twin.Prediction{
		Algo:       q.Algo,
		Family:     twin.Family(q.Adversary),
		Work:       cell.Work,
		Messages:   cell.Messages,
		SolvedAt:   cell.SolvedAt,
		WorkLo:     cell.Work,
		WorkHi:     cell.Work,
		MessagesLo: cell.Messages,
		MessagesHi: cell.Messages,
		SolvedAtLo: cell.SolvedAt,
		SolvedAtHi: cell.SolvedAt,
		BandRatio:  1,
	}, nil
}

// PredictSimRuns reports how many fallback simulations the predict
// plane has executed — the "in-envelope answers touch no engine"
// contract is pinned by tests reading this before and after.
func (s *Service) PredictSimRuns() int64 {
	return s.predictSims.Load()
}
