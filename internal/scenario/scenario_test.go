package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

// legacyBuildMachines is a verbatim copy of the pre-registry harness
// switch. The registry builders must reproduce it bit for bit: same seed
// stream, same schedule search, same machines.
func legacyBuildMachines(sc Scenario) ([]sim.Machine, error) {
	sc = sc.WithDefaults()
	r := rand.New(rand.NewSource(sc.Seed))
	switch sc.Algorithm {
	case "AllToAll":
		return core.NewAllToAll(sc.P, sc.T), nil
	case "ObliDo":
		jobs := core.NewJobs(sc.P, sc.T)
		l := perm.RandomList(sc.P, jobs.N, r)
		return core.NewObliDo(sc.P, sc.T, l), nil
	case "DA":
		l := perm.FindLowContentionList(sc.Q, sc.Q, sc.SearchRestarts, r).List
		return core.NewDA(core.DAConfig{P: sc.P, T: sc.T, Q: sc.Q, Perms: l})
	case "PaRan1":
		return core.NewPaRan1(sc.P, sc.T, sc.Seed), nil
	case "PaRan2":
		return core.NewPaRan2(sc.P, sc.T, sc.Seed), nil
	case "PaDet":
		jobs := core.NewJobs(sc.P, sc.T)
		l := perm.FindLowDContentionList(sc.P, jobs.N, int(sc.D), sc.SearchRestarts, r).List
		return core.NewPaDet(sc.P, sc.T, l)
	}
	return nil, fmt.Errorf("legacy: unknown algorithm %q", sc.Algorithm)
}

// legacyBuildAdversary constructs each pre-registered adversary directly,
// the way pre-Scenario code did — including the standalone SlowSet, which
// the registry replaces with the composable SlowSetOver(fair).
func legacyBuildAdversary(sc Scenario, name string) (sim.Adversary, error) {
	sc = sc.WithDefaults()
	switch name {
	case "fair":
		return adversary.NewFair(sc.D), nil
	case "random":
		return adversary.NewRandom(sc.D, 0.75, sc.Seed^0x5eed), nil
	case "crashing":
		var events []adversary.CrashEvent
		for i := 1; i <= (sc.P-1)/2; i++ {
			events = append(events, adversary.CrashEvent{Pid: i, At: int64(i) * sc.D})
		}
		return adversary.NewCrashing(adversary.NewFair(sc.D), events), nil
	case "slow-set":
		var slow []int
		for i := sc.P / 2; i < sc.P; i++ {
			slow = append(slow, i)
		}
		return adversary.NewSlowSet(sc.D, slow, 4), nil
	case "stage-det":
		return adversary.NewStageDeterministic(sc.D, sc.T), nil
	case "stage-online":
		return adversary.NewStageOnline(sc.D, sc.T), nil
	}
	return nil, fmt.Errorf("legacy: unknown adversary %q", name)
}

// TestScenarioMatchesLegacyPath is the redesign's acceptance contract:
// for every pre-registered algorithm × adversary pair, running through
// the declarative Scenario path yields byte-identical Results to direct
// legacy construction.
func TestScenarioMatchesLegacyPath(t *testing.T) {
	algos := []string{AlgoAllToAll, AlgoObliDo, AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet}
	advs := []string{AdvFair, AdvRandom, AdvCrashing, AdvSlowSet, AdvStageDet, AdvStageOnline}
	sizes := []struct{ p, t int }{{4, 16}, {7, 32}}

	for _, algo := range algos {
		for _, adv := range advs {
			for _, size := range sizes {
				for _, d := range []int64{1, 3} {
					sc := Scenario{Algorithm: algo, Adversary: adv, P: size.p, T: size.t, D: d, Seed: 17}
					name := fmt.Sprintf("%s/%s/p%d-t%d-d%d", algo, adv, size.p, size.t, d)
					t.Run(name, func(t *testing.T) {
						msL, err := legacyBuildMachines(sc)
						if err != nil {
							t.Fatal(err)
						}
						advL, err := legacyBuildAdversary(sc, adv)
						if err != nil {
							t.Fatal(err)
						}
						legacy, errL := sim.Run(sim.Config{P: sc.P, T: sc.T}, msL, advL)

						fresh, errN := Run(sc)
						if (errL == nil) != (errN == nil) {
							t.Fatalf("error mismatch: legacy=%v scenario=%v", errL, errN)
						}
						if errL != nil {
							return
						}
						if !reflect.DeepEqual(legacy, fresh.Sim) {
							t.Fatalf("Result diverged:\nlegacy:   %+v\nscenario: %+v", legacy, fresh.Sim)
						}
					})
				}
			}
		}
	}
}

// TestScenarioJSONRoundTrip asserts marshal → unmarshal → run reproduces
// the original Result exactly, for flat and composed adversaries.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, sc := range []Scenario{
		{Algorithm: AlgoDA, P: 5, T: 32, Q: 2, D: 3, Seed: 9},
		{Algorithm: AlgoPaRan1, Adversary: "random(activity=0.6)", P: 6, T: 24, D: 4, Seed: 2},
		{Algorithm: AlgoPaRan2, Adversary: "crashing(slow-set(fair,period=3),crash=0@2)", P: 4, T: 16, D: 2, Seed: 5},
	} {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("Parse(%s): %v", data, err)
		}
		if back != sc {
			t.Fatalf("round trip changed the spec:\nin:  %+v\nout: %+v", sc, back)
		}
		orig, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := Run(back)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(orig.Sim, replay.Sim) {
			t.Fatalf("round-tripped scenario diverged:\norig:   %+v\nreplay: %+v", orig.Sim, replay.Sim)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"algorithm":"DA","p":4,"t":8,"bogus":1}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := (Scenario{Algorithm: "nope", P: 2, T: 2}).Machines(); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown algorithm: %v", err)
	}
	if _, err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "nope", P: 2, T: 2}).BuildAdversary(); err == nil || !strings.Contains(err.Error(), "unknown adversary") {
		t.Fatalf("unknown adversary: %v", err)
	}
	if _, err := Run(Scenario{Algorithm: AlgoPaRan1, P: 2, T: 2, Backend: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend: %v", err)
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "crashing(crash=zap)", P: 2, T: 2}).Validate(); err == nil {
		t.Fatal("malformed crash event accepted")
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "fair(dealy=2)", P: 2, T: 2}).Validate(); err == nil {
		t.Fatal("typoed parameter key accepted")
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "stage-det(fair)", P: 2, T: 2}).Validate(); err == nil {
		t.Fatal("inner adversary on a non-combinator accepted")
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "crashing(crash=9@5)", P: 4, T: 8}).Validate(); err == nil || !strings.Contains(err.Error(), "outside [0, 4)") {
		t.Fatalf("out-of-range crash pid accepted: %v", err)
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "crashing(crash=-1@5)", P: 4, T: 8}).Validate(); err == nil {
		t.Fatal("negative crash pid accepted")
	}
	if err := (Scenario{Algorithm: AlgoPaRan1, Adversary: "crashing(crash=1@-2)", P: 4, T: 8}).Validate(); err == nil {
		t.Fatal("negative crash time accepted")
	}
}

// TestSlowSetDefaultInnerKeepsFastForward pins the builder choice: a
// flat slow-set expression builds the standalone SlowSet (which promises
// NextWake across all-slow idle stretches), while an explicit inner
// builds the combinator.
func TestSlowSetDefaultInnerKeepsFastForward(t *testing.T) {
	sc := Scenario{Algorithm: AlgoPaRan1, P: 4, T: 8, D: 2}
	sc.Adversary = "slow-set(period=6)"
	adv, err := sc.BuildAdversary()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.(*adversary.SlowSet); !ok {
		t.Fatalf("flat slow-set built %T, want *adversary.SlowSet", adv)
	}
	sc.Adversary = "slow-set(fair,period=6)"
	adv, err = sc.BuildAdversary()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.(*adversary.SlowSetOver); !ok {
		t.Fatalf("slow-set(fair) built %T, want *adversary.SlowSetOver", adv)
	}
}

// TestRegistryExtension exercises the open-registry story: a user-defined
// algorithm and a user-defined adversary combinator become addressable
// from a declarative spec.
func TestRegistryExtension(t *testing.T) {
	RegisterAlgorithm("test-solo", func(sc Scenario) ([]Machine, error) {
		return core.NewAllToAll(sc.P, sc.T), nil
	})
	RegisterAdversary("test-jitter", func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(1); err != nil {
			return nil, err
		}
		inner, err := ctx.innerOrFair()
		if err != nil {
			return nil, err
		}
		return inner, nil // identity combinator: enough to prove wiring
	})
	res, err := Run(Scenario{Algorithm: "test-solo", Adversary: "test-jitter(fair(delay=1))", P: 3, T: 9, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved() || res.Work() != 27 {
		t.Fatalf("custom registration run: solved=%v work=%d", res.Solved(), res.Work())
	}
	found := false
	for _, n := range Algorithms() {
		if n == "test-solo" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered algorithm missing from Algorithms()")
	}
}

func TestBackendsAgree(t *testing.T) {
	base := Scenario{Algorithm: AlgoDA, P: 4, T: 16, D: 2, Seed: 3}
	simRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	legacy := base
	legacy.Backend = BackendSimLegacy
	legacyRes, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simRes.Sim, legacyRes.Sim) {
		t.Fatalf("sim and sim-legacy diverged:\nsim:    %+v\nlegacy: %+v", simRes.Sim, legacyRes.Sim)
	}
}

func TestRuntimeBackend(t *testing.T) {
	var hits atomic.Int64
	res, err := RunWith(Scenario{Algorithm: AlgoPaRan1, Backend: BackendRuntime, P: 3, T: 12, D: 2, Seed: 8},
		Options{Task: func(id int) { hits.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == nil || !res.Solved() {
		t.Fatalf("runtime backend: %+v", res)
	}
	if hits.Load() < 12 {
		t.Fatalf("task body ran %d times, want ≥ 12", hits.Load())
	}
	if res.Work() != res.Runtime.Steps || res.Messages() != res.Runtime.Messages {
		t.Fatal("Result accessors disagree with runtime report")
	}
}

func TestRunAvgMatchesManualAverage(t *testing.T) {
	sc := Scenario{Algorithm: AlgoAllToAll, P: 3, T: 9, D: 1, Trials: 3}
	avg, err := RunAvg(sc)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Work != 27 || avg.Trials != 3 {
		t.Fatalf("avg = %+v, want work 27 over 3 trials", avg)
	}
	if _, err := RunAvg(Scenario{Algorithm: AlgoAllToAll, Backend: BackendRuntime, P: 2, T: 4, D: 1}); err == nil {
		t.Fatal("RunAvg on runtime backend accepted")
	}
}

func TestScenarioObserverThreaded(t *testing.T) {
	var solved bool
	_, err := RunWith(Scenario{Algorithm: AlgoPaRan2, P: 4, T: 16, D: 2, Seed: 1},
		Options{Observer: &sim.FuncObserver{Solved: func(now int64, res *sim.Result) { solved = true }}})
	if err != nil {
		t.Fatal(err)
	}
	if !solved {
		t.Fatal("observer not threaded through scenario run")
	}
}
