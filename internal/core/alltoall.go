package core

import (
	"doall/internal/sim"
)

// AllToAll is the communication-oblivious baseline from the introduction:
// every processor performs every task itself, giving work Θ(p·t) and zero
// messages. It is correct under any pattern of asynchrony, crashes (with
// one survivor), and delay — the yardstick every delay-sensitive algorithm
// must beat when d = o(t).
//
// Each processor starts at a pid-dependent offset so that distinct
// processors cover the task space in rotated orders; this does not change
// the worst-case work but spreads first-performances in benign runs.
type AllToAll struct {
	pid  int
	t    int
	next int // tasks performed so far (0..t)
	off  int
}

var (
	_ sim.Machine      = (*AllToAll)(nil)
	_ sim.TaskIntender = (*AllToAll)(nil)
	_ sim.Cloner       = (*AllToAll)(nil)
	_ sim.Resetter     = (*AllToAll)(nil)
	_ sim.Rejoiner     = (*AllToAll)(nil)
)

// NewAllToAll builds the p machines of the oblivious algorithm for t tasks.
func NewAllToAll(p, t int) []sim.Machine {
	ms := make([]sim.Machine, p)
	for i := range ms {
		off := 0
		if p > 0 {
			off = (i * ((t + p - 1) / p)) % t
		}
		ms[i] = &AllToAll{pid: i, t: t, off: off}
	}
	return ms
}

// Step implements sim.Machine: perform the next task in rotated order.
func (m *AllToAll) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	if m.next >= m.t {
		return sim.StepResult{Halt: true}
	}
	z := (m.off + m.next) % m.t
	m.next++
	r := sim.StepResult{Halt: m.next >= m.t}
	r.Perform(z)
	return r
}

// KnowsAllDone implements sim.Machine: the processor knows all tasks are
// done only once it has performed every one of them itself.
func (m *AllToAll) KnowsAllDone() bool { return m.next >= m.t }

// NextTask implements sim.TaskIntender.
func (m *AllToAll) NextTask() int {
	if m.next >= m.t {
		return -1
	}
	return (m.off + m.next) % m.t
}

// CloneMachine implements sim.Cloner.
func (m *AllToAll) CloneMachine() sim.Machine {
	c := *m
	return &c
}

// Reset implements sim.Resetter.
func (m *AllToAll) Reset() { m.next = 0 }

// Rejoin implements sim.Rejoiner: a crash-restarted processor starts its
// rotated cover over (it communicates nothing, so rejoining is a plain
// reset).
func (m *AllToAll) Rejoin() { m.Reset() }
