package core

import (
	"fmt"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
	"doall/internal/tree"
)

// DA implements one processor of algorithm DA(q) (Section 5, Fig. 3): a
// message-passing re-interpretation of the Anderson–Woll shared-memory
// algorithm. Each processor holds a *replica* of a q-ary boolean progress
// tree with the jobs at its leaves. It traverses the tree in post-order,
// choosing the visiting order of the q subtrees of a depth-m node with the
// permutation π_{x[m]} ∈ Σ selected by the m-th q-ary digit x[m] of its
// pid. Instead of writing to shared memory it multicasts its tree whenever
// it completes a leaf or closes an interior node; received trees are
// merged monotonically into the replica, pruning the traversal.
//
// Work is O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) for a suitable constant q and a
// low-contention Σ (Theorems 5.4, 5.5); messages are O(p·W) (Theorem 5.6).
type DA struct {
	pid    int
	q      int
	perms  perm.List // q permutations of [q]
	digits []int     // q-ary digits of pid, digits[m] used at depth m
	tree   *tree.Tree
	jobs   Jobs
	stack  []daFrame
	unit   int // tasks of the current leaf's job already performed
	halted bool
	// free pools tree-snapshot buffers handed back by the engine
	// (sim.PayloadRecycler), so steady-state broadcasts allocate nothing.
	free []*bitset.Set
}

type daFrame struct {
	node  int
	depth int
	next  int // next ordinal (0..q) into the permutation at this depth
}

var (
	_ sim.Machine         = (*DA)(nil)
	_ sim.TaskIntender    = (*DA)(nil)
	_ sim.Cloner          = (*DA)(nil)
	_ sim.Resetter        = (*DA)(nil)
	_ sim.PayloadRecycler = (*DA)(nil)
)

// DAConfig parameterizes the DA(q) family.
type DAConfig struct {
	P int // processors
	T int // tasks
	Q int // tree arity, 2 ≤ Q
	// Perms is the schedule list Σ: Q permutations of [Q]. If nil, a
	// low-contention list is required from the caller; use
	// perm.FindLowContentionList or perm.RotationList.
	Perms perm.List
}

// NewDA builds the p machines of algorithm DA(q).
func NewDA(cfg DAConfig) ([]sim.Machine, error) {
	if cfg.Q < 2 {
		return nil, fmt.Errorf("core: DA requires q ≥ 2, got %d", cfg.Q)
	}
	if len(cfg.Perms) != cfg.Q || cfg.Perms.N() != cfg.Q {
		return nil, fmt.Errorf("core: DA requires %d permutations of [%d], got %d of [%d]",
			cfg.Q, cfg.Q, len(cfg.Perms), cfg.Perms.N())
	}
	if err := perm.CheckList(cfg.Perms); err != nil {
		return nil, err
	}
	if cfg.P < 1 || cfg.T < 1 {
		return nil, fmt.Errorf("core: DA requires p ≥ 1 and t ≥ 1")
	}
	jobs := NewJobs(cfg.P, cfg.T)
	ms := make([]sim.Machine, cfg.P)
	for i := range ms {
		tr, _ := tree.NewForTasks(cfg.Q, jobs.N)
		m := &DA{
			pid:    i,
			q:      cfg.Q,
			perms:  cfg.Perms,
			digits: qDigits(i, cfg.Q, tr.Height()),
			tree:   tr,
			jobs:   jobs,
		}
		m.stack = append(m.stack, daFrame{node: tr.Root(), depth: 0})
		ms[i] = m
	}
	return ms, nil
}

// qDigits returns the h least-significant base-q digits of pid, least
// significant first: digits[m] is used at tree depth m.
func qDigits(pid, q, h int) []int {
	d := make([]int, h)
	for m := 0; m < h; m++ {
		d[m] = pid % q
		pid /= q
	}
	return d
}

// Step implements sim.Machine. Each step merges pending messages (one work
// unit covers processing all of them, per the model) and then advances the
// traversal by one micro-operation: skip a finished subtree, descend into
// a child, perform one task of a leaf job, or close a node and multicast.
func (m *DA) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	m.merge(inbox)

	for {
		if len(m.stack) == 0 {
			// Traversal finished ⇒ root is marked ⇒ all tasks done.
			m.halted = true
			return sim.StepResult{Halt: true}
		}
		f := &m.stack[len(m.stack)-1]

		// A node completed by others (via merge) is popped for free: the
		// pruning happens during message processing already paid for. A
		// leaf whose job a peer finished is abandoned even mid-job.
		if m.tree.Done(f.node) {
			m.stack = m.stack[:len(m.stack)-1]
			m.unit = 0
			continue
		}

		if m.tree.IsLeaf(f.node) {
			// Perform the next task of this leaf's job.
			job := m.tree.LeafIndex(f.node)
			z := m.jobs.Start(job) + m.unit
			m.unit++
			if m.unit >= m.jobs.Size(job) {
				m.unit = 0
				m.tree.MarkLeaf(job)
				m.stack = m.stack[:len(m.stack)-1]
				r := sim.StepResult{Broadcast: m.snapshot()}
				r.Perform(z)
				return r
			}
			return sim.PerformStep(z)
		}

		// Interior node: descend into the next not-done child in the
		// order given by π_{x[depth]}, or close the node if exhausted.
		if f.next < m.q {
			ord := m.perms[m.digits[f.depth]]
			child := m.tree.Child(f.node, ord[f.next])
			f.next++
			if !m.tree.Done(child) {
				m.stack = append(m.stack, daFrame{node: child, depth: f.depth + 1})
				return sim.StepResult{} // one unit of traversal overhead
			}
			continue // skipping a done child is part of message processing
		}

		// All children done: close this node and share the news.
		m.tree.Mark(f.node)
		m.stack = m.stack[:len(m.stack)-1]
		halt := m.tree.AllDone() && len(m.stack) == 0
		m.halted = halt
		return sim.StepResult{Broadcast: m.snapshot(), Halt: halt}
	}
}

// merge applies received tree snapshots to the local replica.
func (m *DA) merge(inbox []sim.Delivery) {
	for _, msg := range inbox {
		snap, ok := msg.Payload().(TreeSnapshot)
		if !ok {
			continue
		}
		m.tree.MergeSet(snap.Bits)
	}
}

// snapshot captures the progress tree for a broadcast, reusing a pooled
// buffer when the engine has recycled one (RecyclePayload) and cloning
// otherwise.
func (m *DA) snapshot() TreeSnapshot {
	if n := len(m.free); n > 0 {
		b := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		m.tree.SnapshotInto(b)
		return TreeSnapshot{Bits: b}
	}
	return TreeSnapshot{Bits: m.tree.SnapshotSet()}
}

// RecyclePayload implements sim.PayloadRecycler: a tree snapshot whose
// recipients have all consumed it returns to the buffer pool.
func (m *DA) RecyclePayload(p any) {
	if ts, ok := p.(TreeSnapshot); ok && ts.Bits.Len() == m.tree.Size() {
		m.free = append(m.free, ts.Bits)
	}
}

// KnowsAllDone implements sim.Machine.
func (m *DA) KnowsAllDone() bool { return m.tree.AllDone() }

// NextTask implements sim.TaskIntender: the task the next Step would
// perform, ignoring yet-undelivered messages, or -1 if the next step is
// pure traversal. It mirrors Step's control flow read-only.
func (m *DA) NextTask() int {
	depth := len(m.stack)
	unit := m.unit
	// Walk a virtual stack: copy indices only.
	type vf struct{ node, depth, next int }
	vs := make([]vf, depth)
	for i, f := range m.stack {
		vs[i] = vf{f.node, f.depth, f.next}
	}
	for len(vs) > 0 {
		f := &vs[len(vs)-1]
		if m.tree.Done(f.node) {
			vs = vs[:len(vs)-1]
			unit = 0
			continue
		}
		if m.tree.IsLeaf(f.node) {
			job := m.tree.LeafIndex(f.node)
			return m.jobs.Start(job) + unit
		}
		if f.next < m.q {
			ord := m.perms[m.digits[f.depth]]
			child := m.tree.Child(f.node, ord[f.next])
			f.next++
			if !m.tree.Done(child) {
				return -1 // next step descends, performing nothing
			}
			continue
		}
		return -1 // next step closes an interior node
	}
	return -1
}

// CloneMachine implements sim.Cloner (DA is deterministic).
func (m *DA) CloneMachine() sim.Machine {
	c := *m
	c.tree = m.tree.Clone()
	c.stack = append([]daFrame(nil), m.stack...)
	c.free = nil // pooled buffers stay with the original
	// digits and perms are immutable; share them.
	return &c
}

// Reset implements sim.Resetter: the machine returns to its initial state
// without allocating (the snapshot buffer pool and stack capacity are
// kept), after which it replays the exact same traversal.
func (m *DA) Reset() {
	m.tree.ResetPadded(m.jobs.N)
	m.stack = m.stack[:0]
	m.stack = append(m.stack, daFrame{node: m.tree.Root(), depth: 0})
	m.unit = 0
	m.halted = false
}

// Halted reports whether the machine has voluntarily halted.
func (m *DA) Halted() bool { return m.halted }

// TreeDoneLeaves exposes the replica's completed-leaf count (diagnostics).
func (m *DA) TreeDoneLeaves() int { return m.tree.CountDoneLeaves() }
