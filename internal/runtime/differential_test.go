package runtime

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

// buildDiffMachines constructs one algorithm's machines for the
// differential test (small shapes only).
func buildDiffMachines(algo string, p, t int, seed int64) ([]sim.Machine, error) {
	switch algo {
	case "PaRan1":
		return core.NewPaRan1(p, t, seed), nil
	case "DA":
		r := rand.New(rand.NewSource(seed))
		return core.NewDA(core.DAConfig{P: p, T: t, Q: 2, Perms: perm.FindLowContentionList(2, 2, 8, r).List})
	case "AllToAll":
		return core.NewAllToAll(p, t), nil
	}
	return nil, fmt.Errorf("unknown algo %q", algo)
}

// waitNoGoroutineLeak polls until the goroutine count returns to the
// pre-run baseline (plus scheduler slack), failing the test if it never
// does — a goleak-style check without the dependency.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := goruntime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := goruntime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines alive, baseline %d\n%s",
				goruntime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDifferentialRuntimeVsSim runs the same machines through the
// goroutine runtime and the deterministic simulator on small shapes
// (p ≤ 8) under crash and crash-restart fault maps. Both substrates must
// solve, the runtime's observed work must stay within a generous slack
// factor of the simulator's (the runtime is wall-clock paced and
// nondeterministic, so only the order of magnitude is comparable), and
// no goroutines may leak.
func TestDifferentialRuntimeVsSim(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced differential test")
	}
	cases := []struct {
		algo string
		p, t int
		// crash/revive maps, keyed by pid: crashAfter in local steps,
		// reviveAfter in downtime units (-1 = never revive).
		crashAfter  map[int]int
		reviveAfter map[int]int
	}{
		{"PaRan1", 4, 32, nil, nil},
		{"PaRan1", 4, 32, map[int]int{1: 3}, nil},                                   // plain crash
		{"PaRan1", 6, 48, map[int]int{1: 3, 2: 5}, map[int]int{1: 6}},               // mixed crash / crash-restart
		{"DA", 4, 32, map[int]int{1: 2}, map[int]int{1: 4}},                         // crash-restart
		{"AllToAll", 8, 24, map[int]int{0: 1, 3: 2, 5: 4}, map[int]int{0: 3, 5: 2}}, // oblivious restarts
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("%s/p%d-t%d-crash%d-revive%d", c.algo, c.p, c.t, len(c.crashAfter), len(c.reviveAfter))
		t.Run(name, func(t *testing.T) {
			const seed, d = 7, 2

			// Simulator reference: the analogous fault schedule expressed
			// as a restarting adversary over fair delays.
			simMs, err := buildDiffMachines(c.algo, c.p, c.t, seed)
			if err != nil {
				t.Fatal(err)
			}
			var events []adversary.RestartEvent
			for pid, at := range c.crashAfter {
				ev := adversary.RestartEvent{Pid: pid, CrashAt: int64(at), ReviveAt: -1}
				if down, ok := c.reviveAfter[pid]; ok {
					ev.ReviveAt = ev.CrashAt + int64(down)
				}
				events = append(events, ev)
			}
			simRes, err := sim.Run(sim.Config{P: c.p, T: c.t},
				simMs, adversary.NewRestarting(adversary.NewFair(d), events))
			if err != nil {
				t.Fatalf("sim reference: %v", err)
			}
			if !simRes.Solved {
				t.Fatal("sim reference did not solve")
			}

			// Runtime run, with a leak check around it.
			before := goruntime.NumGoroutine()
			rtMs, err := buildDiffMachines(c.algo, c.p, c.t, seed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(Config{
				P: c.p, T: c.t, D: d,
				Unit:        100 * time.Microsecond,
				Seed:        seed,
				Timeout:     20 * time.Second,
				CrashAfter:  c.crashAfter,
				ReviveAfter: c.reviveAfter,
			}, rtMs)
			if err != nil {
				t.Fatalf("runtime: %v", err)
			}
			waitNoGoroutineLeak(t, before)

			if !rep.Solved {
				t.Fatal("runtime did not solve")
			}
			for pid := range c.crashAfter {
				if !rep.Crashed[pid] {
					t.Errorf("pid %d never crashed", pid)
				}
				if _, ok := c.reviveAfter[pid]; ok && !rep.Revived[pid] {
					t.Errorf("pid %d never revived", pid)
				}
			}
			// Work slack: the runtime charges steps until every live
			// processor halts, the simulator until solved — compare
			// against the simulator's total with generous headroom for
			// scheduling noise (both are bounded by a small multiple of
			// the oblivious ceiling on these shapes).
			slack := 30*simRes.TotalSteps + 1000
			if rep.Steps > slack {
				t.Errorf("runtime steps %d exceed slack %d (sim total %d)", rep.Steps, slack, simRes.TotalSteps)
			}
		})
	}
}
