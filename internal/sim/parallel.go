package sim

// The intra-run parallel tick engine (Config.Shards > 1). One time unit's
// scheduled steps are executed by worker goroutines in three phases:
//
//  A1 (serial): under the grouped delivery path, the processors the
//      sequential engine would hand each pending batch to first — the
//      strictly-decreasing prefix minima of the consumers' batch cursors
//      in schedule order — step against the real ring batches, so every
//      shared combined-knowledge cache is built by exactly the machine
//      (and exactly the cursor state) the sequential engine would use.
//  A2 (parallel): the remaining schedule positions are split into
//      contiguous shards; each shard's machines step concurrently against
//      shard-private shadow views of the ring (sharing the immutable
//      multicast lists and the phase-A1 combined caches), so a machine
//      that would build a cache in this phase publishes into its shard's
//      shadow, never into a structure another shard reads.
//  B (serial): the captured StepResults are applied in schedule order —
//      cursor advancement, inbox release, accounting, broadcasts, sends,
//      halts — so every engine-shared structure (the adversary's delay
//      stream, the multicast pool, the task ledger, the Result) mutates
//      in exactly the sequential engine's order.
//
// Byte-identity argument, in brief: steps within one time unit are
// input-independent (messages sent at time τ deliver at τ+1 at the
// earliest), a step reads only its machine's private state plus immutable
// snapshots and published caches, phase A1 pins cache construction to the
// sequential builders, and phase B replays every shared-state mutation in
// schedule order. The equivalence matrix in internal/scenario asserts the
// identity across all algorithms, fault adversaries, and shard counts.
//
// Ticks that cannot be proven safe fall back to the sequential loop for
// that unit: a schedule that is not strictly increasing (no registered
// adversary produces one, but Decision.Active is caller data) or one with
// fewer than two runnable machines.

// shardBlock is one shard's private scratch: the worker's wake channel,
// materialization scratch for non-BatchConsumer machines, and the shadow
// ring views. The leading and trailing pads keep neighboring blocks in
// the engine's shard slice from sharing cache lines, so concurrent
// scratch writes never false-share.
type shardBlock struct {
	_       [64]byte
	wake    chan struct{} // nil until the shard's worker is launched (shard 0 has none)
	scratch []Delivery
	shadow  []*Batch
	nshadow int
	_       [64]byte
}

// ensureShards grows the shard-block slice to nsh entries and launches
// the parked worker goroutines for shards 1..nsh-1 (shard 0 runs on the
// engine's goroutine). Workers are launched once and then parked on
// their wake channels between ticks and between runs — respawning per
// tick would put a goroutine-closure allocation on the steady-state hot
// path. Close stops them.
func (e *Engine) ensureShards(nsh int) {
	if len(e.shard) < nsh {
		blocks := make([]shardBlock, nsh)
		copy(blocks, e.shard)
		e.shard = blocks
	}
	for s := e.launched + 1; s < nsh; s++ {
		if e.shard[s].wake == nil {
			wake := make(chan struct{}, 1)
			e.shard[s].wake = wake
			go e.shardWorker(s, wake)
		}
	}
	if nsh-1 > e.launched {
		e.launched = nsh - 1
	}
}

// shardWorker is one parked worker: each wake runs its shard's slice of
// the current tick's schedule. The wake send happens-before the worker's
// reads of the tick state, and the worker's result writes happen-before
// the engine's parDone.Wait return.
func (e *Engine) shardWorker(s int, wake <-chan struct{}) {
	for range wake {
		e.runShard(s)
		e.parDone.Done()
	}
}

// Close stops the engine's parked shard workers. The engine stays
// usable — the next parallel run relaunches them — so Close is only
// needed when discarding many sharded engines (tests, short-lived
// fleets); an engine dropped without Close parks its workers until the
// engine (and with it the channels) is collected, at which point they
// are unreachable and the runtime reclaims them only at process exit.
func (e *Engine) Close() {
	for s := 1; s <= e.launched && s < len(e.shard); s++ {
		if e.shard[s].wake != nil {
			close(e.shard[s].wake)
			e.shard[s].wake = nil
		}
	}
	e.launched = 0
}

// shardRange returns shard s's half-open slice [lo, hi) of n schedule
// positions split into nsh contiguous near-equal ranges.
func shardRange(n, nsh, s int) (lo, hi int) {
	base, rem := n/nsh, n%nsh
	lo = s * base
	if s < rem {
		lo += s
	} else {
		lo += rem
	}
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// runShard steps every non-phase-A1 machine in shard s's range of the
// current tick's schedule, capturing results into parRes.
func (e *Engine) runShard(s int) {
	lo, hi := shardRange(e.parN, e.parNsh, s)
	sb := &e.shard[s]
	now := e.parNow
	for k := lo; k < hi; k++ {
		if e.isA1[k] {
			continue
		}
		e.parRes[k] = e.stepMachine(int(e.stepList[k]), now, sb)
	}
}

// tickPar executes one time unit's scheduled steps in parallel. It
// returns (stepped, informed, true) when it ran, or ok=false when the
// tick does not qualify and the caller must run the sequential loop
// (nothing has been mutated in that case).
func (e *Engine) tickPar(now int64) (int, bool, bool) {
	// Filter the schedule exactly like the sequential loop, bailing out if
	// it is not strictly increasing (the replay phase assumes each
	// processor steps at most once per unit, in index order).
	sl := e.stepList[:0]
	last := int32(-1)
	for _, i := range e.dec.Active {
		if i < 0 || i >= e.cfg.P || e.crashed[i] || e.halted[i] {
			continue
		}
		if int32(i) <= last {
			e.stepList = sl[:0]
			return 0, false, false
		}
		last = int32(i)
		sl = append(sl, int32(i))
	}
	e.stepList = sl
	n := len(sl)
	nsh := e.shards
	if nsh > n {
		nsh = n
	}
	if nsh < 2 {
		e.stepList = sl[:0]
		return 0, false, false
	}
	if cap(e.parRes) < n {
		e.parRes = make([]StepResult, n)
	}
	e.parRes = e.parRes[:n]
	if cap(e.isA1) < n {
		e.isA1 = make([]bool, n)
	}
	e.isA1 = e.isA1[:n]
	clear(e.isA1)

	nb := 0
	if e.grouped && e.batchSeq > e.ringSeq0 {
		nb = int(e.batchSeq - e.ringSeq0)
		// Phase A1: step the sequential builders against the real ring.
		// The first consumer of pending batch b is the first scheduled
		// machine whose cursor is ≤ b's sequence, so the set of first
		// consumers over all pending batches is exactly the strictly-
		// decreasing prefix minima of the cursors — stepping those
		// serially publishes every combined cache the sequential engine
		// would publish this unit, by the same builder, from the same
		// cursor state.
		minCur := e.batchSeq
		for k, pid := range sl {
			cur := e.cursor[pid]
			if cur < e.ringSeq0 {
				cur = e.ringSeq0
			}
			if cur < minCur {
				minCur = cur
				e.isA1[k] = true
				e.parRes[k] = e.stepMachine(int(pid), now, nil)
			}
		}
		// Seed every shard's shadow ring: same delivery times, the same
		// immutable multicast lists, and the combined caches as published
		// by phase A1 (and previous ticks). A shard machine that still
		// finds a batch cache-less (payload-heterogeneous groups only)
		// builds into its shard's shadow, invisible to other shards.
		for s := 0; s < nsh; s++ {
			sb := &e.shard[s]
			for len(sb.shadow) < nb {
				sb.shadow = append(sb.shadow, &Batch{Builder: -1})
			}
			for k := 0; k < nb; k++ {
				rb := e.ringBuf[e.ringHead+k]
				shb := sb.shadow[k]
				shb.At = rb.At
				shb.MCs = rb.MCs
				shb.Combined = rb.Combined
				shb.Builder = rb.Builder
			}
			sb.nshadow = nb
		}
	} else {
		for s := 0; s < nsh; s++ {
			e.shard[s].nshadow = 0
		}
	}

	// Phase A2: fan the remaining positions out across the shards. The
	// engine's goroutine runs shard 0 itself.
	e.parNow, e.parN, e.parNsh = now, n, nsh
	e.parDone.Add(nsh - 1)
	for s := 1; s < nsh; s++ {
		e.shard[s].wake <- struct{}{}
	}
	e.runShard(0)
	e.parDone.Wait()

	// Phase B: apply every result in schedule order.
	informed := false
	for k, pid := range sl {
		e.finishStep(int(pid), now, &e.parRes[k], &informed)
	}

	// Reclaim shard-built shadow caches (the real batch kept the phase-A1
	// cache, so a differing shadow cache is a duplicate owned by its
	// builder) and drop the shadows' references so retired multicasts and
	// caches do not outlive the tick through shard scratch.
	for s := 0; s < nsh; s++ {
		sb := &e.shard[s]
		for k := 0; k < sb.nshadow; k++ {
			shb := sb.shadow[k]
			if shb.Combined != nil && shb.Combined != e.ringBuf[e.ringHead+k].Combined {
				if rc := e.recyclers[shb.Builder]; rc != nil {
					rc.RecyclePayload(shb.Combined)
				}
			}
			shb.MCs = nil
			shb.Combined = nil
			shb.Builder = -1
		}
		sb.nshadow = 0
	}
	return n, informed, true
}
