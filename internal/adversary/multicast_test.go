package adversary

import (
	"testing"

	"doall/internal/sim"
)

// assertBatchedMatchesLoop checks the MulticastDelayer contract: for
// adversaries built identically, one DelayMulticast call must yield the
// same delays as the per-recipient Delay loop, in-range, including any
// random stream consumption.
func assertBatchedMatchesLoop(t *testing.T, name string, mkLoop, mkBatch func() sim.Adversary, p int, rounds int) {
	t.Helper()
	loopAdv, batchAdv := mkLoop(), mkBatch()
	md, ok := batchAdv.(sim.MulticastDelayer)
	if !ok {
		t.Fatalf("%s does not implement MulticastDelayer", name)
	}
	out := make([]int64, p)
	for sentAt := int64(0); sentAt < int64(rounds); sentAt++ {
		from := int(sentAt) % p
		md.DelayMulticast(from, sentAt, out)
		for j := 0; j < p; j++ {
			if j == from {
				continue
			}
			want := loopAdv.Delay(from, j, sentAt)
			if out[j] != want {
				t.Fatalf("%s: sentAt=%d recipient %d: batched %d != loop %d", name, sentAt, j, out[j], want)
			}
			if out[j] < 1 || out[j] > loopAdv.D() {
				t.Fatalf("%s: delay %d outside [1,%d]", name, out[j], loopAdv.D())
			}
		}
	}
}

func TestDelayMulticastMatchesDelayLoop(t *testing.T) {
	const p, rounds = 7, 12
	cases := []struct {
		name            string
		mkLoop, mkBatch func() sim.Adversary
	}{
		{"fair", func() sim.Adversary { return NewFair(4) }, func() sim.Adversary { return NewFair(4) }},
		{"random",
			func() sim.Adversary { return NewRandom(6, 0.5, 99) },
			func() sim.Adversary { return NewRandom(6, 0.5, 99) }},
		{"crashing-wrapping-random",
			func() sim.Adversary { return NewCrashing(NewRandom(6, 0.5, 42), nil) },
			func() sim.Adversary { return NewCrashing(NewRandom(6, 0.5, 42), nil) }},
		{"slowset",
			func() sim.Adversary { return NewSlowSet(3, []int{1}, 2) },
			func() sim.Adversary { return NewSlowSet(3, []int{1}, 2) }},
		{"stage-det",
			func() sim.Adversary { return NewStageDeterministic(4, 60) },
			func() sim.Adversary { return NewStageDeterministic(4, 60) }},
		{"stage-online",
			func() sim.Adversary { return NewStageOnline(4, 60) },
			func() sim.Adversary { return NewStageOnline(4, 60) }},
	}
	for _, c := range cases {
		assertBatchedMatchesLoop(t, c.name, c.mkLoop, c.mkBatch, p, rounds)
	}
}

// TestCrashingAdaptsNonBatchedInner checks the compatibility adapter: an
// inner adversary without DelayMulticast still works through Crashing's
// batched path via per-recipient Delay calls.
func TestCrashingAdaptsNonBatchedInner(t *testing.T) {
	inner := &plainDelayAdv{d: 5}
	wrapped := NewCrashing(inner, nil)
	out := make([]int64, 4)
	wrapped.DelayMulticast(1, 10, out)
	for j, got := range out {
		if j == 1 {
			continue
		}
		if want := inner.Delay(1, j, 10); got != want {
			t.Fatalf("recipient %d: %d != %d", j, got, want)
		}
	}
}

// plainDelayAdv implements only the base Adversary interface.
type plainDelayAdv struct{ d int64 }

func (a *plainDelayAdv) D() int64                                { return a.d }
func (a *plainDelayAdv) Schedule(v *sim.View, dec *sim.Decision) {}
func (a *plainDelayAdv) Delay(from, to int, sentAt int64) int64 {
	return 1 + (int64(to)+sentAt)%a.d
}

// TestSlowSetAllSlowFastForwards checks the NextWake promise: with every
// processor slow, off-period decisions must announce the next period
// boundary so the engine can skip the idle units.
func TestSlowSetAllSlowFastForwards(t *testing.T) {
	a := NewSlowSet(2, []int{0, 1}, 10)
	v := &sim.View{Now: 3, P: 2, Crashed: make([]bool, 2), Halted: make([]bool, 2)}
	var dec sim.Decision
	a.Schedule(v, &dec)
	if len(dec.Active) != 0 {
		t.Fatalf("off-period schedule activated %v", dec.Active)
	}
	if dec.NextWake != 10 {
		t.Fatalf("NextWake = %d, want 10", dec.NextWake)
	}
	v.Now = 10
	dec = sim.Decision{}
	a.Schedule(v, &dec)
	if len(dec.Active) != 2 {
		t.Fatalf("on-period schedule = %v, want both", dec.Active)
	}
}

// TestDelayUniformMatchesDelay checks the UniformDelayer contract: for
// every adversary advertising recipient-independent delays, DelayUniform
// must return exactly what the per-recipient Delay (and therefore the
// batched path) would, with ok = true.
func TestDelayUniformMatchesDelay(t *testing.T) {
	const p, rounds = 7, 12
	cases := []struct {
		name string
		mk   func() sim.Adversary
	}{
		{"fair", func() sim.Adversary { return NewFair(4) }},
		{"fair-fixed", func() sim.Adversary { return &Fair{Bound: 6, Fixed: 2} }},
		{"slowset", func() sim.Adversary { return NewSlowSet(3, []int{1}, 2) }},
		{"crashing-over-fair", func() sim.Adversary { return NewCrashing(NewFair(5), nil) }},
		{"slowsetover-over-fair", func() sim.Adversary { return NewSlowSetOver(NewFair(5), []int{0}, 3) }},
		{"stage-det", func() sim.Adversary { return NewStageDeterministic(4, 60) }},
		{"stage-online", func() sim.Adversary { return NewStageOnline(4, 60) }},
	}
	for _, c := range cases {
		adv := c.mk()
		ud, ok := adv.(sim.UniformDelayer)
		if !ok {
			t.Fatalf("%s does not implement UniformDelayer", c.name)
		}
		for sentAt := int64(0); sentAt < rounds; sentAt++ {
			from := int(sentAt) % p
			got, uniform := ud.DelayUniform(from, sentAt)
			if !uniform {
				t.Fatalf("%s: DelayUniform reported non-uniform", c.name)
			}
			for j := 0; j < p; j++ {
				if j == from {
					continue
				}
				if want := adv.Delay(from, j, sentAt); got != want {
					t.Fatalf("%s: sentAt=%d recipient %d: uniform %d != Delay %d", c.name, sentAt, j, got, want)
				}
			}
		}
	}
}

// TestDelayUniformRefusesNonUniformInner checks the combinator rule:
// wrapping a recipient-dependent adversary must surface ok = false so the
// engine falls back to per-recipient scheduling.
func TestDelayUniformRefusesNonUniformInner(t *testing.T) {
	for name, adv := range map[string]sim.UniformDelayer{
		"crashing-over-random":    NewCrashing(NewRandom(6, 0.5, 1), nil),
		"crashing-over-plain":     NewCrashing(&plainDelayAdv{d: 5}, nil),
		"slowsetover-over-random": NewSlowSetOver(NewRandom(6, 0.5, 1), []int{0}, 2),
	} {
		if _, ok := adv.DelayUniform(0, 3); ok {
			t.Fatalf("%s: claimed uniform delays over a recipient-dependent inner adversary", name)
		}
	}
	var nonUniform any = NewRandom(6, 0.5, 1)
	if _, ok := nonUniform.(sim.UniformDelayer); ok {
		t.Fatal("Random must not implement UniformDelayer")
	}
}
