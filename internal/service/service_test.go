package service

import (
	"container/heap"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doall/internal/scenario"
)

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d cells)", id, st.State, st.CellsDone, st.CellsTotal)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testSweep() *scenario.SweepSpec {
	return &scenario.SweepSpec{
		Algos: []string{"PaRan1"}, Ps: []int{4, 8}, Ts: []int{16}, Ds: []int64{1, 2},
		BaseSeed: 3, Trials: 2,
	}
}

// stripCellNs zeroes the wall-clock column for value comparison.
func stripCellNs(cells []scenario.Cell) []scenario.Cell {
	out := make([]scenario.Cell, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].NsPerRun = 0
	}
	return out
}

func TestSweepJobRunsToCompletion(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "sweep" || st.CellsTotal != 4 {
		t.Fatalf("submit status: %+v", st)
	}
	st = waitState(t, s, st.ID)
	if st.State != JobDone || st.CellsDone != 4 || st.Err != "" {
		t.Fatalf("final status: %+v", st)
	}

	// The service's cells must equal a direct RunSweep of the same grid.
	got, done, err := s.Cells(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("cell %d not marked done", i)
		}
	}
	want := scenario.RunSweep(testSweep().Config())
	got, want = stripCellNs(got), stripCellNs(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d differs from direct sweep:\nservice: %+v\ndirect:  %+v", i, got[i], want[i])
		}
	}
}

func TestScenarioJobRunsToCompletion(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := scenario.Scenario{Algorithm: "DA", P: 4, T: 16, D: 1, Seed: 5, Trials: 2}
	st, err := s.Submit(Job{Scenario: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "scenario" || st.CellsTotal != 1 {
		t.Fatalf("submit status: %+v", st)
	}
	st = waitState(t, s, st.ID)
	if st.State != JobDone {
		t.Fatalf("final status: %+v", st)
	}
	cells, _, err := s.Cells(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Err != "" || cells[0].Work <= 0 {
		t.Fatalf("cell: %+v", cells[0])
	}
}

// The tentpole property: kill the daemon after k of n cells, restart it
// on the same checkpoint, and the final result set is identical to an
// uninterrupted run (NsPerRun, a wall-clock observation, excepted).
func TestCheckpointResumeByteIdentical(t *testing.T) {
	// Uninterrupted reference run, no persistence.
	ref, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ref.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, ref, st.ID)
	want, _, err := ref.Cells(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Interrupted run: stop the daemon after the first completed cell.
	wal := filepath.Join(t.TempDir(), "doalld.wal")
	s1, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s1.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := s1.Status(st1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.CellsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the kill")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same checkpoint: the job resumes, already partially
	// done, and completes without re-running checkpointed cells.
	s2, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Status(st1.ID)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	if st2.CellsDone < 1 {
		t.Fatalf("restart forgot checkpointed cells: %+v", st2)
	}
	resumedFrom := st2.CellsDone
	st2 = waitState(t, s2, st1.ID)
	if st2.State != JobDone || st2.CellsDone != st2.CellsTotal {
		t.Fatalf("resumed job: %+v", st2)
	}
	got, _, err := s2.Cells(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotN, wantN := stripCellNs(got), stripCellNs(want)
	for i := range wantN {
		if gotN[i] != wantN[i] {
			t.Fatalf("cell %d differs after resume (resumed from %d/%d):\nresumed:       %+v\nuninterrupted: %+v",
				i, resumedFrom, st2.CellsTotal, gotN[i], wantN[i])
		}
	}
}

// A second restart with everything already checkpointed must finalize
// the job without any workers touching it.
func TestCheckpointResumeFullyDone(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "doalld.wal")
	s1, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, st.ID)
	s1.Close()

	s2, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2 := waitState(t, s2, st.ID)
	if st2.State != JobDone || st2.CellsDone != 4 {
		t.Fatalf("terminal job not restored as done: %+v", st2)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, err := New(Config{Workers: -1}) // no fleet: jobs never start
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}
	st, err = s.Cancel(st.ID)
	if err != nil || st.State != JobCanceled {
		t.Fatalf("cancel: %+v, %v", st, err)
	}
	// Canceling again is a no-op, not an error.
	st, err = s.Cancel(st.ID)
	if err != nil || st.State != JobCanceled {
		t.Fatalf("re-cancel: %+v, %v", st, err)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown id: %v", err)
	}
}

func TestJobTimeout(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A job that cannot finish inside its budget: a million trials.
	sc := scenario.Scenario{Algorithm: "PaRan1", P: 8, T: 64, D: 1, Seed: 1, Trials: 1_000_000}
	st, err := s.Submit(Job{Scenario: &sc, Timeout: Duration(50 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, s, st.ID)
	if st.State != JobFailed || !strings.Contains(st.Err, "timeout") {
		t.Fatalf("timed-out job: %+v", st)
	}
	// The aborted cell must not have been recorded as done.
	if st.CellsDone != 0 {
		t.Fatalf("aborted cell recorded: %+v", st)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, err := New(Config{Workers: -1, QueueLimit: 1, MaxCells: 4, MaxMem: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big := testSweep()
	big.Ps = []int{4, 8, 16} // 6 cells > MaxCells 4
	if _, err := s.Submit(Job{Sweep: big}); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("oversized grid admitted: %v", err)
	}

	if _, err := s.Submit(Job{Sweep: testSweep()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Job{Sweep: testSweep()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue overflow admitted: %v", err)
	}

	if n := s.Drain(); n != 1 {
		t.Fatalf("Drain reported %d open jobs, want 1", n)
	}
	if _, err := s.Submit(Job{Sweep: testSweep()}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []Job{
		{}, // neither scenario nor sweep
		{Scenario: &scenario.Scenario{Algorithm: "DA", P: 4, T: 16}, Sweep: testSweep()}, // both
		{Scenario: &scenario.Scenario{Algorithm: "NoSuchAlgo", P: 4, T: 16}},
		{Scenario: &scenario.Scenario{Algorithm: "DA", P: 4, T: 16, Backend: scenario.BackendRuntime}},
		{Sweep: &scenario.SweepSpec{Algos: []string{"DA"}}}, // empty axes
		{Scenario: &scenario.Scenario{Algorithm: "DA", P: 4, T: 16}, Timeout: Duration(-time.Second)},
	}
	for i, job := range cases {
		if _, err := s.Submit(job); err == nil {
			t.Errorf("case %d: invalid job admitted: %+v", i, job)
		}
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	var q jobQueue
	push := func(seq int64, prio int) {
		heap.Push(&q, &task{job: Job{Priority: prio}, seq: seq, state: JobQueued})
	}
	push(1, 0)
	push(2, 5)
	push(3, 0)
	push(4, 5)
	var got []int64
	for len(q) > 0 {
		got = append(got, heap.Pop(&q).(*task).seq)
	}
	want := []int64{2, 4, 1, 3} // priority desc, FIFO within a level
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestParseJobForms(t *testing.T) {
	// Envelope with sweep + knobs.
	j, err := ParseJob([]byte(`{"sweep":{"algos":["DA"],"p":[4],"t":[16],"d":[1]},"priority":3,"timeout":"30s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.Kind() != "sweep" || j.Priority != 3 || time.Duration(j.Timeout) != 30*time.Second {
		t.Fatalf("envelope job: %+v", j)
	}
	// Bare scenario.
	j, err = ParseJob([]byte(`{"algorithm":"DA","p":4,"t":16,"d":1}`))
	if err != nil || j.Kind() != "scenario" {
		t.Fatalf("bare scenario: %+v, %v", j, err)
	}
	// Bare sweep.
	j, err = ParseJob([]byte(`{"algos":["DA"],"p":[4],"t":[16],"d":[1]}`))
	if err != nil || j.Kind() != "sweep" {
		t.Fatalf("bare sweep: %+v, %v", j, err)
	}
	// Garbage forms.
	for _, doc := range []string{
		`{"sweep":{"algos":["DA"]},"unknown_knob":1}`,
		`{"nonsense":true}`,
		`not json`,
		`{"sweep":{"algos":["DA"],"p":[4],"t":[16],"d":[1],"typo":1}}`,
	} {
		if _, err := ParseJob([]byte(doc)); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Fatalf("marshal: %s, %v", b, err)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"2m"`), &d); err != nil || time.Duration(d) != 2*time.Minute {
		t.Fatalf("unmarshal string: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000000`), &d); err != nil || time.Duration(d) != time.Second {
		t.Fatalf("unmarshal ns: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("bool accepted as duration")
	}
}

func TestWALTornLines(t *testing.T) {
	dir := t.TempDir()

	// A torn final line is the crash the log exists to survive.
	tornTail := filepath.Join(dir, "tail.wal")
	writeFile(t, tornTail, `{"op":"job","seq":1,"job":{"id":"j000001","sweep":{"algos":["DA"],"p":[4],"t":[16],"d":[1]}}}
{"op":"cell","id":"j000001","i":0,"cell":{"algo":"DA","p":4,"t":16,"d":1,"seed":9,"trials":1,"work":1,"messages":1,"solved_at":1,"ns_per_run":1}}
{"op":"state","id":"j0000`)
	recs, err := replayWAL(tornTail)
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail: %d records, want 2", len(recs))
	}

	// A torn line mid-log followed by valid records is corruption.
	tornMid := filepath.Join(dir, "mid.wal")
	writeFile(t, tornMid, `{"op":"job","seq":1,"job":{"id":"j000001"}}
{"op":"cell","id":"j00
{"op":"state","id":"j000001","state":"done"}`)
	if _, err := replayWAL(tornMid); err == nil {
		t.Fatal("mid-log tear replayed silently")
	}

	// Missing file = empty history.
	recs, err = replayWAL(filepath.Join(dir, "absent.wal"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: %v, %v", recs, err)
	}
}

func TestResumeAfterTornFinalLine(t *testing.T) {
	// End-to-end: append a torn fragment to a live checkpoint, restart,
	// and the job still completes correctly.
	wal := filepath.Join(t.TempDir(), "doalld.wal")
	s1, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	waitFirstCell(t, s1, st.ID)
	s1.Close()
	appendFile(t, wal, `{"op":"cell","id":"`+st.ID+`","i":`)

	s2, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatalf("restart after torn tail: %v", err)
	}
	defer s2.Close()
	st2 := waitState(t, s2, st.ID)
	if st2.State != JobDone || st2.CellsDone != 4 {
		t.Fatalf("resumed job: %+v", st2)
	}
}

func waitFirstCell(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.CellsDone >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeStreamSeesAllCells(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Submit(Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	tk, sub, ch, err := s.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer s.unsubscribe(tk, sub)

	seen := map[int]bool{}
	deadline := time.After(30 * time.Second)
	for {
		batch, state, _, _, total := s.streamSnapshot(tk, len(seen))
		for _, rc := range batch {
			if seen[rc.I] {
				t.Fatalf("cell %d delivered twice", rc.I)
			}
			seen[rc.I] = true
		}
		if state.Terminal() {
			if len(seen) != total {
				t.Fatalf("stream saw %d/%d cells", len(seen), total)
			}
			return
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatal("stream stalled")
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := writeFileErr(path, content, false); err != nil {
		t.Fatal(err)
	}
}

func appendFile(t *testing.T, path, content string) {
	t.Helper()
	if err := writeFileErr(path, content, true); err != nil {
		t.Fatal(err)
	}
}

func writeFileErr(path, content string, appendTo bool) error {
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if appendTo {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
