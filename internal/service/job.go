package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"doall/internal/scenario"
)

// JobState is the lifecycle of a service job. Submitted jobs queue, run
// cell by cell on the engine fleet, and end in exactly one terminal
// state; non-terminal jobs survive daemon restarts via the checkpoint
// log and resume from their last completed cell.
type JobState string

const (
	// JobQueued: admitted, waiting for the engine fleet.
	JobQueued JobState = "queued"
	// JobRunning: at least one of its cells has been claimed by a worker.
	JobRunning JobState = "running"
	// JobDone: every cell completed (individual cells may still carry
	// per-cell errors, e.g. a step-cap overflow — those are data).
	JobDone JobState = "done"
	// JobFailed: the job was aborted by the service (wall-clock timeout,
	// or a spec that stopped resolving on resume).
	JobFailed JobState = "failed"
	// JobCanceled: the submitter canceled it.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Duration is a time.Duration that marshals as a human-readable string
// ("30s", "5m") and unmarshals from either that form or integer
// nanoseconds, so job documents stay hand-writable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case string:
		dur, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", v, err)
		}
		*d = Duration(dur)
		return nil
	case float64:
		*d = Duration(time.Duration(v))
		return nil
	}
	return fmt.Errorf("bad duration %v (want a string like \"30s\" or integer nanoseconds)", v)
}

// Job is the serializable unit of submission: exactly one of Scenario
// (one algorithm × adversary × shape experiment) or Sweep (a whole grid)
// plus scheduling knobs. The daemon assigns ID; submitters leave it
// empty. This is the document POST /v1/jobs accepts and the checkpoint
// log records.
type Job struct {
	// ID is assigned by the daemon at admission.
	ID string `json:"id,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a
	// priority level. Default 0.
	Priority int `json:"priority,omitempty"`
	// Timeout is the job's wall-clock budget once it starts running; on
	// expiry the job fails and in-flight cells abort at their next trial
	// boundary. Zero applies the daemon's default (which may be none).
	Timeout Duration `json:"timeout,omitempty"`
	// Scenario is a single-experiment job (runs Trials times, averaged,
	// exactly like doall.RunScenarioAvg).
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Sweep is a grid job; each cell is one checkpointable unit of work.
	Sweep *scenario.SweepSpec `json:"sweep,omitempty"`
}

// Kind names the job's shape: "scenario" or "sweep".
func (j Job) Kind() string {
	if j.Scenario != nil {
		return "scenario"
	}
	return "sweep"
}

// ParseJob decodes a job document. Three forms are accepted: the full
// envelope ({"scenario": {...}} or {"sweep": {...}}, with optional
// priority/timeout), a bare Scenario document (recognized by its
// "algorithm" key), or a bare sweep spec (recognized by "algos") — so
// the same JSON that drives doall -spec or the sweep flags submits
// directly. Unknown fields are rejected.
func ParseJob(data []byte) (Job, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return Job{}, fmt.Errorf("service: parse job: %w", err)
	}
	_, hasScenario := probe["scenario"]
	_, hasSweep := probe["sweep"]
	switch {
	case hasScenario || hasSweep:
		var j Job
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&j); err != nil {
			return Job{}, fmt.Errorf("service: parse job: %w", err)
		}
		return j, nil
	default:
		if _, ok := probe["algorithm"]; ok {
			sc, err := scenario.Parse(data)
			if err != nil {
				return Job{}, fmt.Errorf("service: %w", err)
			}
			return Job{Scenario: &sc}, nil
		}
		if _, ok := probe["algos"]; ok {
			sw, err := scenario.ParseSweepSpec(data)
			if err != nil {
				return Job{}, fmt.Errorf("service: %w", err)
			}
			return Job{Sweep: &sw}, nil
		}
	}
	return Job{}, errors.New(`service: job document must contain "scenario" or "sweep" (or be a bare scenario with "algorithm" / bare sweep with "algos")`)
}

// validate checks the job is well-formed and its spec resolves through
// the registries, without building machines.
func (j Job) validate() error {
	if (j.Scenario == nil) == (j.Sweep == nil) {
		return errors.New("service: job must carry exactly one of scenario or sweep")
	}
	if j.Timeout < 0 {
		return errors.New("service: negative job timeout")
	}
	if j.Scenario != nil {
		sc := j.Scenario.WithDefaults()
		if sc.Backend == scenario.BackendRuntime {
			return errors.New("service: runtime-backend scenarios are not servable (no checkpointable cells); use backend \"sim\"")
		}
		return sc.Validate()
	}
	return j.Sweep.Validate()
}

// plan enumerates the job's cells as Scenarios in deterministic order,
// with the per-cell trial count and whether theory columns apply. A
// scenario job is one cell; a sweep job is its grid. Replaying the same
// Job always yields the same plan — the checkpoint log's resume
// guarantee rides on this.
func (j Job) plan() (specs []scenario.Scenario, trials int, theory bool) {
	if j.Scenario != nil {
		sc := j.Scenario.WithDefaults()
		return []scenario.Scenario{sc}, sc.Trials, false
	}
	cfg := j.Sweep.Config()
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	return cfg.Specs(), cfg.Trials, j.Sweep.Theory
}

// JobStatus is the wire form of a job's progress, served by
// GET /v1/jobs/{id} and listed by GET /v1/jobs.
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Priority int      `json:"priority,omitempty"`
	// CellsTotal and CellsDone measure progress in checkpoint units.
	CellsTotal int `json:"cells_total"`
	CellsDone  int `json:"cells_done"`
	// Err is the service-level failure reason (timeouts, cancellation);
	// per-cell errors live in the cells themselves.
	Err string `json:"err,omitempty"`
	// SubmittedMS/StartedMS/FinishedMS are Unix milliseconds (0 = not yet).
	SubmittedMS int64 `json:"submitted_ms,omitempty"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
}
