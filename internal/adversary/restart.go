package adversary

import "doall/internal/sim"

// RestartEvent schedules one restartable-crash fault: processor Pid
// crashes at CrashAt and revives at ReviveAt (> CrashAt). Between the two
// instants the processor takes no steps and every delivery addressed to
// it is lost; at ReviveAt it re-enters the live set with fresh initial
// knowledge (sim.RejoinMachine).
type RestartEvent struct {
	Pid      int
	CrashAt  int64
	ReviveAt int64
}

// Restarting wraps another adversary and injects restartable-crash
// faults at scheduled times — the crash-restart analogue of Crashing.
// The wrapped adversary's scheduling, delays, and optional engine
// extensions are otherwise used unchanged (forwardInner). Like Crashing
// it never crashes the last live processor, and it clamps any inherited
// NextWake idle promise to the next pending crash or revive instant so
// the engine's fast-forward cannot jump over a fault event.
//
// A revive resurrects only processors whose crash THIS wrapper injected.
// Ownership is decided at the crash instant: whichever layer's event
// actually fires owns the downtime, so a processor fail-stopped by a
// composed inner adversary (restarting over crashing, say) stays down,
// and when both layers name the same pid at the same instant the inner
// adversary's claim, already in dec.Crash, wins. The one composition
// this cannot express is an inner fail-stop scheduled at an instant
// where the processor is already inside this wrapper's downtime: fault
// events aimed at an already-crashed processor are no-ops for every
// injector (Crashing included), so the inner event never fires, claims
// nothing, and does not block the revive — schedule the inner crash at
// or after the revive instant to fail-stop a restartable processor.
// The wrapper tracks its injected crashes across Schedule calls and
// clears them at time 0, so one value can drive consecutive runs (but
// never concurrent ones).
//
// A revive also only takes effect while the execution is still running:
// if every processor has crashed or halted, the run ends and pending
// revives do not resurrect a dead system (both engines stop on the same
// condition, so this is deterministic).
type Restarting struct {
	forwardInner
	Events []RestartEvent
	// injected marks processors whose crash this wrapper scheduled (and
	// the engine, whose acceptance conditions Schedule mirrors, applied).
	injected map[int]bool
}

var (
	_ sim.Adversary        = (*Restarting)(nil)
	_ sim.MulticastDelayer = (*Restarting)(nil)
	_ sim.UniformDelayer   = (*Restarting)(nil)
	_ sim.InboxAgnostic    = (*Restarting)(nil)
	_ sim.Omitter          = (*Restarting)(nil)
)

// NewRestarting wraps inner with the given crash-restart schedule.
// Events whose ReviveAt is not after their CrashAt revive never (they
// degrade to plain crashes).
func NewRestarting(inner sim.Adversary, events []RestartEvent) *Restarting {
	return &Restarting{forwardInner: forward(inner), Events: events}
}

// Schedule implements sim.Adversary. Crash and revive injection are
// Schedule side effects tied to exact times, so any NextWake promise
// inherited from the inner adversary is clamped to the next pending
// event — otherwise the engine's fast-forward would skip the event's
// time unit and silently drop the fault.
func (a *Restarting) Schedule(v *sim.View, dec *sim.Decision) {
	if v.Now == 0 {
		// Both engines start at time 0, so this is the start of a fresh
		// execution: drop crash ownership left over from a previous run.
		clear(a.injected)
	}
	a.Inner.Schedule(v, dec)
	live := pendingLive(v, dec)
	for _, e := range a.Events {
		if e.Pid < 0 || e.Pid >= v.P {
			continue
		}
		// Claim the crash only if no one else (the inner adversary, or an
		// earlier event this unit) already scheduled this pid: an inner
		// fail-stop of the same pid at the same instant wins, and the
		// revive below must then never fire.
		if e.CrashAt == v.Now && live > 1 && !v.Crashed[e.Pid] && !crashScheduled(dec, e.Pid) {
			dec.Crash = append(dec.Crash, e.Pid)
			live--
			if a.injected == nil {
				a.injected = make(map[int]bool)
			}
			a.injected[e.Pid] = true
		}
		if e.ReviveAt == v.Now && e.ReviveAt > e.CrashAt && v.Crashed[e.Pid] && a.injected[e.Pid] {
			dec.Revive = append(dec.Revive, e.Pid)
			live++
			delete(a.injected, e.Pid)
		}
		if dec.NextWake > 0 {
			if e.CrashAt > v.Now && e.CrashAt < dec.NextWake && !v.Crashed[e.Pid] {
				dec.NextWake = e.CrashAt
			}
			if e.ReviveAt > v.Now && e.ReviveAt < dec.NextWake && e.ReviveAt > e.CrashAt {
				dec.NextWake = e.ReviveAt
			}
		}
	}
}
