// Package buildinfo derives one version string, shared by every binary
// in the module, from the metadata the Go toolchain embeds at build time
// (runtime/debug.ReadBuildInfo). Nothing is stamped by hand: a versioned
// build reports its module version, a checkout build reports its VCS
// revision, and both carry the toolchain that produced them, so `doallctl
// version` against a remote `doalld` tells you exactly what is running.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Version returns the module's best-known version string:
//
//	v1.2.3+abcdef123456 (go1.22.1)      versioned build from a tag
//	devel+abcdef123456+dirty (go1.22.1) checkout build, modified tree
//	devel (go1.22.1)                    no build metadata at all (tests)
func Version() string {
	v := "devel"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v + " (" + runtime.Version() + ")"
	}
	versioned := false
	if mv := bi.Main.Version; mv != "" && mv != "(devel)" {
		v = mv
		versioned = true
	}
	// A pseudo-versioned or tagged build already names its commit; only a
	// bare "devel" checkout build needs the VCS revision appended.
	if !versioned {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			v += "+" + rev
			if dirty {
				v += "+dirty"
			}
		}
	}
	return v + " (" + runtime.Version() + ")"
}
