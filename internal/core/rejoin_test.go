package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
)

// The rebase-on-revive property (quick.Check, per algorithm): a machine
// that lived, crashed, and rejoined is state-equivalent to a brand-new
// machine built from the same seed when both are then fed the identical
// delivery sequence and stepped identically. Rejoin must erase every
// trace of the first incarnation except the (invisible to state) version
// counter.
//
// For deterministic machines (PaRan1, PaDet, DA, AllToAll, ObliDo) the
// equivalence covers knowledge AND behavior — the performed-task
// sequence must match step for step. PaRan2's on-line random stream
// continues across the rejoin by design (a fresh trial, not a replay),
// so its trial is merge-only: both machines fold the same deliveries
// into their knowledge planes without taking selection steps, and the
// resulting done-sets must coincide.

// rejoinWorld drives one property trial: peers produce real snapshot
// payloads, the subject consumes some pre-crash, rejoins, and then the
// subject and a fresh twin consume identical post-revive deliveries.
type rejoinWorld struct {
	p, t  int
	seed  int64
	build func(p, t int, seed int64) ([]sim.Machine, error)
	// deterministic demands behavioral (step-for-step) equivalence.
	deterministic bool
	// mergeOnly runs phase 2 through the knowledge plane alone (PaRan2,
	// whose selection stream legitimately diverges from a fresh
	// machine's).
	mergeOnly bool
	// stateEqual compares the algorithm-specific machine state.
	stateEqual func(a, b sim.Machine) error
}

func (w rejoinWorld) run(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ms, err := w.build(w.p, w.t, w.seed)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	fresh, err := w.build(w.p, w.t, w.seed)
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	subject, twin := ms[0], fresh[0]

	// Peers run for a while, producing genuine snapshot payloads.
	var payloads []any
	now := int64(0)
	stepPeers := func(rounds int) {
		for k := 0; k < rounds; k++ {
			for j := 1; j < w.p; j++ {
				r := ms[j].Step(now, nil)
				if r.Broadcast != nil {
					payloads = append(payloads, r.Broadcast)
				}
			}
			now++
		}
	}

	deliver := func(m sim.Machine, from int, pl any) {
		mc := &sim.Multicast{From: from, SentAt: now, Payload: pl}
		m.Step(now, []sim.Delivery{{MC: mc, At: now}})
		now++
	}

	// Phase 1: the subject lives — it consumes an arbitrary prefix of the
	// peers' knowledge and takes its own steps.
	stepPeers(1 + rng.Intn(4))
	for _, pl := range payloads {
		if rng.Intn(2) == 0 {
			deliver(subject, 1+rng.Intn(w.p-1), pl)
		} else {
			subject.Step(now, nil)
			now++
		}
	}

	// Crash-restart.
	if !sim.RejoinMachine(subject) {
		return fmt.Errorf("machine does not support rejoin")
	}

	// Phase 2: subject and twin see the identical world.
	payloads = payloads[:0]
	stepPeers(1 + rng.Intn(3))
	if w.mergeOnly {
		// Fold the identical deliveries into both knowledge planes
		// without taking selection steps.
		for _, pl := range payloads {
			from := 1 + rng.Intn(w.p-1)
			mcA := &sim.Multicast{From: from, SentAt: now, Payload: pl}
			mcB := &sim.Multicast{From: from, SentAt: now, Payload: pl}
			subject.(*PA).mergeInbox([]sim.Delivery{{MC: mcA, At: now}})
			twin.(*PA).mergeInbox([]sim.Delivery{{MC: mcB, At: now}})
			now++
		}
		return w.stateEqual(subject, twin)
	}
	script := make([]int, 4+rng.Intn(8)) // 0 = empty step, 1 = delivery
	for i := range script {
		script[i] = rng.Intn(2)
	}
	pi := 0
	for _, op := range script {
		if op == 1 && pi < len(payloads) {
			from := 1 + rng.Intn(w.p-1)
			mcA := &sim.Multicast{From: from, SentAt: now, Payload: payloads[pi]}
			mcB := &sim.Multicast{From: from, SentAt: now, Payload: payloads[pi]}
			ra := subject.Step(now, []sim.Delivery{{MC: mcA, At: now}})
			rb := twin.Step(now, []sim.Delivery{{MC: mcB, At: now}})
			if w.deterministic && ra.PerformedTask() != rb.PerformedTask() {
				return fmt.Errorf("delivery step diverged: revived performed %d, fresh %d", ra.PerformedTask(), rb.PerformedTask())
			}
			pi++
		} else {
			ra := subject.Step(now, nil)
			rb := twin.Step(now, nil)
			if w.deterministic && (ra.PerformedTask() != rb.PerformedTask() || ra.Halt != rb.Halt) {
				return fmt.Errorf("empty step diverged: revived (%d, halt=%v), fresh (%d, halt=%v)",
					ra.PerformedTask(), ra.Halt, rb.PerformedTask(), rb.Halt)
			}
		}
		now++
		if subject.KnowsAllDone() != twin.KnowsAllDone() {
			return fmt.Errorf("KnowsAllDone diverged: revived %v, fresh %v", subject.KnowsAllDone(), twin.KnowsAllDone())
		}
	}
	return w.stateEqual(subject, twin)
}

func paStateEqual(a, b sim.Machine) error {
	x, y := a.(*PA), b.(*PA)
	if x.remain != y.remain {
		return fmt.Errorf("PA remain: revived %d, fresh %d", x.remain, y.remain)
	}
	if !bitsetEqual(x.done.Bits(), y.done.Bits()) {
		return fmt.Errorf("PA done sets differ")
	}
	return nil
}

func daStateEqual(a, b sim.Machine) error {
	x, y := a.(*DA), b.(*DA)
	if !bitsetEqual(x.vers.Bits(), y.vers.Bits()) {
		return fmt.Errorf("DA replicas differ")
	}
	if len(x.stack) != len(y.stack) {
		return fmt.Errorf("DA stacks differ: %d vs %d frames", len(x.stack), len(y.stack))
	}
	for i := range x.stack {
		if x.stack[i] != y.stack[i] {
			return fmt.Errorf("DA stack frame %d differs: %+v vs %+v", i, x.stack[i], y.stack[i])
		}
	}
	if x.unit != y.unit {
		return fmt.Errorf("DA unit: %d vs %d", x.unit, y.unit)
	}
	return nil
}

func bitsetEqual(a, b *bitset.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	aw, bw := a.Words(), b.Words()
	for i := range aw {
		if aw[i] != bw[i] {
			return false
		}
	}
	return true
}

func TestQuickRejoinEquivalentToFresh(t *testing.T) {
	algos := []struct {
		name          string
		build         func(p, t int, seed int64) ([]sim.Machine, error)
		deterministic bool
		mergeOnly     bool
		stateEqual    func(a, b sim.Machine) error
	}{
		{"PaRan1", func(p, t int, seed int64) ([]sim.Machine, error) {
			return NewPaRan1(p, t, seed), nil
		}, true, false, paStateEqual},
		{"PaRan2", func(p, t int, seed int64) ([]sim.Machine, error) {
			return NewPaRan2(p, t, seed), nil
		}, false, true, paStateEqual},
		{"PaDet", func(p, t int, seed int64) ([]sim.Machine, error) {
			r := rand.New(rand.NewSource(seed))
			jobs := NewJobs(p, t)
			return NewPaDet(p, t, perm.FindLowDContentionList(p, jobs.N, 2, 4, r).List)
		}, true, false, paStateEqual},
		{"DA", func(p, t int, seed int64) ([]sim.Machine, error) {
			r := rand.New(rand.NewSource(seed))
			return NewDA(DAConfig{P: p, T: t, Q: 2, Perms: perm.FindLowContentionList(2, 2, 4, r).List})
		}, true, false, daStateEqual},
		{"AllToAll", func(p, t int, seed int64) ([]sim.Machine, error) {
			return NewAllToAll(p, t), nil
		}, true, false, func(a, b sim.Machine) error {
			x, y := a.(*AllToAll), b.(*AllToAll)
			if x.next != y.next {
				return fmt.Errorf("AllToAll position: %d vs %d", x.next, y.next)
			}
			return nil
		}},
		{"ObliDo", func(p, t int, seed int64) ([]sim.Machine, error) {
			r := rand.New(rand.NewSource(seed))
			jobs := NewJobs(p, t)
			return NewObliDo(p, t, perm.RandomList(p, jobs.N, r)), nil
		}, true, false, func(a, b sim.Machine) error {
			x, y := a.(*ObliDo), b.(*ObliDo)
			if x.jobIx != y.jobIx || x.unit != y.unit {
				return fmt.Errorf("ObliDo position: (%d,%d) vs (%d,%d)", x.jobIx, x.unit, y.jobIx, y.unit)
			}
			return nil
		}},
	}
	for _, algo := range algos {
		algo := algo
		t.Run(algo.name, func(t *testing.T) {
			prop := func(seed int64, pRaw, tRaw uint8) bool {
				w := rejoinWorld{
					p:             2 + int(pRaw%6),
					t:             1 + int(tRaw%48),
					seed:          seed % 1000,
					build:         algo.build,
					deterministic: algo.deterministic,
					mergeOnly:     algo.mergeOnly,
					stateEqual:    algo.stateEqual,
				}
				if err := w.run(seed); err != nil {
					t.Logf("p=%d t=%d seed=%d: %v", w.p, w.t, w.seed, err)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
