package harness

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned result table with plain-text and
// Markdown renderings.
type Table struct {
	// ID is the experiment identifier (e.g. "E5"), Title a one-line
	// description, Note an optional paragraph of interpretation.
	ID, Title, Note string
	Header          []string
	Rows            [][]string
}

// NewTable creates a table with the given id, title, and column headers.
func NewTable(id, title string, header ...string) *Table {
	return &Table{ID: id, Title: title, Header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 100 || v <= -100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}
