package sim

import (
	"math/rand"
	"testing"
)

func TestTaskLedgerBasics(t *testing.T) {
	l := NewTaskLedger(100)
	if l.Len() != 100 || l.Undone() != 100 {
		t.Fatalf("fresh ledger: len=%d undone=%d", l.Len(), l.Undone())
	}
	if !l.MarkDone(7) || l.MarkDone(7) {
		t.Fatal("MarkDone first/repeat semantics broken")
	}
	if !l.Done(7) || l.Done(8) || l.Undone() != 99 {
		t.Fatalf("after one mark: done(7)=%v done(8)=%v undone=%d", l.Done(7), l.Done(8), l.Undone())
	}
}

func TestTaskLedgerNextUndoneSkipsDoneChunks(t *testing.T) {
	// Three chunks' worth of tasks; the middle chunk fully done.
	n := 3 * ledgerChunkWords * 64
	l := NewTaskLedger(n)
	lo, hi := ledgerChunkWords*64, 2*ledgerChunkWords*64
	for z := lo; z < hi; z++ {
		l.MarkDone(z)
	}
	if got := l.NextUndone(lo); got != hi {
		t.Fatalf("NextUndone(%d) = %d, want %d (skip the done chunk)", lo, got, hi)
	}
	l.MarkDone(0)
	if got := l.NextUndone(0); got != 1 {
		t.Fatalf("NextUndone(0) = %d, want 1", got)
	}
	if got := l.NextUndone(n - 1); got != n-1 {
		t.Fatalf("NextUndone(last) = %d, want %d", got, n-1)
	}
	l.MarkDone(n - 1)
	if got := l.NextUndone(n - 1); got != -1 {
		t.Fatalf("NextUndone past all = %d, want -1", got)
	}
}

func TestTaskLedgerMatchesBoolSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 4096, 4097, 9000} {
		l := NewTaskLedger(n)
		ref := make([]bool, n)
		undone := n
		for i := 0; i < 3*n; i++ {
			z := rng.Intn(n)
			first := !ref[z]
			if first {
				ref[z] = true
				undone--
			}
			if got := l.MarkDone(z); got != first {
				t.Fatalf("n=%d MarkDone(%d) = %v, want %v", n, z, got, first)
			}
			if l.Undone() != undone {
				t.Fatalf("n=%d undone=%d, want %d", n, l.Undone(), undone)
			}
		}
		// NextUndone must enumerate exactly the undone reference entries.
		want := -1
		for z := 0; z < n; z++ {
			if !ref[z] {
				want = z
				break
			}
		}
		if got := l.NextUndone(0); got != want {
			t.Fatalf("n=%d NextUndone(0)=%d want %d", n, got, want)
		}
		l.Reset(n)
		if l.Undone() != n || l.Done(0) {
			t.Fatalf("n=%d reset failed", n)
		}
	}
}
