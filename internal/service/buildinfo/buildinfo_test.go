package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestVersionIsNonEmptyAndCarriesToolchain(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version")
	}
	if !strings.Contains(v, runtime.Version()) {
		t.Fatalf("version %q does not name the toolchain %q", v, runtime.Version())
	}
	if v2 := Version(); v2 != v {
		t.Fatalf("version not stable: %q vs %q", v, v2)
	}
}
