// Package wire defines the compact message encoding used when the
// algorithms' knowledge payloads are sent over a real transport, and the
// byte-size accounting the simulator reports. The paper measures message
// complexity in message *count* (Definition 2.2); wire sizes are an
// engineering extra that lets experiments also report bytes on the wire.
//
// A payload is a monotone bit vector (a progress-tree snapshot or a
// done-job set). The encoding is a varint header (version, kind, length)
// followed by the bit words, with an RLE fast path for the common
// mostly-zero/mostly-one cases.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"doall/internal/bitset"
)

// Kind tags what a payload describes.
type Kind uint8

// Payload kinds.
const (
	// KindTree is a full DA progress-tree snapshot (bits = tree nodes).
	KindTree Kind = 1
	// KindDoneSet is a full PA done-job set (bits = jobs).
	KindDoneSet Kind = 2
	// KindTreeDelta is a versioned DA progress-tree delta: only the words
	// that changed since the sender's previous snapshot, plus the version
	// pair receivers use to detect gaps. Rebased snapshots fall back to
	// KindTree, so the full kinds stay in active use (and decodable).
	KindTreeDelta Kind = 3
	// KindDoneSetDelta is the versioned PA done-set delta.
	KindDoneSetDelta Kind = 4
)

// DeltaKind reports whether k is one of the sparse delta kinds.
func DeltaKind(k Kind) bool { return k == KindTreeDelta || k == KindDoneSetDelta }

const version = 1

// Encoding selects the body layout.
type encoding uint8

const (
	encRaw   encoding = 0 // words verbatim
	encRLE   encoding = 1 // run-length encoded words
	encDelta encoding = 2 // sparse (index, word) delta entries
)

// ErrCorrupt is returned for malformed messages.
var ErrCorrupt = errors.New("wire: corrupt message")

// Encode serializes a bit set with its kind, choosing the smaller of the
// raw and RLE encodings.
func Encode(kind Kind, s *bitset.Set) []byte {
	raw := encodeBody(encRaw, s)
	rle := encodeBody(encRLE, s)
	body := raw
	enc := encRaw
	if len(rle) < len(raw) {
		body, enc = rle, encRLE
	}

	header := make([]byte, 0, 16)
	header = append(header, version, byte(kind), byte(enc))
	header = binary.AppendUvarint(header, uint64(s.Len()))
	return append(header, body...)
}

func encodeBody(enc encoding, s *bitset.Set) []byte {
	words := s.Words()
	switch enc {
	case encRaw:
		out := make([]byte, 0, 8*len(words))
		for _, w := range words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
		return out
	case encRLE:
		// Runs of identical words: (count varint, word).
		var out []byte
		for i := 0; i < len(words); {
			j := i
			for j < len(words) && words[j] == words[i] {
				j++
			}
			out = binary.AppendUvarint(out, uint64(j-i))
			out = binary.LittleEndian.AppendUint64(out, words[i])
			i = j
		}
		return out
	default:
		panic("wire: unknown encoding")
	}
}

// Decode parses a message produced by Encode.
func Decode(msg []byte) (Kind, *bitset.Set, error) {
	if len(msg) < 4 {
		return 0, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if msg[0] != version {
		return 0, nil, fmt.Errorf("%w: version %d", ErrCorrupt, msg[0])
	}
	kind := Kind(msg[1])
	if kind != KindTree && kind != KindDoneSet {
		return 0, nil, fmt.Errorf("%w: kind %d", ErrCorrupt, msg[1])
	}
	enc := encoding(msg[2])
	rest := msg[3:]
	n64, consumed := binary.Uvarint(rest)
	if consumed <= 0 || n64 > 1<<40 {
		return 0, nil, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	n := int(n64)
	rest = rest[consumed:]

	nWords := (n + 63) / 64
	words := make([]uint64, 0, nWords)
	switch enc {
	case encRaw:
		if len(rest) != 8*nWords {
			return 0, nil, fmt.Errorf("%w: raw body %d bytes, want %d", ErrCorrupt, len(rest), 8*nWords)
		}
		for i := 0; i < nWords; i++ {
			words = append(words, binary.LittleEndian.Uint64(rest[8*i:]))
		}
	case encRLE:
		for len(rest) > 0 {
			count, c := binary.Uvarint(rest)
			if c <= 0 || count == 0 || count > uint64(nWords) {
				return 0, nil, fmt.Errorf("%w: bad run length", ErrCorrupt)
			}
			rest = rest[c:]
			if len(rest) < 8 {
				return 0, nil, fmt.Errorf("%w: truncated run word", ErrCorrupt)
			}
			w := binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			for k := uint64(0); k < count; k++ {
				words = append(words, w)
			}
			if len(words) > nWords {
				return 0, nil, fmt.Errorf("%w: run overflow", ErrCorrupt)
			}
		}
		if len(words) != nWords {
			return 0, nil, fmt.Errorf("%w: rle body decoded %d words, want %d", ErrCorrupt, len(words), nWords)
		}
	default:
		return 0, nil, fmt.Errorf("%w: encoding %d", ErrCorrupt, enc)
	}

	s := bitset.New(n)
	if nWords > 0 {
		s.SetWords(words)
	}
	return kind, s, nil
}

// Size returns the encoded size in bytes of a payload without allocating
// anything (used by the simulator's byte accounting, which queries it
// once per multicast on the hot path). It computes len(Encode(kind, s))
// arithmetically: header bytes plus the smaller of the raw and RLE body
// sizes; the equality is asserted by tests.
func Size(kind Kind, s *bitset.Set) int {
	words := s.Words()
	raw := 8 * len(words)
	rle := 0
	for i := 0; i < len(words); {
		j := i
		for j < len(words) && words[j] == words[i] {
			j++
		}
		rle += uvarintLen(uint64(j-i)) + 8
		i = j
	}
	body := raw
	if rle < raw {
		body = rle
	}
	return 3 + uvarintLen(uint64(s.Len())) + body
}

// uvarintLen returns the number of bytes binary.AppendUvarint emits for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DeltaMessage is the decoded form of a sparse delta payload: the changed
// words of one snapshot version, plus the (Ver, BaseVer) pair receivers
// use to detect version gaps (a receiver whose cursor for the sender is
// older than BaseVer must request or await a full snapshot instead of
// applying the delta).
type DeltaMessage struct {
	Kind    Kind
	N       int // capacity of the underlying bit set, in bits
	Ver     int64
	BaseVer int64
	Words   []bitset.DeltaWord
}

// EncodeDelta serializes a sparse delta payload: header (version, kind,
// encDelta, n), the version pair, and (index, word) entries.
func EncodeDelta(kind Kind, n int, ver, baseVer int64, delta []bitset.DeltaWord) []byte {
	if !DeltaKind(kind) {
		panic("wire: EncodeDelta with a full-snapshot kind")
	}
	out := make([]byte, 0, SizeDelta(kind, n, ver, baseVer, delta))
	out = append(out, version, byte(kind), byte(encDelta))
	out = binary.AppendUvarint(out, uint64(n))
	out = binary.AppendUvarint(out, uint64(ver))
	out = binary.AppendUvarint(out, uint64(baseVer))
	out = binary.AppendUvarint(out, uint64(len(delta)))
	for _, dw := range delta {
		out = binary.AppendUvarint(out, uint64(dw.Index))
		out = binary.LittleEndian.AppendUint64(out, dw.Word)
	}
	return out
}

// SizeDelta returns len(EncodeDelta(...)) without allocating — the
// arithmetic size the simulator's byte accounting queries once per
// multicast.
func SizeDelta(kind Kind, n int, ver, baseVer int64, delta []bitset.DeltaWord) int {
	sz := 3 + uvarintLen(uint64(n)) + uvarintLen(uint64(ver)) + uvarintLen(uint64(baseVer)) + uvarintLen(uint64(len(delta)))
	for _, dw := range delta {
		sz += uvarintLen(uint64(dw.Index)) + 8
	}
	return sz
}

// DecodeDelta parses a message produced by EncodeDelta.
func DecodeDelta(msg []byte) (DeltaMessage, error) {
	var dm DeltaMessage
	if len(msg) < 4 {
		return dm, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if msg[0] != version {
		return dm, fmt.Errorf("%w: version %d", ErrCorrupt, msg[0])
	}
	dm.Kind = Kind(msg[1])
	if !DeltaKind(dm.Kind) {
		return dm, fmt.Errorf("%w: kind %d is not a delta kind", ErrCorrupt, msg[1])
	}
	if encoding(msg[2]) != encDelta {
		return dm, fmt.Errorf("%w: encoding %d for delta kind", ErrCorrupt, msg[2])
	}
	rest := msg[3:]
	fields := []*uint64{new(uint64), new(uint64), new(uint64), new(uint64)}
	for _, f := range fields {
		v, c := binary.Uvarint(rest)
		if c <= 0 {
			return dm, fmt.Errorf("%w: truncated delta header", ErrCorrupt)
		}
		*f, rest = v, rest[c:]
	}
	n, ver, baseVer, count := *fields[0], *fields[1], *fields[2], *fields[3]
	if n > 1<<40 || count > (n+63)/64 {
		return dm, fmt.Errorf("%w: bad delta length", ErrCorrupt)
	}
	dm.N, dm.Ver, dm.BaseVer = int(n), int64(ver), int64(baseVer)
	nWords := (dm.N + 63) / 64
	dm.Words = make([]bitset.DeltaWord, 0, count)
	for k := uint64(0); k < count; k++ {
		idx, c := binary.Uvarint(rest)
		if c <= 0 || idx >= uint64(nWords) {
			return dm, fmt.Errorf("%w: bad delta index", ErrCorrupt)
		}
		rest = rest[c:]
		if len(rest) < 8 {
			return dm, fmt.Errorf("%w: truncated delta word", ErrCorrupt)
		}
		dm.Words = append(dm.Words, bitset.DeltaWord{Index: int32(idx), Word: binary.LittleEndian.Uint64(rest)})
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return dm, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return dm, nil
}

// SizeEmpty returns the encoded size of a full snapshot of n bits that
// are all zero (the Encode output for a fresh set), without building the
// set: the RLE body is one run covering every word.
func SizeEmpty(kind Kind, n int) int {
	nWords := (n + 63) / 64
	if nWords == 0 {
		return 3 + uvarintLen(uint64(n))
	}
	rle := uvarintLen(uint64(nWords)) + 8
	if raw := 8 * nWords; raw < rle {
		rle = raw
	}
	return 3 + uvarintLen(uint64(n)) + rle
}
