// Package scenario is the declarative construction layer of the module:
// a JSON-serializable Scenario names an algorithm, an adversary
// expression, the problem shape (p, t, d, q), seeds, and a backend, and
// open registries resolve the names into machines and adversaries. The
// six paper algorithms and all implemented adversaries (with combinators)
// are pre-registered; user code extends the space with RegisterAlgorithm
// and RegisterAdversary instead of forking switch statements.
//
// The package is re-exported through the module root (doall.Scenario,
// doall.RunScenario, ...); internal callers (harness, sweeps) build on it
// directly.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	goruntime "runtime"
	"time"

	rt "doall/internal/runtime"
	"doall/internal/sim"
)

// Machine, Adversary, and Observer mirror the simulator's core types so
// registry builders and scenario callers share one vocabulary.
type (
	Machine   = sim.Machine
	Adversary = sim.Adversary
	Observer  = sim.Observer
)

// Backends a Scenario can run on.
const (
	// BackendSim is the deterministic multicast-native simulator (default).
	BackendSim = "sim"
	// BackendSimLegacy is the per-message reference engine, kept for
	// equivalence checking.
	BackendSimLegacy = "sim-legacy"
	// BackendRuntime executes the same machines on real goroutines with
	// delayed channels and optional user task bodies.
	BackendRuntime = "runtime"
)

// Scenario declares one algorithm × adversary × (p, t, d) experiment. The
// zero value of every optional field means "default", so minimal literals
// and minimal JSON documents both work:
//
//	{"algorithm": "DA", "p": 16, "t": 1024, "d": 8}
//
// Scenarios are plain data: they marshal to JSON and back without loss,
// and running a round-tripped Scenario reproduces the original Result
// exactly (asserted by tests).
type Scenario struct {
	// Algorithm names a registered algorithm builder (RegisterAlgorithm).
	// Pre-registered: AllToAll, ObliDo, DA, PaRan1, PaRan2, PaDet.
	Algorithm string `json:"algorithm"`
	// Adversary is an adversary expression over registered names
	// (RegisterAdversary); see the expression grammar in this package's
	// documentation. Pre-registered: fair, random, crashing, restarting,
	// omitting, slow-set, stage-det, stage-online. Default "fair".
	Adversary string `json:"adversary,omitempty"`
	// P is the number of processors, T the number of tasks.
	P int `json:"p"`
	T int `json:"t"`
	// Q is the progress-tree arity (DA only; default 2).
	Q int `json:"q,omitempty"`
	// D is the message-delay bound (default 1).
	D int64 `json:"d,omitempty"`
	// Seed drives all randomness: schedule search, machine randomness,
	// and adversary randomness.
	Seed int64 `json:"seed,omitempty"`
	// Trials is how many runs RunAvg averages, with seeds Seed, Seed+1, …
	// (default 1).
	Trials int `json:"trials,omitempty"`
	// SearchRestarts bounds permutation-list search work (default 32).
	SearchRestarts int `json:"search_restarts,omitempty"`
	// MaxSteps overrides the simulator's step cap (0 = default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Backend selects the execution substrate: BackendSim (default),
	// BackendSimLegacy, or BackendRuntime.
	Backend string `json:"backend,omitempty"`
	// Shards is the intra-run parallelism of the simulator backend: each
	// time unit's live-processor schedule is split into Shards contiguous
	// ranges stepped on worker goroutines, with a serial deterministic
	// reduction keeping results byte-identical to the sequential engine
	// at every shard count. 0 and 1 mean sequential (today's engine,
	// bit-for-bit); ShardsAuto (-1) resolves from GOMAXPROCS and the run
	// width at execution time; other values are clamped to P. Non-sim
	// backends ignore it. Shards changes wall-clock time only, never the
	// Result — so it is deliberately excluded from sweep cell seeds.
	Shards int `json:"shards,omitempty"`
}

// ShardsAuto, assigned to Scenario.Shards (or passed on a -shards flag as
// the word "auto"), picks the shard count at run time from GOMAXPROCS and
// the processor count; see ResolveShards.
const ShardsAuto = -1

// ResolveShards translates a requested shard policy into the literal
// shard count handed to sim.Config for a run of width p. 0 and 1 select
// the sequential engine; negative values (ShardsAuto) pick
// min(GOMAXPROCS, p/2048) — capped so every shard keeps a few thousand
// processors of work per tick, below which fan-out overhead beats the
// parallel win — and anything above p is clamped to p.
func ResolveShards(requested, p int) int {
	if requested == 0 || requested == 1 {
		return 1
	}
	if requested < 0 {
		s := p / 2048
		if max := goruntime.GOMAXPROCS(0); s > max {
			s = max
		}
		if s < 1 {
			s = 1
		}
		return s
	}
	if requested > p {
		return p
	}
	return requested
}

// WithDefaults returns the scenario with every zero optional field
// replaced by its documented default.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Adversary == "" {
		sc.Adversary = "fair"
	}
	if sc.Q == 0 {
		sc.Q = 2
	}
	if sc.D == 0 {
		sc.D = 1
	}
	if sc.Trials == 0 {
		sc.Trials = 1
	}
	if sc.SearchRestarts == 0 {
		sc.SearchRestarts = 32
	}
	if sc.Backend == "" {
		sc.Backend = BackendSim
	}
	return sc
}

// Parse decodes a JSON scenario document. Unknown fields are rejected so
// typos fail loudly.
func Parse(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parse: %w", err)
	}
	return sc, nil
}

// Machines builds the scenario's processor machines through the algorithm
// registry.
func (sc Scenario) Machines() ([]Machine, error) {
	sc = sc.WithDefaults()
	b, err := lookupAlgorithm(sc.Algorithm)
	if err != nil {
		return nil, err
	}
	return b(sc)
}

// BuildAdversary resolves the scenario's adversary expression through the
// adversary registry, building inner adversaries bottom-up.
func (sc Scenario) BuildAdversary() (Adversary, error) {
	sc = sc.WithDefaults()
	e, err := parseAdvExpr(sc.Adversary)
	if err != nil {
		return nil, err
	}
	return buildAdvExpr(sc, e)
}

func buildAdvExpr(sc Scenario, e *advExpr) (Adversary, error) {
	b, err := lookupAdversary(e.name)
	if err != nil {
		return nil, err
	}
	ctx := &AdversaryContext{Scenario: sc, Params: e.params}
	for _, in := range e.inners {
		adv, err := buildAdvExpr(sc, in)
		if err != nil {
			return nil, err
		}
		ctx.Inners = append(ctx.Inners, adv)
	}
	adv, err := b(ctx)
	if err != nil {
		return nil, fmt.Errorf("scenario: adversary %q: %w", e.String(), err)
	}
	return adv, nil
}

// Validate checks the scenario resolves: the algorithm name is registered,
// the adversary expression parses and builds, and the backend is known.
// It does not build machines (schedule search can be expensive).
func (sc Scenario) Validate() error {
	sc = sc.WithDefaults()
	if _, err := lookupAlgorithm(sc.Algorithm); err != nil {
		return err
	}
	if _, err := sc.BuildAdversary(); err != nil {
		return err
	}
	switch sc.Backend {
	case BackendSim, BackendSimLegacy, BackendRuntime:
	default:
		return fmt.Errorf("scenario: unknown backend %q (known: %s, %s, %s)",
			sc.Backend, BackendSim, BackendSimLegacy, BackendRuntime)
	}
	if sc.Shards < ShardsAuto {
		return fmt.Errorf("scenario: shards=%d out of range (want ≥ -1; -1 = auto)", sc.Shards)
	}
	return nil
}

// Options carries the per-run knobs that are not part of the declarative
// spec: observers, and the runtime backend's real-time parameters and
// task bodies (none of which serialize).
type Options struct {
	// Observer receives engine hooks (simulator backends only; the
	// goroutine runtime has no global clock to observe).
	Observer Observer
	// Task is the runtime backend's task body, invoked for every
	// performed task id (tasks must be idempotent).
	Task func(id int)
	// Unit is the runtime backend's real-time length of one delay unit
	// (default 200µs).
	Unit time.Duration
	// Timeout aborts a runtime-backend run (default 30s).
	Timeout time.Duration
	// CrashAfter maps pid → local steps after which the runtime backend
	// crashes the processor.
	CrashAfter map[int]int
	// ReviveAfter maps pid → units of downtime after which a processor
	// crashed by CrashAfter restarts with fresh knowledge (the runtime
	// backend's crash-restart fault model).
	ReviveAfter map[int]int
}

// Result is the outcome of running a Scenario: exactly one of Sim or
// Runtime is non-nil, matching the backend.
type Result struct {
	// Backend is the backend that produced the result.
	Backend string
	// Sim holds the exact complexity measures of a simulator run.
	Sim *sim.Result
	// Runtime holds the goroutine runtime's execution summary.
	Runtime *rt.Report
}

// Solved reports whether the Do-All problem was solved.
func (r *Result) Solved() bool {
	switch {
	case r.Sim != nil:
		return r.Sim.Solved
	case r.Runtime != nil:
		return r.Runtime.Solved
	}
	return false
}

// Work returns the work measure: Definition 2.1 work for simulator runs,
// total local steps (an upper bound on it) for runtime runs.
func (r *Result) Work() int64 {
	switch {
	case r.Sim != nil:
		return r.Sim.Work
	case r.Runtime != nil:
		return r.Runtime.Steps
	}
	return 0
}

// Messages returns the point-to-point message count.
func (r *Result) Messages() int64 {
	switch {
	case r.Sim != nil:
		return r.Sim.Messages
	case r.Runtime != nil:
		return r.Runtime.Messages
	}
	return 0
}

// Run executes the scenario once on its backend with no options.
func Run(sc Scenario) (*Result, error) { return RunWith(sc, Options{}) }

// RunOn executes the scenario once on a caller-owned reusable simulation
// engine: machines and the adversary are rebuilt from the scenario's seed
// (construction must stay seed-deterministic), but the engine's wheel
// buckets, inboxes, result arrays, and multicast pool carry over from the
// previous run, so trial loops avoid rebuilding the simulation substrate
// per trial. Results are byte-identical to Run's — buffer reuse is
// invisible to the model (asserted by tests).
//
// The returned Result aliases engine-owned storage and is overwritten by
// the next RunOn with the same engine; copy what must outlive it. Only
// BackendSim scenarios are supported; other backends fall back to Run.
func RunOn(eng *sim.Engine, sc Scenario) (*Result, error) {
	return RunOnWith(eng, sc, Options{})
}

// RunOnWith is RunOn with per-run options threaded through: an Observer
// taps every engine event of the run (the service plane's live metrics
// hang off this) at the usual zero-cost-when-nil contract. Non-observer
// options are ignored on the engine path; non-sim backends fall back to
// RunWith.
func RunOnWith(eng *sim.Engine, sc Scenario, opts Options) (*Result, error) {
	sc = sc.WithDefaults()
	if sc.Backend != BackendSim || eng == nil {
		return RunWith(sc, opts)
	}
	ms, err := sc.Machines()
	if err != nil {
		return nil, err
	}
	adv, err := sc.BuildAdversary()
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(sim.Config{
		P: sc.P, T: sc.T, MaxSteps: sc.MaxSteps, Observer: opts.Observer,
		Shards: ResolveShards(sc.Shards, sc.P),
	}, ms, adv)
	if res == nil {
		return nil, err
	}
	return &Result{Backend: sc.Backend, Sim: res}, err
}

// RunWith executes the scenario once with the given options. On simulator
// backends a partial Result accompanies step-cap errors, mirroring
// sim.Run.
func RunWith(sc Scenario, opts Options) (*Result, error) {
	sc = sc.WithDefaults()
	switch sc.Backend {
	case BackendSim, BackendSimLegacy, BackendRuntime:
	default:
		// Reject before building machines: schedule search is expensive.
		return nil, fmt.Errorf("scenario: unknown backend %q (known: %s, %s, %s)",
			sc.Backend, BackendSim, BackendSimLegacy, BackendRuntime)
	}
	ms, err := sc.Machines()
	if err != nil {
		return nil, err
	}
	switch sc.Backend {
	case BackendSim, BackendSimLegacy:
		adv, err := sc.BuildAdversary()
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{P: sc.P, T: sc.T, MaxSteps: sc.MaxSteps, Observer: opts.Observer}
		engine := sim.Run
		if sc.Backend == BackendSimLegacy {
			engine = sim.RunLegacy // the reference engine ignores Shards
		} else {
			cfg.Shards = ResolveShards(sc.Shards, sc.P)
		}
		res, err := engine(cfg, ms, adv)
		if res == nil {
			return nil, err
		}
		return &Result{Backend: sc.Backend, Sim: res}, err
	case BackendRuntime:
		rep, err := rt.Run(rt.Config{
			P:           sc.P,
			T:           sc.T,
			D:           int(sc.D),
			Unit:        opts.Unit,
			Seed:        sc.Seed,
			Task:        opts.Task,
			Timeout:     opts.Timeout,
			CrashAfter:  opts.CrashAfter,
			ReviveAfter: opts.ReviveAfter,
		}, ms)
		if rep == nil {
			return nil, err
		}
		return &Result{Backend: sc.Backend, Runtime: rep}, err
	}
	panic("unreachable: backend validated above")
}

// Avg holds trial-averaged complexity measures.
type Avg struct {
	Work, Messages, Time float64
	Trials               int
}

// RunAvg runs the scenario sc.Trials times on a simulator backend with
// seeds Seed, Seed+1, … and averages work, messages, and completion time.
func RunAvg(sc Scenario) (Avg, error) {
	sc = sc.WithDefaults()
	if sc.Backend == BackendRuntime {
		return Avg{}, fmt.Errorf("scenario: RunAvg needs a simulator backend, got %q", sc.Backend)
	}
	var a Avg
	for i := 0; i < sc.Trials; i++ {
		run := sc
		run.Seed = sc.Seed + int64(i)
		res, err := Run(run)
		if err != nil {
			return Avg{}, fmt.Errorf("scenario: trial %d: %w", i, err)
		}
		a.Work += float64(res.Sim.Work)
		a.Messages += float64(res.Sim.Messages)
		a.Time += float64(res.Sim.SolvedAt)
	}
	a.Work /= float64(sc.Trials)
	a.Messages /= float64(sc.Trials)
	a.Time /= float64(sc.Trials)
	a.Trials = sc.Trials
	return a, nil
}
