package core

import (
	"math/rand"
	"testing"

	"doall/internal/adversary"
	"doall/internal/perm"
	"doall/internal/sim"
)

// mustSolve runs machines under adv and fails the test unless Do-All is
// solved with every task performed and no early voluntary halt.
func mustSolve(t *testing.T, p, tasks int, ms []sim.Machine, adv sim.Adversary) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{P: p, T: tasks}, ms, adv)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Solved {
		t.Fatal("Do-All not solved")
	}
	for z, at := range res.FirstDoneAt {
		if at < 0 {
			t.Fatalf("task %d never performed", z)
		}
	}
	if res.HaltedEarly {
		t.Fatal("a processor halted before knowing all tasks done (Proposition 2.1 violation)")
	}
	return res
}

func daMachines(t *testing.T, p, tasks, q int, seed int64) []sim.Machine {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	sr := perm.FindLowContentionList(q, q, 100, r)
	ms, err := NewDA(DAConfig{P: p, T: tasks, Q: q, Perms: sr.List})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestAllToAllWorkIsExactlyPT(t *testing.T) {
	p, tasks := 5, 12
	res := mustSolve(t, p, tasks, NewAllToAll(p, tasks), adversary.NewFair(1))
	if res.Work != int64(p*tasks) {
		t.Fatalf("AllToAll Work = %d, want p·t = %d", res.Work, p*tasks)
	}
	if res.Messages != 0 {
		t.Fatalf("AllToAll sent %d messages, want 0", res.Messages)
	}
}

func TestObliDoSolvesAndIsQuadratic(t *testing.T) {
	p, tasks := 6, 6
	r := rand.New(rand.NewSource(1))
	l := perm.RandomList(p, p, r)
	res := mustSolve(t, p, tasks, NewObliDo(p, tasks, l), adversary.NewFair(1))
	// Every processor performs all n jobs: total executions = n².
	if res.TaskExecutions != int64(p*tasks/1) {
		t.Fatalf("ObliDo executions = %d, want n² = %d", res.TaskExecutions, p*tasks)
	}
}

func TestObliDoPrimaryExecutionsBoundedByContention(t *testing.T) {
	// Lemma 4.2: primary job executions ≤ Cont(Σ). We use n small enough
	// for exact contention and a fair adversary (any adversary is valid —
	// the bound is worst-case).
	n := 5
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		l := perm.RandomList(n, n, r)
		cont := perm.Cont(l)
		for _, d := range []int64{1, 2, 5} {
			ms := NewObliDo(n, n, l)
			res := mustSolve(t, n, n, ms, adversary.NewFair(d))
			if res.PrimaryExecutions > int64(cont) {
				t.Fatalf("trial %d d=%d: primary executions %d > Cont(Σ) = %d",
					trial, d, res.PrimaryExecutions, cont)
			}
			if res.PrimaryExecutions < int64(n) {
				t.Fatalf("primary executions %d < n = %d", res.PrimaryExecutions, n)
			}
		}
	}
}

func TestDASolvesBasic(t *testing.T) {
	for _, c := range []struct{ p, tasks, q int }{
		{1, 1, 2},
		{1, 8, 2},
		{2, 4, 2},
		{4, 16, 2},
		{4, 16, 4},
		{8, 27, 3},
		{3, 9, 3},
		{9, 9, 3},
		{5, 7, 2},   // non-power sizes exercise padding
		{6, 100, 3}, // p < t: job partitioning
	} {
		ms := daMachines(t, c.p, c.tasks, c.q, 7)
		res := mustSolve(t, c.p, c.tasks, ms, adversary.NewFair(1))
		if res.Work < int64(c.tasks) {
			t.Fatalf("p=%d t=%d q=%d: work %d below t", c.p, c.tasks, c.q, res.Work)
		}
	}
}

func TestDASoloTraversalLinear(t *testing.T) {
	// A single processor's traversal must be O(t) for constant q: each
	// node visited a constant number of times.
	tasks := 64
	ms := daMachines(t, 1, tasks, 2, 3)
	res := mustSolve(t, 1, tasks, ms, adversary.NewFair(1))
	if res.Work > int64(6*tasks) {
		t.Fatalf("solo DA work %d not linear in t=%d", res.Work, tasks)
	}
}

func TestDAUnderRandomAsynchrony(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ms := daMachines(t, 6, 36, 3, seed)
		adv := adversary.NewRandom(4, 0.6, seed)
		res := mustSolve(t, 6, 36, ms, adv)
		if res.Work < 36 {
			t.Fatal("impossible work")
		}
	}
}

func TestDAWithCrashes(t *testing.T) {
	// Crash all but one processor early; the survivor must finish alone.
	p, tasks := 5, 25
	ms := daMachines(t, p, tasks, 2, 11)
	var events []adversary.CrashEvent
	for i := 1; i < p; i++ {
		events = append(events, adversary.CrashEvent{Pid: i, At: int64(i)})
	}
	adv := adversary.NewCrashing(adversary.NewFair(3), events)
	res := mustSolve(t, p, tasks, ms, adv)
	if res.PerProcWork[0] < int64(tasks) {
		t.Fatalf("survivor did %d work, needs at least t=%d", res.PerProcWork[0], tasks)
	}
}

func TestDACrashNeverLastProcessor(t *testing.T) {
	// Crashing wrapper must refuse to kill the last live processor.
	p, tasks := 2, 8
	ms := daMachines(t, p, tasks, 2, 13)
	adv := adversary.NewCrashing(adversary.NewFair(2), []adversary.CrashEvent{
		{Pid: 0, At: 0}, {Pid: 1, At: 1},
	})
	res := mustSolve(t, p, tasks, ms, adv)
	if res.Solved != true {
		t.Fatal("not solved with one survivor")
	}
}

func TestDADigits(t *testing.T) {
	// pid 11 base 2 with h=4: 1101 → digits LSB-first 1,1,0,1.
	got := qDigits(11, 2, 4)
	want := []int{1, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("qDigits(11,2,4) = %v, want %v", got, want)
		}
	}
	got = qDigits(5, 3, 3) // 5 = 012₃ → LSB-first 2,1,0
	want = []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("qDigits(5,3,3) = %v, want %v", got, want)
		}
	}
}

func TestDAConfigValidation(t *testing.T) {
	if _, err := NewDA(DAConfig{P: 2, T: 4, Q: 1, Perms: perm.List{perm.Identity(1)}}); err == nil {
		t.Fatal("q=1 accepted")
	}
	if _, err := NewDA(DAConfig{P: 2, T: 4, Q: 2, Perms: perm.List{perm.Identity(2)}}); err == nil {
		t.Fatal("wrong list length accepted")
	}
	if _, err := NewDA(DAConfig{P: 2, T: 4, Q: 2, Perms: perm.List{perm.Identity(3), perm.Identity(3)}}); err == nil {
		t.Fatal("wrong permutation arity accepted")
	}
	if _, err := NewDA(DAConfig{P: 0, T: 4, Q: 2, Perms: perm.RotationList(2, 2)}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestPaRan1Solves(t *testing.T) {
	for _, c := range []struct{ p, tasks int }{{1, 1}, {2, 2}, {4, 16}, {8, 8}, {3, 100}, {16, 16}} {
		ms := NewPaRan1(c.p, c.tasks, 42)
		res := mustSolve(t, c.p, c.tasks, ms, adversary.NewFair(2))
		if res.Work < int64(c.tasks) {
			t.Fatal("impossible work")
		}
	}
}

func TestPaRan2Solves(t *testing.T) {
	for _, c := range []struct{ p, tasks int }{{1, 1}, {2, 2}, {4, 16}, {8, 8}, {3, 100}} {
		ms := NewPaRan2(c.p, c.tasks, 43)
		mustSolve(t, c.p, c.tasks, ms, adversary.NewFair(2))
	}
}

func TestPaDetSolves(t *testing.T) {
	for _, c := range []struct{ p, tasks int }{{2, 2}, {4, 16}, {8, 8}, {3, 100}} {
		jobs := NewJobs(c.p, c.tasks)
		r := rand.New(rand.NewSource(44))
		l := perm.FindLowDContentionList(c.p, jobs.N, 2, 20, r).List
		ms, err := NewPaDet(c.p, c.tasks, l)
		if err != nil {
			t.Fatal(err)
		}
		mustSolve(t, c.p, c.tasks, ms, adversary.NewFair(2))
	}
}

func TestPaDetValidation(t *testing.T) {
	if _, err := NewPaDet(2, 4, perm.List{perm.Identity(3), perm.Identity(3)}); err == nil {
		t.Fatal("schedule arity mismatch accepted")
	}
	if _, err := NewPaDet(2, 2, perm.List{}); err == nil {
		t.Fatal("empty schedule list accepted")
	}
}

func TestPaWithCrashes(t *testing.T) {
	p, tasks := 6, 30
	ms := NewPaRan1(p, tasks, 7)
	var events []adversary.CrashEvent
	for i := 0; i < p-1; i++ {
		events = append(events, adversary.CrashEvent{Pid: i, At: int64(2 + i)})
	}
	adv := adversary.NewCrashing(adversary.NewFair(4), events)
	mustSolve(t, p, tasks, ms, adv)
}

func TestPaRanSameSeedSameResult(t *testing.T) {
	run := func() int64 {
		ms := NewPaRan1(4, 32, 99)
		res := mustSolve(t, 4, 32, ms, adversary.NewFair(3))
		return res.Work
	}
	if run() != run() {
		t.Fatal("PaRan1 nondeterministic for fixed seed")
	}
}

func TestNextTaskMatchesStepDA(t *testing.T) {
	// Whenever NextTask predicts a task, the very next Step must perform
	// exactly that task. Drive a single DA machine manually.
	ms := daMachines(t, 1, 16, 2, 5)
	m := ms[0].(*DA)
	for step := 0; step < 200; step++ {
		want := m.NextTask()
		r := m.Step(int64(step), nil)
		if got := r.PerformedTask(); got != want {
			t.Fatalf("step %d: NextTask=%d but Step performed %d", step, want, got)
		}
		if r.Halt {
			return
		}
	}
	t.Fatal("DA did not finish in 200 steps")
}

func TestNextTaskMatchesStepPA(t *testing.T) {
	ms := NewPaRan2(1, 10, 3)
	m := ms[0].(*PA)
	for step := 0; step < 100; step++ {
		want := m.NextTask()
		r := m.Step(int64(step), nil)
		if want >= 0 && r.PerformedTask() != want {
			t.Fatalf("step %d: NextTask=%d but Step performed %d", step, want, r.PerformedTask())
		}
		if r.Halt {
			return
		}
	}
	t.Fatal("PA did not finish in 100 steps")
}

func TestDACloneIndependence(t *testing.T) {
	ms := daMachines(t, 2, 8, 2, 9)
	m := ms[0].(*DA)
	clone := m.CloneMachine().(*DA)
	// Step the clone several times; the original's state must not move.
	before := m.NextTask()
	for i := 0; i < 5; i++ {
		clone.Step(int64(i), nil)
	}
	if m.NextTask() != before {
		t.Fatal("stepping a clone mutated the original")
	}
}

func TestPACloneSemantics(t *testing.T) {
	det := NewPaRan1(1, 4, 1)[0].(*PA)
	if det.CloneMachine() == nil {
		t.Fatal("PaRan1 should be cloneable after init")
	}
	ran2 := NewPaRan2(1, 4, 1)[0].(*PA)
	if ran2.CloneMachine() != nil {
		t.Fatal("PaRan2 must refuse cloning (on-line randomness)")
	}
}

func TestLargeDelayForcesQuadraticWork(t *testing.T) {
	// Proposition 2.2 flavor: with d ≥ t no coordination helps; work of
	// DA and PaRan1 approaches p·t.
	p, tasks := 4, 16
	d := int64(tasks) * 2

	da := daMachines(t, p, tasks, 2, 21)
	resDA := mustSolve(t, p, tasks, da, adversary.NewFair(d))
	if resDA.Work < int64(p*tasks)/2 {
		t.Fatalf("DA at huge d: work %d, expected near p·t = %d", resDA.Work, p*tasks)
	}

	pa := NewPaRan1(p, tasks, 22)
	resPA := mustSolve(t, p, tasks, pa, adversary.NewFair(d))
	if resPA.Work < int64(p*tasks)/2 {
		t.Fatalf("PaRan1 at huge d: work %d, expected near p·t = %d", resPA.Work, p*tasks)
	}
}

func TestSmallDelayBeatsOblivious(t *testing.T) {
	// The whole point of the paper: for d ≪ t, coordinated algorithms do
	// subquadratic work. Compare against AllToAll's p·t at d = 1.
	p, tasks := 8, 64
	oblivious := int64(p * tasks)

	da := daMachines(t, p, tasks, 2, 31)
	resDA := mustSolve(t, p, tasks, da, adversary.NewFair(1))
	if resDA.Work >= oblivious {
		t.Fatalf("DA work %d does not beat oblivious %d at d=1", resDA.Work, oblivious)
	}

	pa := NewPaRan1(p, tasks, 32)
	resPA := mustSolve(t, p, tasks, pa, adversary.NewFair(1))
	if resPA.Work >= oblivious {
		t.Fatalf("PaRan1 work %d does not beat oblivious %d at d=1", resPA.Work, oblivious)
	}
}

func TestDAMessageComplexityIsPerStepBounded(t *testing.T) {
	// Theorem 5.6: M = O(p·W) — each step broadcasts at most once, so
	// M ≤ (p-1)·W always.
	p, tasks := 6, 36
	ms := daMachines(t, p, tasks, 2, 41)
	res := mustSolve(t, p, tasks, ms, adversary.NewFair(2))
	if res.Messages > int64(p-1)*res.Work {
		t.Fatalf("M = %d exceeds (p-1)·W = %d", res.Messages, int64(p-1)*res.Work)
	}
}

func TestObliDoScheduleArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewObliDo(4, 4, perm.List{perm.Identity(3)})
}
