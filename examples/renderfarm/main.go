// Renderfarm: many more tasks than processors (t ≫ p) on the goroutine
// runtime, exercising the paper's job-partitioning rule (Sections 5.1.3
// and 6): t tasks are grouped into p jobs of ⌈t/p⌉ tasks, and PaDet
// schedules the jobs with a searched low-d-contention permutation list —
// all of which happens inside the PaDet registry builder; the example
// only declares the Scenario.
//
// The "farm" renders a 32×32 image: each task shades one 16-pixel row
// segment. Because tasks are idempotent, overlapping renders are harmless.
//
//	go run ./examples/renderfarm
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"doall"
)

const (
	width      = 32
	height     = 32
	segsPerRow = 2 // 16-pixel segments
	nodes      = 4
)

func main() {
	tasks := height * segsPerRow // 64 render segments

	// t ≫ p: the PaDet builder partitions the segments into p jobs of
	// ⌈t/p⌉ and searches a low-d-contention schedule list over them.
	jobs := nodes
	if tasks < nodes {
		jobs = tasks
	}
	fmt.Printf("schedule: %d jobs of ≤%d segments each, searched by the PaDet builder\n",
		jobs, (tasks+nodes-1)/nodes)

	// The framebuffer: one atomic word per segment so concurrent renders
	// of the same segment (idempotent) are safe.
	frame := make([]atomic.Uint32, tasks)
	shade := func(id int) {
		row := id / segsPerRow
		seg := id % segsPerRow
		// A toy shader: deterministic per segment.
		frame[id].Store(uint32(row*131 + seg*17 + 7))
	}

	res, err := doall.RunScenarioWith(doall.Scenario{
		Algorithm:      "PaDet",
		Backend:        doall.BackendRuntime,
		P:              nodes,
		T:              tasks,
		D:              2,
		Seed:           5,
		SearchRestarts: 100,
	}, doall.ScenarioOptions{
		Unit: 100 * time.Microsecond,
		Task: shade,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Runtime

	rendered := 0
	for i := range frame {
		if frame[i].Load() != 0 {
			rendered++
		}
	}
	fmt.Printf("render complete: %v in %v\n", rep.Solved, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("segments rendered: %d/%d (executions incl. redundant: %d)\n",
		rendered, tasks, rep.TaskExecutions)
	fmt.Printf("steps: %d, messages: %d\n", rep.Steps, rep.Messages)
}
