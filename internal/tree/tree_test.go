package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doall/internal/bitset"
)

func TestNewShape(t *testing.T) {
	cases := []struct {
		q, h, leaves, size int
	}{
		{2, 0, 1, 1},
		{2, 1, 2, 3},
		{2, 3, 8, 15},
		{3, 2, 9, 13},
		{4, 2, 16, 21},
		{5, 1, 5, 6},
	}
	for _, c := range cases {
		tr := New(c.q, c.h)
		if tr.Leaves() != c.leaves {
			t.Errorf("New(%d,%d).Leaves() = %d, want %d", c.q, c.h, tr.Leaves(), c.leaves)
		}
		if tr.Size() != c.size {
			t.Errorf("New(%d,%d).Size() = %d, want %d", c.q, c.h, tr.Size(), c.size)
		}
	}
}

func TestNewPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 2) should panic")
		}
	}()
	New(1, 2)
}

func TestChildParentRoundTrip(t *testing.T) {
	tr := New(3, 3)
	for n := 0; n < tr.Size()-tr.Leaves(); n++ {
		for c := 0; c < 3; c++ {
			child := tr.Child(n, c)
			if tr.Parent(child) != n {
				t.Fatalf("Parent(Child(%d,%d)) = %d, want %d", n, c, tr.Parent(child), n)
			}
		}
	}
	if tr.Parent(tr.Root()) != -1 {
		t.Fatal("root parent should be -1")
	}
}

func TestLeafIndexing(t *testing.T) {
	tr := New(2, 3)
	for i := 0; i < tr.Leaves(); i++ {
		n := tr.LeafNode(i)
		if !tr.IsLeaf(n) {
			t.Fatalf("LeafNode(%d) = %d not a leaf", i, n)
		}
		if tr.LeafIndex(n) != i {
			t.Fatalf("LeafIndex(LeafNode(%d)) = %d", i, tr.LeafIndex(n))
		}
	}
	if tr.IsLeaf(tr.Root()) {
		t.Fatal("root of height-3 tree is not a leaf")
	}
}

func TestMarkLeafPropagates(t *testing.T) {
	tr := New(2, 2) // 4 leaves
	tr.MarkLeaf(0)
	tr.MarkLeaf(1)
	// Left subtree root (child 0 of root) must now be done.
	left := tr.Child(tr.Root(), 0)
	if !tr.Done(left) {
		t.Fatal("interior node not marked after both children done")
	}
	if tr.AllDone() {
		t.Fatal("root marked too early")
	}
	tr.MarkLeaf(2)
	tr.MarkLeaf(3)
	if !tr.AllDone() {
		t.Fatal("root not marked after all leaves done")
	}
	if bad := tr.CheckInvariant(); bad != -1 {
		t.Fatalf("invariant violated at node %d", bad)
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := New(2, 0)
	if tr.AllDone() {
		t.Fatal("fresh single-leaf tree is done")
	}
	tr.MarkLeaf(0)
	if !tr.AllDone() {
		t.Fatal("single-leaf tree not done after marking the leaf")
	}
}

func TestNewForTasksPadding(t *testing.T) {
	tr, pad := NewForTasks(3, 7) // next power of 3 is 9
	if tr.Leaves() != 9 || pad != 2 {
		t.Fatalf("NewForTasks(3,7): leaves=%d pad=%d, want 9, 2", tr.Leaves(), pad)
	}
	// Dummy leaves 7 and 8 are pre-marked.
	if !tr.Done(tr.LeafNode(7)) || !tr.Done(tr.LeafNode(8)) {
		t.Fatal("dummy leaves not pre-marked")
	}
	if tr.AllDone() {
		t.Fatal("tree done with real tasks outstanding")
	}
	for i := 0; i < 7; i++ {
		tr.MarkLeaf(i)
	}
	if !tr.AllDone() {
		t.Fatal("tree not done after all real tasks performed")
	}

	// Exact power: no padding.
	tr, pad = NewForTasks(2, 8)
	if pad != 0 || tr.Leaves() != 8 {
		t.Fatalf("NewForTasks(2,8): leaves=%d pad=%d", tr.Leaves(), pad)
	}
}

func TestMergeMonotoneCommutativeIdempotent(t *testing.T) {
	mk := func(leaves ...int) *Tree {
		tr := New(2, 3)
		for _, l := range leaves {
			tr.MarkLeaf(l)
		}
		return tr
	}
	a := mk(0, 1, 2)
	b := mk(3, 4, 5)

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	for i := 0; i < ab.Size(); i++ {
		if ab.Done(i) != ba.Done(i) {
			t.Fatalf("merge not commutative at node %d", i)
		}
	}

	again := ab.Clone()
	again.Merge(b)
	for i := 0; i < ab.Size(); i++ {
		if again.Done(i) != ab.Done(i) {
			t.Fatalf("merge not idempotent at node %d", i)
		}
	}

	// Left subtree (leaves 0..3) complete after merge → interior closure.
	ab.MarkLeaf(3)
	left := ab.Child(ab.Root(), 0)
	if !ab.Done(left) {
		t.Fatal("merge + mark did not close interior node")
	}
	if bad := ab.CheckInvariant(); bad != -1 {
		t.Fatalf("invariant violated at node %d", bad)
	}
}

func TestMergeBitsClosesInterior(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	a.MarkLeaf(0)
	a.MarkLeaf(1)
	b.MarkLeaf(2)
	b.MarkLeaf(3)
	a.MergeBits(b.Snapshot())
	if !a.AllDone() {
		t.Fatal("merging complementary halves should complete the tree")
	}
}

func TestMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).Merge(New(3, 2))
}

func TestSnapshotIsCopy(t *testing.T) {
	tr := New(2, 1)
	s := tr.Snapshot()
	s[0] = true
	if tr.AllDone() {
		t.Fatal("Snapshot shares memory with tree")
	}
}

func TestCountDoneLeaves(t *testing.T) {
	tr := New(3, 2)
	if tr.CountDoneLeaves() != 0 {
		t.Fatal("fresh tree has done leaves")
	}
	tr.MarkLeaf(4)
	tr.MarkLeaf(7)
	if got := tr.CountDoneLeaves(); got != 2 {
		t.Fatalf("CountDoneLeaves = %d, want 2", got)
	}
}

// Property: marking any set of leaves in any order yields a tree where the
// interior invariant holds and AllDone ⇔ all leaves marked.
func TestQuickMarkInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(qRaw, hRaw uint8, seed int64) bool {
		q := int(qRaw%3) + 2  // 2..4
		h := int(hRaw%3) + 1  // 1..3
		tr := New(q, h)
		rr := rand.New(rand.NewSource(seed))
		order := rr.Perm(tr.Leaves())
		k := rr.Intn(tr.Leaves() + 1)
		for _, l := range order[:k] {
			tr.MarkLeaf(l)
		}
		if tr.CheckInvariant() != -1 {
			return false
		}
		return tr.AllDone() == (k == tr.Leaves())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two randomly marked replicas equals marking the union.
func TestQuickMergeIsUnion(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		q, h := 2, 3
		a, b, u := New(q, h), New(q, h), New(q, h)
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		for i := 0; i < a.Leaves(); i++ {
			if ra.Intn(2) == 1 {
				a.MarkLeaf(i)
				u.MarkLeaf(i)
			}
			if rb.Intn(2) == 1 {
				b.MarkLeaf(i)
				u.MarkLeaf(i)
			}
		}
		a.Merge(b)
		for n := 0; n < a.Size(); n++ {
			if a.Done(n) != u.Done(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestVersionedTreeMatchesPlain drives identical mark/merge sequences
// through a plain tree and a versioned one: node bits must stay equal,
// and the versioned tree's snapshots must materialize them exactly.
func TestVersionedTreeMatchesPlain(t *testing.T) {
	plain, padP := NewForTasks(3, 14)
	vers, padV := NewForTasksVersioned(3, 14)
	if padP != padV {
		t.Fatalf("padding differs: %d vs %d", padP, padV)
	}
	if vers.Versioned() == nil || plain.Versioned() != nil {
		t.Fatal("Versioned() wiring wrong")
	}
	order := []int{0, 5, 2, 9, 13, 1, 7, 3, 11, 6, 12, 4, 10, 8}
	for i, leaf := range order {
		plain.MarkLeaf(leaf)
		vers.MarkLeaf(leaf)
		snap := vers.Versioned().Snapshot()
		got := bitset.New(vers.Size())
		snap.Materialize(got)
		for n := 0; n < plain.Size(); n++ {
			if plain.Done(n) != vers.Done(n) {
				t.Fatalf("step %d: node %d plain=%v versioned=%v", i, n, plain.Done(n), vers.Done(n))
			}
			if got.Get(n) != vers.Done(n) {
				t.Fatalf("step %d: snapshot bit %d = %v, tree = %v", i, n, got.Get(n), vers.Done(n))
			}
		}
		if inv := vers.CheckInvariant(); inv != -1 {
			t.Fatalf("step %d: closure invariant violated at %d", i, inv)
		}
		vers.Versioned().Recycle(snap)
	}
	if !vers.AllDone() {
		t.Fatal("versioned tree did not close the root")
	}
	vers.ResetPadded(14)
	if vers.AllDone() || vers.Versioned().Ver() != 0 {
		t.Fatal("ResetPadded did not restart the versioned tree")
	}
}

// TestPropagateUpEqualsRecompute checks the delta-merge closure path:
// marking an arbitrary node then propagating upward must match a full
// bottom-up recompute on a copy.
func TestPropagateUpEqualsRecompute(t *testing.T) {
	tr := New(2, 3)
	// Mark all leaves under the root's left child, leaf nodes directly
	// (as a merged snapshot would), then propagate from each.
	ref := tr.Clone()
	for i := 0; i < 4; i++ {
		n := tr.LeafNode(i)
		tr.Mark(n)
		tr.PropagateUp(n)
		ref.Mark(n)
	}
	ref.MergeSet(bitset.New(ref.Size())) // force a recompute pass
	for n := 0; n < tr.Size(); n++ {
		if tr.Done(n) != ref.Done(n) {
			t.Fatalf("node %d: propagate=%v recompute=%v", n, tr.Done(n), ref.Done(n))
		}
	}
	if tr.Done(tr.Root()) {
		t.Fatal("root closed with only half the leaves done")
	}
	if !tr.Done(tr.Child(tr.Root(), 0)) {
		t.Fatal("left subtree not closed by propagation")
	}
}
