package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sweepGrid() SweepConfig {
	return SweepConfig{
		Algos:    []Algo{AlgoAllToAll, AlgoDA, AlgoPaRan1},
		Ps:       []int{4, 8},
		Ts:       []int{16, 32},
		Ds:       []int64{1, 4},
		BaseSeed: 7,
		Trials:   2,
	}
}

func stripTimings(cells []Cell) []Cell {
	out := append([]Cell(nil), cells...)
	for i := range out {
		out[i].NsPerRun = 0
	}
	return out
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := sweepGrid()
	cfg.Workers = 1
	serial := stripTimings(RunSweep(cfg))
	for _, workers := range []int{2, 7} {
		cfg.Workers = workers
		got := stripTimings(RunSweep(cfg))
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d cell %d = %+v, want %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestSweepCellsSolveAndCoverGrid(t *testing.T) {
	cfg := sweepGrid()
	cells := RunSweep(cfg)
	want := len(cfg.Algos) * len(cfg.Ps) * len(cfg.Ts) * len(cfg.Ds)
	if len(cells) != want {
		t.Fatalf("sweep produced %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Err != "" {
			t.Fatalf("cell %+v failed: %s", c, c.Err)
		}
		if c.Work <= 0 || c.SolvedAt < 0 {
			t.Fatalf("cell %+v has implausible measures", c)
		}
	}
}

func TestCellSeedDependsOnlyOnCoordinates(t *testing.T) {
	a := CellSeed(1, AlgoDA, 8, 64, 4)
	if a != CellSeed(1, AlgoDA, 8, 64, 4) {
		t.Fatal("CellSeed not deterministic")
	}
	if a <= 0 {
		t.Fatalf("CellSeed = %d, want positive", a)
	}
	distinct := map[int64]bool{a: true}
	for _, other := range []int64{
		CellSeed(2, AlgoDA, 8, 64, 4),
		CellSeed(1, AlgoPaDet, 8, 64, 4),
		CellSeed(1, AlgoDA, 16, 64, 4),
		CellSeed(1, AlgoDA, 8, 128, 4),
		CellSeed(1, AlgoDA, 8, 64, 8),
	} {
		if distinct[other] {
			t.Fatalf("seed collision: %d", other)
		}
		distinct[other] = true
	}
}

func TestSweepReportJSONRoundTrip(t *testing.T) {
	cfg := sweepGrid()
	cfg.Algos = []Algo{AlgoAllToAll}
	cfg.Ps, cfg.Ts, cfg.Ds = []int{4}, []int{8}, []int64{1}
	rep := NewSweepReport(cfg)
	if rep.Engine != "multicast-wheel-grouped" {
		t.Fatalf("engine tag = %q", rep.Engine)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"algo": "AllToAll"`) {
		t.Fatalf("JSON missing cell fields:\n%s", buf.String())
	}
	var back SweepReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 1 || back.Cells[0].Work != rep.Cells[0].Work {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
