package perm

import (
	"math"
	"math/rand"
)

// SearchResult describes a schedule list found by one of the search
// functions together with its (estimated or exact) contention.
type SearchResult struct {
	List List
	// Cont is the contention of List: exact when Exact is true, otherwise
	// a random-probe lower estimate.
	Cont int
	// Exact reports whether Cont was computed by exhaustive maximization
	// over S_n.
	Exact bool
	// Candidates is the number of candidate lists examined.
	Candidates int
}

// HarmonicBound returns ⌈3·n·H_n⌉, the contention bound of Lemma 4.1
// (Anderson & Woll): for every n there exists a list of n permutations with
// Cont(Σ) ≤ 3nH_n.
func HarmonicBound(n int) int {
	return int(math.Ceil(3 * float64(n) * Harmonic(n)))
}

// Harmonic returns the nth harmonic number H_n = Σ_{j=1..n} 1/j.
func Harmonic(n int) float64 {
	h := 0.0
	for j := 1; j <= n; j++ {
		h += 1 / float64(j)
	}
	return h
}

// DContBound returns the Corollary 4.5 bound n·ln n + 8·p·d·ln(e + n/d) on
// the d-contention of a list of p schedules from S_n.
func DContBound(n, p, d int) float64 {
	if n <= 0 || p <= 0 || d <= 0 {
		return 0
	}
	return float64(n)*math.Log(float64(n)) +
		8*float64(p)*float64(d)*math.Log(math.E+float64(n)/float64(d))
}

// FindLowContentionList searches for a list of k permutations of n elements
// with low contention. The paper (Section 4, after Lemma 4.1) notes that
// for constant n an exhaustive search suffices; we do exhaustive search of
// candidate lists only for very small spaces and otherwise random-restart
// sampling keeping the best list found, which matches the probabilistic
// existence argument (random lists meet the O(n log n) bound w.h.p.).
//
// The returned contention is exact for n ≤ maxExactN (contention evaluation
// enumerates S_n), estimated otherwise.
func FindLowContentionList(k, n, restarts int, r *rand.Rand) SearchResult {
	const maxExactN = 7
	exact := n <= maxExactN
	eval := func(l List) int {
		if exact {
			return Cont(l)
		}
		return ContEstimate(l, 64, r)
	}

	best := canonicalList(k, n)
	bestCont := eval(best)
	candidates := 1
	for i := 0; i < restarts; i++ {
		cand := RandomList(k, n, r)
		candidates++
		if c := eval(cand); c < bestCont {
			best, bestCont = cand, c
		}
	}
	return SearchResult{List: best, Cont: bestCont, Exact: exact, Candidates: candidates}
}

// FindLowDContentionList searches for a list of k permutations of n
// elements with low d-contention for the given d, by random restarts. This
// realizes Corollary 4.5 constructively: random lists meet the bound with
// probability ≥ 1 - e^{-n ln n·ln(7/e²) - p}, so a handful of restarts keeps
// the best comfortably below it.
func FindLowDContentionList(k, n, d, restarts int, r *rand.Rand) SearchResult {
	const maxExactN = 7
	exact := n <= maxExactN
	eval := func(l List) int {
		if exact {
			return DCont(l, d)
		}
		return DContEstimate(l, d, 64, r)
	}

	best := canonicalList(k, n)
	bestCont := eval(best)
	candidates := 1
	for i := 0; i < restarts; i++ {
		cand := RandomList(k, n, r)
		candidates++
		if c := eval(cand); c < bestCont {
			best, bestCont = cand, c
		}
	}
	return SearchResult{List: best, Cont: bestCont, Exact: exact, Candidates: candidates}
}

// canonicalList is a deterministic non-random starting list: rotations of
// the reverse permutation. Rotated reversals spread the left-to-right
// maxima of the members with respect to any single σ.
func canonicalList(k, n int) List {
	l := make(List, k)
	rev := Reverse(n)
	for u := range l {
		p := make(Perm, n)
		for i := range p {
			p[i] = rev[(i+u)%n]
		}
		l[u] = p
	}
	return l
}

// RotationList returns the list of k cyclic rotations of the reverse
// permutation of n elements (a cheap deterministic schedule list used as a
// baseline in experiments and by DA when no searched list is supplied).
func RotationList(k, n int) List { return canonicalList(k, n) }

// PrefixSumContention returns, for each u, Cont estimate contribution
// lrm(σ⁻¹∘π_u) for σ = identity. Used by diagnostics and the contention CLI.
func PrefixSumContention(l List) []int {
	out := make([]int, len(l))
	for u, p := range l {
		out[u] = LRM(p)
	}
	return out
}

// ExhaustiveBestList enumerates every list of k permutations of n elements
// (all (n!)^k of them) and returns one minimizing exact contention. It is
// only feasible for tiny n and k (e.g. n=3, k=3) and exists to validate the
// random search in tests; it panics if the space exceeds 1e6 lists.
func ExhaustiveBestList(k, n int) SearchResult {
	all := AllPerms(n)
	space := 1
	for i := 0; i < k; i++ {
		space *= len(all)
		if space > 1_000_000 {
			panic("perm: ExhaustiveBestList space too large")
		}
	}
	idx := make([]int, k)
	cur := make(List, k)
	best := SearchResult{Cont: math.MaxInt, Exact: true}
	for {
		for i, j := range idx {
			cur[i] = all[j]
		}
		if c := Cont(cur); c < best.Cont {
			best.List = cur.Clone()
			best.Cont = c
		}
		best.Candidates++
		i := k - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(all) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return best
		}
	}
}
