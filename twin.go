package doall

import (
	"doall/internal/service"
	"doall/internal/twin"
)

// The analytical twin: per (algorithm, adversary-family) log-space
// least-squares models over the paper's own bound shapes, calibrated
// from recorded benchmark grids, that predict work, messages, and
// solved-at for a cell shape in microseconds. Each model carries its
// calibrated envelope (the (p,t,d,q) box it was fit on) and a
// residual-derived confidence band; the daemon serves in-envelope
// queries analytically at POST /v1/predict and falls back to one real
// bounded simulation outside the twin's evidence.
type (
	// Twin is a calibrated model collection (the TWIN_FIT.json form).
	Twin = twin.Twin
	// TwinQuery asks for a prediction at one (algo, adversary, p, t, d, q).
	TwinQuery = twin.Query
	// TwinPrediction is the answer: estimates, bands, coverage verdict.
	TwinPrediction = twin.Prediction
	// TwinSample is one calibration observation.
	TwinSample = twin.Sample
	// TwinPredictResult is the daemon's predict response: prediction plus
	// the mode that produced it ("twin" or "fallback").
	TwinPredictResult = service.PredictResult
)

// CalibrateTwin fits a twin from calibration samples; sources names the
// inputs (recorded in the fit for provenance). Deterministic: identical
// samples yield a byte-identical encoded fit.
func CalibrateTwin(samples []TwinSample, sources []string) (*Twin, error) {
	return twin.Calibrate(samples, sources)
}

// LoadTwin parses and validates a serialized fit (TWIN_FIT.json).
func LoadTwin(data []byte) (*Twin, error) { return twin.Load(data) }

// EncodeTwin serializes a fit as deterministic indented JSON.
func EncodeTwin(tw *Twin) ([]byte, error) { return tw.Encode() }

// TwinSamplesFromReport flattens a recorded sweep report into
// calibration samples (errored cells skipped).
func TwinSamplesFromReport(rep SweepReport) []TwinSample {
	return twin.SamplesFromReport(rep)
}

// TwinFamily reduces an adversary expression to its family name:
// "crashing(crash=3@7)" → "crashing", "" → "fair".
func TwinFamily(expr string) string { return twin.Family(expr) }
