package sim_test

import (
	"reflect"
	"testing"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/sim"
)

// bcastFact captures one watched broadcast's shape during the hook —
// payloads must not be retained past the callback (the engine recycles
// them), so the observer extracts version and encoding on the spot.
type bcastFact struct {
	at    int64
	ver   int64
	delta bool
}

// faultObserver records revive/omit hooks and the broadcasts of one
// watched processor, in order.
type faultObserver struct {
	sim.NopObserver
	revives []int
	omits   int
	watch   int
	casts   []bcastFact
}

func (o *faultObserver) OnRevive(pid int, now int64) { o.revives = append(o.revives, pid) }
func (o *faultObserver) OnOmit(from, to int, sentAt int64) {
	o.omits++
}
func (o *faultObserver) OnMulticast(from int, now int64, payload any, recipients int) {
	if from != o.watch {
		return
	}
	ds, ok := payload.(core.DoneSet)
	if !ok {
		return
	}
	_, delta := ds.S.WireDelta()
	o.casts = append(o.casts, bcastFact{at: now, ver: ds.S.Ver(), delta: delta})
}

// TestReviveRebasesNextBroadcast asserts the rebase-on-revive rule end to
// end: after a crash-restart, the revived processor's next broadcast is a
// full (non-delta) snapshot — the wire form any receiver can consume
// regardless of cursor state.
func TestReviveRebasesNextBroadcast(t *testing.T) {
	// Single-task jobs (t ≤ p) make PA broadcast at every performing
	// step, so the revived processor broadcasts again before the cohort's
	// full knowledge reaches it and halts it.
	const p, tasks, d = 8, 8, 4
	const crashAt, reviveAt = 1, 3
	obs := &faultObserver{watch: 1}
	ms := core.NewPaRan1(p, tasks, 5)
	adv := adversary.NewRestarting(adversary.NewFair(d), []adversary.RestartEvent{
		{Pid: 1, CrashAt: crashAt, ReviveAt: reviveAt},
	})
	res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: obs}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if !reflect.DeepEqual(obs.revives, []int{1}) {
		t.Fatalf("OnRevive fired for %v, want [1]", obs.revives)
	}
	var pre, post bcastFact
	var foundPre, foundPost bool
	for _, c := range obs.casts {
		if c.at < crashAt && !foundPre {
			pre, foundPre = c, true
		}
		if c.at >= reviveAt && !foundPost {
			post, foundPost = c, true
		}
	}
	if !foundPre || !foundPost {
		t.Fatalf("want pre-crash and post-revive broadcasts, got pre=%v post=%v (casts %v)", foundPre, foundPost, obs.casts)
	}
	if post.delta {
		t.Fatal("first post-revive broadcast travels as a delta; want a full rebase")
	}
	if post.ver <= pre.ver {
		t.Fatalf("post-revive snapshot version %d not above pre-crash %d", post.ver, pre.ver)
	}
}

// TestOmitObserverAndAccounting asserts omitted copies fire OnOmit, are
// charged as sent, and never reach an inbox.
func TestOmitObserverAndAccounting(t *testing.T) {
	const p, tasks, d = 4, 32, 2
	// Pid 0 loses every copy of everything it ever sends.
	adv := adversary.NewOmitting(adversary.NewFair(d), []adversary.OmitWindow{
		{Pid: 0, From: 0, Until: 1 << 30},
	}, nil)
	obs := &faultObserver{watch: -1}
	delivered := 0
	deliverObs := &sim.FuncObserver{Deliver: func(m sim.Message) {
		if m.From == 0 {
			delivered++
		}
	}}
	ms := core.NewPaRan1(p, tasks, 3)
	res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: sim.MultiObserver{obs, deliverObs}}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved: omission must cost work, never liveness")
	}
	if delivered != 0 {
		t.Fatalf("%d copies from the omitted sender were delivered", delivered)
	}
	if obs.omits == 0 {
		t.Fatal("no OnOmit events for a sender whose every copy is dropped")
	}
	// The omitted sender's sends are still charged: with p-1 recipients
	// per broadcast, omits must be a multiple of p-1 and TotalMessages
	// must include them.
	if obs.omits%(p-1) != 0 {
		t.Errorf("omits = %d, want a multiple of p-1 = %d", obs.omits, p-1)
	}
	if res.TotalMessages < int64(obs.omits) {
		t.Errorf("TotalMessages = %d < omitted copies %d: omission must not refund sends", res.TotalMessages, obs.omits)
	}
}

// TestFaultPlaneDeterministic asserts byte-identical repeat runs for the
// new fault adversaries on both engines: rebuilding machines and
// adversary from the same seed reproduces the exact Result.
func TestFaultPlaneDeterministic(t *testing.T) {
	const p, tasks, d = 8, 64, 3
	build := func() ([]sim.Machine, sim.Adversary) {
		ms := core.NewPaRan1(p, tasks, 42)
		adv := adversary.NewRestarting(
			adversary.NewOmitting(adversary.NewRandom(d, 0.7, 99), []adversary.OmitWindow{
				{Pid: 2, From: 0, Until: 20},
			}, nil),
			[]adversary.RestartEvent{{Pid: 1, CrashAt: 2, ReviveAt: 12}},
		)
		return ms, adv
	}
	for name, engine := range map[string]func(sim.Config, []sim.Machine, sim.Adversary) (*sim.Result, error){
		"engine": sim.Run,
		"legacy": sim.RunLegacy,
	} {
		ms1, adv1 := build()
		r1, err1 := engine(sim.Config{P: p, T: tasks}, ms1, adv1)
		ms2, adv2 := build()
		r2, err2 := engine(sim.Config{P: p, T: tasks}, ms2, adv2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", name, err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: repeat run diverged:\nfirst:  %+v\nsecond: %+v", name, r1, r2)
		}
	}
}

// TestReviveContributesWork asserts a revived processor really re-enters
// the execution: it takes steps after its revive instant.
func TestReviveContributesWork(t *testing.T) {
	const p, tasks, d = 4, 64, 1
	var preCrash, postRevive int64
	obs := &sim.FuncObserver{Step: func(pid int, now int64, r *sim.StepResult) {
		if pid != 1 {
			return
		}
		if now < 3 {
			preCrash++
		}
		if now >= 8 {
			postRevive++
		}
	}}
	ms := core.NewAllToAll(p, tasks)
	adv := adversary.NewRestarting(adversary.NewFair(d), []adversary.RestartEvent{
		{Pid: 1, CrashAt: 3, ReviveAt: 8},
	})
	res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: obs}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if preCrash == 0 || postRevive == 0 {
		t.Fatalf("revived processor steps: pre-crash %d, post-revive %d; want both > 0", preCrash, postRevive)
	}
	// AllToAll rejoins from scratch: its per-processor work exceeds a
	// never-crashed peer's because the restart discards progress.
	if res.PerProcWork[1] <= res.PerProcWork[3]-int64(tasks) {
		t.Fatalf("unexpected per-proc work after restart: %v", res.PerProcWork)
	}
}
