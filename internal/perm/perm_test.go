package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17} {
		p := Identity(n)
		if len(p) != n {
			t.Fatalf("Identity(%d) has length %d", n, len(p))
		}
		if err := Check(p); err != nil {
			t.Fatalf("Identity(%d) invalid: %v", n, err)
		}
		if !p.IsIdentity() {
			t.Fatalf("Identity(%d) not recognized as identity", n)
		}
	}
}

func TestReverse(t *testing.T) {
	p := Reverse(4)
	want := Perm{3, 2, 1, 0}
	if !p.Equal(want) {
		t.Fatalf("Reverse(4) = %v, want %v", p, want)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsBadSlices(t *testing.T) {
	cases := []Perm{
		{0, 0},
		{1, 2},
		{-1, 0},
		{0, 1, 3},
	}
	for _, p := range cases {
		if err := Check(p); err == nil {
			t.Errorf("Check(%v) accepted a non-permutation", p)
		}
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := Random(10, r)
		inv := p.Inverse()
		if !p.Compose(inv).IsIdentity() {
			t.Fatalf("p∘p⁻¹ ≠ id for p=%v", p)
		}
		if !inv.Compose(p).IsIdentity() {
			t.Fatalf("p⁻¹∘p ≠ id for p=%v", p)
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		a, b, c := Random(8, r), Random(8, r), Random(8, r)
		left := a.Compose(b).Compose(c)
		right := a.Compose(b.Compose(c))
		if !left.Equal(right) {
			t.Fatalf("composition not associative: %v vs %v", left, right)
		}
	}
}

func TestComposeIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := Random(9, r)
	id := Identity(9)
	if !p.Compose(id).Equal(p) || !id.Compose(p).Equal(p) {
		t.Fatal("identity is not neutral for composition")
	}
}

func TestComposeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose with mismatched lengths did not panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		perms := AllPerms(n)
		for want, p := range perms {
			if got := p.Rank(); got != int64(want) {
				t.Fatalf("Rank(%v) = %d, want %d", p, got, want)
			}
			if got := Unrank(n, int64(want)); !got.Equal(p) {
				t.Fatalf("Unrank(%d,%d) = %v, want %v", n, want, got, p)
			}
		}
	}
}

func TestLRMKnownValues(t *testing.T) {
	cases := []struct {
		p    Perm
		want int
	}{
		{Perm{}, 0},
		{Perm{0}, 1},
		{Perm{0, 1, 2, 3}, 4},   // identity: every element is an lrm
		{Perm{3, 2, 1, 0}, 1},   // reverse: only first
		{Perm{1, 0, 3, 2}, 2},   // 1 and 3
		{Perm{2, 0, 1, 4, 3}, 2} /* 2 and 4 */}
	for _, c := range cases {
		if got := LRM(c.p); got != c.want {
			t.Errorf("LRM(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestDLRMEqualsLRMAtD1(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p := Random(12, r)
		if DLRM(p, 1) != LRM(p) {
			t.Fatalf("DLRM(p,1) ≠ LRM(p) for p=%v", p)
		}
	}
}

func TestDLRMMonotoneInD(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p := Random(10, r)
		prev := 0
		for d := 1; d <= 12; d++ {
			cur := DLRM(p, d)
			if cur < prev {
				t.Fatalf("DLRM not monotone in d for p=%v: d=%d gives %d < %d", p, d, cur, prev)
			}
			prev = cur
		}
		if prev != len(p) {
			t.Fatalf("DLRM(p, d≥n) = %d, want n=%d", prev, len(p))
		}
	}
}

func TestDLRMKnownValues(t *testing.T) {
	// p = ⟨3,2,1,0⟩: element 3 has 0 greater predecessors; 2 has one (3);
	// 1 has two; 0 has three. So (2)-lrm counts 3 and 2 → 2.
	p := Perm{3, 2, 1, 0}
	if got := DLRM(p, 2); got != 2 {
		t.Fatalf("DLRM(%v, 2) = %d, want 2", p, got)
	}
	if got := DLRM(p, 4); got != 4 {
		t.Fatalf("DLRM(%v, 4) = %d, want 4", p, got)
	}
	if got := DLRM(p, 0); got != 0 {
		t.Fatalf("DLRM(p,0) = %d, want 0", got)
	}
}

func TestDLRMPositionsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		p := Random(9, r)
		for d := 1; d <= 5; d++ {
			pos := DLRMPositions(p, d)
			if len(pos) != DLRM(p, d) {
				t.Fatalf("positions/count mismatch for p=%v d=%d", p, d)
			}
			for j := 1; j < len(pos); j++ {
				if pos[j] <= pos[j-1] {
					t.Fatalf("positions not increasing: %v", pos)
				}
			}
		}
	}
}

// Property: lrm of the first d elements are always d-lrm's (paper Lemma 4.3
// observation (1): for i = 1..d, π(i) is a d-lrm).
func TestFirstDElementsAreDLRM(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64, dRaw uint8) bool {
		_ = seed
		p := Random(10, r)
		d := int(dRaw%9) + 1
		pos := DLRMPositions(p, d)
		if len(pos) < min(d, len(p)) {
			return false
		}
		for j := 0; j < min(d, len(p)); j++ {
			if pos[j] != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContWrtIdentityExtremes(t *testing.T) {
	// Single schedule = identity: every element is an lrm wrt identity → n.
	n := 6
	l := List{Identity(n)}
	if got := ContWrt(l, Identity(n)); got != n {
		t.Fatalf("ContWrt(⟨id⟩, id) = %d, want %d", got, n)
	}
	// Single schedule = reverse: one lrm wrt identity.
	l = List{Reverse(n)}
	if got := ContWrt(l, Identity(n)); got != 1 {
		t.Fatalf("ContWrt(⟨rev⟩, id) = %d, want 1", got)
	}
}

func TestContBounds(t *testing.T) {
	// n ≤ Cont(Σ) ≤ n² for any list of n permutations of [n] (paper §4).
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		n := 4
		l := RandomList(n, n, r)
		c := Cont(l)
		if c < n || c > n*n {
			t.Fatalf("Cont out of range [n, n²]: %d for n=%d", c, n)
		}
	}
}

func TestContOfIdenticalListIsMax(t *testing.T) {
	// If all schedules equal σ then Cont(Σ, σ) = n·n (every element an lrm
	// of identity composition), so Cont(Σ) = n².
	n := 5
	l := make(List, n)
	for i := range l {
		l[i] = Identity(n)
	}
	if got := Cont(l); got != n*n {
		t.Fatalf("Cont(identical list) = %d, want %d", got, n*n)
	}
}

func TestDContWrtAtLargeDIsN2(t *testing.T) {
	n := 4
	r := rand.New(rand.NewSource(9))
	l := RandomList(n, n, r)
	if got := DCont(l, n); got != n*n {
		t.Fatalf("(n)-Cont = %d, want n² = %d", got, n*n)
	}
}

func TestDContMonotoneInD(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	l := RandomList(4, 5, r)
	prev := 0
	for d := 1; d <= 6; d++ {
		cur := DCont(l, d)
		if cur < prev {
			t.Fatalf("DCont not monotone: d=%d gives %d < %d", d, cur, prev)
		}
		prev = cur
	}
}

func TestContEstimateNeverExceedsExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		l := RandomList(3, 5, r)
		exact := Cont(l)
		est := ContEstimate(l, 100, r)
		if est > exact {
			t.Fatalf("estimate %d exceeds exact %d", est, exact)
		}
	}
}

func TestDistinct(t *testing.T) {
	l := List{Identity(3), Identity(3), Reverse(3)}
	if got := l.Distinct(); got != 2 {
		t.Fatalf("Distinct = %d, want 2", got)
	}
}

func TestAllPermsCountAndValidity(t *testing.T) {
	want := 1
	for n := 1; n <= 6; n++ {
		want *= n
		perms := AllPerms(n)
		if len(perms) != want {
			t.Fatalf("AllPerms(%d) returned %d perms, want %d", n, len(perms), want)
		}
		seen := make(map[string]bool)
		for _, p := range perms {
			if err := Check(p); err != nil {
				t.Fatal(err)
			}
			k := p.SortKey()
			if seen[k] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[k] = true
		}
	}
}

func TestCheckList(t *testing.T) {
	if err := CheckList(List{Identity(3), Reverse(3)}); err != nil {
		t.Fatal(err)
	}
	if err := CheckList(List{Identity(3), Identity(4)}); err == nil {
		t.Fatal("CheckList accepted mismatched lengths")
	}
	if err := CheckList(List{{0, 0, 1}}); err == nil {
		t.Fatal("CheckList accepted a non-permutation")
	}
	if err := CheckList(nil); err != nil {
		t.Fatalf("CheckList(nil) = %v, want nil", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Identity(4)
	q := p.Clone()
	q[0] = 3
	if p[0] != 0 {
		t.Fatal("Clone shares backing array")
	}
	l := List{Identity(3)}
	l2 := l.Clone()
	l2[0][0] = 2
	if l[0][0] != 0 {
		t.Fatal("List.Clone shares permutations")
	}
}

// Property-based: random permutations round-trip through inverse twice.
func TestQuickInverseInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := Random(n, r)
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: lrm(σ⁻¹∘π) = 1 when π = σ reversed-composed... simpler
// invariant: lrm(σ⁻¹∘σ) = n (identity) for any σ.
func TestQuickSelfContention(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(nRaw uint8) bool {
		n := int(nRaw%15) + 1
		sigma := Random(n, r)
		return LRM(sigma.Inverse().Compose(sigma)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRandomIntoMatchesRandom pins the allocation-free permutation
// generator to math/rand's Perm: identical generator states must yield
// identical permutations (PaRan1's reproducibility depends on it).
func TestRandomIntoMatchesRandom(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for seed := int64(0); seed < 5; seed++ {
			want := Random(n, rand.New(rand.NewSource(seed)))
			buf := make([]int, n)
			got := RandomInto(n, rand.New(rand.NewSource(seed)), buf)
			if len(got) != len(want) {
				t.Fatalf("n=%d seed=%d: length %d vs %d", n, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d seed=%d: RandomInto diverges from Random at %d", n, seed, i)
				}
			}
		}
	}
}
