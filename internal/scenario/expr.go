package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Adversary expressions.
//
// A Scenario's Adversary field is not just a name but a small composable
// expression language, so specs can declare layered asynchrony without new
// Go code:
//
//	fair                               the benign d-adversary
//	fair(delay=2)                      fixed delay 2 ≤ d
//	random(activity=0.5)               random activity, uniform delays
//	crashing(crash=0@3, crash=2@9)     crash pid 0 at t=3, pid 2 at t=9
//	slow-set(slow=1, slow=3, period=8) pids 1 and 3 step every 8th unit
//	crashing(slow-set(fair))           composition: crashes over a slow
//	                                   subset over fixed delays
//
// Grammar:
//
//	expr  := name [ '(' args ')' ]
//	args  := arg { ',' arg }
//	arg   := key '=' value | expr
//
// A key=value argument parameterizes the adversary itself; a nested expr
// becomes an inner adversary handed to the builder (combinators like
// crashing and slow-set wrap their inner adversary, defaulting to fair).
// Keys may repeat (crash=..., crash=...) to build lists. Whitespace is
// insignificant outside names and values.

// Param is one key=value argument of an adversary expression, in source
// order. Keys may repeat.
type Param struct {
	Key, Value string
}

// advExpr is a parsed adversary expression node.
type advExpr struct {
	name   string
	params []Param
	inners []*advExpr
}

// String reconstructs the canonical form of the expression.
func (e *advExpr) String() string {
	if len(e.params) == 0 && len(e.inners) == 0 {
		return e.name
	}
	var args []string
	for _, in := range e.inners {
		args = append(args, in.String())
	}
	for _, p := range e.params {
		args = append(args, p.Key+"="+p.Value)
	}
	return e.name + "(" + strings.Join(args, ",") + ")"
}

// parseAdvExpr parses one complete adversary expression.
func parseAdvExpr(s string) (*advExpr, error) {
	p := &exprParser{src: s}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("scenario: trailing input %q in adversary expression %q", p.src[p.pos:], s)
	}
	return e, nil
}

// maxExprDepth bounds combinator nesting. Real expressions stack a
// handful of combinators; the bound exists so that adversarial input
// (fuzzing, user-supplied JSON) errors out instead of exhausting the
// goroutine stack through parser recursion.
const maxExprDepth = 64

type exprParser struct {
	src   string
	pos   int
	depth int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// ident consumes a name: letters, digits, '-', '_', '.'.
func (p *exprParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// value consumes a parameter value: everything up to the next top-level
// ',' or ')'. Values cannot nest parentheses.
func (p *exprParser) value() string {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ',' && p.src[p.pos] != ')' {
		p.pos++
	}
	return strings.TrimSpace(p.src[start:p.pos])
}

func (p *exprParser) expr() (*advExpr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, fmt.Errorf("scenario: adversary expression nests deeper than %d", maxExprDepth)
	}
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("scenario: expected adversary name at offset %d of %q", p.pos, p.src)
	}
	e := &advExpr{name: name}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return e, nil
	}
	p.pos++ // consume '('
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
		return e, nil
	}
	for {
		if err := p.arg(e); err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("scenario: unterminated argument list in adversary expression %q", p.src)
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return e, nil
		default:
			return nil, fmt.Errorf("scenario: unexpected %q at offset %d of %q", p.src[p.pos], p.pos, p.src)
		}
	}
}

// arg parses one argument: a nested expression or key=value.
func (p *exprParser) arg(e *advExpr) error {
	p.skipSpace()
	save := p.pos
	name := p.ident()
	if name == "" {
		return fmt.Errorf("scenario: expected argument at offset %d of %q", p.pos, p.src)
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		e.params = append(e.params, Param{Key: name, Value: p.value()})
		return nil
	}
	// Not key=value: re-parse as a nested expression.
	p.pos = save
	inner, err := p.expr()
	if err != nil {
		return err
	}
	e.inners = append(e.inners, inner)
	return nil
}

// AdversaryContext is what an AdversaryBuilder receives: the (defaulted)
// scenario for D/T/P/Seed defaults, the already-built inner adversaries of
// nested sub-expressions (in source order), and the key=value parameters.
type AdversaryContext struct {
	// Scenario is the defaulted scenario the adversary is built for.
	Scenario Scenario
	// Inners holds the built adversaries of nested sub-expressions.
	Inners []Adversary
	// Params holds the key=value arguments in source order.
	Params []Param
}

// Param returns the first value of key, if present.
func (c *AdversaryContext) Param(key string) (string, bool) {
	for _, p := range c.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// ParamAll returns every value of key in source order.
func (c *AdversaryContext) ParamAll(key string) []string {
	var vals []string
	for _, p := range c.Params {
		if p.Key == key {
			vals = append(vals, p.Value)
		}
	}
	return vals
}

// IntParam returns key parsed as int64, or def when absent.
func (c *AdversaryContext) IntParam(key string, def int64) (int64, error) {
	v, ok := c.Param(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: adversary parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

// FloatParam returns key parsed as float64, or def when absent.
func (c *AdversaryContext) FloatParam(key string, def float64) (float64, error) {
	v, ok := c.Param(key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: adversary parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

// checkParams rejects unknown parameter keys so typos fail loudly instead
// of silently falling back to defaults.
func (c *AdversaryContext) checkParams(allowed ...string) error {
	for _, p := range c.Params {
		ok := false
		for _, a := range allowed {
			if p.Key == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario: unknown adversary parameter %q (allowed: %s)", p.Key, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// maxInners rejects surplus nested expressions.
func (c *AdversaryContext) maxInners(n int) error {
	if len(c.Inners) > n {
		return fmt.Errorf("scenario: adversary takes at most %d inner adversaries, got %d", n, len(c.Inners))
	}
	return nil
}
