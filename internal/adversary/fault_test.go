package adversary

import (
	"testing"

	"doall/internal/sim"
)

// seqMachine is a minimal communication-free machine for smoke runs:
// it performs tasks 0..t-1 in order and halts (AllToAll without the
// core dependency).
type seqMachine struct{ t, next int }

func (m *seqMachine) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	if m.next >= m.t {
		return sim.StepResult{Halt: true}
	}
	z := m.next
	m.next++
	r := sim.StepResult{Halt: m.next >= m.t}
	r.Perform(z)
	return r
}

func (m *seqMachine) KnowsAllDone() bool { return m.next >= m.t }

func (m *seqMachine) Rejoin() { m.next = 0 }

func coreMachines(p, t int) []sim.Machine {
	ms := make([]sim.Machine, p)
	for i := range ms {
		ms[i] = &seqMachine{t: t}
	}
	return ms
}

// newFaultView builds a minimal adversary view for Schedule-contract
// tests.
func newFaultView(p int, now int64) *sim.View {
	return &sim.View{
		Now:     now,
		P:       p,
		T:       p,
		Tasks:   sim.NewTaskLedger(p),
		Crashed: make([]bool, p),
		Halted:  make([]bool, p),
	}
}

func TestRestartingSchedulesCrashAndRevive(t *testing.T) {
	a := NewRestarting(NewFair(2), []RestartEvent{{Pid: 1, CrashAt: 3, ReviveAt: 7}})
	var dec sim.Decision

	v := newFaultView(4, 3)
	a.Schedule(v, &dec)
	if len(dec.Crash) != 1 || dec.Crash[0] != 1 {
		t.Fatalf("at CrashAt: Crash = %v, want [1]", dec.Crash)
	}
	if len(dec.Revive) != 0 {
		t.Fatalf("at CrashAt: Revive = %v, want empty", dec.Revive)
	}

	dec = sim.Decision{}
	v = newFaultView(4, 7)
	v.Crashed[1] = true
	a.Schedule(v, &dec)
	if len(dec.Revive) != 1 || dec.Revive[0] != 1 {
		t.Fatalf("at ReviveAt: Revive = %v, want [1]", dec.Revive)
	}

	// A revive of a processor that never crashed (the engine refused the
	// crash, or the event is stale) is not emitted.
	dec = sim.Decision{}
	v = newFaultView(4, 7)
	a.Schedule(v, &dec)
	if len(dec.Revive) != 0 {
		t.Fatalf("revive of live processor emitted: %v", dec.Revive)
	}
}

// TestRestartingDoesNotReviveForeignCrashes: a processor fail-stopped by
// a composed inner adversary stays down — Restarting revives only the
// crashes it injected itself.
func TestRestartingDoesNotReviveForeignCrashes(t *testing.T) {
	inner := NewCrashing(NewFair(1), []CrashEvent{{Pid: 1, At: 2}})
	a := NewRestarting(inner, []RestartEvent{{Pid: 1, CrashAt: 6, ReviveAt: 8}})

	// t=2: the inner crashing adversary fail-stops pid 1.
	var dec sim.Decision
	v := newFaultView(4, 2)
	a.Schedule(v, &dec)
	if len(dec.Crash) != 1 || dec.Crash[0] != 1 {
		t.Fatalf("inner crash not forwarded: %v", dec.Crash)
	}

	// t=6: Restarting's own crash is a no-op (pid already down).
	dec = sim.Decision{}
	v = newFaultView(4, 6)
	v.Crashed[1] = true
	a.Schedule(v, &dec)
	if len(dec.Crash) != 0 {
		t.Fatalf("re-crashed an already crashed pid: %v", dec.Crash)
	}

	// t=8: the revive must NOT fire — pid 1 was fail-stopped by the
	// inner adversary, not crash-restarted by this wrapper.
	dec = sim.Decision{}
	v = newFaultView(4, 8)
	v.Crashed[1] = true
	a.Schedule(v, &dec)
	if len(dec.Revive) != 0 {
		t.Fatalf("revived a foreign fail-stop crash: %v", dec.Revive)
	}
}

// TestRestartingCedesSameTickCrashToInner: when the inner adversary and
// Restarting schedule the same pid at the same instant (the registry
// defaults collide exactly like this), the inner fail-stop wins and the
// revive never fires.
func TestRestartingCedesSameTickCrashToInner(t *testing.T) {
	inner := NewCrashing(NewFair(1), []CrashEvent{{Pid: 1, At: 5}})
	a := NewRestarting(inner, []RestartEvent{{Pid: 1, CrashAt: 5, ReviveAt: 9}})

	var dec sim.Decision
	v := newFaultView(4, 5)
	a.Schedule(v, &dec)
	if len(dec.Crash) != 1 || dec.Crash[0] != 1 {
		t.Fatalf("same-tick collision: Crash = %v, want exactly the inner's [1]", dec.Crash)
	}

	dec = sim.Decision{}
	v = newFaultView(4, 9)
	v.Crashed[1] = true
	a.Schedule(v, &dec)
	if len(dec.Revive) != 0 {
		t.Fatalf("revived a pid whose same-tick crash the inner adversary owns: %v", dec.Revive)
	}
}

// TestComposedFaultInjectorsSpareLastSurvivor: the survivor guard must
// count crashes an inner adversary recorded in dec this same unit, or a
// composition could kill every processor in one tick.
func TestComposedFaultInjectorsSpareLastSurvivor(t *testing.T) {
	inner := NewCrashing(NewFair(1), []CrashEvent{{Pid: 1, At: 5}})
	for name, outer := range map[string]sim.Adversary{
		"restarting": NewRestarting(inner, []RestartEvent{{Pid: 0, CrashAt: 5, ReviveAt: 20}}),
		"crashing":   NewCrashing(inner, []CrashEvent{{Pid: 0, At: 5}}),
	} {
		var dec sim.Decision
		v := newFaultView(2, 5)
		outer.Schedule(v, &dec)
		if len(dec.Crash) != 1 || dec.Crash[0] != 1 {
			t.Errorf("%s over crashing at p=2: Crash = %v, want only the inner's [1] (last survivor spared)", name, dec.Crash)
		}
	}
}

// TestRestartingReusableAcrossRuns: crash ownership resets at time 0, so
// one adversary value driving consecutive simulations reproduces the
// first run exactly.
func TestRestartingReusableAcrossRuns(t *testing.T) {
	a := NewRestarting(NewFair(2), []RestartEvent{{Pid: 1, CrashAt: 2, ReviveAt: 8}})
	run := func() *sim.Result {
		ms := coreMachines(4, 16)
		res, err := sim.Run(sim.Config{P: 4, T: 16}, ms, a)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if first.Work != second.Work || first.Messages != second.Messages || first.SolvedAt != second.SolvedAt {
		t.Fatalf("reused adversary diverged: first %+v, second %+v", first, second)
	}
}

func TestRestartingNeverCrashesLastLive(t *testing.T) {
	a := NewRestarting(NewFair(1), []RestartEvent{{Pid: 2, CrashAt: 5, ReviveAt: 9}})
	v := newFaultView(3, 5)
	v.Crashed[0] = true
	v.Crashed[1] = true // pid 2 is the last live processor
	var dec sim.Decision
	a.Schedule(v, &dec)
	if len(dec.Crash) != 0 {
		t.Fatalf("crashed the last live processor: %v", dec.Crash)
	}
}

func TestRestartingClampsNextWake(t *testing.T) {
	// An all-slow inner adversary promises idleness across period
	// boundaries; the promise must be clamped to pending crash AND revive
	// instants or the engine's fast-forward would skip them.
	slow := []int{0, 1, 2, 3}
	inner := NewSlowSet(4, slow, 10)
	a := NewRestarting(inner, []RestartEvent{{Pid: 1, CrashAt: 12, ReviveAt: 16}})

	v := newFaultView(4, 11)
	var dec sim.Decision
	a.Schedule(v, &dec)
	if dec.NextWake != 12 {
		t.Fatalf("NextWake = %d, want clamp to pending crash at 12", dec.NextWake)
	}

	v = newFaultView(4, 13)
	v.Crashed[1] = true
	dec = sim.Decision{}
	a.Schedule(v, &dec)
	if dec.NextWake != 16 {
		t.Fatalf("NextWake = %d, want clamp to pending revive at 16", dec.NextWake)
	}
}

func TestOmittingWindows(t *testing.T) {
	a := NewOmitting(NewFair(2), []OmitWindow{{Pid: 1, From: 5, Until: 9}}, nil)
	cases := []struct {
		from   int
		sentAt int64
		want   bool
	}{
		{1, 5, true},
		{1, 8, true},
		{1, 9, false}, // half-open window
		{1, 4, false},
		{0, 6, false}, // other sender
	}
	for _, c := range cases {
		if got := a.OmitsAt(c.from, c.sentAt); got != c.want {
			t.Errorf("OmitsAt(%d, %d) = %v, want %v", c.from, c.sentAt, got, c.want)
		}
		if got := a.Omit(c.from, 3, c.sentAt); got != c.want {
			t.Errorf("Omit(%d, 3, %d) = %v, want %v", c.from, c.sentAt, got, c.want)
		}
	}
}

func TestOmittingToSubset(t *testing.T) {
	a := NewOmitting(NewFair(2), []OmitWindow{{Pid: 0, From: 0, Until: 100}}, []int{2, 3})
	for to := 0; to < 5; to++ {
		want := to == 2 || to == 3
		if got := a.Omit(0, to, 10); got != want {
			t.Errorf("Omit(0, %d, 10) = %v, want %v (subset {2,3})", to, got, want)
		}
	}
}

// TestFaultCombinatorsForwardExtensions asserts the combinators stay on
// the engine's fast paths exactly when their inner adversary does.
func TestFaultCombinatorsForwardExtensions(t *testing.T) {
	fair := NewFair(3)
	for name, adv := range map[string]sim.Adversary{
		"restarting": NewRestarting(fair, nil),
		"omitting":   NewOmitting(fair, nil, nil),
	} {
		if ia, ok := adv.(sim.InboxAgnostic); !ok || !ia.InboxAgnostic() {
			t.Errorf("%s(fair): not inbox-agnostic", name)
		}
		ud, ok := adv.(sim.UniformDelayer)
		if !ok {
			t.Fatalf("%s: no UniformDelayer", name)
		}
		if dl, uok := ud.DelayUniform(0, 0); !uok || dl != 3 {
			t.Errorf("%s(fair): DelayUniform = (%d, %v), want (3, true)", name, dl, uok)
		}
		out := make([]int64, 4)
		adv.(sim.MulticastDelayer).DelayMulticast(0, 0, out)
		for j := 1; j < 4; j++ {
			if out[j] != 3 {
				t.Errorf("%s(fair): DelayMulticast out[%d] = %d, want 3", name, j, out[j])
			}
		}
	}
}
