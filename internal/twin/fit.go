package twin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"doall/internal/scenario"
)

// Encode serializes the twin as deterministic, indented JSON — the
// TWIN_FIT.json on-disk form. Calibrate sorts groups and canonicalizes
// sample order, so identical calibration inputs re-encode to identical
// bytes; CI leans on that to diff a re-derived fit against the
// checked-in one.
func (tw *Twin) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tw); err != nil {
		return nil, fmt.Errorf("twin: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Load parses a serialized twin and validates its shape: schema version,
// per-model coefficient arity, and sane envelopes. A fit file from a
// different schema version fails loudly instead of mispredicting.
func Load(data []byte) (*Twin, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tw Twin
	if err := dec.Decode(&tw); err != nil {
		return nil, fmt.Errorf("twin: parse: %w", err)
	}
	if tw.Version != FitVersion {
		return nil, fmt.Errorf("twin: fit version %d, this build reads version %d", tw.Version, FitVersion)
	}
	if len(tw.Groups) == 0 {
		return nil, fmt.Errorf("twin: fit has no model groups")
	}
	for _, g := range tw.Groups {
		if g.Algo == "" || g.Family == "" {
			return nil, fmt.Errorf("twin: fit group with empty algo/family")
		}
		for _, m := range []Model{g.Work, g.Messages, g.SolvedAt} {
			if len(m.Coef) != nFeatures {
				return nil, fmt.Errorf("twin: group %s/%s: %d coefficients, want %d",
					g.Algo, g.Family, len(m.Coef), nFeatures)
			}
			if m.Band < 0 || m.N < 1 {
				return nil, fmt.Errorf("twin: group %s/%s: degenerate model (band=%v n=%d)",
					g.Algo, g.Family, m.Band, m.N)
			}
		}
		e := g.Envelope
		if e.MinP < 1 || e.MaxP < e.MinP || e.MinT < 1 || e.MaxT < e.MinT ||
			e.MinD < 1 || e.MaxD < e.MinD || e.MinQ < 2 || e.MaxQ < e.MinQ {
			return nil, fmt.Errorf("twin: group %s/%s: degenerate envelope %+v", g.Algo, g.Family, e)
		}
	}
	return &tw, nil
}

// SamplesFromReport flattens a recorded sweep report into calibration
// samples. Cells that predate the per-cell adversary column (an
// adversary-axis-less sweep stamps only the report-level adversary)
// inherit the report's first adversary expression; errored cells are
// skipped — their measures are partial.
func SamplesFromReport(rep scenario.SweepReport) []Sample {
	reportFam := Family(firstExpr(rep.Adversary))
	samples := make([]Sample, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		if c.Err != "" {
			continue
		}
		fam := reportFam
		if c.Adversary != "" {
			fam = Family(c.Adversary)
		}
		samples = append(samples, Sample{
			Algo:     c.Algo,
			Family:   fam,
			P:        c.P,
			T:        c.T,
			D:        c.D,
			Q:        c.Q,
			Work:     float64(c.Work),
			Messages: float64(c.Messages),
			SolvedAt: float64(c.SolvedAt),
		})
	}
	return samples
}

// firstExpr splits a report-level adversary annotation ("fair" or the
// joined axis form "fair;crashing;restarting") down to its first
// expression.
func firstExpr(adv string) string {
	if i := strings.IndexByte(adv, ';'); i >= 0 {
		return adv[:i]
	}
	return adv
}
