package scenario

import (
	"reflect"
	"testing"
	"time"
)

// TestFaultAdversariesRegistered asserts the fault-plane combinators are
// addressable by name.
func TestFaultAdversariesRegistered(t *testing.T) {
	names := Adversaries()
	want := map[string]bool{AdvRestarting: false, AdvOmitting: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("adversary %q not registered (have %v)", n, names)
		}
	}
}

// TestFaultExpressionsRunDeterministically runs fault-plane expressions
// through the full Scenario pipeline on both simulator backends:
// backends must agree byte for byte, and repeat runs must be identical
// (the acceptance bar for -adversary reachability).
func TestFaultExpressionsRunDeterministically(t *testing.T) {
	exprs := []string{
		"restarting(fair, down=6)",
		"restarting(crash=1@4, crash=2@9, down=12)",
		"restarting(random(activity=0.8), down=8)",
		"omitting(fair)",
		"omitting(drop=1@2:30, to=0, to=3)",
		"omitting(slow-set(fair, period=3), drop=2@0:40)",
		"restarting(omitting(fair, drop=2@0:12), crash=1@3, down=10)",
	}
	for _, algo := range []string{AlgoPaRan1, AlgoDA} {
		for _, expr := range exprs {
			sc := Scenario{Algorithm: algo, Adversary: expr, P: 6, T: 48, D: 2, Seed: 11}
			t.Run(algo+"/"+expr, func(t *testing.T) {
				if err := sc.Validate(); err != nil {
					t.Fatalf("Validate: %v", err)
				}
				run := func(backend string) *Result {
					s := sc
					s.Backend = backend
					res, err := Run(s)
					if err != nil {
						t.Fatalf("%s: %v", backend, err)
					}
					if !res.Solved() {
						t.Fatalf("%s: not solved", backend)
					}
					return res
				}
				fast := run(BackendSim)
				again := run(BackendSim)
				legacy := run(BackendSimLegacy)
				if !reflect.DeepEqual(fast.Sim, again.Sim) {
					t.Fatalf("repeat run diverged:\nfirst:  %+v\nsecond: %+v", fast.Sim, again.Sim)
				}
				if !reflect.DeepEqual(fast.Sim, legacy.Sim) {
					t.Fatalf("backends diverged:\nsim:    %+v\nlegacy: %+v", fast.Sim, legacy.Sim)
				}
			})
		}
	}
}

// TestFaultExpressionErrors asserts malformed fault parameters fail
// loudly at build time.
func TestFaultExpressionErrors(t *testing.T) {
	bad := []string{
		"restarting(down=0)",
		"restarting(down=x)",
		"restarting(crash=99@3)", // pid out of range
		"restarting(crash=1@-4)", // negative time
		"restarting(fair, fair)", // too many inners
		"restarting(bogus=1)",    // unknown parameter
		"omitting(drop=9@0)",     // pid out of range
		"omitting(drop=1@9:3)",   // empty window
		"omitting(drop=1)",       // missing @
		"omitting(to=77)",        // recipient out of range
		"omitting(drop=1@a)",     // bad time
		"omitting(fair, fair)",   // too many inners
		"omitting(window=3)",     // unknown parameter
	}
	for _, expr := range bad {
		sc := Scenario{Algorithm: AlgoPaRan1, Adversary: expr, P: 4, T: 16, D: 2}
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate(%q) accepted a malformed expression", expr)
		}
	}
}

// TestRuntimeBackendCrashRestart drives the goroutine runtime's
// crash-restart plane through the Scenario options.
func TestRuntimeBackendCrashRestart(t *testing.T) {
	sc := Scenario{Algorithm: AlgoPaRan1, P: 4, T: 24, D: 2, Seed: 5, Backend: BackendRuntime}
	res, err := RunWith(sc, Options{
		Unit:        100 * time.Microsecond,
		Timeout:     20 * time.Second,
		CrashAfter:  map[int]int{1: 2},
		ReviveAfter: map[int]int{1: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved() {
		t.Fatal("not solved")
	}
	if !res.Runtime.Crashed[1] || !res.Runtime.Revived[1] {
		t.Fatalf("pid 1 crash/revive not reported: crashed=%v revived=%v",
			res.Runtime.Crashed[1], res.Runtime.Revived[1])
	}
}

// TestFaultAdversariesInSweep asserts the new expressions work as sweep
// grid axes (the cmd/experiments -advs path) and stay deterministic
// across worker counts.
func TestFaultAdversariesInSweep(t *testing.T) {
	cfg := SweepConfig{
		Algos:       []string{AlgoPaRan1},
		Adversaries: []string{"fair", "restarting(down=4)", "omitting(drop=1@0:9)"},
		Ps:          []int{4},
		Ts:          []int{16},
		Ds:          []int64{2},
		Trials:      2,
		BaseSeed:    9,
	}
	one := cfg
	one.Workers = 1
	many := cfg
	many.Workers = 4
	a, b := RunSweep(one), RunSweep(many)
	for i := range a {
		a[i].NsPerRun = 0 // wall-clock; everything else must match exactly
	}
	for i := range b {
		b[i].NsPerRun = 0
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic across worker counts:\n1: %+v\n4: %+v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("got %d cells, want 3", len(a))
	}
	for _, c := range a {
		if c.Err != "" {
			t.Errorf("cell %+v failed: %s", c, c.Err)
		}
	}
}
