package core

import (
	"fmt"
	"math/rand"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
)

// PA implements one processor of the permutation algorithms of Section 6
// (Fig. 4). The processor keeps a local set of jobs known to be done;
// while it has not ascertained that all jobs are complete it selects the
// next not-known-done job according to its Selector, performs it (one task
// per local step), marks it done, and multicasts its done-set. Received
// done-sets are merged (a monotone union, charged to the step that
// consumes them).
//
// The three family members differ only in the Selector:
//
//   - PaRan1: a permutation of the jobs drawn uniformly at random at
//     start-up (Order = random, Select = next by local permutation).
//   - PaRan2: each selection is uniform over the jobs not yet known done.
//   - PaDet: a fixed schedule list Σ with low d-contention (Corollary 4.5);
//     processor pid follows π_pid.
//
// Expected (worst-case for PaDet with a suitable Σ) work is
// O(t·log p + p·min{t,d}·log(2+t/d)) — Theorems 6.2 and 6.3.
type PA struct {
	pid      int
	jobs     Jobs
	done     *bitset.Set // done job set (known complete)
	remain   int         // jobs not known complete
	selector selector
	cur      int // current job, -1 if none selected
	unit     int // tasks of current job already performed
	halted   bool
	// free pools done-set snapshot buffers handed back by the engine
	// (sim.PayloadRecycler), so steady-state broadcasts allocate nothing.
	free []*bitset.Set
}

// selector abstracts the Order+Select specializations of Fig. 4.
type selector interface {
	// next returns the next job to perform given the done-set, or -1 if
	// every job is known done. It must not return a done job.
	next(done *bitset.Set) int
	// clone returns a deep copy, or nil if the selector is not cloneable
	// (PaRan2's on-line randomness).
	clone() selector
	// reset restores the selector's initial position for a fresh trial.
	reset()
}

var (
	_ sim.Machine         = (*PA)(nil)
	_ sim.TaskIntender    = (*PA)(nil)
	_ sim.Resetter        = (*PA)(nil)
	_ sim.PayloadRecycler = (*PA)(nil)
)

// permSelector walks a fixed permutation of the jobs (PaRan1, PaDet).
type permSelector struct {
	order perm.Perm
	pos   int
}

func (s *permSelector) next(done *bitset.Set) int {
	for s.pos < len(s.order) {
		j := s.order[s.pos]
		if !done.Get(j) {
			return j
		}
		s.pos++
	}
	return -1
}

func (s *permSelector) clone() selector {
	c := *s
	return &c
}

func (s *permSelector) reset() { s.pos = 0 }

// randSelector draws uniformly among not-known-done jobs (PaRan2). It
// commits to its next draw so that an adaptive adversary may observe it
// (sim.TaskIntender), exactly the knowledge model of Theorem 3.4.
type randSelector struct {
	rng       *rand.Rand
	committed int // -1 when no commitment
}

func (s *randSelector) next(done *bitset.Set) int {
	if s.committed >= 0 && !done.Get(s.committed) {
		return s.committed
	}
	var undone []int
	for j := done.NextClear(0); j >= 0; j = done.NextClear(j + 1) {
		undone = append(undone, j)
	}
	if len(undone) == 0 {
		s.committed = -1
		return -1
	}
	s.committed = undone[s.rng.Intn(len(undone))]
	return s.committed
}

func (s *randSelector) clone() selector { return nil }

// reset drops the commitment; the random stream continues, so a reset
// PaRan2 runs a fresh trial rather than a replay.
func (s *randSelector) reset() { s.committed = -1 }

// NewPaRan1 builds the p machines of algorithm PaRan1 for t tasks; each
// processor draws its job permutation from a rand source seeded with
// seed+pid, so runs are reproducible.
func NewPaRan1(p, t int, seed int64) []sim.Machine {
	jobs := NewJobs(p, t)
	ms := make([]sim.Machine, p)
	for i := range ms {
		r := rand.New(rand.NewSource(seed + int64(i)))
		ms[i] = newPA(i, jobs, &permSelector{order: perm.Random(jobs.N, r)})
	}
	return ms
}

// NewPaRan2 builds the p machines of algorithm PaRan2 for t tasks.
func NewPaRan2(p, t int, seed int64) []sim.Machine {
	jobs := NewJobs(p, t)
	ms := make([]sim.Machine, p)
	for i := range ms {
		r := rand.New(rand.NewSource(seed + int64(i)))
		ms[i] = newPA(i, jobs, &randSelector{rng: r, committed: -1})
	}
	return ms
}

// NewPaDet builds the p machines of algorithm PaDet for t tasks using the
// schedule list l (p permutations of the job set; processor i follows
// l[i mod len(l)]).
func NewPaDet(p, t int, l perm.List) ([]sim.Machine, error) {
	jobs := NewJobs(p, t)
	if l.N() != jobs.N {
		return nil, fmt.Errorf("core: PaDet schedules are over [%d], want [%d] (jobs)", l.N(), jobs.N)
	}
	if len(l) == 0 {
		return nil, fmt.Errorf("core: PaDet requires a non-empty schedule list")
	}
	if err := perm.CheckList(l); err != nil {
		return nil, err
	}
	ms := make([]sim.Machine, p)
	for i := range ms {
		ms[i] = newPA(i, jobs, &permSelector{order: l[i%len(l)]})
	}
	return ms, nil
}

func newPA(pid int, jobs Jobs, sel selector) *PA {
	return &PA{
		pid:      pid,
		jobs:     jobs,
		done:     bitset.New(jobs.N),
		remain:   jobs.N,
		selector: sel,
		cur:      -1,
	}
}

// Step implements sim.Machine.
func (m *PA) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	m.mergeInbox(inbox)

	if m.remain == 0 {
		m.halted = true
		return sim.StepResult{Halt: true}
	}

	// (Re)select if we have no current job or a peer finished ours.
	if m.cur < 0 || m.done.Get(m.cur) {
		m.cur = m.selector.next(m.done)
		m.unit = 0
		if m.cur < 0 {
			m.halted = true
			return sim.StepResult{Halt: true}
		}
	}

	z := m.jobs.Start(m.cur) + m.unit
	m.unit++
	if m.unit < m.jobs.Size(m.cur) {
		return sim.PerformStep(z)
	}

	// Job complete: record, multicast the done-set, possibly halt.
	m.markDone(m.cur)
	m.cur = -1
	m.unit = 0
	halt := m.remain == 0
	m.halted = halt
	r := sim.StepResult{
		Broadcast: m.snapshot(),
		Halt:      halt,
	}
	r.Perform(z)
	return r
}

func (m *PA) mergeInbox(inbox []sim.Delivery) {
	for _, msg := range inbox {
		ds, ok := msg.Payload().(DoneSet)
		if !ok || ds.Bits.Len() != m.done.Len() {
			continue
		}
		m.remain -= m.done.UnionWith(ds.Bits)
	}
}

func (m *PA) markDone(j int) {
	if !m.done.Get(j) {
		m.done.Set(j)
		m.remain--
	}
}

// snapshot captures the done-set for a broadcast, reusing a pooled buffer
// when the engine has recycled one (RecyclePayload) and cloning otherwise.
func (m *PA) snapshot() DoneSet {
	if n := len(m.free); n > 0 {
		b := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		b.CopyFrom(m.done)
		return DoneSet{Bits: b}
	}
	return DoneSet{Bits: m.done.Clone()}
}

// RecyclePayload implements sim.PayloadRecycler: a done-set snapshot whose
// recipients have all consumed it returns to the buffer pool.
func (m *PA) RecyclePayload(p any) {
	if ds, ok := p.(DoneSet); ok && ds.Bits.Len() == m.done.Len() {
		m.free = append(m.free, ds.Bits)
	}
}

// KnowsAllDone implements sim.Machine.
func (m *PA) KnowsAllDone() bool { return m.remain == 0 }

// NextTask implements sim.TaskIntender.
func (m *PA) NextTask() int {
	if m.remain == 0 {
		return -1
	}
	cur, unit := m.cur, m.unit
	if cur < 0 || m.done.Get(cur) {
		cur = m.selector.next(m.done)
		unit = 0
	}
	if cur < 0 {
		return -1
	}
	return m.jobs.Start(cur) + unit
}

// CloneMachine implements sim.Cloner for the deterministic members of the
// family (PaDet, and PaRan1 after its permutation is fixed). It returns
// nil for PaRan2, whose on-line randomness cannot be replayed; callers
// must type-assert accordingly.
func (m *PA) CloneMachine() sim.Machine {
	sel := m.selector.clone()
	if sel == nil {
		return nil
	}
	c := *m
	c.selector = sel
	c.done = m.done.Clone()
	c.free = nil // pooled buffers stay with the original
	return &c
}

// Reset implements sim.Resetter: the machine returns to its initial state
// without allocating (the snapshot buffer pool is kept). PaRan1 and PaDet
// replay the exact same schedule; PaRan2's random stream continues, so a
// reset machine runs a fresh trial.
func (m *PA) Reset() {
	m.done.ClearAll()
	m.remain = m.jobs.N
	m.selector.reset()
	m.cur = -1
	m.unit = 0
	m.halted = false
}

// Halted reports whether the machine has voluntarily halted.
func (m *PA) Halted() bool { return m.halted }
