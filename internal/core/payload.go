package core

import (
	"doall/internal/bitset"
	"doall/internal/sim"
	"doall/internal/wire"
)

// Sizer is the wire-size-aware payload interface consumed by the
// simulation engine: the engine queries WireSize once per multicast for
// byte accounting (message *count* remains the paper's complexity
// measure) and shares the payload value, uncopied, with every recipient.
// It is an alias of sim.Payload so core payload types satisfy the engine
// contract by construction; implementations must be immutable once sent.
type Sizer = sim.Payload

// The multicast payloads are shared across recipients without copying,
// so they must satisfy the engine's payload contract.
var (
	_ sim.Payload = TreeSnapshot{}
	_ sim.Payload = DoneSet{}

	_ sim.PayloadSizer = (*DA)(nil)
	_ sim.PayloadSizer = (*PA)(nil)
)

// PayloadWireSize implements sim.PayloadSizer: the engine asks the
// sending machine to size its own payload so byte accounting needs no
// payload.(sim.Payload) assertion on the hot path — the concrete type
// check below compiles to a type-descriptor compare with no runtime
// itab-cache involvement (whose lazy random population would otherwise
// be a rare steady-state allocation).
func (m *DA) PayloadWireSize(payload any) int {
	if s, ok := payload.(TreeSnapshot); ok {
		return s.WireSize()
	}
	return 0
}

// PayloadWireSize implements sim.PayloadSizer; see DA.PayloadWireSize.
func (m *PA) PayloadWireSize(payload any) int {
	if s, ok := payload.(DoneSet); ok {
		return s.WireSize()
	}
	return 0
}

// TreeSnapshot is the DA multicast payload: a versioned snapshot of the
// sender's progress-tree bits. The payload *means* the sender's full tree
// at the snapshot's version; it is *represented* as an immutable epoch
// base plus a delta chain (bitset.Snapshot), so receivers merge only the
// words that changed since the version they last saw from the sender.
// Receivers must treat it as immutable (it is shared across the
// recipients of one multicast).
type TreeSnapshot struct {
	S *bitset.Snapshot
}

// WireSize implements Sizer: the sparse delta encoding for in-sequence
// snapshots, the full encoding for rebased ones.
func (s TreeSnapshot) WireSize() int {
	return snapshotWireSize(wire.KindTree, wire.KindTreeDelta, s.S)
}

// Encode serializes the snapshot with the wire format.
func (s TreeSnapshot) Encode() []byte {
	return snapshotEncode(wire.KindTree, wire.KindTreeDelta, s.S)
}

// DoneSet is the PA multicast payload: a versioned snapshot of the
// sender's known-done job set, represented like TreeSnapshot.
// Immutable once sent.
type DoneSet struct {
	S *bitset.Snapshot
}

// WireSize implements Sizer.
func (s DoneSet) WireSize() int {
	return snapshotWireSize(wire.KindDoneSet, wire.KindDoneSetDelta, s.S)
}

// Encode serializes the done-set with the wire format.
func (s DoneSet) Encode() []byte {
	return snapshotEncode(wire.KindDoneSet, wire.KindDoneSetDelta, s.S)
}

// snapshotWireSize returns the wire size of a versioned snapshot without
// allocating: the sparse delta message when the snapshot has a chain, the
// full (old-kind) snapshot when it is a fresh rebase — the on-wire form
// of the full-merge fallback.
func snapshotWireSize(full, delta wire.Kind, s *bitset.Snapshot) int {
	if words, ok := s.WireDelta(); ok {
		return wire.SizeDelta(delta, s.Len(), s.Ver(), s.BaseVer(), words)
	}
	if b := s.Base(); b != nil {
		return wire.Size(full, b)
	}
	return wire.SizeEmpty(full, s.Len())
}

// snapshotEncode is the allocation-tolerant sibling of snapshotWireSize.
func snapshotEncode(full, delta wire.Kind, s *bitset.Snapshot) []byte {
	if words, ok := s.WireDelta(); ok {
		return wire.EncodeDelta(delta, s.Len(), s.Ver(), s.BaseVer(), words)
	}
	if b := s.Base(); b != nil {
		return wire.Encode(full, b)
	}
	return wire.Encode(full, bitset.New(s.Len()))
}

// FullSnapshot is the decoded form of a full (non-delta) payload message.
type FullSnapshot struct {
	Kind wire.Kind
	Bits *bitset.Set
}

// DecodePayload parses an encoded payload back into its typed form: a
// FullSnapshot for the full kinds (including every pre-delta message —
// old kinds stay decodable), a wire.DeltaMessage for the delta kinds.
func DecodePayload(msg []byte) (any, error) {
	if len(msg) >= 2 && wire.DeltaKind(wire.Kind(msg[1])) {
		dm, err := wire.DecodeDelta(msg)
		if err != nil {
			return nil, err
		}
		return dm, nil
	}
	kind, bits, err := wire.Decode(msg)
	if err != nil {
		return nil, err
	}
	return FullSnapshot{Kind: kind, Bits: bits}, nil
}

// knowledgeCombined is the combined knowledge cache one consumer
// publishes in a sim.Batch (Batch.Combined): the union of the new words
// of every snapshot in the batch, accumulated once and merged by every
// later consumer with a single union instead of one merge per sender.
// idxs lists the touched word indices (repeats allowed) for the sparse
// consume path; dense marks accumulations that folded in a full epoch
// base, which must be consumed full-width. Published values are immutable
// until the engine hands them back to the builder for pooling.
type knowledgeCombined struct {
	n     int // bit capacity (shape key: consumers with another n ignore it)
	bits  *bitset.Set
	idxs  []int32
	dense bool
}

// combinedPool pools knowledgeCombined accumulators inside one machine.
type combinedPool struct {
	free []*knowledgeCombined
}

// get returns a cleared accumulator for n bits.
func (p *combinedPool) get(n int) *knowledgeCombined {
	for len(p.free) > 0 {
		kc := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if kc.n == n {
			return kc
		}
		// Wrong shape (machine reused across shapes): drop it.
	}
	return &knowledgeCombined{n: n, bits: bitset.New(n)}
}

// put clears and pools an accumulator: sparse accumulations zero only
// their touched words, dense ones the whole set.
func (p *combinedPool) put(kc *knowledgeCombined) {
	if kc.dense {
		kc.bits.ClearAll()
	} else {
		words := kc.bits.Words()
		for _, i := range kc.idxs {
			words[i] = 0
		}
	}
	kc.idxs = kc.idxs[:0]
	kc.dense = false
	p.free = append(p.free, kc)
}
