// Package bounds evaluates the closed-form complexity expressions of the
// paper so experiments can print measured work next to the theory curves:
// the delay-sensitive lower bound of Theorems 3.1/3.4, the DA(q) upper
// bound of Theorems 5.4/5.5, and the PA upper bound of Theorems 6.2/6.3.
// All functions return float64 "shape" values — the theorems hide
// constants, so only growth and crossovers are meaningful.
package bounds

import "math"

// LowerBound returns the Ω(t + p·min{d,t}·log_{d+1}(d+t)) lower bound of
// Theorems 3.1 and 3.4 (deterministic worst case and randomized
// expectation coincide).
func LowerBound(p, t, d int) float64 {
	if p < 1 || t < 1 || d < 1 {
		return 0
	}
	m := math.Min(float64(d), float64(t))
	logTerm := math.Log(float64(d+t)) / math.Log(float64(d+1))
	return float64(t) + float64(p)*m*logTerm
}

// DAUpperBound returns the O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) bound of Theorem
// 5.5 for a given ε.
func DAUpperBound(p, t, d int, eps float64) float64 {
	if p < 1 || t < 1 || d < 1 {
		return 0
	}
	m := math.Min(float64(t), float64(d))
	ceil := math.Ceil(float64(t) / float64(d))
	return float64(t)*math.Pow(float64(p), eps) + float64(p)*m*math.Pow(ceil, eps)
}

// EpsilonForQ returns the exponent ε of Theorem 5.5 for a DA(q)
// progress-tree branching factor q: the q-ary tree's contention argument
// yields ε = 1/log₂(2q), so the default binary tree (q = 2) gives the
// paper's headline ε = 1/2 and wider trees trade smaller work exponents
// for larger per-node constants. Non-positive or unset q (< 2) is
// treated as the default q = 2, matching scenario.WithDefaults.
func EpsilonForQ(q int) float64 {
	if q < 2 {
		q = 2
	}
	return 1 / math.Log2(2*float64(q))
}

// PAUpperBound returns the O(t·log p + p·min{t,d}·log(2+t/d)) bound of
// Theorems 6.2/6.3 (with the log n = log min{t,p} refinement folded into
// log p for p ≤ t).
func PAUpperBound(p, t, d int) float64 {
	if p < 1 || t < 1 || d < 1 {
		return 0
	}
	n := math.Min(float64(t), float64(p))
	m := math.Min(float64(t), float64(d))
	return float64(t)*math.Log(math.Max(2, n)) + float64(p)*m*math.Log(2+float64(t)/float64(d))
}

// PAMessageBound returns the O(t·p·log p + p²·min{t,d}·log(2+t/d))
// message-complexity bound of Theorems 6.2/6.3.
func PAMessageBound(p, t, d int) float64 {
	return float64(p) * PAUpperBound(p, t, d)
}

// ObliviousWork returns p·t, the work of the communication-oblivious
// algorithm (and the forced work for d = Ω(t), Proposition 2.2).
func ObliviousWork(p, t int) float64 { return float64(p) * float64(t) }

// Overhead returns measured/theory, the constant-factor overhead of a
// measured work value against a bound. Degenerate inputs clamp to 0
// rather than propagating: a NaN, zero, or negative bound and a negative
// measured value all yield 0, so downstream consumers (report columns,
// twin residual fits) can never be poisoned by an Inf/NaN ratio.
func Overhead(measured int64, bound float64) float64 {
	if measured < 0 || math.IsNaN(bound) || bound <= 0 {
		return 0
	}
	return float64(measured) / bound
}
