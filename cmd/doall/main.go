// Command doall runs one Do-All scenario — algorithm × adversary
// expression × (p, t, d) — in the deterministic simulator and prints the
// measured work, message, and time complexity next to the paper's bounds.
// It is a thin front-end over the public Scenario API: algorithms and
// adversaries resolve through the open registries, so -algo and
// -adversary accept anything registered, including composed adversary
// expressions.
//
// Usage:
//
//	doall -algo DA -p 16 -t 1024 -d 8 -q 2 -adversary fair
//	doall -algo PaRan1 -p 8 -t 256 -d 4 -trials 10
//	doall -algo PaRan2 -p 8 -t 256 -d 4 -adversary 'crashing(slow-set(fair),crash=0@5)'
//	doall -spec '{"algorithm":"DA","p":16,"t":1024,"d":8}'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"doall"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "doall:", err)
		os.Exit(1)
	}
}

// cliFlags holds the parsed command line; scenario() converts it to the
// declarative spec.
type cliFlags struct {
	algo     string
	p, t     int
	d        int64
	q        int
	adv      string
	seed     int64
	trials   int
	restarts int
	shards   string
	spec     string
	version  bool
}

// parseFlags parses args into cliFlags without touching the global flag
// set, so tests can drive it directly.
func parseFlags(args []string) (cliFlags, error) {
	var c cliFlags
	fs := flag.NewFlagSet("doall", flag.ContinueOnError)
	fs.StringVar(&c.algo, "algo", "DA", "algorithm: "+strings.Join(doall.RegisteredAlgorithms(), ", "))
	fs.IntVar(&c.p, "p", 8, "number of processors")
	fs.IntVar(&c.t, "t", 64, "number of tasks")
	fs.Int64Var(&c.d, "d", 1, "message delay bound d")
	fs.IntVar(&c.q, "q", 2, "progress-tree arity (DA only)")
	fs.StringVar(&c.adv, "adversary", "fair", "adversary expression over: "+strings.Join(doall.RegisteredAdversaries(), ", "))
	fs.Int64Var(&c.seed, "seed", 1, "random seed")
	fs.IntVar(&c.trials, "trials", 1, "trials to average over (varies the seed)")
	fs.IntVar(&c.restarts, "restarts", 32, "permutation-search restarts")
	fs.StringVar(&c.shards, "shards", "1", "intra-run parallel shards: a count, or 'auto' (results are identical at any value)")
	fs.StringVar(&c.spec, "spec", "", "JSON Scenario document (overrides the individual flags)")
	fs.BoolVar(&c.version, "version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return cliFlags{}, err
	}
	return c, nil
}

// scenario builds the declarative spec from the flags: either the -spec
// JSON document verbatim, or the individual flags assembled.
func (c cliFlags) scenario() (doall.Scenario, error) {
	if c.spec != "" {
		return doall.ParseScenario([]byte(c.spec))
	}
	shards, err := parseShards(c.shards)
	if err != nil {
		return doall.Scenario{}, err
	}
	return doall.Scenario{
		Algorithm:      c.algo,
		Adversary:      c.adv,
		P:              c.p,
		T:              c.t,
		Q:              c.q,
		D:              c.d,
		Seed:           c.seed,
		Trials:         c.trials,
		SearchRestarts: c.restarts,
		Shards:         shards,
	}, nil
}

// parseShards turns a -shards value — a shard count or the word "auto" —
// into the Scenario.Shards encoding (auto = doall.ShardsAuto).
func parseShards(s string) (int, error) {
	if s == "" || s == "auto" {
		if s == "auto" {
			return doall.ShardsAuto, nil
		}
		return 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-shards wants a count ≥ 1 or 'auto', got %q", s)
	}
	return n, nil
}

func run(args []string, w io.Writer) error {
	c, err := parseFlags(args)
	if err != nil {
		return err
	}
	if c.version {
		fmt.Fprintln(w, "doall", doall.Version())
		return nil
	}
	sc, err := c.scenario()
	if err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	sc = sc.WithDefaults()

	if sc.Trials <= 1 {
		res, err := doall.RunScenario(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "algorithm   %s  (p=%d t=%d d=%d adversary=%s)\n", sc.Algorithm, sc.P, sc.T, sc.D, sc.Adversary)
		if res.Runtime != nil {
			// A -spec document may select the goroutine runtime, which has
			// no exact simulator Result to print.
			rt := res.Runtime
			fmt.Fprintf(w, "backend     runtime (wall-clock observations, not worst cases)\n")
			fmt.Fprintf(w, "steps       %d\n", rt.Steps)
			fmt.Fprintf(w, "messages    %d\n", rt.Messages)
			fmt.Fprintf(w, "executions  %d\n", rt.TaskExecutions)
			fmt.Fprintf(w, "elapsed     %s\n", rt.Elapsed)
			printBounds(w, sc.P, sc.T, int(sc.D), float64(rt.Steps))
			return nil
		}
		r := res.Sim
		fmt.Fprintf(w, "work        %d\n", r.Work)
		fmt.Fprintf(w, "messages    %d\n", r.Messages)
		fmt.Fprintf(w, "time        %d\n", r.SolvedAt)
		fmt.Fprintf(w, "executions  %d (primary %d, secondary %d)\n",
			r.TaskExecutions, r.PrimaryExecutions, r.SecondaryExecutions)
		printBounds(w, sc.P, sc.T, int(sc.D), float64(r.Work))
		return nil
	}

	avg, err := doall.RunScenarioAvg(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "algorithm   %s  (p=%d t=%d d=%d adversary=%s, %d trials)\n",
		sc.Algorithm, sc.P, sc.T, sc.D, sc.Adversary, sc.Trials)
	fmt.Fprintf(w, "E[work]     %.1f\n", avg.Work)
	fmt.Fprintf(w, "E[messages] %.1f\n", avg.Messages)
	fmt.Fprintf(w, "E[time]     %.1f\n", avg.Time)
	printBounds(w, sc.P, sc.T, int(sc.D), avg.Work)
	return nil
}

func printBounds(w io.Writer, p, t, d int, work float64) {
	fmt.Fprintf(w, "---- theory (constants suppressed) ----\n")
	fmt.Fprintf(w, "lower bound Ω   %.0f\n", doall.LowerBound(p, t, d))
	fmt.Fprintf(w, "DA bound (ε=.5) %.0f\n", doall.DAUpperBound(p, t, d, 0.5))
	fmt.Fprintf(w, "PA bound        %.0f\n", doall.PAUpperBound(p, t, d))
	fmt.Fprintf(w, "oblivious p·t   %.0f\n", doall.ObliviousWork(p, t))
	fmt.Fprintf(w, "work/oblivious  %.3f\n", work/doall.ObliviousWork(p, t))
}
