package sim_test

import (
	"reflect"
	"testing"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/sim"
)

// countingObserver tallies every hook so the counts can be reconciled
// against the engine's own accounting.
type countingObserver struct {
	steps      int64
	sent       int64 // sum of recipients over OnMulticast
	multicasts int64
	delivered  int64
	crashes    int64
	revives    int64
	omits      int64
	solvedAt   int64
	solvedHits int
}

func (c *countingObserver) OnStep(pid int, now int64, r *sim.StepResult) { c.steps++ }
func (c *countingObserver) OnMulticast(from int, now int64, payload any, recipients int) {
	c.multicasts++
	c.sent += int64(recipients)
}
func (c *countingObserver) OnDeliver(m sim.Message) { c.delivered++ }
func (c *countingObserver) OnCrash(pid int, now int64) {
	c.crashes++
}
func (c *countingObserver) OnRevive(pid int, now int64) {
	c.revives++
}
func (c *countingObserver) OnOmit(from, to int, sentAt int64) {
	c.omits++
}
func (c *countingObserver) OnSolved(now int64, res *sim.Result) {
	c.solvedHits++
	c.solvedAt = now
}

func TestObserverCountsMatchResult(t *testing.T) {
	const p, tasks = 6, 48
	obs := &countingObserver{}
	ms := core.NewPaRan1(p, tasks, 11)
	adv := adversary.NewCrashing(adversary.NewFair(3), []adversary.CrashEvent{
		{Pid: 0, At: 2}, {Pid: 1, At: 4},
	})
	res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: obs}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if obs.steps != res.TotalSteps {
		t.Errorf("OnStep fired %d times, TotalSteps = %d", obs.steps, res.TotalSteps)
	}
	if obs.sent != res.TotalMessages {
		t.Errorf("OnMulticast recipients sum %d, TotalMessages = %d", obs.sent, res.TotalMessages)
	}
	// Deliveries to crashed/halted processors are dropped, so delivered ≤ sent.
	if obs.delivered > obs.sent {
		t.Errorf("delivered %d > sent %d", obs.delivered, obs.sent)
	}
	if obs.delivered == 0 {
		t.Error("no deliveries observed")
	}
	if obs.crashes != 2 {
		t.Errorf("OnCrash fired %d times, want 2", obs.crashes)
	}
	if obs.solvedHits != 1 || obs.solvedAt != res.SolvedAt {
		t.Errorf("OnSolved fired %d times at %d, want once at %d", obs.solvedHits, obs.solvedAt, res.SolvedAt)
	}
}

// TestObserverDoesNotPerturbResults asserts the hooks are pure taps: the
// same execution with a nil observer, a counting observer, and a stacked
// MultiObserver produces byte-identical Results.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	const p, tasks = 5, 32
	run := func(obs sim.Observer) *sim.Result {
		t.Helper()
		ms := core.NewPaRan2(p, tasks, 9)
		res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: obs}, ms, adversary.NewRandom(4, 0.7, 21))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	counted := run(&countingObserver{})
	stacked := run(sim.MultiObserver{nil, &countingObserver{}, &sim.FuncObserver{}})
	if !reflect.DeepEqual(bare, counted) {
		t.Fatalf("counting observer perturbed the Result:\nbare:     %+v\nobserved: %+v", bare, counted)
	}
	if !reflect.DeepEqual(bare, stacked) {
		t.Fatalf("MultiObserver perturbed the Result:\nbare:    %+v\nstacked: %+v", bare, stacked)
	}
}

func TestFuncObserverNilFieldsSafe(t *testing.T) {
	ms := core.NewAllToAll(2, 4)
	// Only one hook wired; the rest must be safely skipped.
	var solved bool
	obs := &sim.FuncObserver{Solved: func(now int64, res *sim.Result) { solved = true }}
	if _, err := sim.Run(sim.Config{P: 2, T: 4, Observer: obs}, ms, adversary.NewFair(1)); err != nil {
		t.Fatal(err)
	}
	if !solved {
		t.Fatal("Solved hook never fired")
	}
}
