package sim

import (
	"reflect"
	"testing"
)

// pingMachine 0 broadcasts once at t=0 and then idles; every other
// pingMachine performs task 0 the first time it sees the ping and records
// when the delivery arrived and when it was consumed.
type pingMachine struct {
	pid        int
	gotAt      int64 // DeliverAt of the ping, -1 until seen
	consumedAt int64 // step time that consumed it, -1 until then
	done       bool
}

func (m *pingMachine) Step(now int64, inbox []Delivery) StepResult {
	for _, d := range inbox {
		if d.Payload() == "ping" {
			m.gotAt = d.DeliverAt()
			m.consumedAt = now
			m.done = true
		}
	}
	if m.pid == 0 {
		if now == 0 {
			m.done = true
			return StepResult{Broadcast: "ping"}
		}
		return StepResult{Halt: m.done}
	}
	if m.done {
		r := PerformStep(0)
		r.Halt = true
		return r
	}
	return StepResult{}
}

func (m *pingMachine) KnowsAllDone() bool { return m.done }

// wakeAdv activates everyone at t=0, then promises idleness until wake,
// then activates everyone again. Its delay is fixed, so the broadcast's
// delivery instant and the wake-up instant can be arranged on either side
// of each other — or on the same instant.
type wakeAdv struct {
	d, fix, wake int64
}

func (a *wakeAdv) D() int64 { return a.d }
func (a *wakeAdv) Schedule(v *View, dec *Decision) {
	if v.Now > 0 && v.Now < a.wake {
		dec.NextWake = a.wake
		return
	}
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}
func (a *wakeAdv) Delay(from, to int, sentAt int64) int64 { return a.fix }

// TestNextWakeVsDeliveryInstant pins the interaction between the
// Decision.NextWake fast-forward and wheel.nextDue at the fast-forward
// target: the wake-up landing before, exactly on, or after the delivery
// instant must all reproduce the legacy engine's unit-by-unit execution
// exactly. The same-instant case is the delicate one — the jump must not
// skip the delivery that becomes due on the very unit the adversary wakes
// (deliveries precede scheduling within a tick), and symmetric ordering
// (delivery due before the wake) must cut the jump short so the message
// enters the inbox at its exact delivery time.
func TestNextWakeVsDeliveryInstant(t *testing.T) {
	const p = 3
	cases := []struct {
		name      string
		fix, wake int64
	}{
		{"wake-before-delivery", 9, 5},    // wake at 5, delivery due 9
		{"same-instant", 7, 7},            // both land on unit 7
		{"delivery-before-wake", 4, 11},   // delivery due 4, wake at 11
		{"wake-one-after-delivery", 6, 7}, // adjacent instants, both orders
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func() ([]Machine, *wakeAdv) {
				ms := make([]Machine, p)
				for i := range ms {
					ms[i] = &pingMachine{pid: i, gotAt: -1, consumedAt: -1}
				}
				return ms, &wakeAdv{d: 16, fix: tc.fix, wake: tc.wake}
			}

			msN, advN := build()
			fresh, errN := Run(Config{P: p, T: 1}, msN, advN)
			msL, advL := build()
			legacy, errL := RunLegacy(Config{P: p, T: 1}, msL, advL)
			if (errN == nil) != (errL == nil) {
				t.Fatalf("error mismatch: new=%v legacy=%v", errN, errL)
			}
			if !reflect.DeepEqual(fresh, legacy) {
				t.Fatalf("Result diverged:\nnew:    %+v\nlegacy: %+v", fresh, legacy)
			}

			// The delivery must land exactly at its due instant and be
			// consumed at the first activation on or after it.
			wantGot := tc.fix // broadcast sent at 0, delay fix
			wantConsumed := wantGot
			if tc.wake > wantConsumed {
				wantConsumed = tc.wake
			}
			for i := 1; i < p; i++ {
				m := msN[i].(*pingMachine)
				if m.gotAt != wantGot {
					t.Errorf("machine %d: ping delivered at %d, want %d", i, m.gotAt, wantGot)
				}
				if m.consumedAt != wantConsumed {
					t.Errorf("machine %d: ping consumed at %d, want %d", i, m.consumedAt, wantConsumed)
				}
			}
			if !fresh.Solved || fresh.SolvedAt != wantConsumed {
				t.Errorf("SolvedAt = %d (solved=%v), want %d", fresh.SolvedAt, fresh.Solved, wantConsumed)
			}
		})
	}
}

// TestEngineReuseAcrossRuns pins the reusable-trial contract: one Engine
// re-running fresh machine sets — same shape, different shapes, back and
// forth — produces exactly the Results of fresh package-level Runs.
func TestEngineReuseAcrossRuns(t *testing.T) {
	shapes := []struct {
		p, t int
		d    int64
	}{
		{4, 16, 2}, {4, 16, 2}, {7, 31, 5}, {2, 8, 1}, {4, 16, 2},
	}
	eng := NewEngine()
	for i, sh := range shapes {
		mkMachines := func() []Machine {
			ms := make([]Machine, sh.p)
			for j := range ms {
				ms[j] = newSeqMachineAt(sh.t, j*sh.t/sh.p)
			}
			return ms
		}
		want, errW := Run(Config{P: sh.p, T: sh.t}, mkMachines(), &fixedAdv{d: sh.d, fix: sh.d})
		got, errG := eng.Run(Config{P: sh.p, T: sh.t}, mkMachines(), &fixedAdv{d: sh.d, fix: sh.d})
		if (errW == nil) != (errG == nil) {
			t.Fatalf("run %d: error mismatch: %v vs %v", i, errW, errG)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("run %d (p=%d t=%d d=%d): reused engine diverged:\nfresh:  %+v\nreused: %+v",
				i, sh.p, sh.t, sh.d, want, got)
		}
	}
}

// TestEngineReuseAfterStepCap ensures a run that ends at the step cap
// (messages still in flight, machines mid-execution) leaves the engine
// reusable: the next run must be unaffected.
func TestEngineReuseAfterStepCap(t *testing.T) {
	eng := NewEngine()
	capped := []Machine{&idleMachine{}, &idleMachine{}}
	if _, err := eng.Run(Config{P: 2, T: 1, MaxSteps: 20}, capped, &fixedAdv{d: 3, fix: 3}); err == nil {
		t.Fatal("idle machines unexpectedly solved")
	}
	ms := []Machine{newSeqMachine(6), newSeqMachine(6)}
	want, err := Run(Config{P: 2, T: 6}, []Machine{newSeqMachine(6), newSeqMachine(6)}, &fixedAdv{d: 3, fix: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(Config{P: 2, T: 6}, ms, &fixedAdv{d: 3, fix: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-cap reuse diverged:\nfresh:  %+v\nreused: %+v", want, got)
	}
}
