// Package core implements the Do-All algorithms of Kowalski & Shvartsman:
// the oblivious baselines AllToAll and ObliDo (Fig. 2), the deterministic
// progress-tree family DA(q) (Section 5, Fig. 3), and the permutation
// family PA — PaRan1, PaRan2, PaDet (Section 6, Fig. 4).
//
// Every algorithm is expressed as a set of sim.Machine step machines, one
// per processor, so the same implementation runs under the deterministic
// simulator (internal/sim) and the goroutine runtime (internal/runtime).
//
// # Tasks and jobs
//
// The problem instance is t similar, idempotent unit tasks with ids
// 0…t-1. Following Sections 5.1.3 and 6, when t exceeds p the tasks are
// grouped into at most p contiguous jobs of at most ⌈t/p⌉ tasks, and the
// algorithms schedule jobs; performing a job means performing its tasks
// one per local step.
package core

// Jobs describes a partition of t tasks into n contiguous jobs, job j
// covering tasks [Start(j), End(j)). When t ≤ p each job is a single task.
type Jobs struct {
	T int // number of tasks
	N int // number of jobs
	g int // max job size ⌈t/n⌉
}

// NewJobs partitions t tasks for p processors per the paper: n = min(p, t)
// jobs of at most ⌈t/n⌉ tasks each.
func NewJobs(p, t int) Jobs {
	if p < 1 || t < 1 {
		panic("core: need p ≥ 1 and t ≥ 1")
	}
	n := p
	if t < p {
		n = t
	}
	g := (t + n - 1) / n
	// With g = ⌈t/n⌉ some trailing jobs may be empty when t is far from a
	// multiple of n; shrink n to the number of non-empty jobs.
	n = (t + g - 1) / g
	return Jobs{T: t, N: n, g: g}
}

// Size returns the number of tasks in job j.
func (j Jobs) Size(job int) int {
	s := j.Start(job)
	e := j.End(job)
	return e - s
}

// Start returns the first task id of job `job`.
func (j Jobs) Start(job int) int { return job * j.g }

// End returns one past the last task id of job `job`.
func (j Jobs) End(job int) int {
	e := (job + 1) * j.g
	if e > j.T {
		e = j.T
	}
	return e
}

// MaxSize returns ⌈t/n⌉, the maximum job size.
func (j Jobs) MaxSize() int { return j.g }

// JobOf returns the job containing task z.
func (j Jobs) JobOf(z int) int { return z / j.g }
