package doall

import (
	"context"

	"doall/internal/bounds"
	"doall/internal/harness"
	"doall/internal/scenario"
	"doall/internal/sim"
)

// The declarative Scenario API. A Scenario is a JSON-serializable spec —
// algorithm name, adversary expression, problem shape, seed, backend —
// resolved through open registries, so the full algorithm × adversary ×
// (p, t, d) space of the paper is addressable as data:
//
//	sc := doall.Scenario{Algorithm: "DA", Adversary: "crashing(slow-set(fair))", P: 16, T: 1024, D: 8}
//	res, err := doall.RunScenario(sc)
//
// Registries are open: RegisterAlgorithm and RegisterAdversary extend the
// space without touching this module. See internal/scenario for the
// adversary expression grammar (combinators, key=value parameters).
type (
	// Scenario declares one algorithm × adversary × (p, t, d) experiment.
	Scenario = scenario.Scenario
	// ScenarioResult is the outcome of running a Scenario; exactly one of
	// Sim or Runtime is non-nil, matching the backend.
	ScenarioResult = scenario.Result
	// ScenarioOptions carries non-serializable per-run knobs: observers
	// and the runtime backend's task bodies and pacing.
	ScenarioOptions = scenario.Options
	// ScenarioAvg holds trial-averaged complexity measures.
	ScenarioAvg = scenario.Avg
	// AlgorithmBuilder constructs machines for a scenario (registry entry).
	AlgorithmBuilder = scenario.AlgorithmBuilder
	// AdversaryBuilder constructs one adversary-expression node (registry
	// entry).
	AdversaryBuilder = scenario.AdversaryBuilder
	// AdversaryContext is what an AdversaryBuilder receives: parameters
	// and already-built inner adversaries.
	AdversaryContext = scenario.AdversaryContext
)

// Backends a Scenario can run on.
const (
	// BackendSim is the deterministic multicast-native simulator (default).
	BackendSim = scenario.BackendSim
	// BackendSimLegacy is the per-message reference engine.
	BackendSimLegacy = scenario.BackendSimLegacy
	// BackendRuntime executes machines on real goroutines.
	BackendRuntime = scenario.BackendRuntime
)

// ShardsAuto, assigned to Scenario.Shards or SweepSpec.Shards, resolves
// the intra-run shard count at run time from GOMAXPROCS and the run's
// processor count (see ResolveShards). Results are identical at every
// shard count; only wall-clock time changes.
const ShardsAuto = scenario.ShardsAuto

// ResolveShards translates a requested shard policy (0/1 sequential,
// ShardsAuto, or an explicit count) into the literal shard count a run
// of width p executes with.
func ResolveShards(requested, p int) int { return scenario.ResolveShards(requested, p) }

// RunScenario executes the scenario once on its backend.
func RunScenario(sc Scenario) (*ScenarioResult, error) { return scenario.Run(sc) }

// RunScenarioWith executes the scenario once with options (observer, task
// bodies, runtime pacing).
func RunScenarioWith(sc Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.RunWith(sc, opts)
}

// RunScenarioAvg runs the scenario sc.Trials times with seeds Seed,
// Seed+1, … and averages work, messages, and completion time (simulator
// backends only).
func RunScenarioAvg(sc Scenario) (ScenarioAvg, error) { return scenario.RunAvg(sc) }

// ParseScenario decodes a JSON scenario document, rejecting unknown
// fields.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// RegisterAlgorithm adds (or replaces) a named algorithm builder in the
// open registry, making it addressable from Scenario.Algorithm.
func RegisterAlgorithm(name string, b AlgorithmBuilder) { scenario.RegisterAlgorithm(name, b) }

// RegisterAdversary adds (or replaces) a named adversary builder, making
// it addressable from Scenario.Adversary expressions (including as a
// combinator over inner adversaries).
func RegisterAdversary(name string, b AdversaryBuilder) { scenario.RegisterAdversary(name, b) }

// RegisteredAlgorithms returns the registered algorithm names, sorted.
func RegisteredAlgorithms() []string { return scenario.Algorithms() }

// RegisteredAdversaries returns the registered adversary names, sorted.
func RegisteredAdversaries() []string { return scenario.Adversaries() }

// Observer hooks. Set SimConfig.Observer (or ScenarioOptions.Observer) to
// tap every engine event — steps, multicasts, deliveries, crashes, and
// the solving instant — without touching the hot path: a nil observer
// costs one branch per event.
type (
	// Observer is the engine hook set (OnStep/OnMulticast/OnDeliver/
	// OnCrash/OnRevive/OnOmit/OnSolved).
	Observer = sim.Observer
	// FuncObserver adapts optional funcs to Observer; nil fields are
	// skipped.
	FuncObserver = sim.FuncObserver
	// NopObserver is an embeddable all-no-op Observer.
	NopObserver = sim.NopObserver
	// MultiObserver fans events out to several observers.
	MultiObserver = sim.MultiObserver
)

// Sweeps: measure whole (algorithm, adversary, p, t, d) grids, sharded
// across workers with deterministic per-cell seeds. cmd/experiments
// -sweep is the CLI front-end; BENCH_*.json files follow SweepReport's
// schema.
type (
	// SweepConfig declares the grid.
	SweepConfig = harness.SweepConfig
	// SweepCell is one measured grid point.
	SweepCell = harness.Cell
	// SweepReport is the JSON envelope of a sweep.
	SweepReport = harness.SweepReport
)

// RunSweep measures every cell of the grid; results are deterministic for
// any worker count.
func RunSweep(c SweepConfig) []SweepCell { return harness.RunSweep(c) }

// NewSweepReport runs the sweep and wraps it for serialization.
func NewSweepReport(c SweepConfig) SweepReport { return harness.NewSweepReport(c) }

// RunSweepContext is RunSweep with cancellation: when ctx is canceled
// (deadline, SIGINT), in-flight cells stop at their next trial boundary,
// unrun cells are stamped with the context error, and the context's
// error is returned alongside the partial grid.
func RunSweepContext(ctx context.Context, c SweepConfig) ([]SweepCell, error) {
	return scenario.RunSweepContext(ctx, c)
}

// NewSweepReportContext is NewSweepReport with cancellation; a canceled
// sweep yields a report with Partial set and the context error returned.
func NewSweepReportContext(ctx context.Context, c SweepConfig) (SweepReport, error) {
	return scenario.NewSweepReportContext(ctx, c)
}

// SweepSpec is the JSON-serializable mirror of SweepConfig — what sweep
// config files and doalld sweep jobs are written in.
type SweepSpec = scenario.SweepSpec

// ParseSweepSpec decodes a JSON sweep spec, rejecting unknown fields.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return scenario.ParseSweepSpec(data) }

// EstimateSweepMemory returns a rough upper estimate, in bytes, of the
// steady-state heap the sweep needs: the per-worker estimate of the
// grid's largest (p, t, d) shape times the concurrent worker count.
// cmd/experiments -maxmem compares it against a budget and fails fast
// instead of OOMing mid-sweep; the estimate deliberately over-
// approximates pools and in-flight snapshot chains.
func EstimateSweepMemory(c SweepConfig) int64 { return scenario.EstimateSweepBytes(c) }

// TheoryBounds exposes the paper's closed-form complexity curves at one
// shape: the Ω(t + p·min{d,t}·log_{d+1}(d+t)) lower bound of Theorems
// 3.1/3.4, the DA(q) upper bound of Theorem 5.5 at ε, and the PA upper
// bound of Theorems 6.2/6.3 — the same values SweepConfig.Theory adds to
// sweep cells.
func TheoryBounds(p, t, d int, eps float64) (lower, daUpper, paUpper float64) {
	return bounds.LowerBound(p, t, d), bounds.DAUpperBound(p, t, d, eps), bounds.PAUpperBound(p, t, d)
}

// Experiment tables: the paper's evaluation (E1–E10) as formatted tables.
type (
	// ExperimentTable is one experiment's result table.
	ExperimentTable = harness.Table
	// ExperimentScale selects experiment sizes.
	ExperimentScale = harness.Scale
)

// Experiment scales.
const (
	// QuickScale keeps each experiment under ~1s.
	QuickScale = harness.Quick
	// FullScale uses the sizes behind EXPERIMENTS.md.
	FullScale = harness.Full
)

// AllExperiments runs every experiment at the given scale, in index order.
func AllExperiments(sc ExperimentScale) ([]*ExperimentTable, error) {
	return harness.AllExperiments(sc)
}
