// Command experiments regenerates every experiment in DESIGN.md's index
// (E1–E10) and prints the result tables, optionally as Markdown for
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # quick scale, plain text
//	experiments -scale full      # the sizes used in EXPERIMENTS.md
//	experiments -markdown        # Markdown output
//	experiments -only E5,E6      # subset
//
// It is also the front-end of the sharded sweep runner, which fans a
// (p, t, d, algorithm) grid across GOMAXPROCS workers with deterministic
// per-cell seeds and emits a JSON perf report (the BENCH_*.json schema):
//
//	experiments -sweep                              # default grid to stdout
//	experiments -sweep -out BENCH_0.json            # write the baseline file
//	experiments -sweep -algos PaRan1,DA -p 64,256 -t 1024 -d 1,8,64 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"doall/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.String("scale", "quick", "experiment scale: quick or full")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default all)")

		sweep   = flag.Bool("sweep", false, "run the sharded (p,t,d,algo) sweep instead of E1–E10")
		out     = flag.String("out", "", "sweep: write the JSON report to this file (default stdout)")
		algos   = flag.String("algos", "AllToAll,DA,PaRan1,PaDet", "sweep: comma-separated algorithms")
		ps      = flag.String("p", "16,64,256", "sweep: comma-separated processor counts")
		ts      = flag.String("t", "256,1024", "sweep: comma-separated task counts")
		ds      = flag.String("d", "1,8,64", "sweep: comma-separated delay bounds")
		adv     = flag.String("adv", string(harness.AdvFair), "sweep: adversary (fair, random, ...)")
		trials  = flag.Int("trials", 1, "sweep: runs per cell (averaged)")
		workers = flag.Int("workers", 0, "sweep: worker goroutines (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 0, "sweep: base seed for per-cell seed derivation")
	)
	flag.Parse()

	if *sweep {
		return runSweep(*algos, *ps, *ts, *ds, *adv, *trials, *workers, *seed, *out)
	}

	sc := harness.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = harness.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	tables, err := harness.AllExperiments(sc)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		if len(want) > 0 && !want[tb.ID] {
			continue
		}
		if *markdown {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}
	return nil
}

func runSweep(algos, ps, ts, ds, adv string, trials, workers int, seed int64, out string) error {
	cfg := harness.SweepConfig{
		Adversary: harness.Adv(adv),
		BaseSeed:  seed,
		Trials:    trials,
		Workers:   workers,
	}
	for _, a := range splitList(algos) {
		cfg.Algos = append(cfg.Algos, harness.Algo(a))
	}
	var err error
	if cfg.Ps, err = parseInts(ps); err != nil {
		return fmt.Errorf("-p: %w", err)
	}
	if cfg.Ts, err = parseInts(ts); err != nil {
		return fmt.Errorf("-t: %w", err)
	}
	dvals, err := parseInts(ds)
	if err != nil {
		return fmt.Errorf("-d: %w", err)
	}
	for _, d := range dvals {
		cfg.Ds = append(cfg.Ds, int64(d))
	}
	// Reject unknown algorithms/adversaries before burning sweep time.
	if _, err := harness.BuildAdversary(harness.Spec{Adversary: cfg.Adversary}); err != nil {
		return err
	}
	for _, a := range cfg.Algos {
		if _, err := harness.BuildMachines(harness.Spec{Algo: a, P: 2, T: 2, D: 1, Seed: 1}); err != nil {
			return err
		}
	}

	rep := harness.NewSweepReport(cfg)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}

func splitList(s string) []string {
	var items []string
	for _, it := range strings.Split(s, ",") {
		if it = strings.TrimSpace(it); it != "" {
			items = append(items, it)
		}
	}
	return items
}

func parseInts(s string) ([]int, error) {
	var vals []int
	for _, it := range splitList(s) {
		v, err := strconv.Atoi(it)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}
