// Adversarial: watch the lower-bound constructions of Theorems 3.1 and
// 3.4 squeeze work out of the algorithms, and compare the forced work
// with the Ω(t + p·min{d,t}·log_{d+1}(d+t)) formula. Both adversaries are
// ordinary registry names, so the whole experiment is declarative
// Scenario specs.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"doall"
)

func main() {
	const (
		p = 8
		t = 512
	)

	fmt.Printf("forcing work with the lower-bound adversaries (p=%d, t=%d)\n\n", p, t)
	fmt.Printf("%6s  %12s  %14s  %12s\n", "d", "DA+Thm3.1", "PaRan2+Thm3.4", "Ω-bound")

	for _, d := range []int64{1, 4, 16, 64} {
		// Deterministic DA against the off-line clone-ahead adversary.
		da, err := doall.RunScenario(doall.Scenario{
			Algorithm: "DA", Adversary: "stage-det", P: p, T: t, D: d, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Randomized PaRan2 against the adaptive intent-observing one.
		pa, err := doall.RunScenario(doall.Scenario{
			Algorithm: "PaRan2", Adversary: "stage-online", P: p, T: t, D: d, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}

		lb := doall.LowerBound(p, t, int(d))
		fmt.Printf("%6d  %12d  %14d  %12.0f\n", d, da.Sim.Work, pa.Sim.Work, lb)
	}

	fmt.Println("\nBoth algorithms keep solving Do-All — the adversary can stretch")
	fmt.Println("the computation but never block it (at least one processor runs).")
}
