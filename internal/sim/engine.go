package sim

import (
	"fmt"
	"reflect"
	"sync"

	"doall/internal/bitset"
)

// Run executes machines under the adversary and returns the measured
// complexities. It is deterministic given deterministic machines and
// adversary, and produces Results identical to RunLegacy's for every
// algorithm × adversary pair (asserted by the equivalence tests).
//
// Run builds a fresh Engine per call, so the returned Result is the
// caller's to keep. Trial loops that run many simulations of the same
// shape should hold one Engine and call its Run method instead: the
// engine's wheel buckets, inboxes, result arrays, and multicast pool then
// carry over from trial to trial and steady-state runs allocate nothing.
func Run(cfg Config, machines []Machine, adv Adversary) (*Result, error) {
	return NewEngine().Run(cfg, machines, adv)
}

// Engine is a reusable multicast-native simulation engine: one broadcast
// is one pooled Multicast record plus one timing-wheel event (uniform
// delays) or p-1 lightweight events (non-uniform), never p-1 heap-queued
// message copies. Inbox slices, the adversary View and Decision, the
// delay scratch, and the Result arrays are all engine-owned and reused
// across ticks and across runs; idle stretches announced via
// Decision.NextWake are fast-forwarded instead of ticked through.
//
// When the adversary declares itself InboxAgnostic (and no observer is
// attached), the engine runs its grouped delivery path: all uniform
// multicasts due at one time unit form a single shared Batch consumed by
// reference by every live processor, so a broadcast's delivery fan-out
// costs O(1) instead of p-1 inbox appends, and BatchConsumer machines
// share one combined-knowledge merge per batch instead of paying one
// merge per sender per recipient. Results are byte-identical to the
// eager path's (asserted by the equivalence tests).
//
// An Engine is not safe for concurrent use; sweeps hold one per worker.
type Engine struct {
	cfg      Config
	machines []Machine
	adv      Adversary
	obs      Observer         // cfg.Observer; nil = zero-cost no hooks
	batched  MulticastDelayer // adv, when it supports batched delays
	uniform  UniformDelayer   // adv, when its delays are recipient-independent
	omitter  Omitter          // adv, when it may omit deliveries
	// advSrc is the adversary the cached facets above (and inboxAg below)
	// were derived from, so repeat runs with the same adversary skip the
	// interface assertions entirely. This is a zero-allocation contract,
	// not just a shortcut: the runtime populates each assertion site's
	// itab cache lazily and randomly (~1/1024 of misses allocate a new
	// cache), so asserting adv.(Omitter) once per run keeps a small
	// per-run chance of one stray steady-state allocation alive for
	// ~1000 runs. Only comparable adversaries are recorded (advSrc stays
	// nil otherwise), which keeps the == test panic-free.
	advSrc    Adversary
	inboxAg   InboxAgnostic // adv, when it can declare inbox-agnosticism
	inboxAgOK bool
	d         int64 // adv.D(), cached
	wheel     *wheel
	inbox     [][]Delivery
	crashed   []bool
	halted    []bool
	stopped   int // processors crashed or halted
	tasks     *TaskLedger
	inflight  int // undelivered point-to-point messages
	res       Result
	view      View     // reused across ticks; only Now/InFlight change
	dec       Decision // reused across ticks; adversaries append into it
	delays    []int64  // scratch for per-recipient delays, length P
	// recyclers[i] is machines[i]'s PayloadRecycler, nil when unsupported.
	recyclers []PayloadRecycler
	// sizers[i] is machines[i]'s PayloadSizer, nil when unsupported.
	sizers []PayloadSizer
	// facetSrc[i] is the machine whose optional facets are cached in
	// recyclers/batchers/cbuilders[i]; an engine-owned copy (not an alias
	// of the caller's slice) so in-place element swaps are detected. Same
	// zero-allocation rationale as advSrc; non-comparable machines are
	// never recorded.
	facetSrc []Machine
	// freeMC pools Multicast records across broadcasts and runs; a record
	// returns here once its last outstanding delivery is consumed.
	freeMC   []*Multicast
	allBut   []*bitset.Set // lazily built all-but-sender recipient sets
	idle     bool
	nextWake int64

	// Grouped delivery path state. ringBuf[ringHead:] holds the live
	// batches, oldest first; the batch at ringBuf[ringHead] has sequence
	// number ringSeq0 and batchSeq is the next sequence to assign.
	// cursor[i] is the sequence of the first batch processor i has not
	// consumed; batchers[i] caches machines[i]'s BatchConsumer.
	grouped   bool
	ringBuf   []*Batch
	ringHead  int
	ringSeq0  int64
	batchSeq  int64
	cursor    []int64
	batchers  []BatchConsumer
	cbuilders []CombinedBuilder // machines[i]'s CombinedBuilder, nil when unsupported
	freeBatch []*Batch
	scratch   []Delivery // materialized inbox for non-BatchConsumer machines

	// Parallel tick engine state (Config.Shards > 1); see parallel.go.
	// shards is the resolved per-run shard count (1 = sequential). The
	// shard blocks hold per-shard scratch and the parked worker goroutines'
	// wake channels; stepList/parRes/isA1 are the per-tick schedule, the
	// captured step results, and the serially-pre-stepped (phase A1)
	// positions.
	shards   int
	shard    []shardBlock
	stepList []int32
	parRes   []StepResult
	isA1     []bool
	parDone  sync.WaitGroup
	parNow   int64
	parN     int
	parNsh   int
	launched int // worker goroutines running (shards 1..launched)

	// Staged phase-B state (see parallel.go). builds is the per-tick
	// cache-construction plan (the prefix-minima builders and their batch
	// ranges); parStaged marks ticks whose phase B runs as per-shard
	// pre-reduced accounting plus a lean serial residue (observer-free
	// runs only); parBuild switches the parked workers from stepping to
	// cache building; stagedAcct suppresses the message accounting inside
	// the broadcast paths while the residue replays them (the shards
	// already pre-reduced it); parNb/parNbld are the tick's pending-batch
	// and build-worker counts.
	builds     []buildJob
	parStaged  bool
	parBuild   bool
	stagedAcct bool
	parNb      int
	parNbld    int

	// Parallel tick phase profile: accumulated wall-clock nanoseconds of
	// phases A1/A2/B and the number of parallel ticks profiled, monotone
	// over the engine's lifetime (PhaseProfile; not reset by Run).
	phaseNs  [3]int64
	parTicks int64
}

// NewEngine returns an empty engine; the first Run sizes its buffers.
func NewEngine() *Engine { return &Engine{} }

// Run executes machines under the adversary, reusing every internal
// buffer left over from previous runs of compatible shape.
//
// The returned Result is owned by the engine and overwritten by the next
// Run call; copy any fields that must outlive it. The package-level Run
// wrapper returns a caller-owned Result instead.
func (e *Engine) Run(cfg Config, machines []Machine, adv Adversary) (*Result, error) {
	maxSteps, err := validateRun(cfg, machines, adv)
	if err != nil {
		return nil, err
	}
	e.reset(cfg, machines, adv)

	for now := int64(0); now < maxSteps; {
		if e.stopped == cfg.P {
			break
		}
		e.tick(now)
		if e.res.Solved && cfg.StopAtSolved {
			break
		}
		next := now + 1
		if e.idle && e.nextWake > next {
			// Nothing stepped and the adversary promised to stay idle
			// until nextWake: jump straight to the next instant at which
			// anything can happen (a wake-up or a message delivery). The
			// skipped units are exact no-ops — no steps, no deliveries,
			// no accounting — so Results are unchanged.
			target := e.nextWake
			if due := e.wheel.nextDue(); due >= 0 && due < target {
				target = due
			}
			if target > next {
				next = target
			}
		}
		now = next
	}
	e.drain()
	if !e.res.Solved {
		return &e.res, ErrStepCap
	}
	return &e.res, nil
}

// drain releases every delivery still outstanding when the run ends —
// events left in the wheel, deliveries never consumed from inboxes, and
// whole delivery batches with their multicast chains and combined
// knowledge caches — recycling the records and handing pooled payloads
// back to the senders. Runs routinely end with messages in flight (the
// last halting step's broadcast, at least), and without the drain those
// payload buffers (and their snapshot delta chains) would leak out of
// their machines' pools, costing a fresh allocation per lost buffer on
// the next trial. Draining has no observable effect on the Result; it
// only settles buffer ownership.
func (e *Engine) drain() {
	w := e.wheel
	if w.events > 0 {
		fan := int32(e.cfg.P - 1)
		settle := func(evs []wevent) {
			for _, ev := range evs {
				if ev.to >= 0 {
					e.release(ev.mc)
				} else {
					// A pending uniform event means none of its p-1
					// deliveries happened.
					ev.mc.outstanding -= fan - 1
					e.release(ev.mc)
				}
			}
		}
		for _, b := range w.buckets {
			settle(b)
		}
		settle(w.overflow)
	}
	w.reset()
	for i := range e.inbox {
		for _, d := range e.inbox[i] {
			e.release(d.MC)
		}
		clear(e.inbox[i])
		e.inbox[i] = e.inbox[i][:0]
	}
	for idx := e.ringHead; idx < len(e.ringBuf); idx++ {
		e.retireBatch(e.ringBuf[idx])
		e.ringBuf[idx] = nil
	}
	e.ringBuf = e.ringBuf[:0]
	e.ringHead = 0
	e.ringSeq0 = e.batchSeq
}

// reset prepares the engine for a run, reallocating only the buffers
// whose shape changed since the previous run.
func (e *Engine) reset(cfg Config, machines []Machine, adv Adversary) {
	p, t := cfg.P, cfg.T
	if len(e.inbox) != p {
		e.inbox = make([][]Delivery, p)
		e.crashed = make([]bool, p)
		e.halted = make([]bool, p)
		e.delays = make([]int64, p)
		e.recyclers = make([]PayloadRecycler, p)
		e.sizers = make([]PayloadSizer, p)
		e.facetSrc = make([]Machine, p)
		e.batchers = make([]BatchConsumer, p)
		e.cbuilders = make([]CombinedBuilder, p)
		e.cursor = make([]int64, p)
		e.allBut = make([]*bitset.Set, p)
	} else {
		for i := range e.inbox {
			// Unconsumed deliveries from the previous run: drop the
			// references (their records are not recycled — they may hold
			// the previous machines' payloads).
			clear(e.inbox[i])
			e.inbox[i] = e.inbox[i][:0]
		}
		clear(e.crashed)
		clear(e.halted)
		// allBut depends only on p; keep the cached sets.
	}
	if e.tasks == nil {
		e.tasks = NewTaskLedger(t)
	} else {
		e.tasks.Reset(t)
	}
	for i, m := range machines {
		if e.facetSrc[i] == m {
			continue // facets cached from a previous run with this machine
		}
		e.recyclers[i], _ = m.(PayloadRecycler)
		e.sizers[i], _ = m.(PayloadSizer)
		e.batchers[i], _ = m.(BatchConsumer)
		e.cbuilders[i], _ = m.(CombinedBuilder)
		if reflect.TypeOf(m).Comparable() {
			e.facetSrc[i] = m
		} else {
			e.facetSrc[i] = nil
		}
	}
	e.cfg = cfg
	e.machines = machines
	e.adv = adv
	e.obs = cfg.Observer
	if e.advSrc != adv {
		e.batched, _ = adv.(MulticastDelayer)
		e.uniform, _ = adv.(UniformDelayer)
		e.omitter, _ = adv.(Omitter)
		e.inboxAg, e.inboxAgOK = adv.(InboxAgnostic)
		if reflect.TypeOf(adv).Comparable() {
			e.advSrc = adv
		} else {
			e.advSrc = nil
		}
	}
	e.d = adv.D()
	if e.wheel == nil || len(e.wheel.buckets) != wheelBuckets(e.d) {
		e.wheel = newWheel(e.d)
	} else {
		e.wheel.reset()
	}
	e.grouped = p > 1 && cfg.Observer == nil && e.inboxAgOK && e.inboxAg.InboxAgnostic()
	e.shards = 1
	if cfg.Shards > 1 && p > 1 {
		s := cfg.Shards
		if s > p {
			s = p
		}
		e.shards = s
		e.ensureShards(s)
	}
	// A drain (or a fresh engine) leaves the ring empty; defensively drop
	// any leftovers without recycling — they could reference the previous
	// run's machines.
	for idx := e.ringHead; idx < len(e.ringBuf); idx++ {
		e.ringBuf[idx] = nil
	}
	e.ringBuf = e.ringBuf[:0]
	e.ringHead = 0
	e.ringSeq0 = 0
	e.batchSeq = 0
	clear(e.cursor)
	e.stopped = 0
	e.inflight = 0
	e.idle = false
	e.nextWake = 0
	e.res.reset(p, t)
	e.dec.reset()
	e.view = View{
		P:        p,
		T:        t,
		Tasks:    e.tasks, // shared; adversaries must not mutate
		Machines: machines,
		Inboxes:  e.inbox,
		Crashed:  e.crashed,
		Halted:   e.halted,
	}
}

// getMC takes a multicast record from the pool (or allocates the pool's
// next record) and initializes it for a send from i at time now.
func (e *Engine) getMC(i int, now int64, payload any, outstanding int32) *Multicast {
	var mc *Multicast
	if n := len(e.freeMC); n > 0 {
		mc = e.freeMC[n-1]
		e.freeMC = e.freeMC[:n-1]
	} else {
		mc = new(Multicast)
	}
	mc.From = i
	mc.SentAt = now
	mc.Payload = payload
	mc.Recipients = nil
	mc.outstanding = outstanding
	return mc
}

// release drops one outstanding delivery of mc; the last release recycles
// the record, handing the payload back to the sender when it pools
// payloads (PayloadRecycler).
func (e *Engine) release(mc *Multicast) {
	mc.outstanding--
	if mc.outstanding == 0 {
		e.recycleMC(mc)
	}
}

// recycleMC returns a fully released record to the pool.
func (e *Engine) recycleMC(mc *Multicast) {
	if rc := e.recyclers[mc.From]; rc != nil && mc.Payload != nil {
		rc.RecyclePayload(mc.Payload)
	}
	mc.Payload = nil
	mc.Recipients = nil
	mc.outstanding = 0
	e.freeMC = append(e.freeMC, mc)
}

// getBatch takes a delivery-batch record from the pool.
func (e *Engine) getBatch() *Batch {
	if n := len(e.freeBatch); n > 0 {
		b := e.freeBatch[n-1]
		e.freeBatch = e.freeBatch[:n-1]
		return b
	}
	return &Batch{Builder: -1}
}

// retireBatch recycles a fully consumed batch: its multicast records (and
// their payload chains) return to the senders, its combined knowledge
// cache returns to the machine that built it.
func (e *Engine) retireBatch(b *Batch) {
	for k, mc := range b.MCs {
		b.MCs[k] = nil
		e.recycleMC(mc)
	}
	b.MCs = b.MCs[:0]
	if b.Combined != nil {
		if rc := e.recyclers[b.Builder]; rc != nil {
			rc.RecyclePayload(b.Combined)
		}
		b.Combined = nil
	}
	b.Builder = -1
	b.remaining = 0
	e.freeBatch = append(e.freeBatch, b)
}

// popRetired pops fully consumed batches off the ring front. Batches
// retire in ring order: consumers always consume prefix ranges and crash
// decrements apply immediately, so an older batch's remaining count
// reaches zero no later than a newer one's.
func (e *Engine) popRetired() {
	for e.ringHead < len(e.ringBuf) && e.ringBuf[e.ringHead].remaining == 0 {
		e.retireBatch(e.ringBuf[e.ringHead])
		e.ringBuf[e.ringHead] = nil
		e.ringHead++
		e.ringSeq0++
	}
	if e.ringHead == len(e.ringBuf) {
		e.ringBuf = e.ringBuf[:0]
		e.ringHead = 0
	}
}

// dropBatches releases a crashed processor's claim on every batch it had
// not consumed.
func (e *Engine) dropBatches(i int) {
	if e.cursor[i] < e.ringSeq0 {
		e.cursor[i] = e.ringSeq0
	}
	for seq := e.cursor[i]; seq < e.batchSeq; seq++ {
		e.ringBuf[e.ringHead+int(seq-e.ringSeq0)].remaining--
	}
	e.cursor[i] = e.batchSeq
	e.popRetired()
}

// allButSet returns the cached recipient set {0..P-1} \ {i}.
func (e *Engine) allButSet(i int) *bitset.Set {
	if e.allBut[i] == nil {
		s := bitset.New(e.cfg.P)
		for j := 0; j < e.cfg.P; j++ {
			if j != i {
				s.Set(j)
			}
		}
		e.allBut[i] = s
	}
	return e.allBut[i]
}

// deliverBucket routes one timing-wheel bucket's events. On the grouped
// path a bucket of only uniform multicasts becomes one shared Batch —
// O(multicasts) work regardless of p; a bucket containing any
// per-recipient event (non-uniform delays, point-to-point sends) is
// delivered eagerly, event by event, exactly like the ungrouped engine,
// so grouped and eager deliveries never interleave within one time unit
// and inbox ordering matches the legacy engine's.
func (e *Engine) deliverBucket(evs []wevent, at int64) {
	if e.grouped {
		uniform := true
		for _, ev := range evs {
			if ev.to >= 0 {
				uniform = false
				break
			}
		}
		if uniform {
			fanout := e.cfg.P - 1
			consumers := int32(e.cfg.P - e.stopped)
			if consumers == 0 {
				// No live processor will ever consume these.
				for _, ev := range evs {
					e.inflight -= fanout
					ev.mc.outstanding -= int32(fanout) - 1
					e.release(ev.mc)
				}
				return
			}
			b := e.getBatch()
			b.At = at
			for _, ev := range evs {
				e.inflight -= fanout
				b.MCs = append(b.MCs, ev.mc)
			}
			b.remaining = consumers
			e.ringBuf = append(e.ringBuf, b)
			e.batchSeq++
			return
		}
	}
	for _, ev := range evs {
		e.deliver(ev, at)
	}
}

// deliver appends one due event's deliveries to the recipient inboxes
// (the eager path).
func (e *Engine) deliver(ev wevent, at int64) {
	mc := ev.mc
	if ev.to >= 0 {
		e.inflight--
		e.deliverOne(mc, int(ev.to), at)
		return
	}
	e.inflight -= e.cfg.P - 1
	if e.stopped == 0 && e.obs == nil {
		// Fast path for the common benign case: every processor is live,
		// no observer — fan the uniform multicast out with no per-
		// recipient liveness checks or hook branches. mc.Recipients for a
		// broadcast is always all-but-sender, so the set membership test
		// reduces to skipping the sender.
		from := mc.From
		for j := range e.inbox {
			if j != from {
				e.inbox[j] = append(e.inbox[j], Delivery{MC: mc, At: at})
			}
		}
		return
	}
	r := mc.Recipients
	for j := r.NextSet(0); j >= 0; j = r.NextSet(j + 1) {
		e.deliverOne(mc, j, at)
	}
}

func (e *Engine) deliverOne(mc *Multicast, j int, at int64) {
	if e.crashed[j] || e.halted[j] {
		// The recipient will never consume this delivery; drop the
		// reference now so the record can be recycled.
		e.release(mc)
		return
	}
	e.inbox[j] = append(e.inbox[j], Delivery{MC: mc, At: at})
	if e.obs != nil {
		e.obs.OnDeliver(Message{From: mc.From, To: j, SentAt: mc.SentAt, DeliverAt: at, Payload: mc.Payload})
	}
}

// materialize builds an ordinary inbox slice for a machine that does not
// implement BatchConsumer: the processor's pending batches (minus its own
// multicasts) interleaved with its per-recipient deliveries in delivery-
// time order. Batches and per-recipient deliveries never share a time
// unit, so ordering by At reproduces the eager path's inbox exactly.
func (e *Engine) materialize(pend []*Batch, inbox []Delivery, i int) []Delivery {
	sc, grown := materializeInto(e.scratch, pend, inbox, i)
	e.scratch = grown
	return sc
}

// materializeInto is materialize over caller-owned scratch (the parallel
// engine materializes into shard-private scratch); it returns the built
// view and the possibly-grown backing slice for the caller to keep.
func materializeInto(buf []Delivery, pend []*Batch, inbox []Delivery, i int) (view, grown []Delivery) {
	sc := buf[:0]
	bi := 0
	for _, b := range pend {
		for bi < len(inbox) && inbox[bi].At < b.At {
			sc = append(sc, inbox[bi])
			bi++
		}
		for _, mc := range b.MCs {
			if mc.From != i {
				sc = append(sc, Delivery{MC: mc, At: b.At})
			}
		}
	}
	sc = append(sc, inbox[bi:]...)
	return sc, sc
}

// stepMachine runs machine i's local step for this time unit and returns
// its StepResult, touching NO engine-shared mutable state: batch cursors,
// remaining counts, inbox truncation, accounting, broadcasts, and sends
// are all applied later by finishStep. The split is what makes the
// parallel tick engine possible — concurrent stepMachine calls for
// distinct machines are data-race-free because a step reads only the
// machine's own state, immutable snapshots/batches, and published
// combined caches (built before the parallel phase; see tickPar).
//
// sb selects the scratch the call may use: nil means the engine's own
// (the sequential path and the serial phase A1); a shard block routes
// batch views through the shard's shadow batches and materializes
// non-BatchConsumer inboxes into shard-private scratch.
func (e *Engine) stepMachine(i int, now int64, sb *shardBlock) StepResult {
	inbox := e.inbox[i]
	if e.grouped {
		cur := e.cursor[i]
		if cur < e.ringSeq0 {
			cur = e.ringSeq0 // defensively; cannot happen for live processors
		}
		if cur < e.batchSeq {
			off := int(cur - e.ringSeq0)
			if bc := e.batchers[i]; bc != nil {
				if sb != nil {
					return bc.StepBatched(now, sb.shadow[off:sb.nshadow], inbox)
				}
				return bc.StepBatched(now, e.ringBuf[e.ringHead+off:], inbox)
			}
			pend := e.ringBuf[e.ringHead+off:]
			if sb != nil {
				var sc []Delivery
				sc, sb.scratch = materializeInto(sb.scratch, pend, inbox, i)
				return e.machines[i].Step(now, sc)
			}
			return e.machines[i].Step(now, e.materialize(pend, inbox, i))
		}
	}
	return e.machines[i].Step(now, inbox)
}

// finishStep applies everything a completed step changes outside the
// machine itself, in the engine's canonical serial order: batch cursor
// advancement and remaining counts, inbox release and truncation, the
// observer hook, work accounting, task-ledger updates, the broadcast and
// point-to-point sends (with their adversary delay queries, in schedule
// order — this is what keeps stateful delay streams and pool LIFO order
// byte-identical between the sequential and parallel engines), halting,
// and the informed check.
func (e *Engine) finishStep(i int, now int64, r *StepResult, informed *bool) {
	if e.grouped {
		cur := e.cursor[i]
		if cur < e.ringSeq0 {
			cur = e.ringSeq0
		}
		if cur < e.batchSeq {
			pend := e.ringBuf[e.ringHead+int(cur-e.ringSeq0):]
			for _, b := range pend {
				b.remaining--
			}
			e.cursor[i] = e.batchSeq
		}
	}
	// The machine consumed its inbox: drop the delivery references
	// (recycling records whose last recipient this was) and reuse the
	// backing array for future deliveries. The stale entries beyond
	// the truncated length are not cleared on the hot path — they can
	// only reference pooled records, which the engine keeps alive
	// anyway; reset clears everything between runs.
	inbox := e.inbox[i]
	for _, d := range inbox {
		e.release(d.MC)
	}
	e.inbox[i] = inbox[:0]
	if e.obs != nil {
		// Copy before handing out the address: the engine-owned result
		// must not escape through the hook.
		hooked := *r
		e.obs.OnStep(i, now, &hooked)
	}

	e.res.TotalSteps++
	e.res.PerProcWork[i]++
	if !e.res.Solved {
		e.res.Work++
	}

	if z := r.PerformedTask(); z != NoTask {
		if z < 0 || z >= e.cfg.T {
			panic(fmt.Sprintf("sim: machine %d performed out-of-range task %d", i, z))
		}
		e.res.TaskExecutions++
		if e.res.FirstDoneAt[z] == -1 || e.res.FirstDoneAt[z] == now {
			e.res.PrimaryExecutions++
		} else {
			e.res.SecondaryExecutions++
		}
		if e.tasks.MarkDone(z) {
			e.res.FirstDoneAt[z] = now
		}
	}

	if r.Broadcast != nil && e.cfg.P > 1 {
		e.broadcast(i, now, r.Broadcast)
	}

	for _, snd := range r.Sends {
		if snd.To < 0 || snd.To >= e.cfg.P || snd.To == i || snd.Payload == nil {
			continue
		}
		delay := e.adv.Delay(i, snd.To, now)
		if delay < 1 || delay > e.d {
			panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, e.d))
		}
		if e.omitter != nil && e.omitter.Omit(i, snd.To, now) {
			// The send is charged, the copy never flies; the payload
			// goes straight back to the sender's pool.
			e.res.TotalMessages++
			if !e.res.Solved {
				e.res.Messages++
				e.res.Bytes += e.wireSize(i, snd.Payload)
			}
			if e.obs != nil {
				e.obs.OnOmit(i, snd.To, now)
				e.obs.OnMulticast(i, now, snd.Payload, 1)
			}
			if rc := e.recyclers[i]; rc != nil {
				rc.RecyclePayload(snd.Payload)
			}
			continue
		}
		mc := e.getMC(i, now, snd.Payload, 1)
		e.wheel.push(wevent{mc: mc, to: int32(snd.To)}, now+delay)
		e.inflight++
		e.res.TotalMessages++
		if !e.res.Solved {
			e.res.Messages++
			e.res.Bytes += e.wireSize(i, snd.Payload)
		}
		if e.obs != nil {
			e.obs.OnMulticast(i, now, snd.Payload, 1)
		}
	}

	if r.Halt {
		if !e.halted[i] {
			e.stopped++
		}
		e.halted[i] = true
		if !e.res.Solved && !(e.tasks.Undone() == 0 && e.machines[i].KnowsAllDone()) {
			e.res.HaltedEarly = true
		}
	}
	if e.tasks.Undone() == 0 && e.machines[i].KnowsAllDone() {
		*informed = true
	}
}

// finishStepResidue is finishStep's genuinely order-dependent residue,
// used by the staged parallel phase B (observer-free ticks): multicast
// publication into the ring/wheel (with its adversary delay queries and
// pool traffic in schedule order), inbox release, task-ledger set-bits
// (kept in schedule order so the Undone count each halt check reads is
// exactly the sequential engine's mid-tick value), halting, and the
// informed check. Everything commutative — step/work counters, message
// and byte accounting, batch cursor advancement and consumption counts —
// was already pre-reduced per shard during A2 (finishStepLocal) and
// merged before this runs; e.stagedAcct keeps the shared broadcast paths
// from double-charging it.
func (e *Engine) finishStepResidue(i int, now int64, r *StepResult, informed *bool) {
	inbox := e.inbox[i]
	for _, d := range inbox {
		e.release(d.MC)
	}
	e.inbox[i] = inbox[:0]

	if z := r.PerformedTask(); z != NoTask {
		if z < 0 || z >= e.cfg.T {
			panic(fmt.Sprintf("sim: machine %d performed out-of-range task %d", i, z))
		}
		if e.tasks.MarkDone(z) {
			e.res.FirstDoneAt[z] = now
		}
	}

	if r.Broadcast != nil && e.cfg.P > 1 {
		e.broadcast(i, now, r.Broadcast)
	}

	for _, snd := range r.Sends {
		if snd.To < 0 || snd.To >= e.cfg.P || snd.To == i || snd.Payload == nil {
			continue
		}
		delay := e.adv.Delay(i, snd.To, now)
		if delay < 1 || delay > e.d {
			panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, e.d))
		}
		if e.omitter != nil && e.omitter.Omit(i, snd.To, now) {
			// Charged by the shard pre-reduction; the copy never flies.
			if rc := e.recyclers[i]; rc != nil {
				rc.RecyclePayload(snd.Payload)
			}
			continue
		}
		mc := e.getMC(i, now, snd.Payload, 1)
		e.wheel.push(wevent{mc: mc, to: int32(snd.To)}, now+delay)
		e.inflight++
	}

	if r.Halt {
		if !e.halted[i] {
			e.stopped++
		}
		e.halted[i] = true
		if !e.res.Solved && !(e.tasks.Undone() == 0 && e.machines[i].KnowsAllDone()) {
			e.res.HaltedEarly = true
		}
	}
	if e.tasks.Undone() == 0 && e.machines[i].KnowsAllDone() {
		*informed = true
	}
}

// tick advances one global time unit (mirrors legacyState.tick step for
// step; any observable divergence is an engine bug).
func (e *Engine) tick(now int64) {
	// 1. Deliver messages due now (and any skipped over, defensively).
	e.wheel.advanceTo(now, e.deliverBucket)

	// 2. Ask the adversary for this unit's schedule.
	v := &e.view
	v.Now = now
	v.InFlight = e.inflight
	dec := &e.dec
	dec.reset()
	e.adv.Schedule(v, dec)
	for _, i := range dec.Crash {
		if i >= 0 && i < e.cfg.P && !e.crashed[i] {
			if !e.halted[i] {
				e.stopped++
			}
			e.crashed[i] = true
			// Deliveries the processor received but never consumed are
			// lost with the crash: release them now so their records
			// recycle promptly (and a later revive starts with an empty
			// inbox).
			for _, d := range e.inbox[i] {
				e.release(d.MC)
			}
			e.inbox[i] = e.inbox[i][:0]
			if e.grouped {
				e.dropBatches(i)
			}
			if e.obs != nil {
				e.obs.OnCrash(i, now)
			}
		}
	}
	for _, i := range dec.Revive {
		if i >= 0 && i < e.cfg.P && e.crashed[i] && !e.halted[i] {
			e.crashed[i] = false
			e.stopped--
			if e.grouped {
				// Skip every batch formed while the processor was down
				// (its crash released its claim on them); batches formed
				// from now on count it as a consumer again.
				e.cursor[i] = e.batchSeq
			}
			RejoinMachine(e.machines[i])
			if e.obs != nil {
				e.obs.OnRevive(i, now)
			}
		}
	}
	e.nextWake = dec.NextWake
	stepped := 0

	// 3. Execute the scheduled local steps, in parallel shards when
	// configured (and the tick qualifies), sequentially otherwise. Both
	// paths are stepMachine + finishStep per scheduled processor, so they
	// cannot diverge.
	informed := false
	ranPar := false
	if e.shards > 1 {
		stepped, informed, ranPar = e.tickPar(now)
	}
	if !ranPar {
		for _, i := range dec.Active {
			if i < 0 || i >= e.cfg.P || e.crashed[i] || e.halted[i] {
				continue
			}
			r := e.stepMachine(i, now, nil)
			stepped++
			e.finishStep(i, now, &r, &informed)
		}
	}
	e.idle = stepped == 0
	if e.grouped {
		// Retire batches whose last consumer stepped this unit (deferred
		// off the per-step path: retirement only triggers once per batch).
		e.popRetired()
	}

	// 4. Solved check: all tasks done and some live processor informed.
	if !e.res.Solved && e.tasks.Undone() == 0 {
		if !informed {
			for i, m := range e.machines {
				if !e.crashed[i] && m.KnowsAllDone() {
					informed = true
					break
				}
			}
		}
		if informed {
			e.res.Solved = true
			e.res.SolvedAt = now
			if e.obs != nil {
				e.obs.OnSolved(now, &e.res)
			}
		}
	}
}

// broadcast schedules one multicast: one adversary call (when batched),
// one pooled Multicast record, and one wheel event when all recipients
// share a delay — the p²-allocations hot path of the per-message engine
// reduced to zero steady-state allocations.
func (e *Engine) broadcast(i int, now int64, payload any) {
	p := e.cfg.P
	if e.omitter != nil && e.omitter.OmitsAt(i, now) {
		e.broadcastOmitting(i, now, payload)
		return
	}
	mc := e.getMC(i, now, payload, int32(p-1))
	if e.uniform != nil {
		// Recipient-independent delays: one delay query, one validation,
		// one wheel event — no per-recipient work at all.
		if dl, ok := e.uniform.DelayUniform(i, now); ok {
			if dl < 1 || dl > e.d {
				panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", dl, e.d))
			}
			mc.Recipients = e.allButSet(i)
			e.wheel.push(wevent{mc: mc, to: -1}, now+dl)
			e.finishMulticast(i, now, payload, p-1)
			return
		}
	}
	delays := e.delays
	if e.batched != nil {
		e.batched.DelayMulticast(i, now, delays)
	} else {
		for j := 0; j < p; j++ {
			if j != i {
				delays[j] = e.adv.Delay(i, j, now)
			}
		}
	}
	uniform := true
	first := int64(-1)
	for j := 0; j < p; j++ {
		if j == i {
			continue
		}
		dl := delays[j]
		if dl < 1 || dl > e.d {
			panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", dl, e.d))
		}
		if first < 0 {
			first = dl
		} else if dl != first {
			uniform = false
		}
	}
	if uniform {
		mc.Recipients = e.allButSet(i)
		e.wheel.push(wevent{mc: mc, to: -1}, now+first)
	} else {
		for j := 0; j < p; j++ {
			if j != i {
				e.wheel.push(wevent{mc: mc, to: int32(j)}, now+delays[j])
			}
		}
	}
	e.finishMulticast(i, now, payload, p-1)
}

// broadcastOmitting schedules a multicast some of whose copies the
// adversary omits. Delays are acquired exactly as on the standard paths
// (uniform query, batched call, or the per-recipient loop — so stateful
// delay streams stay aligned with the legacy engine), then every kept
// copy is scheduled as a per-recipient event and every omitted one is
// dropped: still charged to the sender's message complexity, never put
// in flight. When every copy is omitted the record is recycled on the
// spot, handing the payload back to the sender's pool.
func (e *Engine) broadcastOmitting(i int, now int64, payload any) {
	p := e.cfg.P
	delays := e.delays
	uniform := false
	if e.uniform != nil {
		if dl, ok := e.uniform.DelayUniform(i, now); ok {
			for j := range delays {
				delays[j] = dl
			}
			uniform = true
		}
	}
	if !uniform {
		if e.batched != nil {
			e.batched.DelayMulticast(i, now, delays)
		} else {
			for j := 0; j < p; j++ {
				if j != i {
					delays[j] = e.adv.Delay(i, j, now)
				}
			}
		}
	}
	mc := e.getMC(i, now, payload, 0)
	kept := int32(0)
	for j := 0; j < p; j++ {
		if j == i {
			continue
		}
		dl := delays[j]
		if dl < 1 || dl > e.d {
			panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", dl, e.d))
		}
		if e.omitter.Omit(i, j, now) {
			if e.obs != nil {
				e.obs.OnOmit(i, j, now)
			}
			continue
		}
		kept++
		e.wheel.push(wevent{mc: mc, to: int32(j)}, now+dl)
	}
	// Deliveries begin at now+1 at the earliest, so setting the count
	// after scheduling the events is safe.
	mc.outstanding = kept
	e.inflight += int(kept)
	if !e.stagedAcct {
		// Every copy is charged, omitted or not. The staged parallel tick
		// pre-reduced this per shard during A2 (the charge is omission-
		// independent, so shards need no adversary queries to compute it).
		n := int64(p - 1)
		e.res.TotalMessages += n
		if !e.res.Solved {
			e.res.Messages += n
			e.res.Bytes += e.wireSize(i, payload) * n
		}
		if e.obs != nil {
			e.obs.OnMulticast(i, now, payload, p-1)
		}
	}
	if kept == 0 {
		// Every copy omitted: nothing is in flight, so the payload goes
		// straight back to the sender's pool (after the accounting above,
		// which still reads it).
		e.recycleMC(mc)
	}
}

// finishMulticast applies the message accounting and observer hook shared
// by both broadcast scheduling paths.
func (e *Engine) finishMulticast(i int, now int64, payload any, recipients int) {
	e.inflight += recipients
	if e.stagedAcct {
		// The staged parallel tick pre-reduced this accounting per shard
		// during A2; only the in-flight count is order-dependent state.
		return
	}
	n := int64(recipients)
	e.res.TotalMessages += n
	if !e.res.Solved {
		e.res.Messages += n
		e.res.Bytes += e.wireSize(i, payload) * n
	}
	if e.obs != nil {
		e.obs.OnMulticast(i, now, payload, recipients)
	}
}

// wireSize returns payload's wire size for byte accounting, preferring
// sender i's PayloadSizer facet (a direct method call over concrete type
// checks) and falling back to the payload.(Payload) assertion for
// machines without one. The facet path matters for the zero-allocation
// gates: the fallback assertion's runtime site cache is populated
// lazily at random (~1/1024 of misses allocate the new cache), so a per-
// message assertion keeps a small chance of one stray steady-state heap
// allocation alive for on the order of a thousand messages.
func (e *Engine) wireSize(i int, payload any) int64 {
	if s := e.sizers[i]; s != nil {
		return int64(s.PayloadWireSize(payload))
	}
	if sz, ok := payload.(Payload); ok {
		return int64(sz.WireSize())
	}
	return 0
}
