package harness

import (
	"strconv"
	"strings"
	"testing"
)

// runQuick runs an experiment at Quick scale and does basic shape checks.
func runQuick(t *testing.T, fn func(Scale) (*Table, error)) *Table {
	t.Helper()
	tb, err := fn(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: empty table", tb.ID)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("%s: ragged row %v", tb.ID, row)
		}
	}
	return tb
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tb := runQuick(t, E1LowerBoundDet)
	// Forced work / Ω must be bounded: not vanishing, not exploding.
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[4])
		if ratio < 0.05 || ratio > 50 {
			t.Errorf("E1 d=%s algo=%s: W/Ω = %v out of sane range", row[0], row[1], ratio)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tb := runQuick(t, E2LowerBoundRand)
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[4])
		if ratio < 0.05 || ratio > 50 {
			t.Errorf("E2 d=%s algo=%s: W/Ω = %v out of range", row[0], row[1], ratio)
		}
	}
}

func TestE3LemmaHolds(t *testing.T) {
	tb := runQuick(t, E3Contention)
	for _, row := range tb.Rows {
		cont := cellFloat(t, row[1])
		bound := cellFloat(t, row[2])
		primary := cellFloat(t, row[3])
		if cont > bound {
			t.Errorf("E3 n=%s: Cont(Σ)=%v exceeds 3nH_n=%v (Lemma 4.1)", row[0], cont, bound)
		}
		if primary > cont {
			t.Errorf("E3 n=%s: primary=%v exceeds Cont(Σ)=%v (Lemma 4.2)", row[0], primary, cont)
		}
	}
}

func TestE4BoundHolds(t *testing.T) {
	tb := runQuick(t, E4DContention)
	for _, row := range tb.Rows {
		if r := cellFloat(t, row[3]); r > 1 {
			t.Errorf("E4 d=%s: estimate exceeds the Theorem 4.4 bound (ratio %v)", row[0], r)
		}
	}
}

func TestE5WorkGrowsWithD(t *testing.T) {
	tb := runQuick(t, E5DAWork)
	// Within each q group, work must not shrink drastically as d grows,
	// and must stay ≤ ~p·t ceiling times small constant.
	for _, row := range tb.Rows {
		w := cellFloat(t, row[2])
		pt := cellFloat(t, row[6])
		if w > 3*pt {
			t.Errorf("E5 d=%s q=%s: W=%v far above p·t=%v", row[0], row[1], w, pt)
		}
	}
	// First and last d for q=2: work at d=max must exceed work at d=1.
	var first, last float64
	var seen bool
	for _, row := range tb.Rows {
		if row[1] == "2" {
			if !seen {
				first = cellFloat(t, row[2])
				seen = true
			}
			last = cellFloat(t, row[2])
		}
	}
	if last <= first {
		t.Errorf("E5: DA work did not grow with d (first %v, last %v)", first, last)
	}
}

func TestE6SubquadraticAtSmallD(t *testing.T) {
	tb := runQuick(t, E6PaRanWork)
	for _, row := range tb.Rows {
		d := cellFloat(t, row[0])
		w := cellFloat(t, row[2])
		pt := cellFloat(t, row[6])
		if d == 1 && w >= pt {
			t.Errorf("E6 %s: work %v at d=1 not subquadratic (p·t=%v)", row[1], w, pt)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tb := runQuick(t, E7PaDetWork)
	for _, row := range tb.Rows {
		if r := cellFloat(t, row[4]); r > 20 {
			t.Errorf("E7 d=%s: W/UB = %v implausibly high", row[0], r)
		}
	}
}

func TestE8QuadraticAtLargeD(t *testing.T) {
	tb := runQuick(t, E8LargeDelay)
	for _, row := range tb.Rows {
		frac := cellFloat(t, row[4])
		if frac < 0.4 || frac > 3 {
			t.Errorf("E8 %s d=%s: W/(p·t) = %v, want Θ(1)", row[0], row[1], frac)
		}
	}
}

func TestE9MessageCeiling(t *testing.T) {
	tb := runQuick(t, E9Messages)
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[3])
		ceiling := cellFloat(t, row[4])
		if ratio > ceiling {
			t.Errorf("E9 %s: M/W = %v exceeds p-1 = %v", row[0], ratio, ceiling)
		}
	}
}

func TestE10HasWinners(t *testing.T) {
	tb := runQuick(t, E10Crossover)
	for _, row := range tb.Rows {
		w := row[5]
		if w != "DA" && w != "PaDet" && w != "PaRan1" {
			t.Errorf("E10: unknown winner %q", w)
		}
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := AllExperiments(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("got %d tables, want 10", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		ids[tb.ID] = true
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}
