package sim

import "time"

// TickPhaseProfile is the accumulated wall-clock breakdown of the
// parallel tick engine's three phases (see parallel.go): A1 is the
// serial prefix (schedule filtering, the cache-build plan and its
// fan-out, shadow seeding), A2 the parallel shard stepping, and B the
// serial tail (staged-reduction merge plus the order-dependent residue,
// or the full replay). Ticks counts the parallel ticks profiled;
// sequential-fallback ticks contribute nothing. The profile is monotone
// over an Engine's lifetime — it is NOT reset by Run — so consumers
// (the service's workers, the phase sub-benchmarks) take deltas between
// two PhaseProfile calls.
type TickPhaseProfile struct {
	A1    time.Duration
	A2    time.Duration
	B     time.Duration
	Ticks int64
}

// Total returns the summed wall-clock time across the three phases.
func (p TickPhaseProfile) Total() time.Duration { return p.A1 + p.A2 + p.B }

// PhaseProfile returns the engine's accumulated parallel-tick phase
// timings. Call it between Runs (an Engine is not safe for concurrent
// use, and the counters are updated on the tick path).
func (e *Engine) PhaseProfile() TickPhaseProfile {
	return TickPhaseProfile{
		A1:    time.Duration(e.phaseNs[0]),
		A2:    time.Duration(e.phaseNs[1]),
		B:     time.Duration(e.phaseNs[2]),
		Ticks: e.parTicks,
	}
}

// Observer is the optional hook set threaded through the multicast engine
// (Run). Set Config.Observer to receive a callback at every observable
// event of an execution — tracing, per-round metrics, and live dashboards
// hang off these hooks instead of forking the engine. A nil observer costs
// nothing: the engine guards every hook with a single nil check, so the
// hot path is unchanged (guarded by the BenchmarkEngineMulticast*
// benchmarks against the BENCH_0.json baselines).
//
// Hooks run synchronously inside the engine loop. Implementations must not
// mutate anything they are handed and must not retain pointer arguments
// beyond the call; the engine reuses the underlying storage. The legacy
// reference engine (RunLegacy) ignores observers — it exists only for
// equivalence checking.
//
// An attached observer also pins the parallel tick engine (Config.Shards
// > 1) to its full serial phase-B replay: the staged per-shard accounting
// reductions are skipped, because per-step hook order is part of this
// contract. Observed sharded runs therefore trade some speed for the
// exact sequential callback sequence.
type Observer interface {
	// OnStep fires after machine pid executed one local step at time now.
	// r is the step's raw result, valid only for the duration of the call.
	OnStep(pid int, now int64, r *StepResult)
	// OnMulticast fires once per broadcast (recipients = p-1) and once per
	// point-to-point send (recipients = 1), after the message(s) were
	// scheduled for delivery.
	OnMulticast(from int, now int64, payload any, recipients int)
	// OnDeliver fires when a message enters a live recipient's inbox.
	// Messages addressed to crashed or halted processors are dropped
	// without a callback, matching the accounting of the model.
	OnDeliver(m Message)
	// OnCrash fires when the adversary crashes processor pid at time now.
	OnCrash(pid int, now int64)
	// OnRevive fires when the adversary revives crashed processor pid at
	// time now (the restartable-crash model); the machine has already
	// rejoined with fresh knowledge when the hook runs.
	OnRevive(pid int, now int64)
	// OnOmit fires when the network omits (drops) the copy of a multicast
	// from `from` sent at `sentAt` that was addressed to `to`. The send
	// itself is still reported through OnMulticast with its full recipient
	// count.
	OnOmit(from, to int, sentAt int64)
	// OnSolved fires once, at the time unit σ the problem became solved
	// (all tasks done and some live processor informed). res is the
	// engine's live Result; treat it as read-only and do not retain it.
	OnSolved(now int64, res *Result)
}

// NopObserver implements Observer with no-ops. Embed it to implement only
// the hooks you care about.
type NopObserver struct{}

// OnStep implements Observer.
func (NopObserver) OnStep(int, int64, *StepResult) {}

// OnMulticast implements Observer.
func (NopObserver) OnMulticast(int, int64, any, int) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(Message) {}

// OnCrash implements Observer.
func (NopObserver) OnCrash(int, int64) {}

// OnRevive implements Observer.
func (NopObserver) OnRevive(int, int64) {}

// OnOmit implements Observer.
func (NopObserver) OnOmit(int, int, int64) {}

// OnSolved implements Observer.
func (NopObserver) OnSolved(int64, *Result) {}

// FuncObserver adapts a set of optional functions to the Observer
// interface; nil fields are skipped. It is the quickest way to hook one or
// two events without declaring a type.
type FuncObserver struct {
	Step      func(pid int, now int64, r *StepResult)
	Multicast func(from int, now int64, payload any, recipients int)
	Deliver   func(m Message)
	Crash     func(pid int, now int64)
	Revive    func(pid int, now int64)
	Omit      func(from, to int, sentAt int64)
	Solved    func(now int64, res *Result)
}

var _ Observer = (*FuncObserver)(nil)

// OnStep implements Observer.
func (o *FuncObserver) OnStep(pid int, now int64, r *StepResult) {
	if o.Step != nil {
		o.Step(pid, now, r)
	}
}

// OnMulticast implements Observer.
func (o *FuncObserver) OnMulticast(from int, now int64, payload any, recipients int) {
	if o.Multicast != nil {
		o.Multicast(from, now, payload, recipients)
	}
}

// OnDeliver implements Observer.
func (o *FuncObserver) OnDeliver(m Message) {
	if o.Deliver != nil {
		o.Deliver(m)
	}
}

// OnCrash implements Observer.
func (o *FuncObserver) OnCrash(pid int, now int64) {
	if o.Crash != nil {
		o.Crash(pid, now)
	}
}

// OnRevive implements Observer.
func (o *FuncObserver) OnRevive(pid int, now int64) {
	if o.Revive != nil {
		o.Revive(pid, now)
	}
}

// OnOmit implements Observer.
func (o *FuncObserver) OnOmit(from, to int, sentAt int64) {
	if o.Omit != nil {
		o.Omit(from, to, sentAt)
	}
}

// OnSolved implements Observer.
func (o *FuncObserver) OnSolved(now int64, res *Result) {
	if o.Solved != nil {
		o.Solved(now, res)
	}
}

// MultiObserver fans every event out to each observer in order. Nil
// entries are skipped.
type MultiObserver []Observer

var _ Observer = (MultiObserver)(nil)

// OnStep implements Observer.
func (m MultiObserver) OnStep(pid int, now int64, r *StepResult) {
	for _, o := range m {
		if o != nil {
			o.OnStep(pid, now, r)
		}
	}
}

// OnMulticast implements Observer.
func (m MultiObserver) OnMulticast(from int, now int64, payload any, recipients int) {
	for _, o := range m {
		if o != nil {
			o.OnMulticast(from, now, payload, recipients)
		}
	}
}

// OnDeliver implements Observer.
func (m MultiObserver) OnDeliver(msg Message) {
	for _, o := range m {
		if o != nil {
			o.OnDeliver(msg)
		}
	}
}

// OnCrash implements Observer.
func (m MultiObserver) OnCrash(pid int, now int64) {
	for _, o := range m {
		if o != nil {
			o.OnCrash(pid, now)
		}
	}
}

// OnRevive implements Observer.
func (m MultiObserver) OnRevive(pid int, now int64) {
	for _, o := range m {
		if o != nil {
			o.OnRevive(pid, now)
		}
	}
}

// OnOmit implements Observer.
func (m MultiObserver) OnOmit(from, to int, sentAt int64) {
	for _, o := range m {
		if o != nil {
			o.OnOmit(from, to, sentAt)
		}
	}
}

// OnSolved implements Observer.
func (m MultiObserver) OnSolved(now int64, res *Result) {
	for _, o := range m {
		if o != nil {
			o.OnSolved(now, res)
		}
	}
}
