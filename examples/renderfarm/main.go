// Renderfarm: many more tasks than processors (t ≫ p) on the goroutine
// runtime, exercising the paper's job-partitioning rule (Sections 5.1.3
// and 6): t tasks are grouped into p jobs of ⌈t/p⌉ tasks, and PaDet
// schedules the jobs with a searched low-d-contention permutation list.
//
// The "farm" renders a 32×32 image: each task shades one 16-pixel row
// segment. Because tasks are idempotent, overlapping renders are harmless.
//
//	go run ./examples/renderfarm
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"doall/internal/core"
	"doall/internal/perm"
	rt "doall/internal/runtime"
)

const (
	width   = 32
	height  = 32
	segsPerRow = 2 // 16-pixel segments
	nodes   = 4
)

func main() {
	tasks := height * segsPerRow // 64 render segments

	// Schedule list: p permutations over the p jobs, searched for low
	// d-contention (Corollary 4.5 made constructive).
	jobs := core.NewJobs(nodes, tasks)
	r := rand.New(rand.NewSource(5))
	search := perm.FindLowDContentionList(nodes, jobs.N, 2, 100, r)
	fmt.Printf("schedule: %d jobs of ≤%d segments, (2)-Cont(Σ) = %d\n",
		jobs.N, jobs.MaxSize(), search.Cont)

	machines, err := core.NewPaDet(nodes, tasks, search.List)
	if err != nil {
		log.Fatal(err)
	}

	// The framebuffer: one atomic word per segment so concurrent renders
	// of the same segment (idempotent) are safe.
	frame := make([]atomic.Uint32, tasks)
	shade := func(id int) {
		row := id / segsPerRow
		seg := id % segsPerRow
		// A toy shader: deterministic per segment.
		frame[id].Store(uint32(row*131 + seg*17 + 7))
	}

	rep, err := rt.Run(rt.Config{
		P:    nodes,
		T:    tasks,
		D:    2,
		Unit: 100 * time.Microsecond,
		Seed: 11,
		Task: shade,
	}, machines)
	if err != nil {
		log.Fatal(err)
	}

	rendered := 0
	for i := range frame {
		if frame[i].Load() != 0 {
			rendered++
		}
	}
	fmt.Printf("render complete: %v in %v\n", rep.Solved, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("segments rendered: %d/%d (executions incl. redundant: %d)\n",
		rendered, tasks, rep.TaskExecutions)
	fmt.Printf("steps: %d, messages: %d\n", rep.Steps, rep.Messages)
}
