package harness

import (
	"strings"
	"testing"
)

func TestBuildMachinesAllAlgos(t *testing.T) {
	for _, algo := range []Algo{AlgoAllToAll, AlgoObliDo, AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet} {
		ms, err := BuildMachines(Spec{Algo: algo, P: 4, T: 8, D: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(ms) != 4 {
			t.Fatalf("%s: %d machines, want 4", algo, len(ms))
		}
	}
	if _, err := BuildMachines(Spec{Algo: "nope", P: 1, T: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildAdversaryAll(t *testing.T) {
	for _, a := range []Adv{AdvFair, AdvRandom, AdvStageDet, AdvStageOnline} {
		adv, err := BuildAdversary(Spec{Adversary: a, P: 2, T: 4, D: 3})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if adv.D() != 3 {
			t.Fatalf("%s: D = %d, want 3", a, adv.D())
		}
	}
	if _, err := BuildAdversary(Spec{Adversary: "nope"}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestExecuteEveryAlgoSolves(t *testing.T) {
	for _, algo := range []Algo{AlgoAllToAll, AlgoObliDo, AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet} {
		res, err := Execute(Spec{Algo: algo, P: 4, T: 16, D: 2, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Solved {
			t.Fatalf("%s: not solved", algo)
		}
	}
}

func TestExecuteAvgDeterministicIsStable(t *testing.T) {
	// Deterministic algo with fair adversary and trial-varying seeds: DA's
	// permutation search depends on seed, so use AllToAll which is seed-free.
	avg, err := ExecuteAvg(Spec{Algo: AlgoAllToAll, P: 3, T: 9, D: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Work != 27 {
		t.Fatalf("avg work = %v, want 27", avg.Work)
	}
	if avg.Trials != 3 {
		t.Fatalf("trials = %d", avg.Trials)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("EX", "demo", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 100.0)
	tb.Note = "hello"

	s := tb.String()
	for _, want := range []string{"EX — demo", "a", "bb", "2.50", "100", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}

	md := tb.Markdown()
	for _, want := range []string{"### EX — demo", "| a | bb |", "|---|---|", "| 1 | 2.50 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown() missing %q in:\n%s", want, md)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.5:     "3.50",
		1234.56: "1235",
		0.25:    "0.25",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
