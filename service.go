package doall

import (
	"doall/internal/service"
	"doall/internal/service/buildinfo"
)

// The service plane: a persistent daemon core (cmd/doalld) and its thin
// HTTP client (cmd/doallctl). A Service owns a bounded priority queue of
// scenario and sweep jobs, runs them cell by cell on a shared fleet of
// reusable simulation engines, streams per-cell results as NDJSON, and
// checkpoints every completed cell to a write-ahead log so jobs survive
// daemon restarts. Because per-cell seeds derive from cell coordinates
// alone, a restarted job completes to results identical to an
// uninterrupted run (wall-clock timings excepted).
type (
	// Service is the daemon core: queue, fleet, checkpoint log, metrics.
	Service = service.Service
	// ServiceConfig tunes a Service; the zero value is serviceable.
	ServiceConfig = service.Config
	// ServiceClient is the typed HTTP client (what doallctl is built from).
	ServiceClient = service.Client
	// Job is the unit of submission: one scenario or one sweep, plus
	// priority and timeout.
	Job = service.Job
	// JobStatus is a job's wire-form progress.
	JobStatus = service.JobStatus
	// JobState is the job lifecycle: queued → running → done|failed|canceled.
	JobState = service.JobState
	// JobDuration marshals as "30s"-style strings in job documents.
	JobDuration = service.Duration
	// ResultCell is one line of a job's NDJSON result stream.
	ResultCell = service.ResultCell
	// ResultTrailer is the final line of a result stream.
	ResultTrailer = service.ResultTrailer
)

// Job lifecycle states.
const (
	JobQueued   = service.JobQueued
	JobRunning  = service.JobRunning
	JobDone     = service.JobDone
	JobFailed   = service.JobFailed
	JobCanceled = service.JobCanceled
)

// Service sentinel errors, mapped to HTTP statuses by the daemon.
var (
	// ErrJobNotFound: no job with that id (HTTP 404).
	ErrJobNotFound = service.ErrNotFound
	// ErrServiceDraining: admission stopped (HTTP 503).
	ErrServiceDraining = service.ErrDraining
	// ErrJobQueueFull: the bounded queue is at capacity (HTTP 429).
	ErrJobQueueFull = service.ErrQueueFull
	// ErrJobOverBudget: admission control rejected the job (HTTP 413).
	ErrJobOverBudget = service.ErrOverBudget
)

// NewService builds a Service: replays the checkpoint log, reopens it
// for appending, and starts the engine fleet.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// ParseJob decodes a job document: a {"scenario": ...} / {"sweep": ...}
// envelope, a bare scenario (recognized by "algorithm"), or a bare sweep
// spec (recognized by "algos").
func ParseJob(data []byte) (Job, error) { return service.ParseJob(data) }

// Version reports this build's version string, derived from the binary's
// embedded module and VCS metadata. All doall binaries expose it via
// -version; the daemon serves it at GET /v1/version.
func Version() string { return buildinfo.Version() }
