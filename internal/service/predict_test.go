package service

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"doall/internal/twin"
)

// testTwin calibrates a tiny synthetic twin whose DA/fair envelope is
// p∈[16,64], t∈[256,1024], d∈[1,8], q=2, with near-exact log-linear
// measures so in-envelope bands are far below any fallback threshold.
func testTwin(t *testing.T) *twin.Twin {
	t.Helper()
	var samples []twin.Sample
	for _, p := range []int{16, 64} {
		for _, tt := range []int{256, 1024} {
			for _, d := range []int64{1, 8} {
				samples = append(samples, twin.Sample{
					Algo: "DA", Family: "fair", P: p, T: tt, D: d,
					Work:     float64(p * tt),
					Messages: float64(p),
					SolvedAt: float64(tt),
				})
			}
		}
	}
	tw, err := twin.Calibrate(samples, []string{"synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

func newPredictService(t *testing.T, tw *twin.Twin) (*Service, *Client) {
	t.Helper()
	svc, err := New(Config{Workers: 1, Twin: tw})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, &Client{Base: srv.URL}
}

// TestPredictInEnvelopeRunsNoSimulation pins the tentpole contract: an
// in-envelope query is answered purely from the twin — the predict
// plane's simulation counter must not move.
func TestPredictInEnvelopeRunsNoSimulation(t *testing.T) {
	svc, c := newPredictService(t, testTwin(t))
	before := svc.PredictSimRuns()
	res, err := c.Predict(context.Background(), twin.Query{Algo: "DA", P: 32, T: 512, D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "twin" {
		t.Fatalf("mode = %q, want twin", res.Mode)
	}
	if !res.Prediction.InEnvelope {
		t.Fatal("prediction not marked in-envelope")
	}
	if res.Prediction.Work <= 0 || res.Prediction.WorkLo > res.Prediction.Work || res.Prediction.WorkHi < res.Prediction.Work {
		t.Fatalf("implausible work band: %v [%v, %v]", res.Prediction.Work, res.Prediction.WorkLo, res.Prediction.WorkHi)
	}
	if got := svc.PredictSimRuns(); got != before {
		t.Fatalf("in-envelope predict ran %d simulation(s)", got-before)
	}
	if !metricsContain(t, c, `doalld_twin_predictions_total{mode="twin"} 1`) {
		t.Fatal("twin-mode counter did not increment")
	}
}

// TestPredictOutOfEnvelopeFallsBack pins the other half: outside the
// calibrated box the daemon answers with one real bounded simulation,
// marks the response mode=fallback, and increments the fallback counter.
func TestPredictOutOfEnvelopeFallsBack(t *testing.T) {
	svc, c := newPredictService(t, testTwin(t))
	res, err := c.Predict(context.Background(), twin.Query{Algo: "DA", P: 4, T: 16, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fallback" {
		t.Fatalf("mode = %q, want fallback", res.Mode)
	}
	if svc.PredictSimRuns() != 1 {
		t.Fatalf("fallback ran %d simulations, want 1", svc.PredictSimRuns())
	}
	// A measured answer is exact: collapsed band, ratio 1.
	p := res.Prediction
	if p.Work <= 0 || p.WorkLo != p.Work || p.WorkHi != p.Work || p.BandRatio != 1 {
		t.Fatalf("fallback prediction not collapsed: %+v", p)
	}
	if p.InEnvelope {
		t.Fatal("fallback prediction claims in-envelope")
	}
	if !metricsContain(t, c, `doalld_twin_predictions_total{mode="fallback"} 1`) {
		t.Fatal("fallback counter did not increment")
	}
}

// TestPredictWithoutTwinStillServes: a daemon started without -twin
// serves every predict query by simulation.
func TestPredictWithoutTwinStillServes(t *testing.T) {
	svc, c := newPredictService(t, nil)
	res, err := c.Predict(context.Background(), twin.Query{Algo: "PaRan1", P: 8, T: 64, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fallback" || svc.PredictSimRuns() != 1 {
		t.Fatalf("twin-less daemon: mode=%q sims=%d, want fallback/1", res.Mode, svc.PredictSimRuns())
	}
}

// TestPredictBatch answers several queries in one request, splitting
// modes per query.
func TestPredictBatch(t *testing.T) {
	svc, c := newPredictService(t, testTwin(t))
	results, err := c.PredictBatch(context.Background(), []twin.Query{
		{Algo: "DA", P: 16, T: 256, D: 1},
		{Algo: "DA", P: 64, T: 1024, D: 8},
		{Algo: "DA", P: 4, T: 16, D: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Mode != "twin" || results[1].Mode != "twin" {
		t.Fatalf("in-envelope batch entries: modes %q/%q, want twin/twin", results[0].Mode, results[1].Mode)
	}
	if results[2].Mode != "fallback" {
		t.Fatalf("out-of-envelope batch entry: mode %q, want fallback", results[2].Mode)
	}
	if svc.PredictSimRuns() != 1 {
		t.Fatalf("batch ran %d simulations, want 1 (the out-of-envelope entry)", svc.PredictSimRuns())
	}
}

// TestPredictHTTPErrors pins the endpoint's failure matrix.
func TestPredictHTTPErrors(t *testing.T) {
	svc, c := newPredictService(t, testTwin(t))
	post := func(body string) int {
		t.Helper()
		resp, err := c.http().Post(c.url("/v1/predict"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"algo": `, 400},
		{"unknown field", `{"algo":"DA","p":16,"t":256,"d":1,"bogus":1}`, 400},
		{"missing algo", `{"p":16,"t":256,"d":1}`, 400},
		{"unknown algorithm", `{"algo":"NoSuchAlgo","p":16,"t":256,"d":1}`, 400},
		{"degenerate shape", `{"algo":"DA","p":0,"t":256,"d":1}`, 400},
		{"empty batch", `{"queries":[]}`, 400},
		{"bad batch entry", `{"queries":[{"algo":"NoSuchAlgo","p":4,"t":16,"d":1}]}`, 400},
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, got, tc.want)
		}
	}
	// Wrong method.
	resp, err := c.http().Get(c.url("/v1/predict"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/predict: HTTP %d, want 405", resp.StatusCode)
	}
	// None of the failures may have touched the predict engine.
	if svc.PredictSimRuns() != 0 {
		t.Fatalf("error matrix ran %d simulations, want 0", svc.PredictSimRuns())
	}
}

// metricsContain scrapes GET /metrics and reports whether a line is
// present.
func metricsContain(t *testing.T, c *Client, line string) bool {
	t.Helper()
	resp, err := c.http().Get(c.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Contains(string(body), line)
}
