// Package harness builds algorithm instances from declarative specs, runs
// them under configurable adversaries in the simulator, and formats the
// results as aligned text or Markdown tables. It is the engine behind
// cmd/experiments and the benchmark suite: every experiment in DESIGN.md's
// index (E1–E10) is a function here returning a Table whose rows pair
// measured work/messages with the paper's closed-form bounds.
//
// Construction is registry-driven: Spec is a thin veneer over
// scenario.Scenario, and BuildMachines/BuildAdversary/Execute resolve
// names through the open registries (scenario.RegisterAlgorithm /
// RegisterAdversary) instead of switch statements. Spec.Adversary
// therefore accepts full adversary expressions — "fair", "crashing",
// "crashing(slow-set(fair),crash=0@5)", … — not just flat names.
package harness

import (
	"fmt"

	"doall/internal/scenario"
	"doall/internal/sim"
)

// Algo names a registered Do-All algorithm. It is a plain string alias so
// algorithm lists interoperate with the scenario registry directly.
type Algo = string

// The pre-registered algorithms.
const (
	AlgoAllToAll Algo = scenario.AlgoAllToAll
	AlgoObliDo   Algo = scenario.AlgoObliDo
	AlgoDA       Algo = scenario.AlgoDA
	AlgoPaRan1   Algo = scenario.AlgoPaRan1
	AlgoPaRan2   Algo = scenario.AlgoPaRan2
	AlgoPaDet    Algo = scenario.AlgoPaDet
)

// Adv is an adversary expression over the registered adversary names.
type Adv = string

// The pre-registered adversaries (each also usable as an expression head
// with parameters, e.g. "crashing(crash=0@5)").
const (
	AdvFair        Adv = scenario.AdvFair
	AdvRandom      Adv = scenario.AdvRandom
	AdvCrashing    Adv = scenario.AdvCrashing
	AdvSlowSet     Adv = scenario.AdvSlowSet
	AdvStageDet    Adv = scenario.AdvStageDet
	AdvStageOnline Adv = scenario.AdvStageOnline
)

// Spec declares one simulation run. It mirrors scenario.Scenario field
// for field (Scenario() converts) and is kept for the experiment tables
// and benchmarks that predate the Scenario API.
type Spec struct {
	Algo Algo
	P, T int
	// Q is the progress-tree arity (DA only; default 2).
	Q int
	// D is the message-delay bound.
	D int64
	// Adversary selects the d-adversary expression (default AdvFair).
	Adversary Adv
	// Seed drives all randomness (schedule search, machine randomness,
	// random adversary).
	Seed int64
	// SearchRestarts bounds permutation-list search work (default 32).
	SearchRestarts int
	// MaxSteps overrides the simulator's step cap (0 = default).
	MaxSteps int64
}

// Scenario converts the spec to its declarative form.
func (s Spec) Scenario() scenario.Scenario {
	return scenario.Scenario{
		Algorithm:      s.Algo,
		Adversary:      s.Adversary,
		P:              s.P,
		T:              s.T,
		Q:              s.Q,
		D:              s.D,
		Seed:           s.Seed,
		SearchRestarts: s.SearchRestarts,
		MaxSteps:       s.MaxSteps,
	}.WithDefaults()
}

// BuildMachines constructs the processor machines for the spec through
// the algorithm registry.
func BuildMachines(s Spec) ([]sim.Machine, error) {
	return s.Scenario().Machines()
}

// BuildAdversary constructs the adversary for the spec through the
// adversary registry (resolving combinator expressions).
func BuildAdversary(s Spec) (sim.Adversary, error) {
	return s.Scenario().BuildAdversary()
}

// Execute builds and runs the spec once. Like sim.Run, it returns a
// partial Result alongside step-cap errors.
func Execute(s Spec) (*sim.Result, error) {
	out, err := scenario.Run(s.Scenario())
	if out == nil {
		return nil, err
	}
	return out.Sim, err
}

// Avg holds trial-averaged complexity measures.
type Avg = scenario.Avg

// ExecuteAvg runs the spec `trials` times with seeds seed, seed+1, … and
// averages work, messages, and completion time. Use it for randomized
// algorithms and the random adversary; deterministic spec+seed pairs just
// return the same value each trial.
func ExecuteAvg(s Spec, trials int) (Avg, error) {
	if trials < 1 {
		trials = 1
	}
	sc := s.Scenario()
	sc.Trials = trials
	a, err := scenario.RunAvg(sc)
	if err != nil {
		return Avg{}, fmt.Errorf("harness: %w", err)
	}
	return a, nil
}
