// Package sim is a deterministic discrete-time simulator of the
// asynchronous message-passing model of Kowalski & Shvartsman (Section 2).
//
// Time advances in global units (the smallest gap between any two clock
// ticks of any processor; unknown to the processors themselves). At every
// unit an Adversary decides which processors take a local step and may
// crash processors; it also assigns each message a delivery delay of at
// most d units. Work and message complexity are accounted exactly as in
// Definitions 2.1 and 2.2: every local step of a live, non-halted processor
// costs one work unit until the problem is solved (all tasks performed and
// at least one processor informed), and a broadcast to m recipients costs m
// point-to-point messages.
package sim

import (
	"errors"

	"doall/internal/bitset"
)

// Message is a point-to-point message in flight or delivered.
type Message struct {
	// From and To are processor ids.
	From, To int
	// SentAt is the global time at which the send step occurred.
	SentAt int64
	// DeliverAt is the global time at which the message enters the
	// recipient's inbox. Invariant: SentAt < DeliverAt ≤ SentAt + d.
	DeliverAt int64
	// Payload is the algorithm-specific content. Payloads must be treated
	// as immutable by receivers (they are shared between the recipients of
	// one multicast).
	Payload any
}

// StepResult is what a processor's single local step produced.
type StepResult struct {
	// Performed lists ids of tasks executed during this step. In the
	// paper's unit-cost model a step performs at most one task; machines
	// must respect that (the simulator enforces it).
	Performed []int
	// Broadcast, when non-nil, is a payload multicast to every other
	// processor (p-1 point-to-point messages).
	Broadcast any
	// Sends lists additional point-to-point messages (used by the
	// message-frugal gossip variants; one message each). A step may use
	// Sends and Broadcast together, though the standard algorithms use at
	// most one of them.
	Sends []Send
	// Halt indicates the processor voluntarily halts after this step. Per
	// Proposition 2.1 correct algorithms halt only when they know all
	// tasks are done; the simulator records but does not forbid early
	// halts (the lower-bound experiments rely on observing them).
	Halt bool
}

// Send is a directed point-to-point message produced by a step.
type Send struct {
	To      int
	Payload any
}

// Payload is the optional interface for wire-size-aware message payloads.
// Payloads implementing it contribute their encoded size to Result.Bytes;
// the engine queries the size once per multicast, never per recipient.
// Implementations must be immutable once sent: one payload value is shared,
// uncopied, by every recipient of a multicast (and by the sender).
type Payload interface {
	// WireSize returns the encoded size of the payload in bytes.
	WireSize() int
}

// Multicast is one broadcast stored once, regardless of recipient count.
// The engine materializes per-recipient Message values only at delivery
// time, into reused inbox slices, so a broadcast costs O(1) allocations
// instead of the p-1 of the legacy engine.
type Multicast struct {
	// From is the sender's processor id.
	From int
	// SentAt is the global time of the send step.
	SentAt int64
	// Payload is the shared, immutable content.
	Payload any
	// Recipients is the recipient set for uniform-delay multicasts (every
	// recipient shares one delivery time, so one timing-wheel event covers
	// the whole set). It is nil when the adversary assigned non-uniform
	// delays and the multicast was scheduled per recipient.
	Recipients *bitset.Set
}

// Machine is the step-machine interface every Do-All algorithm implements.
// One Machine instance is one processor's local state.
type Machine interface {
	// Step executes one local step: process all messages in inbox (in one
	// unit of work, per the model), optionally perform a task, optionally
	// broadcast. It is called only for live, non-halted processors.
	//
	// The inbox slice is owned by the engine and reused after Step
	// returns: machines must consume the messages during the call and
	// must not retain the slice (or pointers into it). Copy any Message
	// that needs to outlive the step.
	Step(now int64, inbox []Message) StepResult
	// KnowsAllDone reports whether this processor's local knowledge
	// implies every task has been performed.
	KnowsAllDone() bool
}

// TaskIntender is an optional Machine extension exposing which task the
// machine would perform on its next step, or -1 when it would not perform
// any. Adaptive adversaries (Theorem 3.4's construction) use it to delay
// processors that are about to perform protected tasks.
type TaskIntender interface {
	NextTask() int
}

// Cloner is an optional Machine extension for deterministic machines whose
// state can be deep-copied. The off-line adversary of Theorem 3.1 clones
// machines to look ahead one stage.
type Cloner interface {
	CloneMachine() Machine
}

// View is the adversary's omniscient picture of the system at the start of
// a time unit.
type View struct {
	// Now is the current global time.
	Now int64
	// P is the number of processors; T the number of tasks.
	P, T int
	// DoneTasks[z] reports whether task z has been performed by anyone.
	DoneTasks []bool
	// Undone is the number of tasks not yet performed.
	Undone int
	// Machines exposes processor state for intent probing and cloning.
	// Adversaries must not call Step on these.
	Machines []Machine
	// Inboxes[i] holds the messages delivered to processor i but not yet
	// consumed by a step. Adversaries must treat them as read-only; the
	// off-line lower-bound adversary copies them into machine clones when
	// looking a stage ahead.
	Inboxes [][]Message
	// Crashed[i] and Halted[i] report processor i's status.
	Crashed, Halted []bool
	// InFlight is the number of undelivered messages.
	InFlight int
}

// Decision is the adversary's scheduling choice for one time unit.
type Decision struct {
	// Active lists processors that take a local step this unit. Crashed
	// and halted processors in the list are ignored.
	Active []int
	// Crash lists processors that crash at the start of this unit.
	Crash []int
	// NextWake, when positive and Active is empty (or contains only
	// crashed/halted processors), promises that the adversary will not
	// activate any processor strictly before time NextWake. The engine
	// uses the promise to fast-forward idle stretches: global time jumps
	// to min(NextWake, next message delivery) instead of ticking through
	// units in which nothing can happen. Zero means no promise (the
	// engine ticks unit by unit, exactly like the legacy engine).
	//
	// The promise covers every Schedule side effect, not just
	// activations: the skipped units' Schedule calls never happen, so an
	// adversary whose Schedule does anything time-dependent before
	// NextWake — injecting a crash at an exact time, in particular —
	// must clamp NextWake to that time (see adversary.Crashing).
	NextWake int64
}

// Adversary controls asynchrony: per-unit scheduling, crashes, and message
// delays. Implementations must respect the d-adversary contract: Delay
// must return a value in [1, D()].
type Adversary interface {
	// D returns the message-delay bound d ≥ 1 this adversary honors.
	D() int64
	// Schedule is called once per global time unit.
	Schedule(v *View) Decision
	// Delay returns the delivery delay (in global time units, ≥ 1 and
	// ≤ D()) for a message from processor `from` to `to` sent at `sentAt`.
	Delay(from, to int, sentAt int64) int64
}

// MulticastDelayer is an optional Adversary extension that assigns the
// delays of a whole multicast in one call, so a broadcast costs the
// adversary one invocation instead of p-1. Implementations fill
// out[j] ∈ [1, D()] for every recipient j != from (out has length p;
// out[from] is ignored). Adversaries that draw delays from a random
// stream must consume it in ascending recipient order, matching the
// per-recipient Delay loop, so that both engine paths see identical
// delay sequences. Adversaries that do not implement the interface are
// adapted automatically: the engine falls back to one Delay call per
// recipient.
type MulticastDelayer interface {
	DelayMulticast(from int, sentAt int64, out []int64)
}

// Result aggregates the complexity measures of one execution.
type Result struct {
	// Solved reports whether all tasks were performed and some processor
	// learned it before the step cap.
	Solved bool
	// SolvedAt is the global time σ at which the problem became solved
	// (all tasks done and ≥ 1 processor informed); -1 if never.
	SolvedAt int64
	// Work is W of Definition 2.1: total local steps of live processors
	// summed up to and including time σ.
	Work int64
	// Messages is M of Definition 2.2: point-to-point messages sent up to
	// and including time σ.
	Messages int64
	// TotalSteps and TotalMessages extend the counts to the whole
	// execution (until every processor halted or crashed, or the cap).
	TotalSteps, TotalMessages int64
	// Bytes is the wire volume (in bytes) of the point-to-point messages
	// counted in Messages, for payloads that implement
	// interface{ WireSize() int }; other payloads contribute zero. Byte
	// volume is an engineering metric — the paper's message complexity is
	// the count in Messages.
	Bytes int64
	// TaskExecutions counts every task performance, with multiplicity.
	TaskExecutions int64
	// PrimaryExecutions counts performances of tasks not performed by
	// anyone at any earlier time unit (Section 4: "primary"); concurrent
	// first performances all count. SecondaryExecutions is the rest.
	PrimaryExecutions, SecondaryExecutions int64
	// PerProcWork[i] is the number of steps processor i was charged.
	PerProcWork []int64
	// FirstDoneAt[z] is the time task z was first performed, or -1.
	FirstDoneAt []int64
	// HaltedEarly reports whether some processor halted before the
	// problem was solved (a Proposition 2.1 violation by the algorithm).
	HaltedEarly bool
}

// Config configures a simulation run.
type Config struct {
	// P is the number of processors; machines must have length P.
	P int
	// T is the number of tasks.
	T int
	// MaxSteps caps global time to guard against non-terminating
	// executions; 0 means the default of 10^7.
	MaxSteps int64
	// StopAtSolved stops the simulation at time σ instead of running
	// until all processors halt. Work/Messages are identical either way;
	// TotalSteps/TotalMessages differ.
	StopAtSolved bool
	// Observer, when non-nil, receives a callback at every observable
	// event of the execution (see Observer). Nil costs nothing on the hot
	// path. The legacy reference engine (RunLegacy) ignores it.
	Observer Observer
}

// ErrStepCap is returned when the simulation hits MaxSteps before the
// problem is solved.
var ErrStepCap = errors.New("sim: step cap exceeded before Do-All was solved")
