package doall_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoInternalImportsOutsideModuleRoot enforces the layering contract
// of the Scenario API redesign: only the module root package may reach
// into doall/internal/...; commands and examples must live entirely on
// the public surface. (CI additionally greps for the same pattern.)
func TestNoInternalImportsOutsideModuleRoot(t *testing.T) {
	for _, dir := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				if strings.Contains(imp.Path.Value, "doall/internal") {
					t.Errorf("%s imports %s: cmd/ and examples/ must use the public doall API only", path, imp.Path.Value)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
