package scenario

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doall/internal/bounds"
	"doall/internal/sim"
)

// SweepConfig declares an (algorithm, adversary, p, t, d) grid to measure.
// The sweep runner is the scale harness behind cmd/experiments -sweep and
// the BENCH_*.json perf baselines: it fans the grid's cells across worker
// goroutines (cells are independent simulations, so sharding is trivially
// safe) while keeping every cell's seed — and therefore every cell's
// Result — deterministic regardless of worker count or scheduling.
type SweepConfig struct {
	// Algos, Ps, Ts, Ds span the grid; every combination is one cell.
	Algos []string
	Ps    []int
	Ts    []int
	Ds    []int64
	// Adversary applies to every cell (default "fair") when Adversaries
	// is empty.
	Adversary string
	// Adversaries, when non-empty, adds an adversary-expression axis to
	// the grid: every cell is measured under every listed expression.
	Adversaries []string
	// BaseSeed feeds the per-cell seed derivation (CellSeed).
	BaseSeed int64
	// Trials runs each cell this many times with seeds seed, seed+1, …
	// and averages (default 1).
	Trials int
	// Workers bounds sweep concurrency; 0 means GOMAXPROCS.
	Workers int
	// MaxSteps overrides the simulator step cap per run (0 = default).
	MaxSteps int64
	// Shards is each cell's intra-run parallelism (Scenario.Shards): 0/1
	// sequential, ShardsAuto resolves per cell from GOMAXPROCS and the
	// cell's p. Shards changes only wall-clock time (NsPerRun); every
	// model measure is byte-identical at any value, so it does not enter
	// cell seeds. Intra-run shards multiply with sweep Workers — prefer
	// Workers for wide grids and Shards for grids of few huge cells.
	Shards int
	// Q is each cell's DA progress-tree arity (Scenario.Q); 0 means the
	// default binary tree. Like the adversary axis it is deliberately not
	// folded into cell seeds, so DA(q) variants of a cell stay seed-
	// comparable with the recorded q = 2 baselines.
	Q int
	// Theory adds the paper's closed-form curves to every cell:
	// LowerBound (Theorems 3.1/3.4), DAUpperBound (Theorem 5.5 with
	// ε derived from the cell's q via bounds.EpsilonForQ — ε = 0.5 at the
	// default q = 2, as in experiment E6), PAUpperBound (Theorems
	// 6.2/6.3), and the work/LowerBound overhead ratio, so BENCH files
	// carry measured-vs-theory columns.
	Theory bool
	// TickPhase, when non-nil, receives the summed parallel-tick phase
	// profile (sim.Engine.PhaseProfile) of every worker engine once the
	// sweep returns: how the sharded cells' wall-clock split across the
	// serial prefix (A1), the parallel shard stepping (A2), and the
	// serial reduction tail (B). Zero for fully sequential sweeps.
	TickPhase *sim.TickPhaseProfile
	// Progress, when non-nil, is invoked after every completed cell with
	// the number of cells finished so far and the grid total, driven off
	// the sweep's atomic completion counter. It is called concurrently
	// from worker goroutines and must be safe for concurrent use;
	// (done, total) pairs arrive in completion order, which under
	// sharding is not grid order. Keep it cheap — it runs on the workers'
	// critical path.
	Progress func(done, total int)
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Adversary == "" {
		c.Adversary = AdvFair
	}
	if len(c.Adversaries) == 0 {
		c.Adversaries = []string{c.Adversary}
	}
	if c.Trials < 1 {
		c.Trials = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Cell is one measured grid point of a sweep.
type Cell struct {
	Algo string `json:"algo"`
	// Adversary is the cell's adversary expression. Baselines recorded
	// before the adversary axis existed (BENCH_0.json) omit it; empty
	// means the report-wide adversary.
	Adversary string `json:"adversary,omitempty"`
	P         int    `json:"p"`
	T         int    `json:"t"`
	D         int64  `json:"d"`
	// Q is the DA progress-tree arity the cell ran with; 0 (omitted, as
	// in every baseline recorded before the q knob) means the default
	// binary tree. The DAUpperBound theory column derives its ε from it.
	Q      int   `json:"q,omitempty"`
	Seed   int64 `json:"seed"`
	Trials int   `json:"trials"`
	// Work, Messages, and SolvedAt are trial averages of the paper's
	// complexity measures (Definitions 2.1/2.2).
	Work     float64 `json:"work"`
	Messages float64 `json:"messages"`
	SolvedAt float64 `json:"solved_at"`
	// NsPerRun is wall-clock nanoseconds per simulation run (engine
	// throughput, not a model quantity).
	NsPerRun int64 `json:"ns_per_run"`
	// Shards is the resolved intra-run shard count the cell executed
	// with (1 = sequential engine; omitted in pre-parallel baselines).
	// It contextualizes NsPerRun only — model measures are shard-
	// invariant.
	Shards int `json:"shards,omitempty"`
	// Theory columns (present when SweepConfig.Theory): the paper's
	// closed-form curves at this cell's shape and the measured-over-lower-
	// bound overhead ratio. Bounds hide constants, so only growth and
	// crossovers are meaningful.
	LowerBound   float64 `json:"lower_bound,omitempty"`
	DAUpperBound float64 `json:"da_upper_bound,omitempty"`
	PAUpperBound float64 `json:"pa_upper_bound,omitempty"`
	WorkOverLB   float64 `json:"work_over_lb,omitempty"`
	// Predicted columns (present when the caller stamps an analytical
	// twin's estimates next to the measured values, e.g. cmd/experiments
	// -twin): the twin's point predictions for the cell's shape. Absent
	// when no twin was supplied or the shape is outside its envelope.
	PredWork     float64 `json:"pred_work,omitempty"`
	PredMessages float64 `json:"pred_messages,omitempty"`
	PredSolvedAt float64 `json:"pred_solved_at,omitempty"`
	// Err is non-empty when the cell failed (e.g. step cap exceeded).
	Err string `json:"err,omitempty"`
}

// CellSeed derives the deterministic seed of one grid cell: an FNV-1a
// hash of the cell coordinates folded with the base seed, so a cell's
// randomness depends only on what the cell is, never on sweep order,
// worker count, or which other cells share the grid. The adversary axis
// is deliberately not folded in: the same cell under different
// adversaries runs the same machines, isolating the adversary's effect
// (and keeping seeds comparable with pre-axis baselines).
func CellSeed(base int64, algo string, p, t int, d int64) int64 {
	h := fnv.New64a()
	io.WriteString(h, algo)
	var buf [8]byte
	for _, v := range []int64{int64(p), int64(t), d, base} {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	s := int64(h.Sum64() >> 1) // keep it non-negative
	if s == 0 {
		s = 1
	}
	return s
}

// Specs enumerates the grid cells as Scenarios in deterministic order
// (algorithm-major, then adversary, then p, t, d).
func (c SweepConfig) Specs() []Scenario {
	c = c.withDefaults()
	specs := make([]Scenario, 0, len(c.Algos)*len(c.Adversaries)*len(c.Ps)*len(c.Ts)*len(c.Ds))
	for _, algo := range c.Algos {
		for _, adv := range c.Adversaries {
			for _, p := range c.Ps {
				for _, t := range c.Ts {
					for _, d := range c.Ds {
						specs = append(specs, Scenario{
							Algorithm: algo,
							Adversary: adv,
							P:         p,
							T:         t,
							D:         d,
							Q:         c.Q,
							Seed:      CellSeed(c.BaseSeed, algo, p, t, d),
							MaxSteps:  c.MaxSteps,
							Shards:    c.Shards,
						})
					}
				}
			}
		}
	}
	return specs
}

// RunSweep measures every cell of the grid, sharding cells across Workers
// goroutines via a shared cursor. Results are returned in Specs order and
// are byte-for-byte identical for any worker count: each cell builds its
// own machines and adversary from its own derived seed, so no state is
// shared between shards. Each worker owns one reusable simulation engine
// (sim.Engine) carried across all of its cells and trials, so the wheel
// buckets, inboxes, result arrays, and multicast pool are allocated once
// per worker instead of once per run — buffer reuse that the engine
// guarantees is invisible in the Results.
func RunSweep(c SweepConfig) []Cell {
	cells, _ := RunSweepContext(context.Background(), c)
	return cells
}

// RunSweepContext is RunSweep with cooperative cancellation: when ctx ends,
// workers stop claiming cells and the current cell aborts at its next trial
// boundary. The returned error is ctx.Err() (nil for a complete sweep);
// cells that never ran, or were cut short mid-cell, carry the context error
// in Cell.Err with their identity columns intact, so a partial report stays
// schema-valid and shows exactly what is missing. Cancellation granularity
// is one trial: a single enormous cell is bounded by MaxSteps, not by ctx.
// With a background context the behavior — and every byte of the result —
// is identical to RunSweep's.
func RunSweepContext(ctx context.Context, c SweepConfig) ([]Cell, error) {
	c = c.withDefaults()
	specs := c.Specs()
	cells := make([]Cell, len(specs))
	ran := make([]bool, len(specs))
	workers := c.Workers
	if workers > len(specs) {
		workers = len(specs)
	}
	var cursor, completed atomic.Int64
	var wg sync.WaitGroup
	var phaseMu sync.Mutex
	var phase sim.TickPhaseProfile
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := sim.NewEngine()
			// Sharded cells park shard-worker goroutines on the engine;
			// without the Close a wide sweep would strand workers-1 × shards-1
			// goroutines until process exit.
			defer eng.Close()
			defer func() {
				// Fresh engine per worker, so its lifetime profile is
				// exactly this worker's contribution.
				p := eng.PhaseProfile()
				phaseMu.Lock()
				phase.A1 += p.A1
				phase.A2 += p.A2
				phase.B += p.B
				phase.Ticks += p.Ticks
				phaseMu.Unlock()
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				cells[i] = RunCellOn(ctx, eng, specs[i], c.Trials, c.Theory)
				ran[i] = true
				if done := int(completed.Add(1)); c.Progress != nil {
					c.Progress(done, len(specs))
				}
			}
		}()
	}
	wg.Wait()
	if c.TickPhase != nil {
		*c.TickPhase = phase
	}
	if err := ctx.Err(); err != nil {
		// Stamp identity columns onto the cells that never ran so the
		// partial report still names every grid point.
		for i := range cells {
			if !ran[i] {
				sc := specs[i]
				cells[i] = Cell{
					Algo: sc.Algorithm, Adversary: sc.Adversary,
					P: sc.P, T: sc.T, D: sc.D, Seed: sc.Seed, Trials: c.Trials,
					Err: err.Error(),
				}
			}
		}
		return cells, err
	}
	return cells, nil
}

// RunCellOn executes one grid cell — trials runs with seeds sc.Seed,
// sc.Seed+1, … on the caller's reusable engine — and averages the
// measures, optionally adding the closed-form theory columns. It is the
// unit of work the sweep runner shards across workers, exported so the
// service plane can run (and checkpoint) a sweep cell by cell: because a
// cell's seed is derived from its coordinates alone, running cells
// individually, in any order, on any engine, reproduces RunSweep's cells
// exactly (NsPerRun, a wall-clock observation, excepted). ctx cancels at
// trial boundaries; a canceled cell reports ctx's error, never a partial
// average.
func RunCellOn(ctx context.Context, eng *sim.Engine, sc Scenario, trials int, theory bool) Cell {
	return RunCellObserved(ctx, eng, sc, trials, theory, nil)
}

// RunCellObserved is RunCellOn with an Observer tapped into every trial's
// engine events (nil costs nothing); observers see events but never
// results, so observed cells stay byte-identical to unobserved ones.
func RunCellObserved(ctx context.Context, eng *sim.Engine, sc Scenario, trials int, theory bool, obs Observer) Cell {
	if trials < 1 {
		trials = 1
	}
	cell := Cell{
		Algo: sc.Algorithm, Adversary: sc.Adversary,
		// Q is stamped raw (not defaulted to 2) so cells from q-less
		// configs serialize exactly as the recorded baselines do.
		P: sc.P, T: sc.T, D: sc.D, Q: sc.Q, Seed: sc.Seed, Trials: trials,
		Shards: ResolveShards(sc.Shards, sc.P),
	}
	start := time.Now()
	for i := 0; i < trials; i++ {
		if err := ctx.Err(); err != nil {
			cell.Work, cell.Messages, cell.SolvedAt = 0, 0, 0
			cell.Err = err.Error()
			return cell
		}
		run := sc
		run.Seed = sc.Seed + int64(i)
		res, err := RunOnWith(eng, run, Options{Observer: obs})
		if err != nil {
			// Drop the partial sums: a failed cell reports only its error,
			// never a misleading fraction of an average.
			cell.Work, cell.Messages, cell.SolvedAt = 0, 0, 0
			cell.Err = err.Error()
			return cell
		}
		cell.Work += float64(res.Sim.Work)
		cell.Messages += float64(res.Sim.Messages)
		cell.SolvedAt += float64(res.Sim.SolvedAt)
	}
	cell.NsPerRun = time.Since(start).Nanoseconds() / int64(trials)
	cell.Work /= float64(trials)
	cell.Messages /= float64(trials)
	cell.SolvedAt /= float64(trials)
	if theory {
		addTheory(&cell)
	}
	return cell
}

// addTheory fills a cell's closed-form theory columns. The DA bound's ε
// follows the cell's progress-tree arity per Theorem 5.5 (EpsilonForQ);
// an unset q yields the default binary tree's ε = 0.5, which is what
// every recorded BENCH_*.json theory column was computed with.
func addTheory(c *Cell) {
	p, t, d := c.P, c.T, int(c.D)
	c.LowerBound = bounds.LowerBound(p, t, d)
	c.DAUpperBound = bounds.DAUpperBound(p, t, d, bounds.EpsilonForQ(c.Q))
	c.PAUpperBound = bounds.PAUpperBound(p, t, d)
	if c.Err == "" {
		c.WorkOverLB = bounds.Overhead(int64(c.Work), c.LowerBound)
	}
}

// SweepReport is the JSON envelope written by cmd/experiments -sweep;
// BENCH_*.json files at the repo root follow this schema so successive
// PRs can compare per-cell work/messages/ns trajectories.
type SweepReport struct {
	// Engine identifies the execution engine that produced the numbers.
	Engine string `json:"engine"`
	// GoMaxProcs records the worker ceiling the sweep ran under.
	GoMaxProcs int `json:"gomaxprocs"`
	// Shards is the requested intra-run shard policy (ShardsAuto = -1);
	// each cell additionally records its resolved count. Omitted (0) in
	// baselines recorded before the parallel tick engine.
	Shards int `json:"shards,omitempty"`
	// Adversary is the grid's adversary axis: one expression, or several
	// joined with ";".
	Adversary string `json:"adversary"`
	// BaseSeed reproduces the sweep exactly.
	BaseSeed int64 `json:"base_seed"`
	// Theory records whether the cells carry closed-form theory columns.
	Theory bool `json:"theory,omitempty"`
	// Partial marks a report flushed after cancellation (wall-clock
	// timeout or SIGINT): cells that never ran carry the cancellation
	// error instead of measurements. Complete reports omit it.
	Partial bool `json:"partial,omitempty"`
	// TickPhase is the summed parallel-tick phase breakdown across all
	// worker engines (seconds per phase plus the parallel tick count).
	// Omitted when the sweep never entered the parallel tick engine.
	TickPhase *TickPhaseStamp `json:"tick_phase_seconds,omitempty"`
	Cells     []Cell          `json:"cells"`
}

// TickPhaseStamp is the serialized form of sim.TickPhaseProfile: seconds
// the sweep's engines spent in each parallel-tick phase (A1 serial
// prefix, A2 parallel shard stepping, B serial reduction tail) and the
// number of parallel ticks they executed.
type TickPhaseStamp struct {
	A1Seconds float64 `json:"a1"`
	A2Seconds float64 `json:"a2"`
	BSeconds  float64 `json:"b"`
	Ticks     int64   `json:"ticks"`
}

// NewSweepReport runs the sweep and wraps it for serialization.
func NewSweepReport(c SweepConfig) SweepReport {
	r, _ := NewSweepReportContext(context.Background(), c)
	return r
}

// NewSweepReportContext runs the sweep under ctx and wraps whatever
// completed for serialization. When ctx ends before the grid does, the
// report is still well-formed — measured cells keep their numbers, unrun
// cells carry the cancellation error — and is marked Partial; the ctx
// error is returned alongside so callers can flush the partial report and
// still exit non-zero.
func NewSweepReportContext(ctx context.Context, c SweepConfig) (SweepReport, error) {
	c = c.withDefaults()
	var phase sim.TickPhaseProfile
	if c.TickPhase == nil {
		c.TickPhase = &phase
	}
	cells, err := RunSweepContext(ctx, c)
	rep := SweepReport{
		Engine:     "multicast-wheel-grouped",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     c.Shards,
		Adversary:  strings.Join(c.Adversaries, ";"),
		BaseSeed:   c.BaseSeed,
		Theory:     c.Theory,
		Partial:    err != nil,
		Cells:      cells,
	}
	if p := *c.TickPhase; p.Ticks > 0 {
		rep.TickPhase = &TickPhaseStamp{
			A1Seconds: p.A1.Seconds(),
			A2Seconds: p.A2.Seconds(),
			BSeconds:  p.B.Seconds(),
			Ticks:     p.Ticks,
		}
	}
	return rep, err
}

// WriteJSON serializes the report with stable formatting.
func (r SweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
