// Command doall runs one Do-All algorithm on one problem instance under a
// chosen d-adversary in the deterministic simulator and prints the
// measured work, message, and time complexity next to the paper's bounds.
//
// Usage:
//
//	doall -algo DA -p 16 -t 1024 -d 8 -q 2 -adversary fair
//	doall -algo PaRan1 -p 8 -t 256 -d 4 -trials 10
package main

import (
	"flag"
	"fmt"
	"os"

	"doall/internal/bounds"
	"doall/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "doall:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "DA", "algorithm: AllToAll, ObliDo, DA, PaRan1, PaRan2, PaDet")
		p         = flag.Int("p", 8, "number of processors")
		t         = flag.Int("t", 64, "number of tasks")
		d         = flag.Int64("d", 1, "message delay bound d")
		q         = flag.Int("q", 2, "progress-tree arity (DA only)")
		adv       = flag.String("adversary", "fair", "adversary: fair, random, stage-det, stage-online")
		seed      = flag.Int64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "trials to average over (varies the seed)")
		restarts  = flag.Int("restarts", 32, "permutation-search restarts")
	)
	flag.Parse()

	spec := harness.Spec{
		Algo:           harness.Algo(*algo),
		P:              *p,
		T:              *t,
		Q:              *q,
		D:              *d,
		Adversary:      harness.Adv(*adv),
		Seed:           *seed,
		SearchRestarts: *restarts,
	}

	if *trials <= 1 {
		res, err := harness.Execute(spec)
		if err != nil {
			return err
		}
		fmt.Printf("algorithm   %s  (p=%d t=%d d=%d adversary=%s)\n", *algo, *p, *t, *d, *adv)
		fmt.Printf("work        %d\n", res.Work)
		fmt.Printf("messages    %d\n", res.Messages)
		fmt.Printf("time        %d\n", res.SolvedAt)
		fmt.Printf("executions  %d (primary %d, secondary %d)\n",
			res.TaskExecutions, res.PrimaryExecutions, res.SecondaryExecutions)
		printBounds(*p, *t, int(*d), float64(res.Work))
		return nil
	}

	avg, err := harness.ExecuteAvg(spec, *trials)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm   %s  (p=%d t=%d d=%d adversary=%s, %d trials)\n", *algo, *p, *t, *d, *adv, *trials)
	fmt.Printf("E[work]     %.1f\n", avg.Work)
	fmt.Printf("E[messages] %.1f\n", avg.Messages)
	fmt.Printf("E[time]     %.1f\n", avg.Time)
	printBounds(*p, *t, int(*d), avg.Work)
	return nil
}

func printBounds(p, t, d int, work float64) {
	fmt.Printf("---- theory (constants suppressed) ----\n")
	fmt.Printf("lower bound Ω   %.0f\n", bounds.LowerBound(p, t, d))
	fmt.Printf("DA bound (ε=.5) %.0f\n", bounds.DAUpperBound(p, t, d, 0.5))
	fmt.Printf("PA bound        %.0f\n", bounds.PAUpperBound(p, t, d))
	fmt.Printf("oblivious p·t   %.0f\n", bounds.ObliviousWork(p, t))
	fmt.Printf("work/oblivious  %.3f\n", work/bounds.ObliviousWork(p, t))
}
