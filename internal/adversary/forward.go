package adversary

import "doall/internal/sim"

// forwardInner is the embedded half of every wrapping combinator
// (Crashing, Restarting, Omitting, SlowSetOver): it holds the wrapped
// adversary and forwards the whole delay contract plus every optional
// engine extension to it, so a wrapper stays on the engine's fast paths
// exactly when its inner adversary does. Centralizing the forwarding
// matters beyond deduplication: engines assert extensions on the
// outermost adversary only, so a wrapper that forgets to forward one
// silently strips the behavior from compositions (an omission fault
// vanishing inside crashing(omitting(fair)), say). A future sim
// extension needs a forwarding method here, once, and every combinator
// picks it up by promotion. Wrappers override what they specialize —
// Schedule, and Omitting also the Omitter pair.
//
// The inner adversary's extension implementations are resolved once at
// construction (forward), not per call — Delay*/Omit* run on the
// engine's per-broadcast path. Inner must not be replaced after
// construction, or the cached capabilities go stale.
type forwardInner struct {
	// Inner is the wrapped adversary (promoted, so wrapper.Inner reads
	// work; construct via the NewX constructors, never by literal).
	Inner sim.Adversary
	md    sim.MulticastDelayer
	ud    sim.UniformDelayer
	om    sim.Omitter
}

// forward builds the embedded forwarder, resolving the inner adversary's
// optional extensions once.
func forward(inner sim.Adversary) forwardInner {
	f := forwardInner{Inner: inner}
	f.md, _ = inner.(sim.MulticastDelayer)
	f.ud, _ = inner.(sim.UniformDelayer)
	f.om, _ = inner.(sim.Omitter)
	return f
}

// D implements sim.Adversary.
func (f forwardInner) D() int64 { return f.Inner.D() }

// Schedule implements sim.Adversary, forwarding unchanged; combinators
// that edit the decision override it.
func (f forwardInner) Schedule(v *sim.View, dec *sim.Decision) { f.Inner.Schedule(v, dec) }

// Delay implements sim.Adversary.
func (f forwardInner) Delay(from, to int, sentAt int64) int64 {
	return f.Inner.Delay(from, to, sentAt)
}

// DelayMulticast implements sim.MulticastDelayer, forwarding to the
// inner adversary's batched path when it has one and adapting its
// per-recipient Delay otherwise.
func (f forwardInner) DelayMulticast(from int, sentAt int64, out []int64) {
	if f.md != nil {
		f.md.DelayMulticast(from, sentAt, out)
		return
	}
	for j := range out {
		if j != from {
			out[j] = f.Inner.Delay(from, j, sentAt)
		}
	}
}

// DelayUniform implements sim.UniformDelayer, uniform exactly when the
// inner adversary is.
func (f forwardInner) DelayUniform(from int, sentAt int64) (int64, bool) {
	if f.ud != nil {
		return f.ud.DelayUniform(from, sentAt)
	}
	return 0, false
}

// InboxAgnostic implements sim.InboxAgnostic, forwarding the question
// to the wrapped adversary (asked once per run, so no caching needed).
func (f forwardInner) InboxAgnostic() bool {
	ia, ok := f.Inner.(sim.InboxAgnostic)
	return ok && ia.InboxAgnostic()
}

// OmitsAt implements sim.Omitter, forwarding to the wrapped adversary.
func (f forwardInner) OmitsAt(from int, sentAt int64) bool {
	return f.om != nil && f.om.OmitsAt(from, sentAt)
}

// Omit implements sim.Omitter, forwarding to the wrapped adversary.
func (f forwardInner) Omit(from, to int, sentAt int64) bool {
	return f.om != nil && f.om.Omit(from, to, sentAt)
}

// pendingLive returns how many processors remain live once the crashes
// already recorded in dec (by inner adversaries or earlier combinator
// layers in this same Schedule call) are applied. Fault injectors must
// base their never-kill-the-last-survivor guard on it, not on v.Crashed
// alone — the engine applies dec.Crash only after Schedule returns.
func pendingLive(v *sim.View, dec *sim.Decision) int {
	live := 0
	for i := 0; i < v.P; i++ {
		if !v.Crashed[i] {
			live++
		}
	}
	for k, pid := range dec.Crash {
		if pid < 0 || pid >= v.P || v.Crashed[pid] {
			continue
		}
		dup := false
		for _, q := range dec.Crash[:k] {
			if q == pid {
				dup = true
				break
			}
		}
		if !dup {
			live--
		}
	}
	return live
}

// crashScheduled reports whether pid already appears in dec.Crash (an
// inner adversary or an earlier event claimed the crash this unit).
func crashScheduled(dec *sim.Decision, pid int) bool {
	for _, q := range dec.Crash {
		if q == pid {
			return true
		}
	}
	return false
}
