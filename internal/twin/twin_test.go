package twin

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"doall/internal/scenario"
)

// benchFiles are the recorded grids the shipped TWIN_FIT.json is
// calibrated from, in calibration order.
var benchFiles = []string{"BENCH_0.json", "BENCH_1.json", "BENCH_2.json", "BENCH_3.json"}

func loadBenchSamples(t *testing.T) []Sample {
	t.Helper()
	var samples []Sample
	for _, name := range benchFiles {
		data, err := os.ReadFile("../../" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var rep scenario.SweepReport
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ss := SamplesFromReport(rep)
		if len(ss) == 0 {
			t.Fatalf("%s: no calibration samples", name)
		}
		samples = append(samples, ss...)
	}
	return samples
}

// TestCalibrationCellsInsideOwnBands is the twin's core honesty
// property: every recorded BENCH cell is (a) inside the envelope of the
// model fit on it and (b) inside the stated confidence band of all
// three measures. The band construction covers every calibration
// residual by definition, so a failure here means the fit, the band, or
// the feature evaluation drifted.
func TestCalibrationCellsInsideOwnBands(t *testing.T) {
	samples := loadBenchSamples(t)
	tw, err := Calibrate(samples, benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		pred, err := tw.Predict(Query{Algo: s.Algo, Adversary: s.Family, P: s.P, T: s.T, D: s.D, Q: s.Q})
		if err != nil {
			t.Fatalf("%s/%s p=%d t=%d d=%d: %v", s.Algo, s.Family, s.P, s.T, s.D, err)
		}
		if !pred.InEnvelope {
			t.Errorf("%s/%s p=%d t=%d d=%d: calibration cell outside its own envelope", s.Algo, s.Family, s.P, s.T, s.D)
		}
		check := func(measure string, actual, lo, hi float64) {
			if actual < lo || actual > hi {
				t.Errorf("%s/%s p=%d t=%d d=%d: %s=%v outside band [%v, %v]",
					s.Algo, s.Family, s.P, s.T, s.D, measure, actual, lo, hi)
			}
		}
		check("work", s.Work, pred.WorkLo, pred.WorkHi)
		check("messages", s.Messages, pred.MessagesLo, pred.MessagesHi)
		check("solved_at", s.SolvedAt, pred.SolvedAtLo, pred.SolvedAtHi)
	}
}

// TestCalibrateDeterministic shuffles the calibration samples and
// requires byte-identical serialized fits: the property CI's
// recalibrate-and-diff check stands on.
func TestCalibrateDeterministic(t *testing.T) {
	samples := loadBenchSamples(t)
	tw1, err := Calibrate(samples, benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]Sample(nil), samples...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	tw2, err := Calibrate(shuffled, benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := tw1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := tw2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("sample order changed the serialized fit")
	}
}

// TestFitFileReproducible pins the checked-in TWIN_FIT.json: calibrating
// from the checked-in BENCH grids must re-derive it byte for byte, so
// the shipped fit can never silently drift from its claimed sources.
func TestFitFileReproducible(t *testing.T) {
	want, err := os.ReadFile("../../TWIN_FIT.json")
	if err != nil {
		t.Fatalf("TWIN_FIT.json: %v (regenerate with: go run ./cmd/experiments -calibrate)", err)
	}
	tw, err := Calibrate(loadBenchSamples(t), benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("TWIN_FIT.json does not match a fresh calibration from the BENCH grids; regenerate with: go run ./cmd/experiments -calibrate")
	}
	// And the shipped bytes must load back cleanly.
	loaded, err := Load(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Groups) != len(tw.Groups) {
		t.Fatalf("loaded %d groups, calibrated %d", len(loaded.Groups), len(tw.Groups))
	}
}

// TestGoodnessOfFitRecorded sanity-checks the recorded fit quality: the
// big fair-family groups have plenty of samples and near-perfect
// log-space fits (the measures ARE the bound shapes up to constants),
// and every model records positive N and a positive band.
func TestGoodnessOfFitRecorded(t *testing.T) {
	tw, err := Calibrate(loadBenchSamples(t), benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(tw.Groups) == 0 {
		t.Fatal("no groups")
	}
	for _, g := range tw.Groups {
		for _, m := range []struct {
			name string
			m    Model
		}{{"work", g.Work}, {"messages", g.Messages}, {"solved_at", g.SolvedAt}} {
			if m.m.N < 1 || m.m.Band <= 0 {
				t.Errorf("%s/%s %s: degenerate model n=%d band=%v", g.Algo, g.Family, m.name, m.m.N, m.m.Band)
			}
			if m.m.R2 > 1+1e-9 {
				t.Errorf("%s/%s %s: R² = %v > 1", g.Algo, g.Family, m.name, m.m.R2)
			}
		}
	}
	g := tw.Group("DA", "fair")
	if g == nil {
		t.Fatal("no DA/fair group")
	}
	if g.Work.N < 30 {
		t.Fatalf("DA/fair calibrated on %d cells, expected the full grid stack", g.Work.N)
	}
	if g.Work.R2 < 0.9 {
		t.Fatalf("DA/fair work R² = %v; the work curve should be near-log-linear in the bound features", g.Work.R2)
	}
}

// TestEnvelopeAndFallbackSignals exercises the coverage verdicts the
// serving layer keys its twin-vs-simulation decision on.
func TestEnvelopeAndFallbackSignals(t *testing.T) {
	tw, err := Calibrate(loadBenchSamples(t), benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	// Outside every recorded grid: p far beyond any BENCH axis.
	pred, err := tw.Predict(Query{Algo: "DA", P: 1 << 22, T: 256, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred.InEnvelope {
		t.Fatal("p=2^22 should be outside the calibrated envelope")
	}
	if pred.BandRatio < 1 {
		t.Fatalf("band ratio %v < 1", pred.BandRatio)
	}
	// Unknown algorithm and unknown family are errors, not guesses.
	if _, err := tw.Predict(Query{Algo: "NoSuchAlgo", P: 16, T: 256, D: 1}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if _, err := tw.Predict(Query{Algo: "DA", Adversary: "nosuchfamily(x=1)", P: 16, T: 256, D: 1}); err == nil {
		t.Fatal("unknown adversary family should error")
	}
	// Degenerate shapes are rejected.
	if _, err := tw.Predict(Query{Algo: "DA", P: 0, T: 256, D: 1}); err == nil {
		t.Fatal("p=0 should error")
	}
}

// TestFamily pins the adversary-expression → family reduction.
func TestFamily(t *testing.T) {
	cases := map[string]string{
		"":                     "fair",
		"fair":                 "fair",
		"fair(delay=8)":        "fair",
		"crashing(crash=3@7)":  "crashing",
		" restarting(x=1) ":    "restarting",
		"slow-set(slow=9,d=4)": "slow-set",
	}
	for expr, want := range cases {
		if got := Family(expr); got != want {
			t.Errorf("Family(%q) = %q, want %q", expr, got, want)
		}
	}
}

// TestLoadRejectsBadFits pins the loader's validation.
func TestLoadRejectsBadFits(t *testing.T) {
	tw, err := Calibrate(loadBenchSamples(t), benchFiles)
	if err != nil {
		t.Fatal(err)
	}
	good, err := tw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(good); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	for name, mutate := range map[string]func(*Twin){
		"wrong version": func(w *Twin) { w.Version = FitVersion + 1 },
		"no groups":     func(w *Twin) { w.Groups = nil },
		"bad coef arity": func(w *Twin) {
			w.Groups[0].Work.Coef = w.Groups[0].Work.Coef[:2]
		},
		"degenerate envelope": func(w *Twin) { w.Groups[0].Envelope.MinP = 0 },
	} {
		var mutant Twin
		if err := json.Unmarshal(good, &mutant); err != nil {
			t.Fatal(err)
		}
		mutate(&mutant)
		bad, err := json.Marshal(&mutant)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); err == nil {
			t.Errorf("%s: Load accepted a corrupt fit", name)
		}
	}
	if _, err := Load([]byte(`{"version":1,"groups":[],"junk":true}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
}
