package bitset

// This file implements the versioned knowledge plane: an epoch-versioned
// bit set (Versioned) whose snapshots are immutable structural shares — a
// full base copied once per epoch plus a chain of sparse delta segments,
// one per snapshot — and the receiver-side cursor (Merger) that merges
// only the words a recipient has not seen yet.
//
// A snapshot still *means* the owner's full set at the snapshot's version;
// it is merely *represented* as base ∪ chain. Receivers that track the
// last version they merged from a sender consume only the chain suffix
// newer than that version — cost proportional to the new knowledge — and
// fall back to a full base-plus-chain merge on version gaps (first
// contact, reordering across a rebase, or a stale cursor). Because merges
// are monotone unions, a *stale* cursor is always safe: it can only cause
// redundant (idempotent) merging, never a missed word. That invariant is
// what lets batched consumers skip cursor maintenance entirely.
//
// Buffer lifecycle: snapshots are pooled through Recycle — the simulation
// engine hands a snapshot back to its owner once every recipient has
// consumed it — and a retired epoch returns its base and segment buffers
// to the owner's free lists once its last outstanding snapshot is
// recycled, so steady-state snapshotting allocates nothing.

// DeltaWord is one changed word of a delta segment: the word's index and
// its full value as of the segment's version. Values are monotone (bits
// only appear), so a newer value of the same word supersedes an older one.
type DeltaWord struct {
	Index int32
	Word  uint64
}

// segment is the immutable delta of one snapshot version: the words that
// changed since the previous snapshot of the same epoch, linked to the
// prior segment. Segments are shared by every later snapshot of the epoch.
type segment struct {
	ver   int64
	prev  *segment
	words []DeltaWord
}

// epoch is one base generation: an immutable full copy of the set at
// baseVer (nil means the empty set) plus the segments accumulated since.
// Epoch buffers are reclaimed when the epoch is retired (rebased away)
// and its last outstanding snapshot is recycled.
type epoch struct {
	baseVer     int64
	base        *Set // nil = empty base (first epoch)
	head        *segment
	segs        []*segment
	outstanding int
	retired     bool
	// arena backs the epoch's segment words: segments are immutable
	// subslices of it. Arenas are pooled with a uniform capacity floor
	// (one rebase threshold plus slack), so reuse never depends on which
	// pooled buffer pairs with which epoch — the property that keeps
	// steady-state snapshotting allocation-free.
	arena []DeltaWord
}

// Versioned is an epoch-versioned bit set with dirty-word tracking: every
// mutation stamps the touched word, and Snapshot folds the stamped words
// into an immutable delta segment. The zero value is unusable; create
// with NewVersioned.
type Versioned struct {
	set *Set
	ver int64
	// stamp[w] == ver+1 marks word w already recorded in dirty for the
	// pending segment; stamps are monotone so they never need clearing
	// between snapshots.
	stamp []int64
	dirty []int32
	cur   *epoch
	old   []*epoch // retired epochs with outstanding snapshots
	// epochWords counts delta words accumulated in the current epoch; when
	// it reaches rebaseThreshold the next snapshot starts a fresh epoch.
	epochWords int
	// free lists (segment nodes, base sets, snapshot headers, epochs,
	// segment-word arenas).
	freeSegs   []*segment
	freeSets   []*Set
	freeSnaps  []*Snapshot
	freeEps    []*epoch
	freeArenas [][]DeltaWord
}

// NewVersioned returns a versioned set with capacity for n bits, all
// clear, at version 0 with an empty base.
func NewVersioned(n int) *Versioned {
	s := New(n)
	return &Versioned{
		set:   s,
		stamp: make([]int64, len(s.words)),
		cur:   &epoch{},
	}
}

// rebaseThreshold returns the epoch delta-word budget for a set of nw
// words: once an epoch has accumulated about two full copies' worth of
// delta words, carrying the chain costs more than recopying the base.
func rebaseThreshold(nw int) int {
	t := 2 * nw
	if t < 32 {
		t = 32
	}
	return t
}

// Len returns the capacity in bits.
func (v *Versioned) Len() int { return v.set.n }

// Ver returns the version of the most recent snapshot (0 before the
// first).
func (v *Versioned) Ver() int64 { return v.ver }

// Bits exposes the underlying set for reads. Callers must not mutate it
// directly — mutations that bypass the dirty tracking would be missing
// from future snapshots.
func (v *Versioned) Bits() *Set { return v.set }

// Get reports whether bit i is set.
func (v *Versioned) Get(i int) bool { return v.set.Get(i) }

// Count returns the number of set bits.
func (v *Versioned) Count() int { return v.set.Count() }

// touch records word w as changed since the last snapshot.
func (v *Versioned) touch(w int) {
	if v.stamp[w] != v.ver+1 {
		v.stamp[w] = v.ver + 1
		v.dirty = append(v.dirty, int32(w))
	}
}

// Set sets bit i, stamping its word dirty.
func (v *Versioned) Set(i int) {
	v.set.check(i)
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	if v.set.words[w]&bit == 0 {
		v.set.words[w] |= bit
		v.touch(w)
	}
}

// UnionWith ORs a plain set into v (the monotone knowledge merge),
// stamping every changed word, and returns the number of bits newly set.
func (v *Versioned) UnionWith(other *Set) int {
	if other.n != v.set.n {
		panic("bitset: UnionWith length mismatch")
	}
	return v.unionDirty(other.words)
}

// UnionWithCollect is UnionWith, additionally appending every changed
// word (index and newly set bits) to out. It returns the bit count and
// the appended slice.
func (v *Versioned) UnionWithCollect(other *Set, out []DeltaWord) (int, []DeltaWord) {
	if other.n != v.set.n {
		panic("bitset: UnionWithCollect length mismatch")
	}
	added := 0
	dst := v.set.words
	for i, w := range other.words {
		if neu := w &^ dst[i]; neu != 0 {
			added += onesCount(neu)
			dst[i] |= neu
			v.touch(i)
			out = append(out, DeltaWord{int32(i), neu})
		}
	}
	return added, out
}

// MergeWords ORs src's words at the given indices into v (indices may
// repeat; repeats merge nothing new) and returns the number of bits newly
// set.
func (v *Versioned) MergeWords(src *Set, idxs []int32) int {
	added := 0
	dst := v.set.words
	for _, i := range idxs {
		if neu := src.words[i] &^ dst[i]; neu != 0 {
			added += onesCount(neu)
			dst[i] |= neu
			v.touch(int(i))
		}
	}
	return added
}

// MergeWordsCollect is MergeWords, appending changed words to out.
func (v *Versioned) MergeWordsCollect(src *Set, idxs []int32, out []DeltaWord) (int, []DeltaWord) {
	added := 0
	dst := v.set.words
	for _, i := range idxs {
		if neu := src.words[i] &^ dst[i]; neu != 0 {
			added += onesCount(neu)
			dst[i] |= neu
			v.touch(int(i))
			out = append(out, DeltaWord{i, neu})
		}
	}
	return added, out
}

// mergeSeg ORs one delta segment into v, returning newly set bits.
func (v *Versioned) mergeSeg(seg *segment) int {
	added := 0
	dst := v.set.words
	for _, dw := range seg.words {
		if neu := dw.Word &^ dst[dw.Index]; neu != 0 {
			added += onesCount(neu)
			dst[dw.Index] |= neu
			v.touch(int(dw.Index))
		}
	}
	return added
}

// mergeSegCollect is mergeSeg, appending changed words to out.
func (v *Versioned) mergeSegCollect(seg *segment, out []DeltaWord) (int, []DeltaWord) {
	added := 0
	dst := v.set.words
	for _, dw := range seg.words {
		if neu := dw.Word &^ dst[dw.Index]; neu != 0 {
			added += onesCount(neu)
			dst[dw.Index] |= neu
			v.touch(int(dw.Index))
			out = append(out, DeltaWord{dw.Index, neu})
		}
	}
	return added, out
}

// getSeg takes a segment node from the pool or allocates one.
func (v *Versioned) getSeg() *segment {
	if n := len(v.freeSegs); n > 0 {
		s := v.freeSegs[n-1]
		v.freeSegs = v.freeSegs[:n-1]
		return s
	}
	return new(segment)
}

// arenaAlloc reserves n contiguous DeltaWord slots in the epoch's arena.
// When the arena block is full a fresh block is started; segments already
// carved from the old block keep referencing it (their contents are
// immutable), the old block is simply not reused.
func (v *Versioned) arenaAlloc(ep *epoch, n int) []DeltaWord {
	if cap(ep.arena)-len(ep.arena) < n {
		floor := rebaseThreshold(len(v.set.words)) + len(v.set.words) + 8
		if floor < n {
			floor = n
		}
		var block []DeltaWord
		for len(v.freeArenas) > 0 {
			block = v.freeArenas[len(v.freeArenas)-1]
			v.freeArenas = v.freeArenas[:len(v.freeArenas)-1]
			if cap(block) >= floor {
				break
			}
			block = nil // undersized (pre-floor block): drop it
		}
		if block == nil {
			block = make([]DeltaWord, 0, floor)
		}
		ep.arena = block
	}
	start := len(ep.arena)
	ep.arena = ep.arena[:start+n]
	return ep.arena[start : start+n : start+n]
}

// Snapshot captures the set's current contents as an immutable versioned
// snapshot: the pending dirty words become this version's delta segment,
// chained onto the epoch. When the epoch's accumulated delta volume
// crosses the rebase threshold the snapshot instead starts a fresh epoch
// whose base is a full copy — the full-merge fallback recipients see as a
// version gap. The returned snapshot must be handed back via Recycle once
// no reference to it remains.
func (v *Versioned) Snapshot() *Snapshot {
	v.ver++
	if len(v.dirty) > 0 {
		seg := v.getSeg()
		seg.ver = v.ver
		seg.words = v.arenaAlloc(v.cur, len(v.dirty))
		for k, w := range v.dirty {
			seg.words[k] = DeltaWord{w, v.set.words[w]}
		}
		seg.prev = v.cur.head
		v.cur.head = seg
		v.cur.segs = append(v.cur.segs, seg)
		v.epochWords += len(v.dirty)
		v.dirty = v.dirty[:0]
	}
	if v.epochWords >= rebaseThreshold(len(v.set.words)) {
		v.rebase()
	}
	ep := v.cur
	var s *Snapshot
	if n := len(v.freeSnaps); n > 0 {
		s = v.freeSnaps[n-1]
		v.freeSnaps = v.freeSnaps[:n-1]
	} else {
		s = new(Snapshot)
	}
	*s = Snapshot{owner: v, ep: ep, ver: v.ver, head: ep.head}
	ep.outstanding++
	return s
}

// rebase retires the current epoch and starts a fresh one whose base is a
// full copy of the set at the current version.
func (v *Versioned) rebase() {
	prev := v.cur
	prev.retired = true

	var base *Set
	if n := len(v.freeSets); n > 0 {
		base = v.freeSets[n-1]
		v.freeSets = v.freeSets[:n-1]
		base.CopyFrom(v.set)
	} else {
		base = v.set.Clone()
	}
	var ep *epoch
	if n := len(v.freeEps); n > 0 {
		ep = v.freeEps[n-1]
		v.freeEps = v.freeEps[:n-1]
	} else {
		ep = new(epoch)
	}
	*ep = epoch{baseVer: v.ver, base: base, segs: ep.segs[:0]}
	v.cur = ep
	v.epochWords = 0

	if prev.outstanding == 0 {
		v.freeEpoch(prev)
	} else {
		v.old = append(v.old, prev)
	}
}

// freeEpoch returns a fully drained epoch's buffers to the pools.
func (v *Versioned) freeEpoch(ep *epoch) {
	for _, seg := range ep.segs {
		seg.prev = nil
		seg.words = nil
		v.freeSegs = append(v.freeSegs, seg)
	}
	if ep.base != nil {
		v.freeSets = append(v.freeSets, ep.base)
	}
	if ep.arena != nil {
		// Pool the epoch's (final) arena block; blocks it outgrew are
		// garbage, which only happens while capacities converge.
		v.freeArenas = append(v.freeArenas, ep.arena[:0])
	}
	*ep = epoch{segs: ep.segs[:0]}
	v.freeEps = append(v.freeEps, ep)
}

// Recycle hands a snapshot back to the pool. The caller guarantees no
// live reference to the snapshot remains; the simulation engine calls it
// (via the machine's PayloadRecycler hook) once every recipient of the
// snapshot's multicast has consumed or missed its delivery.
func (v *Versioned) Recycle(s *Snapshot) {
	if s.owner != v {
		return // foreign snapshot (e.g. from a cloned machine): not pooled
	}
	ep := s.ep
	*s = Snapshot{}
	v.freeSnaps = append(v.freeSnaps, s)
	ep.outstanding--
	if ep.retired && ep.outstanding == 0 {
		// Remove ep from the retired list (order not significant).
		for i, e := range v.old {
			if e == ep {
				last := len(v.old) - 1
				v.old[i] = v.old[last]
				v.old[last] = nil
				v.old = v.old[:last]
				break
			}
		}
		v.freeEpoch(ep)
	}
}

// OutstandingSnapshots reports snapshots handed out and not yet recycled
// (diagnostics and leak tests).
func (v *Versioned) OutstandingSnapshots() int {
	n := v.cur.outstanding
	for _, ep := range v.old {
		n += ep.outstanding
	}
	return n
}

// Reset restores the set to empty at version 0, keeping the pools. Epochs
// with still-outstanding snapshots are abandoned to the garbage collector
// (their buffers may still be referenced); fully drained ones are pooled.
func (v *Versioned) Reset() {
	v.set.ClearAll()
	v.ver = 0
	clear(v.stamp)
	v.dirty = v.dirty[:0]
	if v.cur.outstanding == 0 {
		v.freeEpoch(v.cur)
	}
	for _, ep := range v.old {
		if ep.outstanding == 0 {
			v.freeEpoch(ep)
		}
	}
	v.old = v.old[:0]
	var ep *epoch
	if n := len(v.freeEps); n > 0 {
		ep = v.freeEps[n-1]
		v.freeEps = v.freeEps[:n-1]
	} else {
		ep = new(epoch)
	}
	*ep = epoch{segs: ep.segs[:0]}
	v.cur = ep
	v.epochWords = 0
}

// Rejoin clears the set for a crash-restart while keeping the version
// counter monotone. It is the mid-run sibling of Reset: a revived
// processor must forget its knowledge, but its pre-crash snapshots may
// still be in flight, so versions must keep increasing — receivers whose
// cursor points at a pre-crash version then see every post-rejoin
// snapshot as a version gap and fall back to a full base-plus-chain
// merge, which is exactly the rebase-on-revive rule. The current epoch is
// retired (pooled once its outstanding snapshots drain) and replaced by
// an empty-based epoch primed to rebase: the next Snapshot immediately
// starts a fresh epoch whose base is a full copy, so it travels as a full
// (non-delta) payload.
func (v *Versioned) Rejoin() {
	v.set.ClearAll()
	// The pending dirty words describe pre-crash mutations of a set that
	// is now empty; drop them. Stamps are keyed to ver+1 and ver does not
	// advance here, so they must be cleared too or post-rejoin touches of
	// the same words would be missed.
	clear(v.stamp)
	v.dirty = v.dirty[:0]
	prev := v.cur
	prev.retired = true
	var ep *epoch
	if n := len(v.freeEps); n > 0 {
		ep = v.freeEps[n-1]
		v.freeEps = v.freeEps[:n-1]
	} else {
		ep = new(epoch)
	}
	*ep = epoch{baseVer: v.ver, segs: ep.segs[:0]}
	v.cur = ep
	// Prime the rebase: crossing the threshold makes the next Snapshot
	// retire this transitional epoch and emit a full-base snapshot.
	v.epochWords = rebaseThreshold(len(v.set.words))
	if prev.outstanding == 0 {
		v.freeEpoch(prev)
	} else {
		v.old = append(v.old, prev)
	}
}

// Clone returns a deep, independent copy at the same version. The clone
// starts a fresh epoch whose base is the current contents (a safe
// over-approximation of the state at the clone's version: merges are
// monotone, so recipients of the clone's snapshots can only receive
// knowledge the clone actually holds). Pools are not shared.
func (v *Versioned) Clone() *Versioned {
	c := &Versioned{
		set:   v.set.Clone(),
		ver:   v.ver,
		stamp: append([]int64(nil), v.stamp...),
		dirty: append([]int32(nil), v.dirty...),
		cur:   &epoch{baseVer: v.ver, base: v.set.Clone()},
	}
	return c
}

// Snapshot is an immutable versioned view of a Versioned set: the owner's
// full contents at version Ver, represented as the epoch base plus the
// delta chain up to Ver. Snapshots are shared, uncopied, by every
// recipient of a multicast and must be treated as read-only.
type Snapshot struct {
	owner *Versioned
	ep    *epoch
	ver   int64
	head  *segment
}

// Ver returns the snapshot's version.
func (s *Snapshot) Ver() int64 { return s.ver }

// BaseVer returns the version at which the snapshot's epoch base was
// captured; receivers whose cursor is older than this need a full merge.
func (s *Snapshot) BaseVer() int64 { return s.ep.baseVer }

// Len returns the capacity in bits.
func (s *Snapshot) Len() int { return s.owner.set.n }

// Base returns the epoch's immutable base set (nil = empty base).
func (s *Snapshot) Base() *Set { return s.ep.base }

// Delta returns the newest delta segment's words — what actually goes on
// the wire for in-sequence receivers — or nil when the snapshot is a
// fresh rebase (or nothing changed); then the wire carries the base.
func (s *Snapshot) Delta() []DeltaWord {
	if s.head == nil || s.head.ver != s.ver {
		return nil
	}
	return s.head.words
}

// WireDelta returns the delta-segment words a wire encoding of this
// snapshot carries and true, or (nil, false) when the snapshot has no
// chain (a fresh rebase or a never-changed epoch) and must travel as a
// full snapshot. The words are empty (but ok is true) when the version
// advanced with no changes.
func (s *Snapshot) WireDelta() ([]DeltaWord, bool) {
	if s.head == nil {
		return nil, false
	}
	if s.head.ver != s.ver {
		return nil, true
	}
	return s.head.words, true
}

// ChainLen returns the number of delta segments reachable from this
// snapshot (diagnostics).
func (s *Snapshot) ChainLen() int {
	n := 0
	for seg := s.head; seg != nil; seg = seg.prev {
		n++
	}
	return n
}

// Materialize overwrites dst with the snapshot's full meaning: the
// owner's complete set at version Ver.
func (s *Snapshot) Materialize(dst *Set) {
	if dst.n != s.owner.set.n {
		panic("bitset: Materialize length mismatch")
	}
	if s.ep.base != nil {
		dst.CopyFrom(s.ep.base)
	} else {
		dst.ClearAll()
	}
	for seg := s.head; seg != nil; seg = seg.prev {
		for _, dw := range seg.words {
			dst.words[dw.Index] |= dw.Word
		}
	}
}

// Merger is the receiver-side cursor of the versioned knowledge plane:
// last[i] is a lower bound on the newest version this receiver has merged
// from sender i. The bound may be stale — batched consumers skip cursor
// maintenance — and staleness is safe by monotonicity: a stale cursor
// merges redundant (idempotent) words, never misses one.
type Merger struct {
	p    int
	last []int64 // allocated on first use; nil means all cursors at 0
}

// NewMerger returns a cursor set for p senders, all at version 0. The
// cursor array is allocated lazily on first use: under the engine's
// batched delivery path most machines never maintain cursors (stale
// cursors are safe), and p machines × p senders of eager arrays would
// dominate machine-construction garbage at large p.
func NewMerger(p int) *Merger { return &Merger{p: p} }

// ensure materializes the cursor array.
func (m *Merger) ensure() []int64 {
	if m.last == nil {
		m.last = make([]int64, m.p)
	}
	return m.last
}

// Reset zeroes every cursor for a fresh execution.
func (m *Merger) Reset() { clear(m.last) }

// Clone returns an independent copy.
func (m *Merger) Clone() *Merger {
	c := &Merger{p: m.p}
	if m.last != nil {
		c.last = append([]int64(nil), m.last...)
	}
	return c
}

// Last returns the cursor for sender `from`.
func (m *Merger) Last(from int) int64 {
	if m.last == nil {
		return 0
	}
	return m.last[from]
}

// Note raises the cursor for sender `from` to ver (never lowers it).
func (m *Merger) Note(from int, ver int64) {
	last := m.ensure()
	if ver > last[from] {
		last[from] = ver
	}
}

// Merge folds snapshot s from sender `from` into dst and returns the
// number of bits newly set. In sequence (cursor ≥ base version) it merges
// only the chain suffix newer than the cursor — cost proportional to the
// new knowledge; behind the base (gap, first contact, stale cursor after
// a rebase) it falls back to a full base-plus-chain merge. Versions at or
// below the cursor merge nothing.
func (m *Merger) Merge(dst *Versioned, from int, s *Snapshot) int {
	last := m.ensure()
	u := last[from]
	if s.ver <= u {
		return 0
	}
	added := 0
	if u < s.ep.baseVer {
		if s.ep.base != nil {
			added += dst.UnionWith(s.ep.base)
		}
		for seg := s.head; seg != nil; seg = seg.prev {
			added += dst.mergeSeg(seg)
		}
	} else {
		for seg := s.head; seg != nil && seg.ver > u; seg = seg.prev {
			added += dst.mergeSeg(seg)
		}
	}
	last[from] = s.ver
	return added
}

// MergeCollect is Merge, appending every changed word (index and newly
// set bits) to out — receivers that must react to individual new bits
// (DA's progress-tree closure propagation) use it.
func (m *Merger) MergeCollect(dst *Versioned, from int, s *Snapshot, out []DeltaWord) (int, []DeltaWord) {
	last := m.ensure()
	u := last[from]
	if s.ver <= u {
		return 0, out
	}
	added, n := 0, 0
	if u < s.ep.baseVer {
		if s.ep.base != nil {
			n, out = dst.UnionWithCollect(s.ep.base, out)
			added += n
		}
		for seg := s.head; seg != nil; seg = seg.prev {
			n, out = dst.mergeSegCollect(seg, out)
			added += n
		}
	} else {
		for seg := s.head; seg != nil && seg.ver > u; seg = seg.prev {
			n, out = dst.mergeSegCollect(seg, out)
			added += n
		}
	}
	last[from] = s.ver
	return added, out
}

// AccumulateInto ORs the portion of snapshot s this receiver has not seen
// (per its cursor) into the plain scratch set acc, appending the touched
// word indices to idxs (repeats allowed), without updating the cursor or
// any destination set. Batch builders use it to construct the combined
// knowledge of one delivery group. It returns the extended index slice
// and whether the accumulation was dense (included a full base, so acc
// should be consumed by a full-width union rather than by index list).
func (m *Merger) AccumulateInto(acc *Set, from int, s *Snapshot, idxs []int32) ([]int32, bool) {
	u := m.Last(from)
	if s.ver <= u {
		return idxs, false
	}
	if u < s.ep.baseVer {
		if s.ep.base != nil {
			acc.OrWith(s.ep.base)
		}
		for seg := s.head; seg != nil; seg = seg.prev {
			for _, dw := range seg.words {
				acc.words[dw.Index] |= dw.Word
			}
		}
		return idxs, true
	}
	for seg := s.head; seg != nil && seg.ver > u; seg = seg.prev {
		for _, dw := range seg.words {
			acc.words[dw.Index] |= dw.Word
			idxs = append(idxs, dw.Index)
		}
	}
	return idxs, false
}
