package core

import (
	"fmt"
	"math/bits"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
	"doall/internal/tree"
)

// DA implements one processor of algorithm DA(q) (Section 5, Fig. 3): a
// message-passing re-interpretation of the Anderson–Woll shared-memory
// algorithm. Each processor holds a *replica* of a q-ary boolean progress
// tree with the jobs at its leaves. It traverses the tree in post-order,
// choosing the visiting order of the q subtrees of a depth-m node with the
// permutation π_{x[m]} ∈ Σ selected by the m-th q-ary digit x[m] of its
// pid. Instead of writing to shared memory it multicasts its tree whenever
// it completes a leaf or closes an interior node; received trees are
// merged monotonically into the replica, pruning the traversal.
//
// The replica's node bits are an epoch-versioned set: a broadcast is an
// immutable base-plus-delta-chain snapshot (O(changed words), not
// O(nodes)), received snapshots merge through a per-sender version
// cursor, and the interior-closure invariant is restored by upward
// propagation from the newly merged bits instead of an O(nodes)
// recompute — per-delivery cost proportional to the new knowledge.
//
// Work is O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε) for a suitable constant q and a
// low-contention Σ (Theorems 5.4, 5.5); messages are O(p·W) (Theorem 5.6).
type DA struct {
	pid    int
	q      int
	perms  perm.List // q permutations of [q]
	digits []int     // q-ary digits of pid, digits[m] used at depth m
	tree   *tree.Tree
	vers   *bitset.Versioned // the tree's versioned node bits
	mg     *bitset.Merger    // per-sender version cursor
	jobs   Jobs
	stack  []daFrame
	unit   int // tasks of the current leaf's job already performed
	halted bool
	// scratch collects merged delta words for closure propagation.
	scratch []bitset.DeltaWord
	comb    combinedPool // pooled batch accumulators
}

type daFrame struct {
	node  int
	depth int
	next  int // next ordinal (0..q) into the permutation at this depth
}

var (
	_ sim.Machine         = (*DA)(nil)
	_ sim.BatchConsumer   = (*DA)(nil)
	_ sim.TaskIntender    = (*DA)(nil)
	_ sim.Cloner          = (*DA)(nil)
	_ sim.Resetter        = (*DA)(nil)
	_ sim.Rejoiner        = (*DA)(nil)
	_ sim.PayloadRecycler = (*DA)(nil)
)

// DAConfig parameterizes the DA(q) family.
type DAConfig struct {
	P int // processors
	T int // tasks
	Q int // tree arity, 2 ≤ Q
	// Perms is the schedule list Σ: Q permutations of [Q]. If nil, a
	// low-contention list is required from the caller; use
	// perm.FindLowContentionList or perm.RotationList.
	Perms perm.List
}

// NewDA builds the p machines of algorithm DA(q).
func NewDA(cfg DAConfig) ([]sim.Machine, error) {
	if cfg.Q < 2 {
		return nil, fmt.Errorf("core: DA requires q ≥ 2, got %d", cfg.Q)
	}
	if len(cfg.Perms) != cfg.Q || cfg.Perms.N() != cfg.Q {
		return nil, fmt.Errorf("core: DA requires %d permutations of [%d], got %d of [%d]",
			cfg.Q, cfg.Q, len(cfg.Perms), cfg.Perms.N())
	}
	if err := perm.CheckList(cfg.Perms); err != nil {
		return nil, err
	}
	if cfg.P < 1 || cfg.T < 1 {
		return nil, fmt.Errorf("core: DA requires p ≥ 1 and t ≥ 1")
	}
	jobs := NewJobs(cfg.P, cfg.T)
	ms := make([]sim.Machine, cfg.P)
	for i := range ms {
		tr, _ := tree.NewForTasksVersioned(cfg.Q, jobs.N)
		m := &DA{
			pid:    i,
			q:      cfg.Q,
			perms:  cfg.Perms,
			digits: qDigits(i, cfg.Q, tr.Height()),
			tree:   tr,
			vers:   tr.Versioned(),
			mg:     bitset.NewMerger(cfg.P),
			jobs:   jobs,
		}
		m.stack = append(m.stack, daFrame{node: tr.Root(), depth: 0})
		ms[i] = m
	}
	return ms, nil
}

// qDigits returns the h least-significant base-q digits of pid, least
// significant first: digits[m] is used at tree depth m.
func qDigits(pid, q, h int) []int {
	d := make([]int, h)
	for m := 0; m < h; m++ {
		d[m] = pid % q
		pid /= q
	}
	return d
}

// Step implements sim.Machine. Each step merges pending messages (one work
// unit covers processing all of them, per the model) and then advances the
// traversal by one micro-operation: skip a finished subtree, descend into
// a child, perform one task of a leaf job, or close a node and multicast.
func (m *DA) Step(now int64, inbox []sim.Delivery) sim.StepResult {
	m.merge(inbox)
	return m.advance()
}

// StepBatched implements sim.BatchConsumer; see PA.StepBatched.
func (m *DA) StepBatched(now int64, batches []*sim.Batch, tail []sim.Delivery) sim.StepResult {
	for _, b := range batches {
		m.mergeBatch(b)
	}
	m.merge(tail)
	return m.advance()
}

// advance is the post-merge traversal body.
func (m *DA) advance() sim.StepResult {
	for {
		if len(m.stack) == 0 {
			// Traversal finished ⇒ root is marked ⇒ all tasks done.
			m.halted = true
			return sim.StepResult{Halt: true}
		}
		f := &m.stack[len(m.stack)-1]

		// A node completed by others (via merge) is popped for free: the
		// pruning happens during message processing already paid for. A
		// leaf whose job a peer finished is abandoned even mid-job.
		if m.tree.Done(f.node) {
			m.stack = m.stack[:len(m.stack)-1]
			m.unit = 0
			continue
		}

		if m.tree.IsLeaf(f.node) {
			// Perform the next task of this leaf's job.
			job := m.tree.LeafIndex(f.node)
			z := m.jobs.Start(job) + m.unit
			m.unit++
			if m.unit >= m.jobs.Size(job) {
				m.unit = 0
				m.tree.MarkLeaf(job)
				m.stack = m.stack[:len(m.stack)-1]
				r := sim.StepResult{Broadcast: m.snapshot()}
				r.Perform(z)
				return r
			}
			return sim.PerformStep(z)
		}

		// Interior node: descend into the next not-done child in the
		// order given by π_{x[depth]}, or close the node if exhausted.
		if f.next < m.q {
			ord := m.perms[m.digits[f.depth]]
			child := m.tree.Child(f.node, ord[f.next])
			f.next++
			if !m.tree.Done(child) {
				m.stack = append(m.stack, daFrame{node: child, depth: f.depth + 1})
				return sim.StepResult{} // one unit of traversal overhead
			}
			continue // skipping a done child is part of message processing
		}

		// All children done: close this node and share the news.
		m.tree.Mark(f.node)
		m.stack = m.stack[:len(m.stack)-1]
		halt := m.tree.AllDone() && len(m.stack) == 0
		m.halted = halt
		return sim.StepResult{Broadcast: m.snapshot(), Halt: halt}
	}
}

// merge applies received tree snapshots to the local replica: only the
// chain suffix the sender's version cursor says is new, with closure
// restored by propagating upward from the merged bits.
func (m *DA) merge(inbox []sim.Delivery) {
	for _, msg := range inbox {
		snap, ok := msg.Payload().(TreeSnapshot)
		if !ok || snap.S.Len() != m.tree.Size() {
			continue
		}
		m.scratch = m.scratch[:0]
		_, m.scratch = m.mg.MergeCollect(m.vers, msg.From(), snap.S, m.scratch)
		m.propagateChanges()
	}
}

// mergeBatch folds one shared delivery group into the replica; see
// PA.mergeBatch for the cache protocol.
func (m *DA) mergeBatch(b *sim.Batch) {
	if kc, ok := b.Combined.(*knowledgeCombined); ok {
		if kc.n == m.tree.Size() {
			m.applyCombined(kc)
		} else {
			m.mergeBatchEager(b)
		}
		return
	}
	if b.Combined != nil {
		m.mergeBatchEager(b)
		return
	}
	if !m.BuildCombined(b) {
		m.mergeBatchEager(b)
		return
	}
	m.applyCombined(b.Combined.(*knowledgeCombined))
}

// BuildCombined implements sim.CombinedBuilder; see PA.BuildCombined.
// The accumulation reads only the merge cursors and the batch's
// immutable tree snapshots — never the replica — so building ahead of
// the step and applying at the step is state-for-state identical to the
// sequential in-step build (closure propagation happens at apply time in
// both flows).
func (m *DA) BuildCombined(b *sim.Batch) bool {
	kc := m.comb.get(m.tree.Size())
	for _, mc := range b.MCs {
		ts, ok := mc.Payload.(TreeSnapshot)
		if !ok || ts.S.Len() != m.tree.Size() {
			m.comb.put(kc)
			return false
		}
		var dense bool
		kc.idxs, dense = m.mg.AccumulateInto(kc.bits, mc.From, ts.S, kc.idxs)
		kc.dense = kc.dense || dense
	}
	for _, mc := range b.MCs {
		m.mg.Note(mc.From, mc.Payload.(TreeSnapshot).S.Ver())
	}
	if 2*len(kc.idxs) >= len(kc.bits.Words()) {
		kc.dense = true
	}
	b.Combined, b.Builder = kc, int32(m.pid)
	return true
}

func (m *DA) applyCombined(kc *knowledgeCombined) {
	m.scratch = m.scratch[:0]
	if kc.dense {
		_, m.scratch = m.vers.UnionWithCollect(kc.bits, m.scratch)
	} else {
		_, m.scratch = m.vers.MergeWordsCollect(kc.bits, kc.idxs, m.scratch)
	}
	m.propagateChanges()
}

func (m *DA) mergeBatchEager(b *sim.Batch) {
	for _, mc := range b.MCs {
		if mc.From == m.pid {
			continue
		}
		ts, ok := mc.Payload.(TreeSnapshot)
		if !ok || ts.S.Len() != m.tree.Size() {
			continue
		}
		m.scratch = m.scratch[:0]
		_, m.scratch = m.mg.MergeCollect(m.vers, mc.From, ts.S, m.scratch)
		m.propagateChanges()
	}
}

// propagateChanges restores the interior-closure invariant for every bit
// newly set by the last merge (recorded in scratch as word deltas of new
// bits). Propagating from each new node is equivalent to the bottom-up
// recompute — an interior node's children can only become all-done when
// at least one of them is among the new bits — at new-knowledge cost.
func (m *DA) propagateChanges() {
	for _, dw := range m.scratch {
		base := int(dw.Index) << 6
		w := dw.Word
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			m.tree.PropagateUp(base + b)
		}
	}
}

// snapshot captures the progress tree for a broadcast: an O(changed
// words) versioned snapshot sharing the epoch base.
func (m *DA) snapshot() TreeSnapshot {
	return TreeSnapshot{S: m.vers.Snapshot()}
}

// RecyclePayload implements sim.PayloadRecycler; see PA.RecyclePayload.
func (m *DA) RecyclePayload(p any) {
	switch v := p.(type) {
	case TreeSnapshot:
		m.vers.Recycle(v.S)
	case *knowledgeCombined:
		m.comb.put(v)
	}
}

// KnowsAllDone implements sim.Machine.
func (m *DA) KnowsAllDone() bool { return m.tree.AllDone() }

// NextTask implements sim.TaskIntender: the task the next Step would
// perform, ignoring yet-undelivered messages, or -1 if the next step is
// pure traversal. It mirrors Step's control flow read-only.
func (m *DA) NextTask() int {
	depth := len(m.stack)
	unit := m.unit
	// Walk a virtual stack: copy indices only.
	type vf struct{ node, depth, next int }
	vs := make([]vf, depth)
	for i, f := range m.stack {
		vs[i] = vf{f.node, f.depth, f.next}
	}
	for len(vs) > 0 {
		f := &vs[len(vs)-1]
		if m.tree.Done(f.node) {
			vs = vs[:len(vs)-1]
			unit = 0
			continue
		}
		if m.tree.IsLeaf(f.node) {
			job := m.tree.LeafIndex(f.node)
			return m.jobs.Start(job) + unit
		}
		if f.next < m.q {
			ord := m.perms[m.digits[f.depth]]
			child := m.tree.Child(f.node, ord[f.next])
			f.next++
			if !m.tree.Done(child) {
				return -1 // next step descends, performing nothing
			}
			continue
		}
		return -1 // next step closes an interior node
	}
	return -1
}

// CloneMachine implements sim.Cloner (DA is deterministic).
func (m *DA) CloneMachine() sim.Machine {
	c := *m
	c.tree = m.tree.Clone()
	c.vers = c.tree.Versioned()
	c.mg = m.mg.Clone()
	c.stack = append([]daFrame(nil), m.stack...)
	c.scratch = nil
	c.comb = combinedPool{} // pooled buffers stay with the original
	// digits and perms are immutable; share them.
	return &c
}

// Reset implements sim.Resetter: the machine returns to its initial state
// without allocating (the snapshot and accumulator pools and stack
// capacity are kept), after which it replays the exact same traversal.
func (m *DA) Reset() {
	m.tree.ResetPadded(m.jobs.N)
	m.mg.Reset()
	m.stack = m.stack[:0]
	m.stack = append(m.stack, daFrame{node: m.tree.Root(), depth: 0})
	m.unit = 0
	m.halted = false
}

// Rejoin implements sim.Rejoiner: crash-restart re-entry with a fresh
// replica. The tree rejoins through the versioned set (versions stay
// monotone, padding leaves re-marked, the next broadcast is a full
// rebase — in-flight pre-crash snapshots stay valid), the per-sender
// cursors are zeroed, and the traversal restarts at the root with the
// same deterministic permutation digits.
func (m *DA) Rejoin() {
	m.tree.RejoinPadded(m.jobs.N)
	m.mg.Reset()
	m.stack = m.stack[:0]
	m.stack = append(m.stack, daFrame{node: m.tree.Root(), depth: 0})
	m.unit = 0
	m.halted = false
}

// Halted reports whether the machine has voluntarily halted.
func (m *DA) Halted() bool { return m.halted }

// TreeDoneLeaves exposes the replica's completed-leaf count (diagnostics).
func (m *DA) TreeDoneLeaves() int { return m.tree.CountDoneLeaves() }
