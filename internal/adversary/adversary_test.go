package adversary

import (
	"math/rand"
	"testing"

	"doall/internal/bounds"
	"doall/internal/core"
	"doall/internal/perm"
	"doall/internal/sim"
)

func solve(t *testing.T, p, tasks int, ms []sim.Machine, adv sim.Adversary) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{P: p, T: tasks}, ms, adv)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	return res
}

func daSet(t *testing.T, p, tasks, q int) []sim.Machine {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	l := perm.FindLowContentionList(q, q, 50, r).List
	ms, err := core.NewDA(core.DAConfig{P: p, T: tasks, Q: q, Perms: l})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestFairDelayBounds(t *testing.T) {
	a := NewFair(5)
	if a.D() != 5 {
		t.Fatal("wrong bound")
	}
	if d := a.Delay(0, 1, 10); d != 5 {
		t.Fatalf("Delay = %d, want 5", d)
	}
	a.Fixed = 2
	if d := a.Delay(0, 1, 10); d != 2 {
		t.Fatalf("Delay = %d, want 2", d)
	}
	a.Fixed = 9 // out of range → fall back to bound
	if d := a.Delay(0, 1, 10); d != 5 {
		t.Fatalf("Delay = %d, want clamped 5", d)
	}
}

func TestRandomDelaysWithinBound(t *testing.T) {
	a := NewRandom(7, 0.5, 3)
	for i := 0; i < 1000; i++ {
		d := a.Delay(0, 1, int64(i))
		if d < 1 || d > 7 {
			t.Fatalf("delay %d outside [1,7]", d)
		}
	}
}

func TestRandomSchedulesLiveness(t *testing.T) {
	// Even with tiny activity, at least one live processor steps.
	a := NewRandom(2, 0.0, 4)
	v := &sim.View{P: 3, Crashed: make([]bool, 3), Halted: make([]bool, 3)}
	var dec sim.Decision
	a.Schedule(v, &dec)
	if len(dec.Active) == 0 {
		t.Fatal("no processor scheduled")
	}
}

func TestRandomAdversarySolvesDA(t *testing.T) {
	ms := daSet(t, 4, 16, 2)
	solve(t, 4, 16, ms, NewRandom(3, 0.5, 5))
}

func TestCrashingRespectsSurvivorRule(t *testing.T) {
	inner := NewFair(1)
	a := NewCrashing(inner, []CrashEvent{{Pid: 0, At: 0}, {Pid: 1, At: 0}})
	v := &sim.View{P: 2, Crashed: make([]bool, 2), Halted: make([]bool, 2)}
	var dec sim.Decision
	a.Schedule(v, &dec)
	if len(dec.Crash) > 1 {
		t.Fatalf("crashed %d processors out of 2; must keep a survivor", len(dec.Crash))
	}
}

func TestSlowSetThrottles(t *testing.T) {
	a := NewSlowSet(2, []int{1}, 4)
	v := &sim.View{P: 2, Crashed: make([]bool, 2), Halted: make([]bool, 2)}
	// At now=1..3 the slow processor must not be scheduled; at 0 and 4 it is.
	for now := int64(0); now < 8; now++ {
		v.Now = now
		var dec sim.Decision
		a.Schedule(v, &dec)
		has1 := false
		for _, i := range dec.Active {
			if i == 1 {
				has1 = true
			}
		}
		if (now%4 == 0) != has1 {
			t.Fatalf("now=%d: slow processor scheduled=%v", now, has1)
		}
	}
}

func TestSlowSetSolvesDA(t *testing.T) {
	ms := daSet(t, 4, 16, 2)
	solve(t, 4, 16, ms, NewSlowSet(2, []int{2, 3}, 3))
}

func TestStageClock(t *testing.T) {
	c := newStageClock(4, 60) // L = min(4, 10) = 4
	if c.L != 4 {
		t.Fatalf("L = %d, want 4", c.L)
	}
	if c.stage(0) != 0 || c.stage(3) != 0 || c.stage(4) != 1 {
		t.Fatal("stage indexing wrong")
	}
	if !c.stageStart(0) || c.stageStart(1) || !c.stageStart(8) {
		t.Fatal("stageStart wrong")
	}
	for sent := int64(0); sent < 12; sent++ {
		d := c.delayToStageEnd(sent)
		if d < 1 || d > 4 {
			t.Fatalf("delayToStageEnd(%d) = %d outside [1,4]", sent, d)
		}
		if (sent+d)%4 != 0 {
			t.Fatalf("message sent at %d delivered at %d, not a stage boundary", sent, sent+d)
		}
	}

	// Tiny t: L = max(1, t/6).
	c = newStageClock(10, 5)
	if c.L != 1 {
		t.Fatalf("L = %d, want 1 for t=5", c.L)
	}
}

func TestStageDeterministicForcesLowerBoundShape(t *testing.T) {
	// Note the Theorem 3.1 adversary *delays* processors, and delayed
	// processors take no (charged) local steps — so its forced work can be
	// numerically below the benign full-speed adversary's. The claim to
	// check is that the work it forces is within a constant of the
	// Ω(t + p·min{d,t}·log_{d+1}(d+t)) bound and that it engages for
	// ≈ log_{3L}(t) stages.
	p, tasks, q, d := 8, 512, 2, 4

	ms := daSet(t, p, tasks, q)
	stage := NewStageDeterministic(int64(d), tasks)
	res := solve(t, p, tasks, ms, stage)

	if stage.Stages < 2 {
		t.Fatalf("stage adversary engaged only %d stages", stage.Stages)
	}
	lb := bounds.LowerBound(p, tasks, d)
	if float64(res.Work) < lb/8 {
		t.Fatalf("forced work %d too far below the Ω bound %.0f", res.Work, lb)
	}
	if res.Work < int64(tasks) {
		t.Fatalf("work %d below t", res.Work)
	}
}

func TestStageOnlineForcesLowerBoundShape(t *testing.T) {
	p, tasks, d := 8, 512, 4

	ms := core.NewPaRan2(p, tasks, 7)
	stage := NewStageOnline(int64(d), tasks)
	res := solve(t, p, tasks, ms, stage)

	if stage.Stages < 2 {
		t.Fatalf("online adversary engaged only %d stages", stage.Stages)
	}
	lb := bounds.LowerBound(p, tasks, d)
	if float64(res.Work) < lb/8 {
		t.Fatalf("forced work %d too far below the Ω bound %.0f", res.Work, lb)
	}
}

func TestStageOnlineProtectedTasksSurviveStages(t *testing.T) {
	// The adversary's purpose: while it is engaged, the problem cannot
	// finish — so σ must come after the last adversarial stage boundary.
	p, tasks, d := 4, 256, 4
	ms := core.NewPaRan2(p, tasks, 19)
	stage := NewStageOnline(int64(d), tasks)
	res := solve(t, p, tasks, ms, stage)
	minTime := stage.Stages * int64(d) // L = d here (d < t/6)
	if res.SolvedAt < minTime {
		t.Fatalf("solved at %d, before the %d adversarial stages ended (%d)",
			res.SolvedAt, stage.Stages, minTime)
	}
}

func TestStageAdversariesStillSolvable(t *testing.T) {
	// The adversaries must not block termination (they turn benign after
	// their stage budget). Exercise several shapes.
	for _, c := range []struct{ p, tasks, d int }{
		{2, 12, 2}, {4, 16, 16}, {4, 100, 4}, {1, 8, 3},
	} {
		ms := daSet(t, c.p, c.tasks, 2)
		solve(t, c.p, c.tasks, ms, NewStageDeterministic(int64(c.d), c.tasks))

		ms2 := core.NewPaRan2(c.p, c.tasks, 11)
		solve(t, c.p, c.tasks, ms2, NewStageOnline(int64(c.d), c.tasks))
	}
}

func TestStageOnlineAgainstPaDet(t *testing.T) {
	p, tasks := 4, 24
	jobs := core.NewJobs(p, tasks)
	r := rand.New(rand.NewSource(13))
	l := perm.FindLowDContentionList(p, jobs.N, 2, 20, r).List
	ms, err := core.NewPaDet(p, tasks, l)
	if err != nil {
		t.Fatal(err)
	}
	solve(t, p, tasks, ms, NewStageOnline(4, tasks))
}

func TestMaxAdversarialStages(t *testing.T) {
	if maxAdversarialStages(64, 2) < 6 {
		t.Fatal("log2(64) should be ≥ 6")
	}
	if maxAdversarialStages(8, 1) < 1 {
		t.Fatal("base < 2 must clamp, not explode")
	}
}
