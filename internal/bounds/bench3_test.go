package bounds

import (
	"encoding/json"
	"os"
	"testing"
)

// TestTheoryColumnsPinnedToBench3 recomputes the theory columns of the
// BENCH_3.json grid (the p=65536 intra-run-sharding baseline) and
// requires exact agreement, extending the BENCH_2 pin to the largest
// recorded shape.
func TestTheoryColumnsPinnedToBench3(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_3.json")
	if err != nil {
		t.Skipf("BENCH_3.json not present: %v", err)
	}
	var report struct {
		Theory bool         `json:"theory"`
		Cells  []bench2Cell `json:"cells"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_3.json: %v", err)
	}
	if !report.Theory {
		t.Fatal("BENCH_3.json was not recorded with -theory")
	}
	if len(report.Cells) == 0 {
		t.Fatal("BENCH_3.json has no cells")
	}
	for _, c := range report.Cells {
		if c.P < 65536 {
			t.Errorf("%s p=%d t=%d d=%d: BENCH_3 is the p=65536 baseline, found a smaller cell", c.Algo, c.P, c.T, c.D)
		}
		if lb := LowerBound(c.P, c.T, c.D); !closeEnough(lb, c.LowerBound) {
			t.Errorf("%s p=%d t=%d d=%d: LowerBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, lb, c.LowerBound)
		}
		if da := DAUpperBound(c.P, c.T, c.D, bench2Eps); !closeEnough(da, c.DAUpperBound) {
			t.Errorf("%s p=%d t=%d d=%d: DAUpperBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, da, c.DAUpperBound)
		}
		if pa := PAUpperBound(c.P, c.T, c.D); !closeEnough(pa, c.PAUpperBound) {
			t.Errorf("%s p=%d t=%d d=%d: PAUpperBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, pa, c.PAUpperBound)
		}
		if ratio := Overhead(c.Work, c.LowerBound); !closeEnough(ratio, c.WorkOverLB) {
			t.Errorf("%s p=%d t=%d d=%d: work/lb = %v, recorded %v", c.Algo, c.P, c.T, c.D, ratio, c.WorkOverLB)
		}
	}
}

// TestTheoryColumnsHardcodedPinsP65536 is the file-independent half of
// the BENCH_3 pin: hand-copied evaluator outputs at the p=65536 shapes,
// so regenerating the benchmark file cannot silently re-baseline the
// bound evaluators at the corner the sharded engine is measured on.
func TestTheoryColumnsHardcodedPinsP65536(t *testing.T) {
	cases := []struct {
		p, t, d           int
		lower, daUp, paUp float64
	}{
		{65536, 1048576, 8, 4.356466806876231e+06, 4.582479872485031e+08, 1.7807036701008182e+07},
		{65536, 4194304, 8, 7.832982340164375e+06, 1.4533668864970062e+09, 5.342108810320383e+07},
	}
	for _, c := range cases {
		if lb := LowerBound(c.p, c.t, c.d); !closeEnough(lb, c.lower) {
			t.Errorf("p=%d t=%d d=%d: LowerBound = %v, want %v", c.p, c.t, c.d, lb, c.lower)
		}
		if da := DAUpperBound(c.p, c.t, c.d, bench2Eps); !closeEnough(da, c.daUp) {
			t.Errorf("p=%d t=%d d=%d: DAUpperBound = %v, want %v", c.p, c.t, c.d, da, c.daUp)
		}
		if pa := PAUpperBound(c.p, c.t, c.d); !closeEnough(pa, c.paUp) {
			t.Errorf("p=%d t=%d d=%d: PAUpperBound = %v, want %v", c.p, c.t, c.d, pa, c.paUp)
		}
	}
	// Shape sanity at the corner: at p=65536, t ≥ 2^20, d=8 the evaluators
	// must order LowerBound < PAUpperBound < DAUpperBound (with ε = 0.5 the
	// t·p^ε term dominates DA's bound at this width).
	for _, c := range cases {
		lb, pa, da := LowerBound(c.p, c.t, c.d), PAUpperBound(c.p, c.t, c.d), DAUpperBound(c.p, c.t, c.d, bench2Eps)
		if !(lb < pa && pa < da) {
			t.Errorf("p=%d t=%d d=%d: bound ordering broken: lb=%v pa=%v da=%v", c.p, c.t, c.d, lb, pa, da)
		}
	}
}
