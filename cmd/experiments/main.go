// Command experiments regenerates every experiment in DESIGN.md's index
// (E1–E10) and prints the result tables, optionally as Markdown for
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # quick scale, plain text
//	experiments -scale full      # the sizes used in EXPERIMENTS.md
//	experiments -markdown        # Markdown output
//	experiments -only E5,E6      # subset
//
// It is also the front-end of the sharded sweep runner, which fans an
// (algorithm, adversary, p, t, d) grid across GOMAXPROCS workers with
// deterministic per-cell seeds and emits a JSON perf report (the
// BENCH_*.json schema). -adv takes one adversary expression; -advs takes
// a ';'-separated list to add an adversary axis to the grid (';' because
// expressions like crashing(crash=0@3,crash=1@5) contain commas):
//
//	experiments -sweep                              # default grid to stdout
//	experiments -sweep -out BENCH_0.json            # write the baseline file
//	experiments -sweep -algos PaRan1,DA -p 64,256 -t 1024 -d 1,8,64 -trials 3
//	experiments -sweep -adv 'crashing(slow-set(fair))'
//	experiments -sweep -advs 'fair;crashing;slow-set(period=8)'
//	experiments -sweep -progress                    # live cells-done meter on stderr
//
// Profiling flags make sweep hot spots measurable without editing code;
// they wrap whichever workload runs (the sweep or the experiment tables):
//
//	experiments -sweep -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"doall"
)

func main() {
	// SIGINT/SIGTERM cancel the sweep context: in-flight cells stop at
	// their next trial boundary and the report is still written, with
	// "partial": true. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// sweepFlags holds the sweep-mode command line; config() converts it to a
// SweepConfig.
type sweepFlags struct {
	algos   string
	ps      string
	ts      string
	ds      string
	adv     string
	advs    string
	trials  int
	workers int
	seed    int64
	theory  bool
	maxmem  string
	shards  string
	q       int
}

// config assembles and validates the declarative sweep grid.
func (f sweepFlags) config() (doall.SweepConfig, error) {
	cfg := doall.SweepConfig{
		Adversary: f.adv,
		BaseSeed:  f.seed,
		Trials:    f.trials,
		Workers:   f.workers,
		Theory:    f.theory,
		Q:         f.q,
	}
	switch f.shards {
	case "", "1":
		cfg.Shards = 1
	case "auto":
		cfg.Shards = doall.ShardsAuto
	default:
		n, err := strconv.Atoi(f.shards)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("-shards wants a count ≥ 1 or 'auto', got %q", f.shards)
		}
		cfg.Shards = n
	}
	cfg.Algos = splitList(f.algos, ",")
	if f.advs != "" {
		cfg.Adversaries = splitList(f.advs, ";")
	}
	var err error
	if cfg.Ps, err = parseInts(f.ps); err != nil {
		return cfg, fmt.Errorf("-p: %w", err)
	}
	if cfg.Ts, err = parseInts(f.ts); err != nil {
		return cfg, fmt.Errorf("-t: %w", err)
	}
	dvals, err := parseInts(f.ds)
	if err != nil {
		return cfg, fmt.Errorf("-d: %w", err)
	}
	for _, d := range dvals {
		cfg.Ds = append(cfg.Ds, int64(d))
	}
	switch {
	case len(cfg.Algos) == 0:
		return cfg, fmt.Errorf("-algos: empty grid axis")
	case len(cfg.Ps) == 0:
		return cfg, fmt.Errorf("-p: empty grid axis")
	case len(cfg.Ts) == 0:
		return cfg, fmt.Errorf("-t: empty grid axis")
	case len(cfg.Ds) == 0:
		return cfg, fmt.Errorf("-d: empty grid axis")
	}
	// Reject unknown algorithms/adversaries before burning sweep time.
	// Probe with the grid's largest shape so shape-dependent parameters
	// (fair(delay=8) with -d 8, slow-set(slow=9) with -p 16) validate
	// against what the cells will actually run; smaller cells that still
	// violate a parameter surface as per-cell errors in the report.
	probe := doall.Scenario{P: maxInt(cfg.Ps), T: maxInt(cfg.Ts), D: maxInt64(cfg.Ds), Seed: 1}
	advs := cfg.Adversaries
	if len(advs) == 0 {
		advs = []string{cfg.Adversary}
	}
	for _, algo := range cfg.Algos {
		for _, adv := range advs {
			probe.Algorithm, probe.Adversary = algo, adv
			if err := probe.Validate(); err != nil {
				return cfg, err
			}
		}
	}
	// Pre-estimate per-worker memory for the largest grid shape and fail
	// fast with a clear error instead of OOMing mid-sweep.
	if f.maxmem != "" {
		budget, err := parseBytes(f.maxmem)
		if err != nil {
			return cfg, fmt.Errorf("-maxmem: %w", err)
		}
		if est := doall.EstimateSweepMemory(cfg); est > budget {
			return cfg, fmt.Errorf(
				"estimated sweep memory %s (largest shape p=%d t=%d × concurrent workers) exceeds -maxmem %s; shrink the grid, lower -workers, or raise the budget",
				formatBytes(est), maxInt(cfg.Ps), maxInt(cfg.Ts), formatBytes(budget))
		}
	}
	return cfg, nil
}

// parseBytes parses a byte budget: a plain integer, or with a k/m/g/t
// suffix (binary units, case-insensitive, optional trailing 'b'/'ib').
func parseBytes(s string) (int64, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.TrimSuffix(s, "ib")
	s = strings.TrimSuffix(s, "b")
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1<<40, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad byte budget %q (want e.g. 4g, 512m, 1073741824)", orig)
	}
	return v * mult, nil
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func maxInt(vals []int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func maxInt64(vals []int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func run(args []string, w io.Writer) error { return runWithStderr(args, w, os.Stderr) }

// runWithStderr is run with an injectable stderr so the -progress meter is
// testable.
func runWithStderr(args []string, w, errw io.Writer) error {
	return runContext(context.Background(), args, w, errw)
}

// runContext is the full command body with an injectable context: when
// it is canceled (SIGINT, or the -timeout budget expiring), a running
// sweep stops at the next trial boundary and still writes its report,
// marked partial.
func runContext(ctx context.Context, args []string, w, errw io.Writer) error {
	var (
		f          sweepFlags
		scale      string
		markdown   bool
		only       string
		sweep      bool
		calibrate  bool
		benchList  string
		twinPath   string
		out        string
		progress   bool
		timeout    time.Duration
		version    bool
		cpuprofile string
		memprofile string
	)
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.StringVar(&scale, "scale", "quick", "experiment scale: quick or full")
	fs.BoolVar(&markdown, "markdown", false, "emit Markdown instead of plain text")
	fs.StringVar(&only, "only", "", "comma-separated experiment ids to run (default all)")
	fs.StringVar(&cpuprofile, "cpuprofile", "", "write a CPU profile of the workload to this file")
	fs.StringVar(&memprofile, "memprofile", "", "write an allocation profile to this file after the workload")
	fs.BoolVar(&progress, "progress", false, "sweep: print a live cells-completed meter to stderr")
	fs.DurationVar(&timeout, "timeout", 0, "sweep: wall-clock budget; on expiry the report is written with the cells completed so far, marked partial (0 = unlimited)")
	fs.BoolVar(&version, "version", false, "print the build version and exit")

	fs.BoolVar(&sweep, "sweep", false, "run the sharded (algo,adv,p,t,d) sweep instead of E1–E10")
	fs.StringVar(&out, "out", "", "sweep: write the JSON report to this file (default stdout)")
	fs.StringVar(&f.algos, "algos", "AllToAll,DA,PaRan1,PaDet", "sweep: comma-separated algorithms")
	fs.StringVar(&f.ps, "p", "16,64,256", "sweep: comma-separated processor counts")
	fs.StringVar(&f.ts, "t", "256,1024", "sweep: comma-separated task counts")
	fs.StringVar(&f.ds, "d", "1,8,64", "sweep: comma-separated delay bounds")
	fs.StringVar(&f.adv, "adv", "fair", "sweep: adversary expression ("+strings.Join(doall.RegisteredAdversaries(), ", ")+")")
	fs.StringVar(&f.advs, "advs", "", "sweep: ';'-separated adversary expressions (adds a grid axis; overrides -adv)")
	fs.IntVar(&f.trials, "trials", 1, "sweep: runs per cell (averaged)")
	fs.IntVar(&f.workers, "workers", 0, "sweep: worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&f.seed, "seed", 0, "sweep: base seed for per-cell seed derivation")
	fs.BoolVar(&f.theory, "theory", false, "sweep: add LowerBound/DAUpperBound/PAUpperBound theory columns per cell")
	fs.StringVar(&f.maxmem, "maxmem", "", "sweep: fail fast if the estimated per-sweep memory exceeds this budget (e.g. 4g, 512m)")
	fs.StringVar(&f.shards, "shards", "1", "sweep: intra-run parallel shards per cell — a count, or 'auto' (results are identical at any value; only ns_per_run moves)")
	fs.IntVar(&f.q, "q", 0, "sweep: DA progress-tree arity (0 = default binary tree; the DA theory column's ε follows it)")
	fs.StringVar(&twinPath, "twin", "", "sweep: stamp pred_work/pred_messages/pred_solved_at columns from this calibrated twin fit (in-envelope cells only)")
	fs.BoolVar(&calibrate, "calibrate", false, "calibrate the analytical twin from recorded sweep reports (-bench) and write the fit (-out, default TWIN_FIT.json)")
	fs.StringVar(&benchList, "bench", "BENCH_0.json,BENCH_1.json,BENCH_2.json,BENCH_3.json", "calibrate: comma-separated recorded sweep reports to fit from")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if version {
		fmt.Fprintln(w, "experiments", doall.Version())
		return nil
	}

	if calibrate {
		return runCalibrate(benchList, out, w, errw)
	}

	if sweep {
		cfg, err := f.config()
		if err != nil {
			return err
		}
		var tw *doall.Twin
		if twinPath != "" {
			// Load the fit before burning grid time: a bad path or stale
			// schema fails fast.
			data, err := os.ReadFile(twinPath)
			if err != nil {
				return fmt.Errorf("-twin: %w", err)
			}
			if tw, err = doall.LoadTwin(data); err != nil {
				return fmt.Errorf("-twin %s: %w", twinPath, err)
			}
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		if progress {
			// Progress fires concurrently from worker goroutines in
			// completion order; serialize and keep the meter monotone so a
			// late-arriving lower count never overwrites a higher one.
			var mu sync.Mutex
			shown := 0
			cfg.Progress = func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				if done <= shown {
					return
				}
				shown = done
				fmt.Fprintf(errw, "\rsweep: %d/%d cells", done, total)
				if done == total {
					fmt.Fprintln(errw)
				}
			}
		}
		return withProfiles(cpuprofile, memprofile, func() error {
			return writeSweep(ctx, cfg, tw, out, w, errw)
		})
	}

	sc := doall.QuickScale
	switch scale {
	case "quick":
	case "full":
		sc = doall.FullScale
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}

	want := map[string]bool{}
	for _, id := range splitList(only, ",") {
		want[id] = true
	}

	return withProfiles(cpuprofile, memprofile, func() error {
		tables, err := doall.AllExperiments(sc)
		if err != nil {
			return err
		}
		for _, tb := range tables {
			if len(want) > 0 && !want[tb.ID] {
				continue
			}
			if markdown {
				fmt.Fprintln(w, tb.Markdown())
			} else {
				fmt.Fprintln(w, tb.String())
			}
		}
		return nil
	})
}

// withProfiles runs the workload wrapped in the requested CPU and
// allocation profiles. Profile files are created before the workload runs
// so bad paths fail fast, not after a multi-minute grid; the allocation
// profile is written (after a GC, so it reflects live + cumulative alloc
// sites accurately) when the workload finishes.
func withProfiles(cpuprofile, memprofile string, work func() error) error {
	var memf *os.File
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		memf = f
		defer memf.Close()
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := work(); err != nil {
		return err
	}
	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// runCalibrate fits the analytical twin from recorded sweep reports and
// writes the deterministic TWIN_FIT.json, printing per-group
// goodness-of-fit to stderr.
func runCalibrate(files, out string, w, errw io.Writer) error {
	names := splitList(files, ",")
	if len(names) == 0 {
		return fmt.Errorf("-calibrate: no input reports (-bench)")
	}
	var samples []doall.TwinSample
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var rep doall.SweepReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ss := doall.TwinSamplesFromReport(rep)
		if len(ss) == 0 {
			return fmt.Errorf("%s: no usable cells to calibrate from", name)
		}
		samples = append(samples, ss...)
	}
	tw, err := doall.CalibrateTwin(samples, names)
	if err != nil {
		return err
	}
	enc, err := doall.EncodeTwin(tw)
	if err != nil {
		return err
	}
	for _, g := range tw.Groups {
		fmt.Fprintf(errw, "calibrate: %-10s %-11s n=%-3d work R²=%.4f maxrel=%.1f%% band×=%.2f\n",
			g.Algo, g.Family, g.Work.N, g.Work.R2, 100*g.Work.MaxRelErr, g.Work.Band)
	}
	if out == "" {
		out = "TWIN_FIT.json"
	}
	if out == "-" {
		_, err := w.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errw, "calibrate: %d samples from %d reports → %s (%d model groups)\n",
		len(samples), len(names), out, len(tw.Groups))
	return nil
}

func writeSweep(ctx context.Context, cfg doall.SweepConfig, tw *doall.Twin, out string, w, errw io.Writer) error {
	// Open the output before burning sweep time: a bad path must fail
	// fast, not after a multi-minute grid.
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Announce the effective execution parallelism before burning grid
	// time: sweep workers × intra-run shards must be read against
	// GOMAXPROCS when interpreting ns_per_run columns.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxP := maxInt(cfg.Ps)
	shardDesc := "1 (sequential)"
	switch {
	case cfg.Shards == doall.ShardsAuto:
		shardDesc = fmt.Sprintf("auto (p=%d resolves to %d)", maxP, doall.ResolveShards(cfg.Shards, maxP))
	case cfg.Shards > 1:
		shardDesc = fmt.Sprintf("%d (p=%d resolves to %d)", cfg.Shards, maxP, doall.ResolveShards(cfg.Shards, maxP))
	}
	fmt.Fprintf(errw, "sweep: gomaxprocs=%d workers=%d shards=%s\n",
		runtime.GOMAXPROCS(0), workers, shardDesc)
	rep, err := doall.NewSweepReportContext(ctx, cfg)
	if err != nil {
		// Interrupted (-timeout, SIGINT): the completed cells are still
		// worth the disk they land on — write the report marked partial
		// and say so, instead of discarding finished work.
		fmt.Fprintf(errw, "sweep interrupted (%v): writing partial report\n", err)
	}
	if tp := rep.TickPhase; tp != nil {
		// Where the sharded ticks' wall-clock went: the serial fraction
		// (a1 + b against the total) bounds the achievable speedup.
		total := tp.A1Seconds + tp.A2Seconds + tp.BSeconds
		if total > 0 {
			fmt.Fprintf(errw, "sweep: tick phases over %d parallel ticks: a1=%.2fs (%.1f%%) a2=%.2fs (%.1f%%) b=%.2fs (%.1f%%)\n",
				tp.Ticks,
				tp.A1Seconds, 100*tp.A1Seconds/total,
				tp.A2Seconds, 100*tp.A2Seconds/total,
				tp.BSeconds, 100*tp.BSeconds/total)
		}
	}
	if tw != nil {
		// Stamp the twin's predicted columns next to the measured ones so
		// the report reads as a side-by-side model-vs-simulation table.
		// Only in-envelope predictions are stamped: outside its calibration
		// box the twin is an extrapolation and stays silent.
		stamped := 0
		for i := range rep.Cells {
			c := &rep.Cells[i]
			if c.Err != "" {
				continue
			}
			adv := c.Adversary
			if adv == "" {
				adv = rep.Adversary
			}
			pred, perr := tw.Predict(doall.TwinQuery{Algo: c.Algo, Adversary: adv, P: c.P, T: c.T, D: c.D, Q: c.Q})
			if perr != nil || !pred.InEnvelope {
				continue
			}
			c.PredWork, c.PredMessages, c.PredSolvedAt = pred.Work, pred.Messages, pred.SolvedAt
			stamped++
		}
		fmt.Fprintf(errw, "sweep: twin stamped predicted columns on %d/%d cells\n", stamped, len(rep.Cells))
	}
	return rep.WriteJSON(w)
}

func splitList(s, sep string) []string {
	var items []string
	for _, it := range strings.Split(s, sep) {
		if it = strings.TrimSpace(it); it != "" {
			items = append(items, it)
		}
	}
	return items
}

func parseInts(s string) ([]int, error) {
	var vals []int
	for _, it := range splitList(s, ",") {
		v, err := strconv.Atoi(it)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}
