// Package service is the Do-All service plane: a persistent daemon core
// that owns a bounded priority queue of Scenario and sweep jobs, runs
// them cell by cell on a shared fleet of reusable simulation engines,
// streams per-cell results as they complete, and survives restarts by
// write-ahead checkpointing every completed cell. cmd/doalld wraps it in
// a process with an HTTP JSON API; cmd/doallctl is the thin client that
// shares job state with the daemon through that API.
//
// The resume guarantee: per-cell seeds are derived from cell coordinates
// alone (scenario.CellSeed), so a daemon killed after k of n cells and
// restarted completes the remaining n−k cells to a result set identical
// to an uninterrupted run — checkpointed cells are restored verbatim,
// re-run cells reproduce exactly (wall-clock NsPerRun excepted).
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"doall/internal/scenario"
	"doall/internal/sim"
	"doall/internal/twin"
)

// Sentinel errors, mapped onto HTTP status codes by the server layer.
var (
	// ErrNotFound: no job with that id.
	ErrNotFound = errors.New("service: no such job")
	// ErrDraining: the daemon is shutting down or drained and accepts no
	// new jobs.
	ErrDraining = errors.New("service: draining, not accepting new jobs")
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrOverBudget: admission control rejected the job's estimated
	// memory or grid size.
	ErrOverBudget = errors.New("service: job exceeds the daemon's admission budget")
)

// Config tunes a Service. The zero value is serviceable: GOMAXPROCS
// workers, a 64-job queue, no persistence, no admission budget.
type Config struct {
	// Workers is the engine fleet size — the number of cells simulated
	// concurrently, each on its own reusable sim.Engine. 0 means
	// GOMAXPROCS; -1 means no fleet at all (jobs queue but never run:
	// drain-only tooling and deterministic tests).
	Workers int
	// QueueLimit bounds the jobs admitted but not yet finished (queued +
	// running). Default 64.
	QueueLimit int
	// MaxCells bounds one job's grid size at admission. Default 1<<20.
	MaxCells int
	// Checkpoint is the write-ahead checkpoint log path; "" disables
	// persistence (jobs die with the process).
	Checkpoint string
	// Fsync forces every checkpoint record to stable storage (durable
	// against machine crashes, at a per-cell fsync cost). Off, the log
	// is flushed per record and survives process death but not power
	// loss.
	Fsync bool
	// MaxMem, when > 0, pre-flights every sweep job against
	// scenario.EstimateSweepBytes at the daemon's worker count and
	// rejects jobs whose largest shape cannot fit — the same fail-fast
	// contract as cmd/experiments -maxmem, applied at admission.
	MaxMem int64
	// DefaultTimeout is the wall-clock budget applied to jobs that
	// declare none. 0 means unlimited.
	DefaultTimeout time.Duration
	// Shards is the daemon-wide default intra-run parallelism applied to
	// cells whose spec does not set its own (scenario.Scenario.Shards):
	// 0/1 sequential, -1 (scenario.ShardsAuto) resolved per cell from
	// GOMAXPROCS and the cell's p. Shards multiply with Workers — every
	// busy engine fans its tick across that many goroutines — so size
	// Workers × Shards against the machine, not each knob alone. Results
	// are shard-invariant; only throughput changes.
	Shards int
	// Twin is the calibrated analytical twin behind POST /v1/predict:
	// in-envelope queries are answered from its models without touching
	// an engine. nil means every predict query falls back to one real
	// bounded simulation.
	Twin *twin.Twin
	// TwinMaxBandRatio caps the confidence-band Hi/Lo ratio the daemon
	// will serve analytically; wider predictions fall back to simulation.
	// 0 means the default (8).
	TwinMaxBandRatio float64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 1 << 20
	}
	return c
}

// task is one job's runtime state. All fields are guarded by the
// service mutex; cells execute outside the lock.
type task struct {
	job  Job
	seq  int64
	seen time.Time

	state JobState
	err   string

	specs  []scenario.Scenario
	trials int
	theory bool

	cells     []scenario.Cell
	done      []bool
	order     []int // completion order, drives result streaming
	ndone     int
	nextClaim int
	inflight  int

	ctx      context.Context
	cancel   context.CancelFunc
	deadline *time.Timer

	subs    map[int]chan struct{}
	nextSub int

	submittedMS, startedMS, finishedMS int64
}

// Service is the daemon core. One Service owns the queue, the job store,
// the checkpoint log, the metrics registry, and the worker fleet.
type Service struct {
	cfg     Config
	wal     *wal
	metrics *metrics

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*task
	order    []*task // submission order (for List)
	queue    jobQueue
	active   []*task
	nextSeq  int64
	draining bool
	closing  bool
	closedCh chan struct{}
	wg       sync.WaitGroup

	// The predict plane's dedicated fallback engine, created lazily on
	// the first out-of-envelope query and serialized by its own mutex so
	// predict traffic never contends with the worker fleet.
	predictMu   sync.Mutex
	predictEng  *sim.Engine
	predictSims atomic.Int64
}

// New builds a Service: replays the checkpoint log (if any), reopens it
// for appending, and starts the worker fleet. Non-terminal replayed jobs
// are re-queued in their original submission order and resume from their
// last checkpointed cell.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		metrics:  newMetrics(cfg.Workers),
		jobs:     make(map[string]*task),
		nextSeq:  1,
		closedCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Checkpoint != "" {
		recs, err := replayWAL(cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
		s.applyReplay(recs)
		w, err := openWAL(cfg.Checkpoint, cfg.Fsync)
		if err != nil {
			return nil, err
		}
		s.wal = w
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// applyReplay folds checkpoint records back into the job store.
func (s *Service) applyReplay(recs []walRecord) {
	for _, rec := range recs {
		switch rec.Op {
		case "job":
			if rec.Job == nil || rec.Job.ID == "" || (rec.Job.Scenario == nil && rec.Job.Sweep == nil) {
				continue
			}
			t := s.newTask(*rec.Job, rec.Seq)
			s.jobs[t.job.ID] = t
			s.order = append(s.order, t)
			if rec.Seq >= s.nextSeq {
				s.nextSeq = rec.Seq + 1
			}
		case "cell":
			t := s.jobs[rec.ID]
			if t == nil || rec.Cell == nil || rec.Index < 0 || rec.Index >= len(t.cells) || t.done[rec.Index] {
				continue
			}
			t.cells[rec.Index] = *rec.Cell
			t.done[rec.Index] = true
			t.order = append(t.order, rec.Index)
			t.ndone++
		case "state":
			if t := s.jobs[rec.ID]; t != nil {
				t.state = rec.State
				t.err = rec.Err
			}
		}
	}
	// Anything not terminal resumes: back to the queue, original order.
	for _, t := range s.order {
		if !t.state.Terminal() {
			t.state = JobQueued
			heap.Push(&s.queue, t)
		}
	}
}

func (s *Service) newTask(job Job, seq int64) *task {
	specs, trials, theory := job.plan()
	t := &task{
		job: job, seq: seq,
		state:  JobQueued,
		specs:  specs,
		trials: trials,
		theory: theory,
		cells:  make([]scenario.Cell, len(specs)),
		done:   make([]bool, len(specs)),
		subs:   make(map[int]chan struct{}),
	}
	return t
}

// Submit validates, admission-checks, and enqueues a job, returning its
// assigned status. The job starts when the fleet reaches it.
func (s *Service) Submit(job Job) (JobStatus, error) {
	if err := job.validate(); err != nil {
		return JobStatus{}, err
	}
	if job.Sweep != nil {
		if n := job.Sweep.Cells(); n > s.cfg.MaxCells {
			return JobStatus{}, fmt.Errorf("%w: %d cells > max %d", ErrOverBudget, n, s.cfg.MaxCells)
		}
		if s.cfg.MaxMem > 0 {
			cfg := job.Sweep.Config()
			cfg.Workers = s.cfg.Workers
			if est := scenario.EstimateSweepBytes(cfg); est > s.cfg.MaxMem {
				return JobStatus{}, fmt.Errorf("%w: estimated %d bytes > budget %d (largest shape × %d workers)",
					ErrOverBudget, est, s.cfg.MaxMem, s.cfg.Workers)
			}
		}
	}

	s.mu.Lock()
	if s.draining || s.closing {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	open := 0
	for _, t := range s.order {
		if !t.state.Terminal() {
			open++
		}
	}
	if open >= s.cfg.QueueLimit {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %d jobs open (limit %d)", ErrQueueFull, open, s.cfg.QueueLimit)
	}
	seq := s.nextSeq
	s.nextSeq++
	job.ID = fmt.Sprintf("j%06d", seq)
	t := s.newTask(job, seq)
	t.submittedMS = time.Now().UnixMilli()
	s.jobs[job.ID] = t
	s.order = append(s.order, t)
	heap.Push(&s.queue, t)
	s.walAppend(walRecord{Op: "job", Seq: seq, Job: &job})
	s.metrics.jobsSubmitted.Add(1)
	st := s.statusLocked(t)
	s.cond.Broadcast()
	s.mu.Unlock()
	return st, nil
}

// Status returns a job's progress.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.jobs[id]
	if t == nil {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(t), nil
}

// List returns every known job's status in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, t := range s.order {
		out = append(out, s.statusLocked(t))
	}
	return out
}

// Cells returns a copy of a job's cell results in grid (spec) order,
// with done flags; undone entries are zero Cells.
func (s *Service) Cells(id string) ([]scenario.Cell, []bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.jobs[id]
	if t == nil {
		return nil, nil, ErrNotFound
	}
	cells := make([]scenario.Cell, len(t.cells))
	done := make([]bool, len(t.done))
	copy(cells, t.cells)
	copy(done, t.done)
	return cells, done, nil
}

// Cancel moves a queued or running job to JobCanceled; in-flight cells
// abort at their next trial boundary and are not recorded. Canceling a
// terminal job is a no-op that returns its status.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.jobs[id]
	if t == nil {
		return JobStatus{}, ErrNotFound
	}
	if !t.state.Terminal() {
		s.finalizeLocked(t, JobCanceled, "canceled by submitter")
		s.cond.Broadcast()
	}
	return s.statusLocked(t), nil
}

// Drain stops admission: subsequent Submits fail with ErrDraining while
// queued and running jobs keep executing. It returns the number of jobs
// still open, so clients can poll List/ActiveJobs for the drain to
// finish.
func (s *Service) Drain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	return s.activeLocked()
}

// Draining reports whether admission is stopped.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closing
}

// ActiveJobs returns the number of non-terminal jobs.
func (s *Service) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeLocked()
}

func (s *Service) activeLocked() int {
	n := 0
	for _, t := range s.order {
		if !t.state.Terminal() {
			n++
		}
	}
	return n
}

// Close shuts the service down gracefully: admission stops, workers
// finish (and checkpoint) the cells they are executing, result streams
// are released, and the checkpoint log is flushed and closed. Queued
// and unfinished jobs stay non-terminal in the log and resume on the
// next New with the same checkpoint path.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.draining = true
	close(s.closedCh)
	s.cond.Broadcast()
	s.mu.Unlock()

	s.wg.Wait()

	// In-flight predict fallbacks hold predictMu; waiting for it here
	// lets them finish before their engine's shard workers are released.
	s.predictMu.Lock()
	if s.predictEng != nil {
		s.predictEng.Close()
		s.predictEng = nil
	}
	s.predictMu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.order {
		if t.deadline != nil {
			t.deadline.Stop()
		}
	}
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

func (s *Service) statusLocked(t *task) JobStatus {
	return JobStatus{
		ID:          t.job.ID,
		Kind:        t.job.Kind(),
		State:       t.state,
		Priority:    t.job.Priority,
		CellsTotal:  len(t.cells),
		CellsDone:   t.ndone,
		Err:         t.err,
		SubmittedMS: t.submittedMS,
		StartedMS:   t.startedMS,
		FinishedMS:  t.finishedMS,
	}
}

func (s *Service) walAppend(rec walRecord) {
	if s.wal == nil {
		return
	}
	if err := s.wal.append(rec); err != nil {
		// A checkpoint write failure degrades durability, not service:
		// jobs keep running, but a restart may repeat lost work.
		log.Printf("doalld: checkpoint append failed: %v", err)
	}
}

// worker is one member of the engine fleet: it claims cells, runs them
// on its private reusable engine with its private metrics observer, and
// records the results.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	eng := sim.NewEngine()
	// Sharded cells park shard-worker goroutines on the engine; without
	// the Close a drained fleet would strand them until process exit.
	defer eng.Close()
	obs := s.metrics.observer(id)
	for {
		t, i, ok := s.nextCell()
		if !ok {
			return
		}
		spec := t.specs[i]
		if spec.Shards == 0 {
			// The daemon-wide default applies only where the job did not
			// choose: a spec's explicit shard count (including 1) wins.
			spec.Shards = s.cfg.Shards
		}
		shards := int64(scenario.ResolveShards(spec.Shards, spec.P))
		s.metrics.enginesInflight.Add(1)
		s.metrics.shardsInflight.Add(shards)
		prof := eng.PhaseProfile()
		cell := scenario.RunCellObserved(t.ctx, eng, spec, t.trials, t.theory, obs)
		// The engine's phase profile is monotone across runs; the cell's
		// contribution is the delta around it.
		after := eng.PhaseProfile()
		s.metrics.tickPhase(id, sim.TickPhaseProfile{
			A1:    after.A1 - prof.A1,
			A2:    after.A2 - prof.A2,
			B:     after.B - prof.B,
			Ticks: after.Ticks - prof.Ticks,
		})
		s.metrics.shardsInflight.Add(-shards)
		s.metrics.enginesInflight.Add(-1)
		s.finishCell(t, i, cell)
	}
}

// nextCell blocks until a cell is claimable or the service closes. It
// prefers cells of already-running jobs (in priority order) and promotes
// the next queued job only when nothing is claimable — work-conserving
// priority-FIFO.
func (s *Service) nextCell() (*task, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closing {
			return nil, 0, false
		}
		for _, t := range s.active {
			if t.state != JobRunning {
				continue
			}
			for t.nextClaim < len(t.cells) && t.done[t.nextClaim] {
				t.nextClaim++ // skip checkpoint-restored cells
			}
			if t.nextClaim < len(t.cells) {
				i := t.nextClaim
				t.nextClaim++
				t.inflight++
				return t, i, true
			}
		}
		if len(s.queue) > 0 {
			t := heap.Pop(&s.queue).(*task)
			if t.state != JobQueued {
				continue // canceled while queued; lazily discarded
			}
			s.startLocked(t)
			continue
		}
		s.cond.Wait()
	}
}

// startLocked transitions a queued job to running: its cancel context,
// wall-clock deadline, and start timestamp come alive here.
func (s *Service) startLocked(t *task) {
	t.state = JobRunning
	t.startedMS = time.Now().UnixMilli()
	t.ctx, t.cancel = context.WithCancel(context.Background())
	timeout := time.Duration(t.job.Timeout)
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		t.deadline = time.AfterFunc(timeout, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if !t.state.Terminal() {
				s.finalizeLocked(t, JobFailed, fmt.Sprintf("job timeout %s exceeded", timeout))
				s.cond.Broadcast()
			}
		})
	}
	s.active = append(s.active, t)
	s.notifyLocked(t)
	if t.ndone == len(t.cells) {
		// A fully-checkpointed job resumed with nothing left to run.
		s.finalizeLocked(t, JobDone, "")
	}
}

// finishCell records one completed cell — checkpoint first, then the
// in-memory store, then subscribers. Cells finishing after their job
// went terminal (cancel, timeout) are discarded: their results were cut
// short by the job context and must not pollute the checkpoint.
func (s *Service) finishCell(t *task, i int, cell scenario.Cell) {
	s.mu.Lock()
	t.inflight--
	if t.state == JobRunning {
		s.walAppend(walRecord{Op: "cell", ID: t.job.ID, Index: i, Cell: &cell})
		t.cells[i] = cell
		t.done[i] = true
		t.order = append(t.order, i)
		t.ndone++
		s.metrics.cellDone(cell.Err != "")
		s.notifyLocked(t)
		if t.ndone == len(t.cells) {
			s.finalizeLocked(t, JobDone, "")
		}
	}
	if t.state.Terminal() && t.inflight == 0 {
		s.removeActiveLocked(t)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finalizeLocked moves a job to a terminal state exactly once: records
// it in the checkpoint, stops its timers, cancels its context, and wakes
// every subscriber.
func (s *Service) finalizeLocked(t *task, state JobState, msg string) {
	if t.state.Terminal() {
		return
	}
	t.state = state
	t.err = msg
	t.finishedMS = time.Now().UnixMilli()
	if state == JobDone {
		t.err = ""
	}
	if t.deadline != nil {
		t.deadline.Stop()
	}
	if t.cancel != nil {
		t.cancel()
	}
	s.walAppend(walRecord{Op: "state", ID: t.job.ID, State: state, Err: t.err})
	s.notifyLocked(t)
	if t.inflight == 0 {
		s.removeActiveLocked(t)
	}
}

func (s *Service) removeActiveLocked(t *task) {
	for i, a := range s.active {
		if a == t {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// notifyLocked pokes every subscriber of t (non-blocking: each channel
// has capacity 1 and a pending poke is as good as two).
func (s *Service) notifyLocked(t *task) {
	for _, ch := range t.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers a result-stream subscriber for a job and returns
// its wake channel.
func (s *Service) subscribe(id string) (*task, int, chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.jobs[id]
	if t == nil {
		return nil, 0, nil, ErrNotFound
	}
	ch := make(chan struct{}, 1)
	sub := t.nextSub
	t.nextSub++
	t.subs[sub] = ch
	return t, sub, ch, nil
}

func (s *Service) unsubscribe(t *task, sub int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(t.subs, sub)
}
