package bitset

import "testing"

// TestRejoinKeepsVersionsMonotone asserts the core crash-restart
// invariant: Rejoin clears the set but never lowers the version counter,
// so post-rejoin snapshots always carry versions above everything the
// old incarnation published.
func TestRejoinKeepsVersionsMonotone(t *testing.T) {
	v := NewVersioned(200)
	for i := 0; i < 100; i++ {
		v.Set(i)
		if i%10 == 0 {
			v.Recycle(v.Snapshot())
		}
	}
	before := v.Ver()
	v.Rejoin()
	if v.Ver() != before {
		t.Fatalf("Rejoin changed the version: %d -> %d", before, v.Ver())
	}
	if v.Count() != 0 {
		t.Fatalf("Rejoin left %d bits set", v.Count())
	}
	v.Set(7)
	s := v.Snapshot()
	if s.Ver() != before+1 {
		t.Fatalf("post-rejoin snapshot version %d, want %d", s.Ver(), before+1)
	}
	v.Recycle(s)
}

// TestRejoinForcesFullSnapshot asserts the rebase-on-revive rule: the
// first snapshot after a Rejoin has no delta chain — it travels as a
// full (non-delta) payload, the on-wire form stale receivers can always
// consume.
func TestRejoinForcesFullSnapshot(t *testing.T) {
	v := NewVersioned(128)
	v.Set(3)
	v.Recycle(v.Snapshot())
	v.Set(9)
	s1 := v.Snapshot() // in-sequence: delta encodable
	if _, ok := s1.WireDelta(); !ok {
		t.Fatal("pre-rejoin in-sequence snapshot unexpectedly full")
	}
	v.Recycle(s1)

	v.Rejoin()
	v.Set(42)
	s2 := v.Snapshot()
	if _, ok := s2.WireDelta(); ok {
		t.Fatal("first post-rejoin snapshot still travels as a delta; want a full rebase")
	}
	if b := s2.Base(); b == nil || !b.Get(42) || b.Get(3) || b.Get(9) {
		t.Fatalf("post-rejoin snapshot base should hold exactly the new knowledge; base=%v", b)
	}
	v.Recycle(s2)

	// Also with zero post-rejoin mutations: the snapshot must still be a
	// full (empty) rebase, not a delta against pre-crash state.
	v2 := NewVersioned(64)
	v2.Set(1)
	v2.Recycle(v2.Snapshot())
	v2.Rejoin()
	s3 := v2.Snapshot()
	if _, ok := s3.WireDelta(); ok {
		t.Fatal("empty post-rejoin snapshot travels as a delta")
	}
	got := New(64)
	s3.Materialize(got)
	if got.Count() != 0 {
		t.Fatalf("empty post-rejoin snapshot materializes %d bits", got.Count())
	}
	v2.Recycle(s3)
}

// TestRejoinPreservesInFlightSnapshots asserts pre-crash snapshots stay
// valid after the owner rejoins: they still materialize the pre-crash
// contents and can be recycled without corrupting the owner's pools.
func TestRejoinPreservesInFlightSnapshots(t *testing.T) {
	v := NewVersioned(96)
	for i := 0; i < 40; i++ {
		v.Set(i)
	}
	inflight := v.Snapshot() // still outstanding across the rejoin
	v.Rejoin()
	v.Set(77)
	post := v.Snapshot()

	got := New(96)
	inflight.Materialize(got)
	for i := 0; i < 40; i++ {
		if !got.Get(i) {
			t.Fatalf("pre-crash snapshot lost bit %d after Rejoin", i)
		}
	}
	if got.Get(77) {
		t.Fatal("pre-crash snapshot sees post-rejoin knowledge")
	}
	v.Recycle(inflight)
	v.Recycle(post)
	if n := v.OutstandingSnapshots(); n != 0 {
		t.Fatalf("%d snapshots still outstanding after recycling all", n)
	}
}

// TestMergerAcrossRejoin asserts stale receiver cursors are safe across a
// rejoin: a receiver that merged pre-crash versions falls back to a full
// merge of the post-rejoin snapshot and ends up with the union of both
// incarnations' knowledge (monotone knowledge is never retracted).
func TestMergerAcrossRejoin(t *testing.T) {
	sender := NewVersioned(160)
	dst := NewVersioned(160)
	mg := NewMerger(4)

	for i := 0; i < 30; i++ {
		sender.Set(i)
	}
	s1 := sender.Snapshot()
	if n := mg.Merge(dst, 1, s1); n != 30 {
		t.Fatalf("pre-crash merge added %d bits, want 30", n)
	}
	cursor := mg.Last(1)
	sender.Recycle(s1)

	sender.Rejoin()
	for i := 100; i < 110; i++ {
		sender.Set(i)
	}
	s2 := sender.Snapshot()
	if s2.Ver() <= cursor {
		t.Fatalf("post-rejoin version %d not above stale cursor %d", s2.Ver(), cursor)
	}
	if n := mg.Merge(dst, 1, s2); n != 10 {
		t.Fatalf("post-rejoin merge added %d bits, want 10", n)
	}
	sender.Recycle(s2)
	for i := 0; i < 30; i++ {
		if !dst.Get(i) {
			t.Fatalf("receiver lost pre-crash bit %d", i)
		}
	}
	for i := 100; i < 110; i++ {
		if !dst.Get(i) {
			t.Fatalf("receiver missed post-rejoin bit %d", i)
		}
	}
}

// TestRejoinRepeated asserts back-to-back rejoins (a processor crashing
// and restarting several times) stay consistent and keep pooling.
func TestRejoinRepeated(t *testing.T) {
	v := NewVersioned(64)
	var last int64
	for round := 0; round < 5; round++ {
		v.Set(round * 3)
		s := v.Snapshot()
		if s.Ver() <= last {
			t.Fatalf("round %d: version %d not above %d", round, s.Ver(), last)
		}
		last = s.Ver()
		if _, ok := s.WireDelta(); ok && round > 0 {
			// Round 0 precedes any rejoin and may legitimately be a delta.
			t.Fatalf("round %d: post-rejoin snapshot is a delta", round)
		}
		v.Recycle(s)
		v.Rejoin()
		if v.Count() != 0 {
			t.Fatalf("round %d: rejoin left bits", round)
		}
	}
}
