// Adversarial: watch the lower-bound constructions of Theorems 3.1 and
// 3.4 squeeze work out of the algorithms, and compare the forced work
// with the Ω(t + p·min{d,t}·log_{d+1}(d+t)) formula.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"doall/internal/adversary"
	"doall/internal/bounds"
	"doall/internal/harness"
	"doall/internal/sim"
)

func main() {
	const (
		p = 8
		t = 512
	)

	fmt.Printf("forcing work with the lower-bound adversaries (p=%d, t=%d)\n\n", p, t)
	fmt.Printf("%6s  %12s  %12s  %12s  %8s\n", "d", "DA+Thm3.1", "PaRan2+Thm3.4", "Ω-bound", "stages")

	for _, d := range []int{1, 4, 16, 64} {
		// Deterministic DA against the off-line clone-ahead adversary.
		daMachines, err := harness.BuildMachines(harness.Spec{
			Algo: harness.AlgoDA, P: p, T: t, D: int64(d), Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		det := adversary.NewStageDeterministic(int64(d), t)
		daRes, err := sim.Run(sim.Config{P: p, T: t}, daMachines, det)
		if err != nil {
			log.Fatal(err)
		}

		// Randomized PaRan2 against the adaptive intent-observing one.
		paMachines, err := harness.BuildMachines(harness.Spec{
			Algo: harness.AlgoPaRan2, P: p, T: t, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		online := adversary.NewStageOnline(int64(d), t)
		paRes, err := sim.Run(sim.Config{P: p, T: t}, paMachines, online)
		if err != nil {
			log.Fatal(err)
		}

		lb := bounds.LowerBound(p, t, d)
		fmt.Printf("%6d  %12d  %12d  %12.0f  %2d/%2d\n",
			d, daRes.Work, paRes.Work, lb, det.Stages, online.Stages)
	}

	fmt.Println("\nBoth algorithms keep solving Do-All — the adversary can stretch")
	fmt.Println("the computation but never block it (at least one processor runs).")
}
