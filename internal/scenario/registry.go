package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/perm"
)

// AlgorithmBuilder constructs the processor machines for a (defaulted)
// scenario. Builders must be deterministic in sc.Seed: the same scenario
// must always build the same machines.
type AlgorithmBuilder func(sc Scenario) ([]Machine, error)

// AdversaryBuilder constructs one adversary-expression node from its
// context (parameters and already-built inner adversaries).
type AdversaryBuilder func(ctx *AdversaryContext) (Adversary, error)

var (
	regMu      sync.RWMutex
	algorithms = map[string]AlgorithmBuilder{}
	adversGens = map[string]AdversaryBuilder{}
)

// RegisterAlgorithm adds (or replaces) a named algorithm builder. It
// panics on an empty name or nil builder; replacing an existing name is
// allowed so tests and downstream code can override defaults.
func RegisterAlgorithm(name string, b AlgorithmBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterAlgorithm needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	algorithms[name] = b
}

// RegisterAdversary adds (or replaces) a named adversary builder usable in
// adversary expressions. Same rules as RegisterAlgorithm.
func RegisterAdversary(name string, b AdversaryBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterAdversary needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	adversGens[name] = b
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(algorithms))
	for n := range algorithms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Adversaries returns the registered adversary names, sorted.
func Adversaries() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(adversGens))
	for n := range adversGens {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupAlgorithm(name string) (AlgorithmBuilder, error) {
	regMu.RLock()
	b, ok := algorithms[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown algorithm %q (registered: %s)", name, strings.Join(Algorithms(), ", "))
	}
	return b, nil
}

func lookupAdversary(name string) (AdversaryBuilder, error) {
	regMu.RLock()
	b, ok := adversGens[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown adversary %q (registered: %s)", name, strings.Join(Adversaries(), ", "))
	}
	return b, nil
}

// The pre-registered names.
const (
	AlgoAllToAll = "AllToAll"
	AlgoObliDo   = "ObliDo"
	AlgoDA       = "DA"
	AlgoPaRan1   = "PaRan1"
	AlgoPaRan2   = "PaRan2"
	AlgoPaDet    = "PaDet"

	AdvFair        = "fair"
	AdvRandom      = "random"
	AdvCrashing    = "crashing"
	AdvRestarting  = "restarting"
	AdvOmitting    = "omitting"
	AdvSlowSet     = "slow-set"
	AdvStageDet    = "stage-det"
	AdvStageOnline = "stage-online"
)

// The paper's six algorithms. Seed usage is load-bearing: these builders
// reproduce the historical harness.Spec construction bit for bit (one
// rand.Source from sc.Seed feeding schedule search), so Scenario runs are
// byte-identical to the legacy path (asserted by tests).
func init() {
	RegisterAlgorithm(AlgoAllToAll, func(sc Scenario) ([]Machine, error) {
		return core.NewAllToAll(sc.P, sc.T), nil
	})
	RegisterAlgorithm(AlgoObliDo, func(sc Scenario) ([]Machine, error) {
		r := rand.New(rand.NewSource(sc.Seed))
		jobs := core.NewJobs(sc.P, sc.T)
		l := perm.RandomList(sc.P, jobs.N, r)
		return core.NewObliDo(sc.P, sc.T, l), nil
	})
	RegisterAlgorithm(AlgoDA, func(sc Scenario) ([]Machine, error) {
		r := rand.New(rand.NewSource(sc.Seed))
		l := perm.FindLowContentionList(sc.Q, sc.Q, sc.SearchRestarts, r).List
		return core.NewDA(core.DAConfig{P: sc.P, T: sc.T, Q: sc.Q, Perms: l})
	})
	RegisterAlgorithm(AlgoPaRan1, func(sc Scenario) ([]Machine, error) {
		return core.NewPaRan1(sc.P, sc.T, sc.Seed), nil
	})
	RegisterAlgorithm(AlgoPaRan2, func(sc Scenario) ([]Machine, error) {
		return core.NewPaRan2(sc.P, sc.T, sc.Seed), nil
	})
	RegisterAlgorithm(AlgoPaDet, func(sc Scenario) ([]Machine, error) {
		r := rand.New(rand.NewSource(sc.Seed))
		jobs := core.NewJobs(sc.P, sc.T)
		l := perm.FindLowDContentionList(sc.P, jobs.N, int(sc.D), sc.SearchRestarts, r).List
		return core.NewPaDet(sc.P, sc.T, l)
	})
}

// The implemented adversaries and combinators.
func init() {
	// fair: full speed, every message delayed exactly delay (default d).
	RegisterAdversary(AdvFair, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(0); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("delay"); err != nil {
			return nil, err
		}
		d := ctx.Scenario.D
		delay, err := ctx.IntParam("delay", d)
		if err != nil {
			return nil, err
		}
		if delay < 1 || delay > d {
			return nil, fmt.Errorf("delay=%d outside [1, d=%d]", delay, d)
		}
		return &adversary.Fair{Bound: d, Fixed: delay}, nil
	})

	// random: per-unit activity probability, uniform delays in [1, d].
	// The default seed derivation (sc.Seed ^ 0x5eed) matches the
	// historical harness so legacy specs replay exactly.
	RegisterAdversary(AdvRandom, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(0); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("activity", "seed"); err != nil {
			return nil, err
		}
		activity, err := ctx.FloatParam("activity", 0.75)
		if err != nil {
			return nil, err
		}
		if activity <= 0 || activity > 1 {
			return nil, fmt.Errorf("activity=%v outside (0, 1]", activity)
		}
		seed, err := ctx.IntParam("seed", ctx.Scenario.Seed^0x5eed)
		if err != nil {
			return nil, err
		}
		return adversary.NewRandom(ctx.Scenario.D, activity, seed), nil
	})

	// crashing: wraps an inner adversary (default fair) with scheduled
	// crash failures. crash=PID@TIME parameters list the events; with no
	// events it crashes processors 1..⌊(p-1)/2⌋, processor i at time i·d —
	// a deterministic default so the flat name is meaningful in sweeps.
	RegisterAdversary(AdvCrashing, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(1); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("crash"); err != nil {
			return nil, err
		}
		inner, err := ctx.innerOrFair()
		if err != nil {
			return nil, err
		}
		var events []adversary.CrashEvent
		for _, v := range ctx.ParamAll("crash") {
			ev, err := parseCrashEvent(v)
			if err != nil {
				return nil, err
			}
			if ev.Pid < 0 || ev.Pid >= ctx.Scenario.P {
				return nil, fmt.Errorf("crash=%q: pid %d outside [0, %d)", v, ev.Pid, ctx.Scenario.P)
			}
			if ev.At < 0 {
				return nil, fmt.Errorf("crash=%q: negative time", v)
			}
			events = append(events, ev)
		}
		if len(events) == 0 {
			d := ctx.Scenario.D
			for i := 1; i <= (ctx.Scenario.P-1)/2; i++ {
				events = append(events, adversary.CrashEvent{Pid: i, At: int64(i) * d})
			}
		}
		return adversary.NewCrashing(inner, events), nil
	})

	// restarting: wraps an inner adversary (default fair) with
	// restartable-crash faults. crash=PID@TIME parameters list the crash
	// instants (defaulting to crashing's schedule: processors
	// 1..⌊(p-1)/2⌋, processor i at time i·d) and down=N (default 4·d) is
	// the downtime — each crashed processor revives N units after its
	// crash with fresh initial knowledge.
	RegisterAdversary(AdvRestarting, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(1); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("crash", "down"); err != nil {
			return nil, err
		}
		inner, err := ctx.innerOrFair()
		if err != nil {
			return nil, err
		}
		d := ctx.Scenario.D
		down, err := ctx.IntParam("down", 4*d)
		if err != nil {
			return nil, err
		}
		if down < 1 {
			return nil, fmt.Errorf("down=%d must be ≥ 1", down)
		}
		var events []adversary.RestartEvent
		for _, v := range ctx.ParamAll("crash") {
			ev, err := parseCrashEvent(v)
			if err != nil {
				return nil, err
			}
			if ev.Pid < 0 || ev.Pid >= ctx.Scenario.P {
				return nil, fmt.Errorf("crash=%q: pid %d outside [0, %d)", v, ev.Pid, ctx.Scenario.P)
			}
			if ev.At < 0 {
				return nil, fmt.Errorf("crash=%q: negative time", v)
			}
			events = append(events, adversary.RestartEvent{Pid: ev.Pid, CrashAt: ev.At, ReviveAt: ev.At + down})
		}
		if len(events) == 0 {
			for i := 1; i <= (ctx.Scenario.P-1)/2; i++ {
				at := int64(i) * d
				events = append(events, adversary.RestartEvent{Pid: i, CrashAt: at, ReviveAt: at + down})
			}
		}
		return adversary.NewRestarting(inner, events), nil
	})

	// omitting: wraps an inner adversary (default fair) with
	// message-omission faults. drop=PID@T (or drop=PID@T1:T2) parameters
	// give send-time windows whose multicasts lose their copies; to=PID
	// parameters restrict the loss to the listed recipients (the
	// complement still receives — deliver-to-subset). With no drop
	// parameters, processors 1..⌊(p-1)/2⌋ lose every multicast sent in
	// [i·d, (i+2)·d) — a deterministic default so the flat name is
	// meaningful in sweeps.
	RegisterAdversary(AdvOmitting, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(1); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("drop", "to"); err != nil {
			return nil, err
		}
		inner, err := ctx.innerOrFair()
		if err != nil {
			return nil, err
		}
		var windows []adversary.OmitWindow
		for _, v := range ctx.ParamAll("drop") {
			w, err := parseOmitWindow(v)
			if err != nil {
				return nil, err
			}
			if w.Pid < 0 || w.Pid >= ctx.Scenario.P {
				return nil, fmt.Errorf("drop=%q: pid %d outside [0, %d)", v, w.Pid, ctx.Scenario.P)
			}
			windows = append(windows, w)
		}
		if len(windows) == 0 {
			d := ctx.Scenario.D
			for i := 1; i <= (ctx.Scenario.P-1)/2; i++ {
				windows = append(windows, adversary.OmitWindow{Pid: i, From: int64(i) * d, Until: int64(i+2) * d})
			}
		}
		var to []int
		for _, v := range ctx.ParamAll("to") {
			pid, err := strconv.Atoi(v)
			if err != nil || pid < 0 || pid >= ctx.Scenario.P {
				return nil, fmt.Errorf("to=%q is not a processor id in [0, %d)", v, ctx.Scenario.P)
			}
			to = append(to, pid)
		}
		return adversary.NewOmitting(inner, windows, to), nil
	})

	// slow-set: wraps an inner adversary (default fair) so the designated
	// slow processors (slow=PID parameters; default the upper half) step
	// only every period units (default 4).
	RegisterAdversary(AdvSlowSet, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(1); err != nil {
			return nil, err
		}
		if err := ctx.checkParams("slow", "period"); err != nil {
			return nil, err
		}
		period, err := ctx.IntParam("period", 4)
		if err != nil {
			return nil, err
		}
		if period < 1 {
			return nil, fmt.Errorf("period=%d must be ≥ 1", period)
		}
		var slow []int
		for _, v := range ctx.ParamAll("slow") {
			pid, err := strconv.Atoi(v)
			if err != nil || pid < 0 || pid >= ctx.Scenario.P {
				return nil, fmt.Errorf("slow=%q is not a processor id in [0, %d)", v, ctx.Scenario.P)
			}
			slow = append(slow, pid)
		}
		if len(slow) == 0 {
			for i := ctx.Scenario.P / 2; i < ctx.Scenario.P; i++ {
				slow = append(slow, i)
			}
		}
		// With no explicit inner, build the standalone SlowSet: it owns
		// the whole schedule, so it can promise NextWake across all-slow
		// idle stretches and keep the engine's fast-forward. The
		// combinator form cannot make that promise over an opaque inner
		// (whose Schedule may have time-dependent side effects the
		// fast-forward would skip); it produces identical Results, just
		// without the idle jump.
		if len(ctx.Inners) == 0 {
			return adversary.NewSlowSet(ctx.Scenario.D, slow, period), nil
		}
		return adversary.NewSlowSetOver(ctx.Inners[0], slow, period), nil
	})

	// stage-det: the Theorem 3.1 off-line lower-bound construction.
	RegisterAdversary(AdvStageDet, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(0); err != nil {
			return nil, err
		}
		if err := ctx.checkParams(); err != nil {
			return nil, err
		}
		return adversary.NewStageDeterministic(ctx.Scenario.D, ctx.Scenario.T), nil
	})

	// stage-online: the Theorem 3.4 adaptive lower-bound construction.
	RegisterAdversary(AdvStageOnline, func(ctx *AdversaryContext) (Adversary, error) {
		if err := ctx.maxInners(0); err != nil {
			return nil, err
		}
		if err := ctx.checkParams(); err != nil {
			return nil, err
		}
		return adversary.NewStageOnline(ctx.Scenario.D, ctx.Scenario.T), nil
	})
}

// innerOrFair returns the combinator's single inner adversary, building a
// default fair one when the expression gave none.
func (c *AdversaryContext) innerOrFair() (Adversary, error) {
	if len(c.Inners) > 0 {
		return c.Inners[0], nil
	}
	b, err := lookupAdversary(AdvFair)
	if err != nil {
		return nil, err
	}
	return b(&AdversaryContext{Scenario: c.Scenario})
}

// parseOmitWindow parses "PID@TIME" (the single unit [TIME, TIME+1)) or
// "PID@FROM:UNTIL" (send times in the half-open window [FROM, UNTIL)).
func parseOmitWindow(v string) (adversary.OmitWindow, error) {
	pidStr, span, ok := strings.Cut(v, "@")
	if !ok {
		return adversary.OmitWindow{}, fmt.Errorf("drop=%q is not PID@TIME or PID@FROM:UNTIL", v)
	}
	pid, err := strconv.Atoi(strings.TrimSpace(pidStr))
	if err != nil {
		return adversary.OmitWindow{}, fmt.Errorf("drop=%q: bad pid: %v", v, err)
	}
	fromStr, untilStr, ranged := strings.Cut(span, ":")
	from, err := strconv.ParseInt(strings.TrimSpace(fromStr), 10, 64)
	if err != nil {
		return adversary.OmitWindow{}, fmt.Errorf("drop=%q: bad time: %v", v, err)
	}
	until := from + 1
	if ranged {
		until, err = strconv.ParseInt(strings.TrimSpace(untilStr), 10, 64)
		if err != nil {
			return adversary.OmitWindow{}, fmt.Errorf("drop=%q: bad window end: %v", v, err)
		}
	}
	if from < 0 || until <= from {
		return adversary.OmitWindow{}, fmt.Errorf("drop=%q: window [%d, %d) is empty or negative", v, from, until)
	}
	return adversary.OmitWindow{Pid: pid, From: from, Until: until}, nil
}

// parseCrashEvent parses "PID@TIME".
func parseCrashEvent(v string) (adversary.CrashEvent, error) {
	pidStr, atStr, ok := strings.Cut(v, "@")
	if !ok {
		return adversary.CrashEvent{}, fmt.Errorf("crash=%q is not PID@TIME", v)
	}
	pid, err := strconv.Atoi(strings.TrimSpace(pidStr))
	if err != nil {
		return adversary.CrashEvent{}, fmt.Errorf("crash=%q: bad pid: %v", v, err)
	}
	at, err := strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
	if err != nil {
		return adversary.CrashEvent{}, fmt.Errorf("crash=%q: bad time: %v", v, err)
	}
	return adversary.CrashEvent{Pid: pid, At: at}, nil
}
