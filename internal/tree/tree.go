// Package tree implements the q-ary boolean progress tree of algorithm
// DA(q) (Kowalski & Shvartsman, Section 5.1.1).
//
// The tree has t = q^h leaves; tasks are associated with the leaves. Each
// node holds a boolean: 1 means every task in the subtree rooted there has
// been performed. Nodes are packed into an array with the root at index 0
// and the q children of interior node n at indices q·n+1 … q·n+q.
//
// Updates are monotone (0→1 only), so merging two replicas is a
// commutative, idempotent OR — exactly the property the paper uses to
// replace shared memory with multicast (Section 5.1.2).
package tree

import (
	"fmt"

	"doall/internal/bitset"
)

// Tree is a replicated q-ary boolean progress tree.
type Tree struct {
	q      int
	height int
	leaves int
	size   int
	// done is the packed node bit array; bit 0 is the root.
	done *bitset.Set
	// vers, when non-nil, is the epoch-versioned view over the same bits:
	// every mutation routes through it so its dirty-word tracking sees the
	// change, and DA's TreeSnapshot payloads are its versioned snapshots.
	vers *bitset.Versioned
}

// setBit marks node n, through the versioned set when attached.
func (t *Tree) setBit(n int) {
	if t.vers != nil {
		t.vers.Set(n)
	} else {
		t.done.Set(n)
	}
}

// New creates a progress tree with arity q and q^height leaves, all nodes
// unset. It panics if q < 2 or height < 0.
func New(q, height int) *Tree {
	if q < 2 {
		panic("tree: arity must be at least 2")
	}
	if height < 0 {
		panic("tree: height must be non-negative")
	}
	leaves := 1
	for i := 0; i < height; i++ {
		leaves *= q
	}
	// size = (q^{h+1} - 1)/(q - 1)
	size := (leaves*q - 1) / (q - 1)
	return &Tree{q: q, height: height, leaves: leaves, size: size, done: bitset.New(size)}
}

// NewVersioned creates a progress tree whose node bits are an
// epoch-versioned set: snapshots share structure (base + delta chain)
// instead of copying all nodes, which is what makes DA's per-broadcast
// TreeSnapshot O(changed words). The returned Versioned is the tree's
// mutation log; Versioned().Snapshot() captures the payload.
func NewVersioned(q, height int) *Tree {
	t := New(q, height)
	t.vers = bitset.NewVersioned(t.size)
	t.done = t.vers.Bits()
	return t
}

// NewForTasksVersioned is NewForTasks over a versioned tree.
func NewForTasksVersioned(q, tasks int) (*Tree, int) {
	if tasks < 1 {
		panic("tree: need at least one task")
	}
	h := 0
	leaves := 1
	for leaves < tasks {
		leaves *= q
		h++
	}
	tr := NewVersioned(q, h)
	pad := leaves - tasks
	for i := tasks; i < leaves; i++ {
		tr.MarkLeaf(i)
	}
	return tr, pad
}

// Versioned returns the tree's epoch-versioned bit set, or nil for a
// plain tree.
func (t *Tree) Versioned() *bitset.Versioned { return t.vers }

// NewForTasks returns a tree of arity q with at least t leaves (the
// smallest power of q ≥ t), plus the number of padded "dummy" leaves that
// carry no real task. Dummy leaves are pre-marked done, implementing the
// paper's padding technique (Section 5.1) without charging work for them.
func NewForTasks(q, t int) (*Tree, int) {
	if t < 1 {
		panic("tree: need at least one task")
	}
	h := 0
	leaves := 1
	for leaves < t {
		leaves *= q
		h++
	}
	tr := New(q, h)
	pad := leaves - t
	for i := t; i < leaves; i++ {
		tr.MarkLeaf(i)
	}
	return tr, pad
}

// Arity returns q.
func (t *Tree) Arity() int { return t.q }

// Height returns the height h (leaves are at depth h).
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaves q^h.
func (t *Tree) Leaves() int { return t.leaves }

// Size returns the total number of nodes.
func (t *Tree) Size() int { return t.size }

// Root returns the index of the root node (always 0).
func (t *Tree) Root() int { return 0 }

// Child returns the index of the c-th child (0-based) of interior node n.
func (t *Tree) Child(n, c int) int {
	if c < 0 || c >= t.q {
		panic(fmt.Sprintf("tree: child index %d out of range [0,%d)", c, t.q))
	}
	return t.q*n + 1 + c
}

// Parent returns the index of the parent of node n, or -1 for the root.
func (t *Tree) Parent(n int) int {
	if n == 0 {
		return -1
	}
	return (n - 1) / t.q
}

// IsLeaf reports whether node n is a leaf.
func (t *Tree) IsLeaf(n int) bool { return n >= t.size-t.leaves }

// LeafIndex returns the 0-based leaf number of leaf node n (its task id).
// It panics if n is not a leaf.
func (t *Tree) LeafIndex(n int) int {
	if !t.IsLeaf(n) {
		panic(fmt.Sprintf("tree: node %d is not a leaf", n))
	}
	return n - (t.size - t.leaves)
}

// LeafNode returns the node index of the i-th leaf.
func (t *Tree) LeafNode(i int) int {
	if i < 0 || i >= t.leaves {
		panic(fmt.Sprintf("tree: leaf %d out of range [0,%d)", i, t.leaves))
	}
	return t.size - t.leaves + i
}

// Done reports whether node n is marked done.
func (t *Tree) Done(n int) bool { return t.done.Get(n) }

// AllDone reports whether the root is marked, i.e. all tasks are known
// complete.
func (t *Tree) AllDone() bool { return t.done.Get(0) }

// Mark sets node n to done. Marking is monotone; re-marking is a no-op.
func (t *Tree) Mark(n int) { t.setBit(n) }

// MarkLeaf marks the i-th leaf done and propagates upward: any interior
// node all of whose children are done is marked as well.
func (t *Tree) MarkLeaf(i int) {
	n := t.LeafNode(i)
	t.setBit(n)
	t.propagate(t.Parent(n))
}

// propagate walks from node n to the root, marking each node whose
// children are all done, stopping early when a node stays unset.
func (t *Tree) propagate(n int) {
	for n >= 0 {
		if t.done.Get(n) {
			return
		}
		all := true
		for c := 0; c < t.q; c++ {
			if !t.done.Get(t.Child(n, c)) {
				all = false
				break
			}
		}
		if !all {
			return
		}
		t.setBit(n)
		n = t.Parent(n)
	}
}

// PropagateUp restores the interior-closure invariant upward from node n
// after n was externally marked (a merged snapshot bit): each ancestor
// whose children are now all done is marked, stopping at the first that
// is not. Cost is O(q·height) worst case but stops early, so applying a
// delta costs new-knowledge work, unlike the O(size) full recompute.
func (t *Tree) PropagateUp(n int) { t.propagate(t.Parent(n)) }

// Merge ORs the other tree's bits into t and then restores the invariant
// that every interior node whose children are all done is itself done.
// Both trees must have identical shape. Merge is commutative, idempotent,
// and monotone, which is what makes replica exchange by multicast safe.
func (t *Tree) Merge(other *Tree) {
	if other.q != t.q || other.height != t.height {
		panic("tree: Merge of trees with different shape")
	}
	t.union(other.done)
	t.recompute()
}

// union ORs raw bits in, through the versioned set when attached.
func (t *Tree) union(bits *bitset.Set) {
	if t.vers != nil {
		t.vers.UnionWith(bits)
	} else {
		t.done.UnionWith(bits)
	}
}

// MergeSet ORs a raw bit snapshot (as produced by SnapshotSet) into the
// tree and restores the interior-closure invariant.
func (t *Tree) MergeSet(bits *bitset.Set) {
	if bits.Len() != t.size {
		panic("tree: MergeSet length mismatch")
	}
	t.union(bits)
	t.recompute()
}

// MergeBits ORs a raw bit snapshot (as produced by Snapshot) into the tree.
func (t *Tree) MergeBits(bits []bool) {
	if len(bits) != t.size {
		panic("tree: MergeBits length mismatch")
	}
	t.union(bitset.FromBools(bits))
	t.recompute()
}

// recompute re-establishes the upward closure bottom-up in O(size).
func (t *Tree) recompute() {
	firstLeaf := t.size - t.leaves
	for n := firstLeaf - 1; n >= 0; n-- {
		if t.done.Get(n) {
			continue
		}
		all := true
		for c := 0; c < t.q; c++ {
			if !t.done.Get(t.Child(n, c)) {
				all = false
				break
			}
		}
		if all {
			t.setBit(n)
		}
	}
}

// Snapshot returns a copy of the node bits as a []bool.
func (t *Tree) Snapshot() []bool { return t.done.ToBools() }

// SnapshotSet returns a copy of the node bits as a compact bit set,
// suitable for putting in a message.
func (t *Tree) SnapshotSet() *bitset.Set { return t.done.Clone() }

// SnapshotInto copies the node bits into dst (length must be Size()),
// the allocation-free form of SnapshotSet for pooled payload buffers.
func (t *Tree) SnapshotInto(dst *bitset.Set) { dst.CopyFrom(t.done) }

// ResetPadded restores the tree to its initial NewForTasks(q, tasks)
// state: every node cleared, then the padding leaves ≥ tasks re-marked
// (with upward propagation). It allocates nothing, so trial loops can
// reuse one tree.
func (t *Tree) ResetPadded(tasks int) {
	if t.vers != nil {
		t.vers.Reset()
	} else {
		t.done.ClearAll()
	}
	for i := tasks; i < t.leaves; i++ {
		t.MarkLeaf(i)
	}
}

// RejoinPadded restores the tree to its initial state for a crash-restart
// mid-run: every node cleared and the padding leaves re-marked, like
// ResetPadded, but through the versioned set's Rejoin so the version
// counter stays monotone and the next snapshot travels as a full rebase
// (in-flight pre-crash snapshots stay valid). Plain trees fall back to a
// simple clear.
func (t *Tree) RejoinPadded(tasks int) {
	if t.vers != nil {
		t.vers.Rejoin()
	} else {
		t.done.ClearAll()
	}
	for i := tasks; i < t.leaves; i++ {
		t.MarkLeaf(i)
	}
}

// Clone returns a deep copy of the tree (including the versioned view,
// when attached; the clone's snapshot pools start empty).
func (t *Tree) Clone() *Tree {
	c := *t
	if t.vers != nil {
		c.vers = t.vers.Clone()
		c.done = c.vers.Bits()
	} else {
		c.done = t.done.Clone()
	}
	return &c
}

// CountDoneLeaves returns the number of leaves currently marked done.
func (t *Tree) CountDoneLeaves() int {
	n := 0
	for i := 0; i < t.leaves; i++ {
		if t.done.Get(t.LeafNode(i)) {
			n++
		}
	}
	return n
}

// CheckInvariant verifies that an interior node is done iff all its
// children are done, for use in tests. It returns the first violating node
// index, or -1 if the invariant holds. (A done interior node with an unset
// child can never occur; an unset interior node with all children done is
// a propagation bug.)
func (t *Tree) CheckInvariant() int {
	firstLeaf := t.size - t.leaves
	for n := 0; n < firstLeaf; n++ {
		all := true
		for c := 0; c < t.q; c++ {
			if !t.done.Get(t.Child(n, c)) {
				all = false
				break
			}
		}
		if all != t.done.Get(n) {
			return n
		}
	}
	return -1
}
