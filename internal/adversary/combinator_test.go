package adversary_test

import (
	"reflect"
	"testing"

	"doall/internal/adversary"
	"doall/internal/core"
	"doall/internal/sim"
)

// TestSlowSetOverFairMatchesStandalone asserts the combinator contract:
// SlowSetOver with a Fair inner adversary reproduces the standalone
// SlowSet's Results exactly, for both a partial and an all-slow set (the
// latter exercises the idle units the standalone version fast-forwards).
func TestSlowSetOverFairMatchesStandalone(t *testing.T) {
	const p, tasks, d, period = 6, 24, 3, 5
	for _, tc := range []struct {
		name string
		slow []int
	}{
		{"half-slow", []int{0, 2, 4}},
		{"all-slow", []int{0, 1, 2, 3, 4, 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(adv sim.Adversary) *sim.Result {
				t.Helper()
				ms := core.NewPaRan1(p, tasks, 31)
				res, err := sim.Run(sim.Config{P: p, T: tasks}, ms, adv)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			standalone := run(adversary.NewSlowSet(d, tc.slow, period))
			composed := run(adversary.NewSlowSetOver(adversary.NewFair(d), tc.slow, period))
			if !reflect.DeepEqual(standalone, composed) {
				t.Fatalf("Results diverged:\nstandalone: %+v\ncomposed:   %+v", standalone, composed)
			}
		})
	}
}

// TestCrashingOverSlowSetOver runs the three-layer composition the
// scenario expression `crashing(slow-set(fair))` builds and checks the
// crashes land and the problem still solves.
func TestCrashingOverSlowSetOver(t *testing.T) {
	const p, tasks, d = 4, 16, 2
	inner := adversary.NewSlowSetOver(adversary.NewFair(d), []int{1, 3}, 4)
	adv := adversary.NewCrashing(inner, []adversary.CrashEvent{{Pid: 0, At: 3}})
	ms := core.NewPaRan2(p, tasks, 13)
	var crashed []int
	res, err := sim.Run(sim.Config{P: p, T: tasks, Observer: &sim.FuncObserver{
		Crash: func(pid int, now int64) { crashed = append(crashed, pid) },
	}}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved under composed adversary")
	}
	if len(crashed) != 1 || crashed[0] != 0 {
		t.Fatalf("observed crashes %v, want [0]", crashed)
	}
}
