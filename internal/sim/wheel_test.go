package sim

import (
	"reflect"
	"testing"
)

type delivery struct {
	at      int64
	payload any
}

func collect(w *wheel, to int64) []delivery {
	var out []delivery
	w.advanceTo(to, func(evs []wevent, at int64) {
		for _, ev := range evs {
			out = append(out, delivery{at: at, payload: ev.mc.Payload})
		}
	})
	return out
}

func ev(payload any) wevent {
	return wevent{mc: &Multicast{Payload: payload}, to: 0}
}

func TestWheelDueOrdering(t *testing.T) {
	w := newWheel(8)
	w.push(ev("a"), 5)
	w.push(ev("b"), 3)
	w.push(ev("c"), 5)
	if got := collect(w, 2); len(got) != 0 {
		t.Fatalf("advanceTo(2) delivered %v, want nothing", got)
	}
	got := collect(w, 5)
	want := []delivery{{3, "b"}, {5, "a"}, {5, "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	if w.events != 0 {
		t.Fatalf("wheel not drained: %d events left", w.events)
	}
}

func TestWheelPopAllDue(t *testing.T) {
	// Every event due at or before the advance target comes out in one
	// call, even across many buckets, cursor laps, and overflow.
	w := newWheel(4)
	for at := int64(1); at <= 40; at++ {
		w.push(ev(at), at)
	}
	got := collect(w, 40)
	if len(got) != 40 {
		t.Fatalf("delivered %d events, want 40", len(got))
	}
	for i, d := range got {
		if d.at != int64(i+1) || d.payload != int64(i+1) {
			t.Fatalf("delivery %d = %+v, want at=%d", i, d, i+1)
		}
	}
}

func TestWheelFarFutureOverflow(t *testing.T) {
	// Events beyond the bucket horizon take the overflow path and are
	// migrated back as the cursor approaches, in send order.
	w := newWheel(4) // 8 buckets
	w.push(ev("far-a"), 100)
	w.push(ev("far-b"), 100)
	w.push(ev("farther"), 205)
	w.push(ev("near"), 2)
	if len(w.overflow) != 3 {
		t.Fatalf("overflow holds %d events, want 3", len(w.overflow))
	}
	if due := w.nextDue(); due != 2 {
		t.Fatalf("nextDue = %d, want 2", due)
	}
	got := collect(w, 150)
	want := []delivery{{2, "near"}, {100, "far-a"}, {100, "far-b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	if due := w.nextDue(); due != 205 {
		t.Fatalf("nextDue after partial drain = %d, want 205", due)
	}
	got = collect(w, 205)
	if !reflect.DeepEqual(got, []delivery{{205, "farther"}}) {
		t.Fatalf("overflow tail = %v", got)
	}
	if w.events != 0 || len(w.overflow) != 0 {
		t.Fatal("wheel not fully drained")
	}
}

func TestWheelNextDueEmpty(t *testing.T) {
	w := newWheel(16)
	if due := w.nextDue(); due != -1 {
		t.Fatalf("nextDue on empty wheel = %d, want -1", due)
	}
	w.push(ev("x"), 9)
	if due := w.nextDue(); due != 9 {
		t.Fatalf("nextDue = %d, want 9", due)
	}
	collect(w, 9)
	if due := w.nextDue(); due != -1 {
		t.Fatalf("nextDue after drain = %d, want -1", due)
	}
}

func TestWheelPushPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic pushing into the past")
		}
	}()
	w := newWheel(4)
	collect(w, 10)
	w.push(ev("late"), 10)
}

func TestWheelFastForwardSkipsEmptyStretch(t *testing.T) {
	// A big jump with an empty wheel must be O(1), not O(jump): the
	// cursor snaps forward without touching buckets.
	w := newWheel(8)
	w.advanceTo(1_000_000_000, func([]wevent, int64) { t.Fatal("no events exist") })
	if w.cur != 1_000_000_000 {
		t.Fatalf("cursor = %d", w.cur)
	}
	w.push(ev("x"), 1_000_000_005)
	got := collect(w, 1_000_000_005)
	if len(got) != 1 || got[0].payload != "x" {
		t.Fatalf("post-jump delivery = %v", got)
	}
}

// TestWheelOverflowPreservesSendOrderAtHorizonBoundary pins the FIFO
// contract at the overflow/direct boundary: an event sent earlier but
// parked in overflow (delay beyond the bucket horizon) must still be
// delivered before a later-sent event pushed directly for the same
// delivery time. The direct-push bound is strict for exactly this reason.
func TestWheelOverflowPreservesSendOrderAtHorizonBoundary(t *testing.T) {
	w := newWheel(1 << 20) // bucket count capped at maxWheelHorizon
	horizon := int64(len(w.buckets))
	if horizon != maxWheelHorizon {
		t.Fatalf("bucket count %d, want the %d cap", horizon, maxWheelHorizon)
	}
	const lead = 7232
	at := horizon + lead // delivery time shared by both events

	early := &Multicast{From: 1}
	late := &Multicast{From: 2}

	// Sent at t=0: beyond the horizon, parked in overflow.
	w.push(wevent{mc: early, to: 0}, at)
	// Advance to just before migration would trigger, then push the
	// later-sent event, which now sits exactly horizon units out.
	w.advanceTo(lead, func(evs []wevent, _ int64) {
		t.Fatalf("premature delivery of %+v", evs)
	})
	w.push(wevent{mc: late, to: 0}, at)

	var order []int
	w.advanceTo(at, func(evs []wevent, deliveredAt int64) {
		if deliveredAt != at {
			t.Fatalf("delivered at %d, want %d", deliveredAt, at)
		}
		for _, ev := range evs {
			order = append(order, ev.mc.From)
		}
	})
	if !reflect.DeepEqual(order, []int{1, 2}) {
		t.Fatalf("delivery order %v, want [1 2] (send order)", order)
	}
}
