// Package perm implements the permutation and contention machinery of
// Kowalski & Shvartsman (PODC 2003 / I&C 2005), Section 4: permutations on
// [n], left-to-right maxima, the Anderson–Woll contention measure Cont(Σ),
// and its delay-sensitive generalization (d)-Cont(Σ).
//
// A Perm p represents the permutation π of {0,…,n-1} with π(i) = p[i].
// (The paper uses 1-based [n]; we use 0-based throughout and translate in
// documentation only.)
package perm

import (
	"errors"
	"fmt"
	"math/rand"
)

// Perm is a permutation of {0,…,n-1} in one-line notation: Perm[i] is the
// image of i.
type Perm []int

// ErrNotPermutation is returned by Check for slices that are not a
// permutation of {0,…,n-1}.
var ErrNotPermutation = errors.New("perm: not a permutation of {0,…,n-1}")

// Identity returns the identity permutation on n elements.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Reverse returns the reversing permutation ⟨n-1,…,0⟩, the unique
// permutation with exactly one left-to-right maximum relative to identity.
func Reverse(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

// Random returns a uniformly random permutation of n elements drawn from r.
func Random(n int, r *rand.Rand) Perm {
	return Perm(r.Perm(n))
}

// RandomInto fills buf (length must be ≥ n) with a uniformly random
// permutation of n elements, consuming r exactly like Random — the two
// produce identical permutations from identical generator states (pinned
// by tests) — but without allocating. Bulk machine builders carve many
// permutations out of one backing array this way, shedding the dominant
// construction allocation at large p.
func RandomInto(n int, r *rand.Rand, buf []int) Perm {
	m := buf[:n]
	// The inside-out Fisher–Yates of math/rand.(*Rand).Perm, verbatim.
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return Perm(m)
}

// RandomList returns a list of k independent uniformly random permutations
// of n elements.
func RandomList(k, n int, r *rand.Rand) List {
	l := make(List, k)
	for i := range l {
		l[i] = Random(n, r)
	}
	return l
}

// Check verifies that p is a permutation of {0,…,len(p)-1}.
func Check(p Perm) error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("%w: element %d at index %d out of range", ErrNotPermutation, v, i)
		}
		if seen[v] {
			return fmt.Errorf("%w: element %d repeated", ErrNotPermutation, v)
		}
		seen[v] = true
	}
	return nil
}

// Len returns the number of elements n the permutation acts on.
func (p Perm) Len() int { return len(p) }

// Clone returns a deep copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Inverse returns p⁻¹, i.e. the permutation q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns p∘q, the permutation mapping i to p[q[i]] (apply q first,
// then p), matching the paper's σ⁻¹∘π usage.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: Compose of permutations with different lengths")
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Apply returns π(i).
func (p Perm) Apply(i int) int { return p[i] }

// IsIdentity reports whether p is the identity permutation.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Rank returns the lexicographic rank of p among all permutations of its
// length (0-based). It is valid only for small n (n ≤ 20) since the rank of
// longer permutations overflows int64-sized factorials.
func (p Perm) Rank() int64 {
	n := len(p)
	var rank int64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += int64(smaller) * factorial(n-1-i)
	}
	return rank
}

// Unrank is the inverse of Rank: it returns the permutation of n elements
// with the given lexicographic rank.
func Unrank(n int, rank int64) Perm {
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, 0, n)
	for i := n - 1; i >= 0; i-- {
		f := factorial(i)
		idx := int(rank / f)
		rank %= f
		p = append(p, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return p
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// LRM returns the number of left-to-right maxima of p: elements p[j]
// greater than every predecessor (Knuth vol. 3; paper Section 4).
func LRM(p Perm) int {
	count := 0
	best := -1
	for _, v := range p {
		if v > best {
			best = v
			count++
		}
	}
	return count
}

// DLRM returns the number of d-left-to-right maxima of p: elements p[j]
// preceded by fewer than d elements greater than p[j] (paper Section 4.2).
// For d = 1 this coincides with LRM.
func DLRM(p Perm, d int) int {
	if d <= 0 {
		return 0
	}
	count := 0
	for j, v := range p {
		greater := 0
		for i := 0; i < j && greater < d; i++ {
			if p[i] > v {
				greater++
			}
		}
		if greater < d {
			count++
		}
	}
	return count
}

// DLRMPositions returns the indices j of p that are d-left-to-right maxima,
// in increasing order. DLRM(p, d) == len(DLRMPositions(p, d)).
func DLRMPositions(p Perm, d int) []int {
	if d <= 0 {
		return nil
	}
	var out []int
	for j, v := range p {
		greater := 0
		for i := 0; i < j && greater < d; i++ {
			if p[i] > v {
				greater++
			}
		}
		if greater < d {
			out = append(out, j)
		}
	}
	return out
}

// List is an ordered list of permutations, all of the same length, used as
// processor schedules (the paper's Σ = ⟨π₀,…,π_{k-1}⟩).
type List []Perm

// CheckList verifies that every member is a permutation and that all have
// the same length. An empty list is valid.
func CheckList(l List) error {
	for i, p := range l {
		if err := Check(p); err != nil {
			return fmt.Errorf("perm: list element %d: %w", i, err)
		}
		if len(p) != len(l[0]) {
			return fmt.Errorf("perm: list element %d has length %d, want %d", i, len(p), len(l[0]))
		}
	}
	return nil
}

// N returns the length of the permutations in the list (0 for an empty
// list).
func (l List) N() int {
	if len(l) == 0 {
		return 0
	}
	return len(l[0])
}

// Clone deep-copies the list.
func (l List) Clone() List {
	out := make(List, len(l))
	for i, p := range l {
		out[i] = p.Clone()
	}
	return out
}

// ContWrt returns Cont(l, σ) = Σ_u lrm(σ⁻¹ ∘ π_u), the contention of the
// schedule list with respect to σ (paper Section 4).
func ContWrt(l List, sigma Perm) int {
	inv := sigma.Inverse()
	total := 0
	for _, p := range l {
		total += LRM(inv.Compose(p))
	}
	return total
}

// DContWrt returns (d)-Cont(l, σ) = Σ_u (d)-lrm(σ⁻¹ ∘ π_u).
func DContWrt(l List, sigma Perm, d int) int {
	inv := sigma.Inverse()
	total := 0
	for _, p := range l {
		total += DLRM(inv.Compose(p), d)
	}
	return total
}

// Cont returns the contention Cont(l) = max_σ Cont(l, σ), computed by
// exhaustive enumeration of σ ∈ S_n. It is exponential in n; use
// ContEstimate for larger n.
func Cont(l List) int {
	return maxOverSn(l.N(), func(sigma Perm) int { return ContWrt(l, sigma) })
}

// DCont returns (d)-Cont(l) = max_σ (d)-Cont(l, σ) by exhaustive
// enumeration of σ ∈ S_n. Exponential in n; use DContEstimate for larger n.
func DCont(l List, d int) int {
	return maxOverSn(l.N(), func(sigma Perm) int { return DContWrt(l, sigma, d) })
}

// maxOverSn maximizes f over all permutations of n elements using Heap's
// iterative enumeration.
func maxOverSn(n int, f func(Perm) int) int {
	if n == 0 {
		return 0
	}
	sigma := Identity(n)
	best := f(sigma)
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				sigma[0], sigma[i] = sigma[i], sigma[0]
			} else {
				sigma[c[i]], sigma[i] = sigma[i], sigma[c[i]]
			}
			if v := f(sigma); v > best {
				best = v
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return best
}

// ContEstimate lower-bounds Cont(l) by maximizing over `samples` random σ
// plus the identity and reverse permutations. Exact maximization is
// exponential; random probing gives a useful lower estimate for reporting.
func ContEstimate(l List, samples int, r *rand.Rand) int {
	return estimate(l.N(), samples, r, func(sigma Perm) int { return ContWrt(l, sigma) })
}

// DContEstimate lower-bounds (d)-Cont(l) the same way ContEstimate bounds
// Cont(l).
func DContEstimate(l List, d, samples int, r *rand.Rand) int {
	return estimate(l.N(), samples, r, func(sigma Perm) int { return DContWrt(l, sigma, d) })
}

func estimate(n, samples int, r *rand.Rand, f func(Perm) int) int {
	if n == 0 {
		return 0
	}
	best := f(Identity(n))
	if v := f(Reverse(n)); v > best {
		best = v
	}
	for i := 0; i < samples; i++ {
		if v := f(Random(n, r)); v > best {
			best = v
		}
	}
	return best
}

// SortKey returns a canonical string key for p, usable for deduplication.
func (p Perm) SortKey() string {
	return fmt.Sprint([]int(p))
}

// Distinct reports the number of distinct permutations in l.
func (l List) Distinct() int {
	seen := make(map[string]struct{}, len(l))
	for _, p := range l {
		seen[p.SortKey()] = struct{}{}
	}
	return len(seen)
}

// AllPerms enumerates all n! permutations of n elements in lexicographic
// order. It panics for n > 10 to avoid accidental explosion.
func AllPerms(n int) []Perm {
	if n > 10 {
		panic("perm: AllPerms limited to n ≤ 10")
	}
	if n == 0 {
		return []Perm{{}}
	}
	var out []Perm
	p := Identity(n)
	for {
		out = append(out, p.Clone())
		if !nextPerm(p) {
			break
		}
	}
	return out
}

// nextPerm advances p to the next permutation in lexicographic order,
// returning false if p was the last one.
func nextPerm(p Perm) bool {
	i := len(p) - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(p) - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for a, b := i+1, len(p)-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
	return true
}
