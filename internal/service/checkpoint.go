package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"doall/internal/scenario"
)

// The checkpoint log is the daemon's write-ahead record of everything
// that must survive a restart: one NDJSON line per event, appended in
// order and never rewritten. Three record kinds exist —
//
//	{"op":"job","seq":7,"job":{...}}          a job was admitted
//	{"op":"cell","id":"j000007","i":3,"cell":{...}}  cell 3 completed
//	{"op":"state","id":"j000007","state":"done"}     terminal transition
//
// Replay folds the lines back into the job store. A job with no terminal
// state record resumes exactly where it stopped: its completed cells are
// restored from their records and only the remaining cell indices run —
// which reproduces an uninterrupted run byte for byte, because every
// cell's seed is derived from its grid coordinates alone (wall-clock
// NsPerRun excepted). A torn final line (the process died mid-append) is
// tolerated: replay stops at the first undecodable line and the next
// append starts a fresh line.
type walRecord struct {
	Op    string         `json:"op"`
	Seq   int64          `json:"seq,omitempty"`
	Job   *Job           `json:"job,omitempty"`
	ID    string         `json:"id,omitempty"`
	Index int            `json:"i,omitempty"`
	Cell  *scenario.Cell `json:"cell,omitempty"`
	State JobState       `json:"state,omitempty"`
	Err   string         `json:"err,omitempty"`
}

// wal is the append side of the checkpoint log. Appends are serialized
// and flushed to the OS per record; Fsync additionally forces them to
// stable storage (durable against machine crashes, not just process
// deaths, at a per-cell fsync cost).
type wal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	fsync bool
}

func openWAL(path string, fsync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: checkpoint: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), fsync: fsync}, nil
}

func (w *wal) append(rec walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("service: checkpoint closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("service: checkpoint: %w", err)
		}
	}
	return nil
}

func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.w.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads a checkpoint log back as records. A missing file is an
// empty history; a torn final line ends the replay silently (the crash
// it evidences is exactly what the log exists to survive). A torn line
// in the middle — followed by further decodable lines — is corruption
// and fails loudly instead of silently dropping completed work.
func replayWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: checkpoint replay: %w", err)
	}
	defer f.Close()
	var recs []walRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	torn := -1 // line number of the first undecodable line
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if torn < 0 {
				torn = line
				continue
			}
			return nil, fmt.Errorf("service: checkpoint replay: line %d undecodable after torn line %d: %w", line, torn, err)
		}
		if torn >= 0 {
			return nil, fmt.Errorf("service: checkpoint replay: torn line %d followed by valid records", torn)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: checkpoint replay: %w", err)
	}
	return recs, nil
}
