package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doall/internal/bitset"
)

func TestRoundTripEmpty(t *testing.T) {
	s := bitset.New(0)
	msg := Encode(KindDoneSet, s)
	kind, got, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindDoneSet || got.Len() != 0 {
		t.Fatalf("kind=%v len=%d", kind, got.Len())
	}
}

func TestRoundTripPatterns(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 128, 1000} {
		for _, fill := range []string{"none", "all", "alt", "first", "last"} {
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				switch fill {
				case "all":
					s.Set(i)
				case "alt":
					if i%2 == 0 {
						s.Set(i)
					}
				case "first":
					if i == 0 {
						s.Set(i)
					}
				case "last":
					if i == n-1 {
						s.Set(i)
					}
				}
			}
			msg := Encode(KindTree, s)
			kind, got, err := Decode(msg)
			if err != nil {
				t.Fatalf("n=%d fill=%s: %v", n, fill, err)
			}
			if kind != KindTree || !got.Equal(s) {
				t.Fatalf("n=%d fill=%s: round trip mismatch", n, fill)
			}
		}
	}
}

func TestRLEWinsOnUniform(t *testing.T) {
	// A large all-zero set must compress far below raw 8 bytes/word.
	s := bitset.New(64 * 100)
	msg := Encode(KindDoneSet, s)
	if len(msg) > 40 {
		t.Fatalf("uniform set encoded to %d bytes; RLE should compress it", len(msg))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := bitset.New(100)
	s.Set(3)
	msg := Encode(KindTree, s)

	cases := map[string][]byte{
		"empty":        {},
		"short":        msg[:2],
		"bad version":  append([]byte{99}, msg[1:]...),
		"bad kind":     append([]byte{version, 77}, msg[2:]...),
		"bad encoding": append([]byte{version, byte(KindTree), 9}, msg[3:]...),
		"truncated":    msg[:len(msg)-1],
	}
	for name, bad := range cases {
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestSizeMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(500)
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				s.Set(i)
			}
		}
		if Size(KindDoneSet, s) != len(Encode(KindDoneSet, s)) {
			t.Fatal("Size disagrees with Encode")
		}
	}
}

// Property: every random set round-trips under both kinds.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, kindRaw bool) bool {
		n := int(nRaw%2000) + 1
		r := rand.New(rand.NewSource(seed))
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 1 {
				s.Set(i)
			}
		}
		kind := KindTree
		if kindRaw {
			kind = KindDoneSet
		}
		k2, got, err := Decode(Encode(kind, s))
		return err == nil && k2 == kind && got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on random garbage.
func TestQuickDecodeRobustness(t *testing.T) {
	f := func(garbage []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("Decode panicked")
			}
		}()
		_, _, _ = Decode(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSizeMatchesEncodedLength pins the arithmetic Size shortcut to the
// real encoder across bit patterns that exercise both body encodings and
// multi-byte varint headers.
func TestSizeMatchesEncodedLength(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sizes := []int{1, 7, 63, 64, 65, 200, 1024, 70000}
	for _, n := range sizes {
		for _, density := range []float64{0, 0.01, 0.5, 0.99, 1} {
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				if rng.Float64() < density {
					s.Set(i)
				}
			}
			for _, kind := range []Kind{KindTree, KindDoneSet} {
				if got, want := Size(kind, s), len(Encode(kind, s)); got != want {
					t.Fatalf("Size(kind=%d, n=%d, density=%v) = %d, want len(Encode) = %d",
						kind, n, density, got, want)
				}
			}
		}
	}
}

// TestSizeAllocationFree guards the hot-path property that made the
// shortcut worthwhile: the engine queries WireSize once per multicast.
func TestSizeAllocationFree(t *testing.T) {
	s := bitset.New(4096)
	for i := 0; i < 4096; i += 3 {
		s.Set(i)
	}
	if allocs := testing.AllocsPerRun(10, func() { Size(KindTree, s) }); allocs != 0 {
		t.Fatalf("Size allocates %v times per call, want 0", allocs)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	words := []bitset.DeltaWord{{Index: 0, Word: 0x5}, {Index: 3, Word: 1 << 63}, {Index: 130, Word: 42}}
	msg := EncodeDelta(KindDoneSetDelta, 130*64+7, 17, 12, words)
	if got, want := len(msg), SizeDelta(KindDoneSetDelta, 130*64+7, 17, 12, words); got != want {
		t.Fatalf("SizeDelta = %d, encoded length %d", want, got)
	}
	dm, err := DecodeDelta(msg)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Kind != KindDoneSetDelta || dm.N != 130*64+7 || dm.Ver != 17 || dm.BaseVer != 12 {
		t.Fatalf("header round trip lost data: %+v", dm)
	}
	if len(dm.Words) != len(words) {
		t.Fatalf("words %d, want %d", len(dm.Words), len(words))
	}
	for i, w := range words {
		if dm.Words[i] != w {
			t.Fatalf("word %d = %+v, want %+v", i, dm.Words[i], w)
		}
	}
}

func TestDeltaEmptyRoundTrip(t *testing.T) {
	msg := EncodeDelta(KindTreeDelta, 64, 3, 0, nil)
	dm, err := DecodeDelta(msg)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Kind != KindTreeDelta || len(dm.Words) != 0 || dm.Ver != 3 {
		t.Fatalf("empty delta round trip: %+v", dm)
	}
}

func TestDecodeDeltaRejectsCorrupt(t *testing.T) {
	good := EncodeDelta(KindTreeDelta, 256, 5, 2, []bitset.DeltaWord{{Index: 1, Word: 9}})
	cases := map[string][]byte{
		"short":          good[:2],
		"bad version":    append([]byte{99}, good[1:]...),
		"full kind":      {version, byte(KindTree), 2, 1},
		"bad encoding":   {version, byte(KindTreeDelta), 0, 1},
		"truncated word": good[:len(good)-3],
		"trailing":       append(append([]byte{}, good...), 0),
	}
	for name, msg := range cases {
		if _, err := DecodeDelta(msg); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Old full kinds must remain decodable by Decode.
	s := bitset.New(100)
	s.Set(7)
	kind, got, err := Decode(Encode(KindTree, s))
	if err != nil || kind != KindTree || !got.Equal(s) {
		t.Fatalf("full kind no longer decodes: kind=%v err=%v", kind, err)
	}
}

func TestSizeEmptyMatchesEncode(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 16} {
		s := bitset.New(n)
		if got, want := SizeEmpty(KindDoneSet, n), len(Encode(KindDoneSet, s)); got != want {
			t.Fatalf("SizeEmpty(%d) = %d, want %d", n, got, want)
		}
	}
}
