package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

// refUnion is the pre-kernel scalar union, kept as the oracle.
func refUnion(dst, src []uint64) int {
	added := 0
	for i, w := range src {
		if neu := w &^ dst[i]; neu != 0 {
			added += bits.OnesCount64(neu)
			dst[i] |= neu
		}
	}
	return added
}

func TestUnionWordsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 64, 100, 1024, 1025} {
		for trial := 0; trial < 20; trial++ {
			dst := make([]uint64, n)
			src := make([]uint64, n)
			for i := range dst {
				// Mix dense, sparse, and all-shared words so both the
				// skip-block and the contributing-block paths run.
				switch rng.Intn(4) {
				case 0:
					dst[i] = rng.Uint64()
					src[i] = rng.Uint64()
				case 1:
					dst[i] = ^uint64(0)
					src[i] = rng.Uint64()
				case 2:
					src[i] = dst[i] // nothing new
				case 3:
					src[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
				}
			}
			want := append([]uint64(nil), dst...)
			wantAdded := refUnion(want, src)

			got := append([]uint64(nil), dst...)
			gotAdded := unionWords(got, src)
			if gotAdded != wantAdded {
				t.Fatalf("n=%d: unionWords added %d, scalar added %d", n, gotAdded, wantAdded)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d: word %d differs: %x vs %x", n, i, got[i], want[i])
				}
			}

			or := append([]uint64(nil), dst...)
			orWords(or, src)
			for i := range or {
				if or[i] != want[i] {
					t.Fatalf("n=%d: orWords word %d differs: %x vs %x", n, i, or[i], want[i])
				}
			}
		}
	}
}

func TestUnionDirtyStampsChangedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{65, 512, 1000} {
		v := NewVersioned(n)
		other := New(n)
		for trial := 0; trial < 10; trial++ {
			for i := 0; i < 8; i++ {
				other.Set(rng.Intn(n))
			}
			ref := v.set.Clone()
			wantAdded := refUnion(ref.words, other.words)
			changed := map[int]bool{}
			for i := range ref.words {
				if ref.words[i] != v.set.words[i] {
					changed[i] = true
				}
			}
			before := len(v.dirty)
			got := v.UnionWith(other)
			if got != wantAdded {
				t.Fatalf("n=%d trial=%d: UnionWith added %d, want %d", n, trial, got, wantAdded)
			}
			if !v.set.Equal(ref) {
				t.Fatalf("n=%d trial=%d: contents diverge from scalar oracle", n, trial)
			}
			// Every word that changed this merge must be stamped dirty.
			dirtySet := map[int]bool{}
			for _, w := range v.dirty {
				dirtySet[int(w)] = true
			}
			for w := range changed {
				if !dirtySet[w] {
					t.Fatalf("n=%d trial=%d: changed word %d not stamped dirty", n, trial, w)
				}
			}
			if len(v.dirty) < before {
				t.Fatalf("dirty list shrank")
			}
			if trial%3 == 2 {
				v.Snapshot() // drain dirty through the normal path
			}
		}
	}
}
