package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"doall/internal/sim"
)

// Service metrics, exposed at GET /metrics in the Prometheus text
// exposition format. Two layers feed it:
//
//   - Service-level counters and gauges (jobs, cells, queue depth, engine
//     fleet occupancy) maintained by the scheduler itself.
//   - Simulation-level counters (steps, multicasts, deliveries, faults)
//     wired through the engine's zero-cost-when-nil sim.Observer hooks:
//     each worker owns a private, cache-line-padded counter block that its
//     observer increments, and the scrape path sums the blocks — the hot
//     loop never shares a written cache line between workers.
type metrics struct {
	start time.Time

	jobsSubmitted  atomic.Int64
	cellsCompleted atomic.Int64
	cellsFailed    atomic.Int64
	// enginesInflight counts workers currently inside a cell simulation
	// (= busy engines; the fleet size is the pool bound).
	enginesInflight atomic.Int64
	// shardsInflight counts tick-shard goroutines the busy engines fan
	// out across (the resolved Shards of every in-flight cell summed) —
	// the fleet's true CPU occupancy once intra-run parallelism is on.
	// Equals enginesInflight while every cell runs sequentially.
	shardsInflight atomic.Int64
	// twinPredicts/twinFallbacks split POST /v1/predict answers by how
	// they were produced: analytical twin evaluation vs one real bounded
	// simulation.
	twinPredicts  atomic.Int64
	twinFallbacks atomic.Int64

	// buckets is a ring of per-second cell-completion counts behind the
	// doalld_cells_per_second gauge (rate over the trailing window).
	buckets [rateRing]rateBucket

	sim []simCounters
}

const (
	rateRing   = 16 // ring slots; must exceed rateWindow+1
	rateWindow = 10 // seconds the cells/sec gauge averages over
)

type rateBucket struct {
	sec atomic.Int64 // unix second this slot currently counts
	n   atomic.Int64
}

// simCounters is one worker's observer-fed counter block, padded so two
// workers never write the same cache line.
type simCounters struct {
	steps      atomic.Int64
	multicasts atomic.Int64
	deliveries atomic.Int64
	crashes    atomic.Int64
	revivals   atomic.Int64
	omissions  atomic.Int64
	solved     atomic.Int64
	// Parallel-tick phase nanoseconds and tick count, harvested as
	// per-cell deltas of the worker engine's PhaseProfile (the profile
	// itself is monotone over the engine's lifetime).
	phaseA1Ns atomic.Int64
	phaseA2Ns atomic.Int64
	phaseBNs  atomic.Int64
	parTicks  atomic.Int64
	_         [5]int64 // pad to 128 bytes
}

func newMetrics(workers int) *metrics {
	if workers < 1 {
		workers = 1
	}
	return &metrics{start: time.Now(), sim: make([]simCounters, workers)}
}

// cellDone records one completed cell into the totals and the rate ring.
func (m *metrics) cellDone(failed bool) {
	m.cellsCompleted.Add(1)
	if failed {
		m.cellsFailed.Add(1)
	}
	sec := time.Now().Unix()
	b := &m.buckets[sec%rateRing]
	if b.sec.Load() != sec {
		// A stale slot is recycled for the current second. The store pair
		// races benignly with concurrent completions in the same second —
		// at worst a handful of counts land in a slot about to be reset,
		// biasing a 10s average by a fraction of a second.
		b.sec.Store(sec)
		b.n.Store(0)
	}
	b.n.Add(1)
}

// rate returns cells/sec averaged over the trailing window.
func (m *metrics) rate() float64 {
	now := time.Now().Unix()
	var sum int64
	for i := range m.buckets {
		b := &m.buckets[i]
		if s := b.sec.Load(); s > now-rateWindow && s <= now {
			sum += b.n.Load()
		}
	}
	return float64(sum) / rateWindow
}

// observer returns worker w's engine observer, feeding its private
// counter block.
func (m *metrics) observer(w int) sim.Observer {
	return &workerObserver{c: &m.sim[w%len(m.sim)]}
}

// tickPhase folds one cell's parallel-tick phase-time delta into worker
// w's counter block.
func (m *metrics) tickPhase(w int, d sim.TickPhaseProfile) {
	if d.Ticks == 0 && d.Total() == 0 {
		return
	}
	c := &m.sim[w%len(m.sim)]
	c.phaseA1Ns.Add(int64(d.A1))
	c.phaseA2Ns.Add(int64(d.A2))
	c.phaseBNs.Add(int64(d.B))
	c.parTicks.Add(d.Ticks)
}

type workerObserver struct {
	sim.NopObserver
	c *simCounters
}

func (o *workerObserver) OnStep(int, int64, *sim.StepResult) { o.c.steps.Add(1) }
func (o *workerObserver) OnMulticast(_ int, _ int64, _ any, recipients int) {
	o.c.multicasts.Add(1)
	o.c.deliveries.Add(int64(recipients))
}
func (o *workerObserver) OnCrash(int, int64)          { o.c.crashes.Add(1) }
func (o *workerObserver) OnRevive(int, int64)         { o.c.revivals.Add(1) }
func (o *workerObserver) OnOmit(int, int, int64)      { o.c.omissions.Add(1) }
func (o *workerObserver) OnSolved(int64, *sim.Result) { o.c.solved.Add(1) }

// gauges is the scheduler-state snapshot the scrape takes under the
// service lock.
type gauges struct {
	queueDepth  int
	jobsByState map[JobState]int
	workers     int
	draining    bool
}

// write renders the exposition text. Counter names follow the
// <namespace>_<unit>_total convention; gauges are instantaneous.
func (m *metrics) write(w io.Writer, g gauges) {
	var steps, multicasts, deliveries, crashes, revivals, omissions, solved int64
	var phaseA1, phaseA2, phaseB, parTicks int64
	for i := range m.sim {
		c := &m.sim[i]
		steps += c.steps.Load()
		multicasts += c.multicasts.Load()
		deliveries += c.deliveries.Load()
		crashes += c.crashes.Load()
		revivals += c.revivals.Load()
		omissions += c.omissions.Load()
		solved += c.solved.Load()
		phaseA1 += c.phaseA1Ns.Load()
		phaseA2 += c.phaseA2Ns.Load()
		phaseB += c.phaseBNs.Load()
		parTicks += c.parTicks.Load()
	}
	busy := m.enginesInflight.Load()

	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP doalld_up Whether the daemon is serving (1) or draining (0).\n# TYPE doalld_up gauge\n")
	up := 1
	if g.draining {
		up = 0
	}
	p("doalld_up %d\n", up)
	p("# HELP doalld_uptime_seconds Seconds since the daemon started.\n# TYPE doalld_uptime_seconds gauge\n")
	p("doalld_uptime_seconds %.0f\n", time.Since(m.start).Seconds())

	p("# HELP doalld_jobs_submitted_total Jobs admitted since start (excludes checkpoint-replayed jobs).\n# TYPE doalld_jobs_submitted_total counter\n")
	p("doalld_jobs_submitted_total %d\n", m.jobsSubmitted.Load())
	p("# HELP doalld_jobs Jobs currently known, by state.\n# TYPE doalld_jobs gauge\n")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		p("doalld_jobs{state=%q} %d\n", st, g.jobsByState[st])
	}
	p("# HELP doalld_queue_depth Jobs waiting for the engine fleet.\n# TYPE doalld_queue_depth gauge\n")
	p("doalld_queue_depth %d\n", g.queueDepth)

	p("# HELP doalld_cells_completed_total Sweep/scenario cells completed.\n# TYPE doalld_cells_completed_total counter\n")
	p("doalld_cells_completed_total %d\n", m.cellsCompleted.Load())
	p("# HELP doalld_cells_failed_total Completed cells that carry a per-cell error.\n# TYPE doalld_cells_failed_total counter\n")
	p("doalld_cells_failed_total %d\n", m.cellsFailed.Load())
	p("# HELP doalld_cells_per_second Cell completion rate over the trailing %ds.\n# TYPE doalld_cells_per_second gauge\n", rateWindow)
	p("doalld_cells_per_second %.2f\n", m.rate())

	p("# HELP doalld_twin_predictions_total Predict queries answered, by mode: twin = analytical model evaluation, fallback = one real bounded simulation (no twin, unknown model, out of envelope, or band too wide).\n# TYPE doalld_twin_predictions_total counter\n")
	p("doalld_twin_predictions_total{mode=\"twin\"} %d\n", m.twinPredicts.Load())
	p("doalld_twin_predictions_total{mode=\"fallback\"} %d\n", m.twinFallbacks.Load())

	p("# HELP doalld_engine_pool_size Reusable simulation engines in the worker fleet.\n# TYPE doalld_engine_pool_size gauge\n")
	p("doalld_engine_pool_size %d\n", g.workers)
	p("# HELP doalld_engines_inflight Engines currently executing a cell (pool occupancy).\n# TYPE doalld_engines_inflight gauge\n")
	p("doalld_engines_inflight %d\n", busy)
	p("# HELP doalld_shard_threads_inflight Tick-shard goroutines across busy engines (resolved intra-run shards summed; CPU occupancy under sharding).\n# TYPE doalld_shard_threads_inflight gauge\n")
	p("doalld_shard_threads_inflight %d\n", m.shardsInflight.Load())

	p("# HELP doalld_tick_phase_seconds Wall-clock seconds the fleet's parallel tick engines spent per phase: a1 = serial prefix (schedule filter, cache-build plan and fan-out, shadow seeding), a2 = parallel shard stepping, b = serial tail (staged-reduction merge plus ordered residue, or the full replay).\n# TYPE doalld_tick_phase_seconds counter\n")
	p("doalld_tick_phase_seconds{phase=\"a1\"} %.6f\n", float64(phaseA1)/1e9)
	p("doalld_tick_phase_seconds{phase=\"a2\"} %.6f\n", float64(phaseA2)/1e9)
	p("doalld_tick_phase_seconds{phase=\"b\"} %.6f\n", float64(phaseB)/1e9)
	p("# HELP doalld_tick_parallel_ticks_total Time units executed by the parallel tick engine (sequential-fallback ticks excluded).\n# TYPE doalld_tick_parallel_ticks_total counter\n")
	p("doalld_tick_parallel_ticks_total %d\n", parTicks)

	p("# HELP doalld_sim_steps_total Machine steps executed across all cells (Observer.OnStep).\n# TYPE doalld_sim_steps_total counter\n")
	p("doalld_sim_steps_total %d\n", steps)
	p("# HELP doalld_sim_multicasts_total Broadcasts scheduled (Observer.OnMulticast).\n# TYPE doalld_sim_multicasts_total counter\n")
	p("doalld_sim_multicasts_total %d\n", multicasts)
	p("# HELP doalld_sim_messages_total Point-to-point message copies scheduled.\n# TYPE doalld_sim_messages_total counter\n")
	p("doalld_sim_messages_total %d\n", deliveries)
	p("# HELP doalld_sim_crashes_total Adversary crash events observed.\n# TYPE doalld_sim_crashes_total counter\n")
	p("doalld_sim_crashes_total %d\n", crashes)
	p("# HELP doalld_sim_revivals_total Crash-restart revivals observed.\n# TYPE doalld_sim_revivals_total counter\n")
	p("doalld_sim_revivals_total %d\n", revivals)
	p("# HELP doalld_sim_omissions_total Message copies omitted by the adversary.\n# TYPE doalld_sim_omissions_total counter\n")
	p("doalld_sim_omissions_total %d\n", omissions)
	p("# HELP doalld_sim_solved_total Runs that reached the solved instant.\n# TYPE doalld_sim_solved_total counter\n")
	p("doalld_sim_solved_total %d\n", solved)
}
