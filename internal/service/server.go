package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"doall/internal/scenario"
	"doall/internal/service/buildinfo"
	"doall/internal/twin"
)

// The daemon's HTTP JSON API. Routing is manual prefix matching (the
// module targets Go 1.21 ServeMux semantics, so no method/wildcard
// patterns):
//
//	GET  /healthz              liveness + drain state
//	GET  /metrics              Prometheus text exposition
//	GET  /v1/version           daemon build info
//	POST /v1/drain             stop admission, keep executing
//	POST /v1/predict           twin prediction (single query or {"queries": [...]})
//	POST /v1/jobs              submit a job document (see ParseJob)
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status
//	DELETE /v1/jobs/{id}       cancel
//	GET  /v1/jobs/{id}/results NDJSON cell stream, live until terminal

// maxJobBytes bounds a submitted job document.
const maxJobBytes = 8 << 20

// ResultCell is one line of the GET /v1/jobs/{id}/results stream: cell I
// of the job's grid completed. Lines arrive in completion order, which
// under a concurrent fleet is not grid order — consumers reassemble by I.
type ResultCell struct {
	I    int           `json:"i"`
	Cell scenario.Cell `json:"cell"`
}

// ResultTrailer is the final line of a results stream. Done is true when
// the job reached a terminal state; false means the stream was cut short
// (daemon shutdown) and the client should reconnect after restart.
type ResultTrailer struct {
	Done        bool     `json:"done"`
	State       JobState `json:"state"`
	CellsDone   int      `json:"cells_done"`
	CellsTotal  int      `json:"cells_total"`
	Err         string   `json:"err,omitempty"`
	Interrupted bool     `json:"interrupted,omitempty"`
}

// Handler returns the daemon's HTTP handler over this Service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.HandleFunc("/v1/drain", s.handleDrain)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	return mux
}

// httpError maps service errors onto statuses: not-found 404, draining
// 503, queue-full 429, over-budget 413, anything else (validation) 400.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrOverBudget):
		code = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"draining":    s.Draining(),
		"active_jobs": s.ActiveJobs(),
	})
}

func (s *Service) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"version": buildinfo.Version()})
}

func (s *Service) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST")
		return
	}
	open := s.Drain()
	writeJSON(w, http.StatusOK, map[string]any{"draining": true, "active_jobs": open})
}

// gaugesSnapshot collects the scheduler-state gauges for one scrape.
func (s *Service) gaugesSnapshot() gauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := gauges{
		jobsByState: make(map[JobState]int, 5),
		workers:     s.cfg.Workers,
		draining:    s.draining || s.closing,
	}
	for _, t := range s.order {
		g.jobsByState[t.state]++
		if t.state == JobQueued {
			g.queueDepth++
		}
	}
	return g
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.gaugesSnapshot())
}

// maxPredictBytes bounds a predict request body.
const maxPredictBytes = 1 << 20

// handlePredict serves POST /v1/predict. The body is either one
// twin.Query object or a {"queries": [...]} batch; the response is one
// PredictResult or {"results": [...]} correspondingly. Malformed bodies
// and unanswerable queries are 400s.
func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPredictBytes+1))
	if err != nil {
		httpError(w, fmt.Errorf("service: read body: %w", err))
		return
	}
	if len(data) > maxPredictBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "predict document too large"})
		return
	}
	var req struct {
		twin.Query
		Queries []twin.Query `json:"queries"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Errorf("service: predict: parse: %w", err))
		return
	}
	if req.Queries == nil {
		if req.Algo == "" {
			httpError(w, fmt.Errorf("service: predict: missing algo"))
			return
		}
		res, err := s.Predict(r.Context(), req.Query)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, fmt.Errorf("service: predict: empty queries batch"))
		return
	}
	results := make([]PredictResult, 0, len(req.Queries))
	for _, q := range req.Queries {
		res, err := s.Predict(r.Context(), q)
		if err != nil {
			httpError(w, fmt.Errorf("service: predict: query %d (%s): %w", len(results), q.Algo, err))
			return
		}
		results = append(results, res)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxJobBytes+1))
		if err != nil {
			httpError(w, fmt.Errorf("service: read body: %w", err))
			return
		}
		if len(data) > maxJobBytes {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "job document too large"})
			return
		}
		job, err := ParseJob(data)
		if err != nil {
			httpError(w, err)
			return
		}
		st, err := s.Submit(job)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

// handleJob serves /v1/jobs/{id} and /v1/jobs/{id}/results.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, ErrNotFound)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			st, err := s.Status(id)
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case http.MethodDelete:
			st, err := s.Cancel(id)
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		default:
			methodNotAllowed(w, "GET, DELETE")
		}
	case "results":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, "GET")
			return
		}
		s.streamResults(w, r, id)
	default:
		httpError(w, ErrNotFound)
	}
}

// streamSnapshot returns the cells completed since offset `from` in
// completion order, plus the job's current state.
func (s *Service) streamSnapshot(t *task, from int) (batch []ResultCell, state JobState, errMsg string, ndone, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, i := range t.order[from:] {
		batch = append(batch, ResultCell{I: i, Cell: t.cells[i]})
	}
	return batch, t.state, t.err, t.ndone, len(t.cells)
}

// streamResults serves a live NDJSON stream of a job's cells: every line
// but the last is a ResultCell, the last is a ResultTrailer. The stream
// follows the job until it goes terminal; on daemon shutdown it ends
// early with an Interrupted trailer instead.
func (s *Service) streamResults(w http.ResponseWriter, r *http.Request, id string) {
	t, sub, ch, err := s.subscribe(id)
	if err != nil {
		httpError(w, err)
		return
	}
	defer s.unsubscribe(t, sub)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sent := 0
	for {
		batch, state, errMsg, ndone, total := s.streamSnapshot(t, sent)
		for _, rc := range batch {
			if err := enc.Encode(rc); err != nil {
				return // client went away
			}
		}
		sent += len(batch)
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() {
			enc.Encode(ResultTrailer{Done: true, State: state, CellsDone: ndone, CellsTotal: total, Err: errMsg})
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.closedCh:
			// Daemon shutting down: flush whatever completed after the
			// last snapshot, then end with an interrupted trailer so the
			// client knows to reconnect post-restart.
			batch, state, errMsg, ndone, total = s.streamSnapshot(t, sent)
			for _, rc := range batch {
				if err := enc.Encode(rc); err != nil {
					return
				}
			}
			enc.Encode(ResultTrailer{Done: state.Terminal(), State: state, CellsDone: ndone, CellsTotal: total, Err: errMsg, Interrupted: !state.Terminal()})
			return
		}
	}
}
