package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doall/internal/bitset"
	"doall/internal/perm"
	"doall/internal/sim"
	"doall/internal/tree"
)

// Property tests for the versioned knowledge plane at the payload level:
// for random merge sequences with reordering, drops, and version gaps,
// merging through the algorithms' actual delivery paths (per-delivery and
// batched) must leave a receiver set-equal to the naive full-bitset union
// of every delivered payload's *meaning* — after every delivery, for both
// payload kinds (DoneSet for the PA family, TreeSnapshot for DA; AllToAll
// and ObliDo are messageless, so their payload kind is vacuous and their
// coverage is the engine equivalence suite).

// delivery wraps a queued payload with its sender.
type queued struct {
	from    int
	payload any
}

// senderPool steps a set of real machines to generate genuine payload
// sequences: machines mark their own progress and also merge each
// other's broadcasts (so snapshots carry rich multi-origin delta
// chains), and every broadcast is queued for the observer.
func pumpSenders(rng *rand.Rand, machines []sim.Machine, rounds int) []queued {
	var out []queued
	now := int64(0)
	for r := 0; r < rounds; r++ {
		for i, m := range machines {
			if h, ok := m.(interface{ Halted() bool }); ok && h.Halted() {
				continue
			}
			res := m.Step(now, nil)
			now++
			if res.Broadcast == nil {
				continue
			}
			out = append(out, queued{from: i, payload: res.Broadcast})
			// Cross-deliver to a random other sender so later snapshots
			// mix knowledge (and sender cursors advance unevenly).
			j := rng.Intn(len(machines))
			if j != i {
				machines[j].Step(now, []sim.Delivery{{
					MC: &sim.Multicast{From: i, SentAt: now, Payload: res.Broadcast},
				}})
				now++
			}
		}
	}
	return out
}

// shuffleDropPlan returns the delivery order with random drops: a random
// permutation of the queue (reordering) with ~1/4 of entries removed
// (version gaps).
func shuffleDropPlan(rng *rand.Rand, n int) []int {
	order := rng.Perm(n)
	var plan []int
	for _, i := range order {
		if rng.Intn(4) == 0 {
			continue
		}
		plan = append(plan, i)
	}
	return plan
}

// TestQuickDoneSetMergeMatchesNaive drives PA's actual merge paths
// (mergeInbox and the batched mergeBatch protocol) on a merge-only
// observer and compares, after every delivery, against the naive
// reference: materialize each DoneSet fully and union it in. The
// remain counter must match the naive added-bit count, too.
func TestQuickDoneSetMergeMatchesNaive(t *testing.T) {
	f := func(seed int64, pRaw, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + int(pRaw%6)
		tasks := 1 + int(tRaw)%40
		senders := NewPaRan1(p, tasks, seed)
		queue := pumpSenders(rng, senders, 12)

		// Two observers — one merging per delivery, one through batches —
		// plus the naive shadow.
		jobs := NewJobs(p, tasks)
		eager := newPA(p, p+1, jobs, &permSelector{order: perm.Identity(jobs.N)})
		batched := newPA(p, p+1, jobs, &permSelector{order: perm.Identity(jobs.N)})
		shadow := bitset.New(jobs.N)
		scratch := bitset.New(jobs.N)

		for _, qi := range shuffleDropPlan(rng, len(queue)) {
			d := queue[qi]
			ds := d.payload.(DoneSet)
			mc := &sim.Multicast{From: d.from, Payload: ds}
			eager.mergeInbox([]sim.Delivery{{MC: mc}})

			b := &sim.Batch{MCs: []*sim.Multicast{mc}, Builder: -1}
			batched.mergeBatch(b)

			ds.S.Materialize(scratch)
			added := shadow.UnionWith(scratch)

			if !eager.done.Bits().Equal(shadow) || !batched.done.Bits().Equal(shadow) {
				t.Logf("seed=%d: done sets diverged from naive union", seed)
				return false
			}
			wantRemain := jobs.N - shadow.Count()
			if eager.remain != wantRemain || batched.remain != wantRemain {
				t.Logf("seed=%d: remain eager=%d batched=%d want %d (added %d)",
					seed, eager.remain, batched.remain, wantRemain, added)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTreeSnapshotMergeMatchesNaive is the same property for DA's
// TreeSnapshot kind: the delta merge plus upward closure propagation must
// equal the naive reference — a plain progress tree merging each
// materialized snapshot with the O(nodes) MergeSet/recompute.
func TestQuickTreeSnapshotMergeMatchesNaive(t *testing.T) {
	f := func(seed int64, pRaw, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + int(pRaw%6)
		tasks := 1 + int(tRaw)%40
		senders, err := NewDA(DAConfig{P: p, T: tasks, Q: 2, Perms: perm.RotationList(2, 2)})
		if err != nil {
			t.Fatal(err)
		}
		queue := pumpSenders(rng, senders, 14)

		jobs := NewJobs(p, tasks)
		mkObserver := func() *DA {
			tr, _ := tree.NewForTasksVersioned(2, jobs.N)
			return &DA{
				pid: p, q: 2, perms: perm.RotationList(2, 2),
				digits: qDigits(p, 2, tr.Height()),
				tree:   tr, vers: tr.Versioned(),
				mg: bitset.NewMerger(p + 1), jobs: jobs,
			}
		}
		eager := mkObserver()
		batched := mkObserver()
		shadow, _ := tree.NewForTasks(2, jobs.N) // plain: naive MergeSet + recompute
		scratch := bitset.New(shadow.Size())

		for _, qi := range shuffleDropPlan(rng, len(queue)) {
			d := queue[qi]
			ts := d.payload.(TreeSnapshot)
			mc := &sim.Multicast{From: d.from, Payload: ts}
			eager.merge([]sim.Delivery{{MC: mc}})

			b := &sim.Batch{MCs: []*sim.Multicast{mc}, Builder: -1}
			batched.mergeBatch(b)

			ts.S.Materialize(scratch)
			shadow.MergeSet(scratch)

			for n := 0; n < shadow.Size(); n++ {
				if eager.tree.Done(n) != shadow.Done(n) || batched.tree.Done(n) != shadow.Done(n) {
					t.Logf("seed=%d: node %d eager=%v batched=%v naive=%v",
						seed, n, eager.tree.Done(n), batched.tree.Done(n), shadow.Done(n))
					return false
				}
			}
			if inv := eager.tree.CheckInvariant(); inv != -1 {
				t.Logf("seed=%d: closure invariant violated at node %d", seed, inv)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGroupedEngineMatchesLegacyAllAlgorithms closes the property
// over all six algorithms (including the messageless AllToAll and
// ObliDo): random small shapes run on the grouped multicast engine and
// on the per-message legacy reference must produce identical Results.
func TestQuickGroupedEngineMatchesLegacyAllAlgorithms(t *testing.T) {
	builders := []func(p, tasks int, seed int64) ([]sim.Machine, error){
		func(p, tasks int, seed int64) ([]sim.Machine, error) { return NewAllToAll(p, tasks), nil },
		func(p, tasks int, seed int64) ([]sim.Machine, error) {
			jobs := NewJobs(p, tasks)
			r := rand.New(rand.NewSource(seed))
			return NewObliDo(p, tasks, perm.RandomList(p, jobs.N, r)), nil
		},
		func(p, tasks int, seed int64) ([]sim.Machine, error) {
			return NewDA(DAConfig{P: p, T: tasks, Q: 2, Perms: perm.RotationList(2, 2)})
		},
		func(p, tasks int, seed int64) ([]sim.Machine, error) { return NewPaRan1(p, tasks, seed), nil },
		func(p, tasks int, seed int64) ([]sim.Machine, error) { return NewPaRan2(p, tasks, seed), nil },
		func(p, tasks int, seed int64) ([]sim.Machine, error) {
			jobs := NewJobs(p, tasks)
			r := rand.New(rand.NewSource(seed))
			return NewPaDet(p, tasks, perm.RandomList(p, jobs.N, r))
		},
	}
	f := func(seed int64, algoRaw, pRaw, tRaw, dRaw uint8) bool {
		algo := int(algoRaw) % len(builders)
		p := 2 + int(pRaw%5)
		tasks := 1 + int(tRaw)%24
		d := 1 + int64(dRaw%5)
		cfg := sim.Config{P: p, T: tasks}

		ms1, err := builders[algo](p, tasks, seed)
		if err != nil {
			t.Fatal(err)
		}
		ms2, err := builders[algo](p, tasks, seed)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err1 := sim.RunLegacy(cfg, ms1, newQuickFair(d))
		grouped, err2 := sim.Run(cfg, ms2, newQuickFair(d))
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed=%d algo=%d: errs %v vs %v", seed, algo, err1, err2)
			return false
		}
		if legacy.Work != grouped.Work || legacy.Messages != grouped.Messages ||
			legacy.SolvedAt != grouped.SolvedAt || legacy.Bytes != grouped.Bytes ||
			legacy.TotalSteps != grouped.TotalSteps || legacy.TotalMessages != grouped.TotalMessages {
			t.Logf("seed=%d algo=%d p=%d t=%d d=%d:\nlegacy  %+v\ngrouped %+v",
				seed, algo, p, tasks, d, legacy, grouped)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// quickFair is a minimal InboxAgnostic uniform adversary local to the
// test (internal/core cannot import internal/adversary — layering).
type quickFair struct{ d int64 }

func newQuickFair(d int64) *quickFair { return &quickFair{d} }

func (a *quickFair) D() int64 { return a.d }
func (a *quickFair) Schedule(v *sim.View, dec *sim.Decision) {
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}
func (a *quickFair) Delay(from, to int, sentAt int64) int64 { return a.d }
func (a *quickFair) DelayUniform(from int, sentAt int64) (int64, bool) {
	return a.d, true
}
func (a *quickFair) InboxAgnostic() bool { return true }
