package sim

// wevent is one timing-wheel entry: either a single-recipient delivery
// (to ≥ 0) or a whole uniform-delay multicast (to < 0, recipients in
// mc.Recipients). Grouping a uniform multicast into one event is what
// makes a broadcast O(1) queue work instead of O(p).
type wevent struct {
	mc *Multicast
	to int32 // recipient id, or -1 for mc.Recipients
}

// wheel is a bucketed timing wheel holding in-flight deliveries keyed on
// absolute delivery time. All events within horizon units of the cursor
// live in buckets (slot = time & mask); the rare farther-out events (only
// possible when the delay bound exceeds maxWheelHorizon) wait in overflow
// and are migrated into buckets as the cursor approaches. Push and pop
// are O(1) amortized — the legacy engine's heap paid O(log m) per message
// with m up to p·d multicasts' worth of entries.
//
// Determinism: buckets are FIFO. Events are pushed in simulation order
// (ascending send time; within one time unit, ascending step order and,
// for per-recipient events of one multicast, ascending recipient id),
// and overflow migration happens at the start of a tick, before any push
// of that tick, preserving send order within every bucket. Delivery order
// therefore matches the legacy engine's (DeliverAt, send-sequence) heap
// order for every recipient inbox.
type wheel struct {
	buckets  [][]wevent
	mask     int64
	cur      int64 // all events at times ≤ cur have been popped
	overflow []wevent
	overdue  []int64 // delivery times of overflow events, parallel slice
	overMin  int64   // min(overdue), valid when len(overflow) > 0
	events   int     // pending events across buckets and overflow
}

// maxWheelHorizon caps the bucket count so absurd delay bounds cannot
// allocate unbounded memory; longer delays take the overflow path.
const maxWheelHorizon = 1 << 15

// wheelBuckets returns the bucket count newWheel picks for a delay
// bound: the next power of two ≥ min(bound+1, maxWheelHorizon). The
// reusable engine compares it against an existing wheel's size to decide
// between resetting and reallocating.
func wheelBuckets(bound int64) int {
	n := int64(2)
	for n < bound+1 && n < maxWheelHorizon {
		n <<= 1
	}
	return int(n)
}

// newWheel returns a wheel able to hold delays up to bound without
// overflow.
func newWheel(bound int64) *wheel {
	n := wheelBuckets(bound)
	return &wheel{buckets: make([][]wevent, n), mask: int64(n) - 1}
}

// reset empties the wheel for a fresh run, retaining bucket capacity. A
// finished run may leave events behind (runs stop at solved or when all
// processors halt, not when the network drains), so buckets and overflow
// are cleared of their multicast references explicitly.
func (w *wheel) reset() {
	if w.events > 0 {
		for i := range w.buckets {
			clear(w.buckets[i])
			w.buckets[i] = w.buckets[i][:0]
		}
		clear(w.overflow)
		w.overflow = w.overflow[:0]
		w.overdue = w.overdue[:0]
	}
	w.cur = 0
	w.overMin = 0
	w.events = 0
}

// push schedules ev for delivery at time at. at must be > w.cur.
//
// The direct-bucket bound is strict (<, matching migrateOverflow's) so a
// push can never land in a bucket that an earlier-sent overflow event for
// the same delivery time has not migrated into yet — migration runs at
// the start of each tick, before that tick's pushes, so within a bucket
// overflow events always precede later direct pushes and FIFO send order
// is preserved. Delays on the non-overflow path are ≤ bound < bucket
// count, so the strict bound only affects the giant-delay overflow case.
func (w *wheel) push(ev wevent, at int64) {
	if at <= w.cur {
		panic("sim: wheel push into the past")
	}
	w.events++
	if at-w.cur < int64(len(w.buckets)) {
		slot := at & w.mask
		w.buckets[slot] = append(w.buckets[slot], ev)
		return
	}
	if len(w.overflow) == 0 || at < w.overMin {
		w.overMin = at
	}
	w.overflow = append(w.overflow, ev)
	w.overdue = append(w.overdue, at)
}

// advanceTo moves the cursor to now, invoking fn(evs, t) once per
// non-empty bucket due at each time t in (cur, now], handing the whole
// bucket in push (FIFO) order — bucket granularity is what lets the
// engine turn an all-uniform bucket into one shared delivery batch. fn
// must not push new events (the engine only pushes during steps, after
// advanceTo) and must not retain evs, which is cleared and reused after
// fn returns.
func (w *wheel) advanceTo(now int64, fn func(evs []wevent, at int64)) {
	if w.events == 0 {
		w.cur = now
		return
	}
	horizon := int64(len(w.buckets))
	for w.cur < now {
		w.cur++
		if len(w.overflow) > 0 && w.overMin-w.cur < horizon {
			w.migrateOverflow()
		}
		slot := w.cur & w.mask
		b := w.buckets[slot]
		if len(b) == 0 {
			continue
		}
		w.events -= len(b)
		fn(b, w.cur)
		clear(b) // release *Multicast references for GC
		w.buckets[slot] = b[:0]
		if w.events == 0 {
			w.cur = now
			return
		}
	}
}

// migrateOverflow moves every overflow event now strictly within the
// horizon into its bucket, preserving push order, and recomputes the
// overflow minimum. The strict bound matters twice over: an event at
// cur+horizon would map to the slot being popped as time cur and be
// delivered early, and push uses the same strict bound so direct pushes
// can never overtake not-yet-migrated overflow events in a bucket.
func (w *wheel) migrateOverflow() {
	horizon := int64(len(w.buckets))
	kept := 0
	w.overMin = 0
	for i, at := range w.overdue {
		if at-w.cur < horizon {
			slot := at & w.mask
			w.buckets[slot] = append(w.buckets[slot], w.overflow[i])
			continue
		}
		if kept == 0 || at < w.overMin {
			w.overMin = at
		}
		w.overflow[kept] = w.overflow[i]
		w.overdue[kept] = at
		kept++
	}
	clear(w.overflow[kept:])
	w.overflow = w.overflow[:kept]
	w.overdue = w.overdue[:kept]
}

// nextDue returns the earliest pending delivery time, or -1 when the
// wheel is empty. O(buckets) — used only to bound idle fast-forward
// jumps, never on the per-tick hot path.
func (w *wheel) nextDue() int64 {
	if w.events == 0 {
		return -1
	}
	for t := w.cur + 1; t <= w.cur+int64(len(w.buckets)); t++ {
		if len(w.buckets[t&w.mask]) > 0 {
			return t
		}
	}
	if len(w.overflow) > 0 {
		return w.overMin
	}
	return -1
}
