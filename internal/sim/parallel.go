package sim

import "time"

// The intra-run parallel tick engine (Config.Shards > 1). One time unit's
// scheduled steps are executed by worker goroutines in three phases:
//
//  A1 (serial plan, parallel builds): under the grouped delivery path,
//      the processors the sequential engine would hand each pending batch
//      to first — the strictly-decreasing prefix minima of the consumers'
//      batch cursors in schedule order — are identified serially, then
//      their combined-knowledge caches are built concurrently: each
//      builder machine's CombinedBuilder constructs and publishes the
//      caches for exactly its batch range, from exactly the cursor state
//      the sequential engine would use, without stepping. The builders'
//      full steps (selector search, task execution) move into phase A2
//      with everyone else's. Machines without CombinedBuilder support
//      fall back to the pre-step serial walk for the whole tick.
//  A2 (parallel): the schedule is split into contiguous shards; each
//      shard's machines step concurrently against shard-private shadow
//      views of the ring (sharing the immutable multicast lists and the
//      phase-A1 combined caches), so a machine that would build a cache
//      in this phase publishes into its shard's shadow, never into a
//      structure another shard reads. On observer-free ticks each shard
//      also pre-reduces its steps' commutative accounting — step/work
//      counters, task-execution classification, message and byte
//      charges, batch cursor advancement and consumption counts — into
//      its own cache-line-padded block.
//  B (serial): the per-shard reductions are merged in one O(shards)
//      pass, then only the genuinely order-dependent residue replays in
//      schedule order — multicast publication into the pool and wheel
//      (with its adversary delay queries), inbox release, task-ledger
//      set-bits, halts, and the informed check — so every engine-shared
//      structure mutates in exactly the sequential engine's order. Ticks
//      with an Observer replay the full finishStep instead (the hooks
//      fix the callback order).
//
// Byte-identity argument, in brief: steps within one time unit are
// input-independent (messages sent at time τ deliver at τ+1 at the
// earliest), a step reads only its machine's private state plus immutable
// snapshots and published caches, phase A1 pins cache construction to the
// sequential builders and cursor states (BuildCombined reads only the
// merge cursors, never the working state, so build-ahead + apply-at-step
// equals the sequential in-step build-and-apply), the staged accounting
// is commutative across the tick's steps (Result.Solved is constant
// within a tick, a task's primary/secondary class depends only on its
// pre-tick ledger state, and message charges are omission-independent),
// and phase B replays every remaining shared-state mutation in schedule
// order. The equivalence matrix in internal/scenario asserts the
// identity across all algorithms, fault adversaries, and shard counts.
//
// Ticks that cannot be proven safe fall back to the sequential loop for
// that unit: a schedule that is not strictly increasing (no registered
// adversary produces one, but Decision.Active is caller data) or one with
// fewer than two runnable machines.

// shardBlock is one shard's private scratch: the worker's wake channel,
// materialization scratch for non-BatchConsumer machines, the shadow
// ring views, and the staged phase-B pre-reduction counters. The leading
// and trailing pads keep neighboring blocks in the engine's shard slice
// from sharing cache lines, so concurrent counter writes never
// false-share.
type shardBlock struct {
	_       [64]byte
	wake    chan struct{} // nil until the shard's worker is launched (shard 0 has none)
	scratch []Delivery
	shadow  []*Batch
	nshadow int

	// Staged phase-B pre-reduction, reset at the start of each staged
	// tick: step and message accounting for the shard's schedule range,
	// and consumed[o] = number of the shard's steppers whose first
	// unconsumed pending batch is at ring offset o (batch b's remaining
	// count then drops by the prefix sum over offsets ≤ b's).
	steps     int64
	msgs      int64
	bytes     int64
	taskExecs int64
	primary   int64
	secondary int64
	consumed  []int32
	_         [64]byte
}

// buildJob is one phase-A1 cache-construction assignment: schedule
// position k's machine (a prefix-minimum consumer) builds the pending
// batches in ring-offset range [lo, hi) — the batches the sequential
// engine would hand it first.
type buildJob struct {
	pid int32
	k   int32
	lo  int32
	hi  int32
}

// ensureShards grows the shard-block slice to nsh entries and launches
// the parked worker goroutines for shards 1..nsh-1 (shard 0 runs on the
// engine's goroutine). Workers are launched once and then parked on
// their wake channels between ticks and between runs — respawning per
// tick would put a goroutine-closure allocation on the steady-state hot
// path. Close stops them.
func (e *Engine) ensureShards(nsh int) {
	if len(e.shard) < nsh {
		blocks := make([]shardBlock, nsh)
		copy(blocks, e.shard)
		e.shard = blocks
	}
	for s := e.launched + 1; s < nsh; s++ {
		if e.shard[s].wake == nil {
			wake := make(chan struct{}, 1)
			e.shard[s].wake = wake
			go e.shardWorker(s, wake)
		}
	}
	if nsh-1 > e.launched {
		e.launched = nsh - 1
	}
}

// shardWorker is one parked worker: each wake runs either its share of
// the tick's cache builds (phase A1, e.parBuild) or its shard's slice of
// the schedule (phase A2). The wake send happens-before the worker's
// reads of the tick state (including parBuild), and the worker's result
// writes happen-before the engine's parDone.Wait return.
func (e *Engine) shardWorker(s int, wake <-chan struct{}) {
	for range wake {
		if e.parBuild {
			e.runBuilds(s)
		} else {
			e.runShard(s)
		}
		e.parDone.Done()
	}
}

// Close stops the engine's parked shard workers. The engine stays
// usable — the next parallel run relaunches them — so Close is only
// needed when discarding many sharded engines (tests, short-lived
// fleets); an engine dropped without Close parks its workers until the
// engine (and with it the channels) is collected, at which point they
// are unreachable and the runtime reclaims them only at process exit.
func (e *Engine) Close() {
	for s := 1; s <= e.launched && s < len(e.shard); s++ {
		if e.shard[s].wake != nil {
			close(e.shard[s].wake)
			e.shard[s].wake = nil
		}
	}
	e.launched = 0
}

// shardRange returns shard s's half-open slice [lo, hi) of n schedule
// positions split into nsh contiguous near-equal ranges.
func shardRange(n, nsh, s int) (lo, hi int) {
	base, rem := n/nsh, n%nsh
	lo = s * base
	if s < rem {
		lo += s
	} else {
		lo += rem
	}
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// runBuilds executes build worker s's share of the tick's buildJob plan:
// each job's machine constructs and publishes the combined caches for
// its batch range, oldest first (the within-range order matters — the
// machine's merge cursors advance batch by batch). Jobs touch disjoint
// batches and distinct machines, so concurrent builds share nothing but
// the immutable multicast lists.
func (e *Engine) runBuilds(s int) {
	lo, hi := shardRange(len(e.builds), e.parNbld, s)
	for _, bj := range e.builds[lo:hi] {
		cb := e.cbuilders[bj.pid]
		for off := bj.lo; off < bj.hi; off++ {
			b := e.ringBuf[e.ringHead+int(off)]
			if b.Combined == nil {
				// A failed build (payload-heterogeneous batch) stays
				// cache-less; machine-side eager fallbacks keep results
				// identical, exactly as on the sequential engine (the
				// failure is machine-independent).
				cb.BuildCombined(b)
			}
		}
	}
}

// runShard steps every non-phase-A1 machine in shard s's range of the
// current tick's schedule, capturing results into parRes. On staged
// ticks it also pre-reduces the range's commutative accounting into the
// shard block: per-processor work and batch cursors are written directly
// (each scheduled processor belongs to exactly one shard), everything
// aggregated is summed locally and merged by the engine in phase B.
func (e *Engine) runShard(s int) {
	lo, hi := shardRange(e.parN, e.parNsh, s)
	sb := &e.shard[s]
	now := e.parNow
	if !e.parStaged {
		for k := lo; k < hi; k++ {
			if e.isA1[k] {
				continue
			}
			e.parRes[k] = e.stepMachine(int(e.stepList[k]), now, sb)
		}
		return
	}
	sb.steps, sb.msgs, sb.bytes = 0, 0, 0
	sb.taskExecs, sb.primary, sb.secondary = 0, 0, 0
	nb := e.parNb
	if cap(sb.consumed) < nb {
		sb.consumed = make([]int32, nb)
	}
	sb.consumed = sb.consumed[:nb]
	clear(sb.consumed)
	for k := lo; k < hi; k++ {
		pid := int(e.stepList[k])
		if !e.isA1[k] {
			e.parRes[k] = e.stepMachine(pid, now, sb)
		}
		e.finishStepLocal(pid, now, &e.parRes[k], sb)
	}
}

// finishStepLocal pre-reduces one step's commutative share of finishStep
// into the step's shard block, during phase A2:
//
//   - batch cursor advancement (each processor's cursor is written only
//     by its own shard) and the consumption histogram that phase B folds
//     into the batches' remaining counts;
//   - step and work counters (Result.Solved is constant within a tick,
//     so the conditional split is applied once at merge time);
//   - task-execution classification: primary iff the task was undone
//     before this tick (pre-tick FirstDoneAt is -1; every same-tick
//     performer of one task gets the same class, exactly as the
//     sequential interleaving assigns). Out-of-range tasks are left for
//     the serial residue's validation panic;
//   - message and byte charges: a broadcast charges p-1 messages and
//     p-1 wire sizes and a valid send charges one of each, omitted or
//     not, so no adversary query is needed here and the stateful omit
//     stream stays untouched until the residue replays it.
func (e *Engine) finishStepLocal(i int, now int64, r *StepResult, sb *shardBlock) {
	if e.grouped {
		cur := e.cursor[i]
		if cur < e.ringSeq0 {
			cur = e.ringSeq0
		}
		if cur < e.batchSeq {
			sb.consumed[cur-e.ringSeq0]++
			e.cursor[i] = e.batchSeq
		}
	}
	sb.steps++
	e.res.PerProcWork[i]++
	if z := r.PerformedTask(); z != NoTask && z >= 0 && z < e.cfg.T {
		sb.taskExecs++
		if e.res.FirstDoneAt[z] == -1 {
			sb.primary++
		} else {
			sb.secondary++
		}
	}
	if r.Broadcast != nil && e.cfg.P > 1 {
		n := int64(e.cfg.P - 1)
		sb.msgs += n
		sb.bytes += e.wireSize(i, r.Broadcast) * n
	}
	for _, snd := range r.Sends {
		if snd.To < 0 || snd.To >= e.cfg.P || snd.To == i || snd.Payload == nil {
			continue
		}
		sb.msgs++
		sb.bytes += e.wireSize(i, snd.Payload)
	}
}

// tickPar executes one time unit's scheduled steps in parallel. It
// returns (stepped, informed, true) when it ran, or ok=false when the
// tick does not qualify and the caller must run the sequential loop
// (nothing has been mutated in that case).
func (e *Engine) tickPar(now int64) (int, bool, bool) {
	// Filter the schedule exactly like the sequential loop, bailing out if
	// it is not strictly increasing (the replay phase assumes each
	// processor steps at most once per unit, in index order).
	sl := e.stepList[:0]
	last := int32(-1)
	for _, i := range e.dec.Active {
		if i < 0 || i >= e.cfg.P || e.crashed[i] || e.halted[i] {
			continue
		}
		if int32(i) <= last {
			e.stepList = sl[:0]
			return 0, false, false
		}
		last = int32(i)
		sl = append(sl, int32(i))
	}
	e.stepList = sl
	n := len(sl)
	nsh := e.shards
	if nsh > n {
		nsh = n
	}
	if nsh < 2 {
		e.stepList = sl[:0]
		return 0, false, false
	}
	t0 := time.Now()
	if cap(e.parRes) < n {
		e.parRes = make([]StepResult, n)
	}
	e.parRes = e.parRes[:n]
	if cap(e.isA1) < n {
		e.isA1 = make([]bool, n)
	}
	e.isA1 = e.isA1[:n]
	clear(e.isA1)

	nb := 0
	e.builds = e.builds[:0]
	if e.grouped && e.batchSeq > e.ringSeq0 {
		nb = int(e.batchSeq - e.ringSeq0)
		// Phase A1: plan the cache builds. The first consumer of pending
		// batch b is the first scheduled machine whose cursor is ≤ b's
		// sequence, so the set of first consumers over all pending batches
		// is exactly the strictly-decreasing prefix minima of the cursors,
		// and each minimum's build range is [its cursor, previous minimum).
		minCur := e.batchSeq
		serialA1 := false
		for k, pid := range sl {
			cur := e.cursor[pid]
			if cur < e.ringSeq0 {
				cur = e.ringSeq0
			}
			if cur < minCur {
				e.builds = append(e.builds, buildJob{
					pid: pid,
					k:   int32(k),
					lo:  int32(cur - e.ringSeq0),
					hi:  int32(minCur - e.ringSeq0),
				})
				if e.cbuilders[pid] == nil {
					serialA1 = true
				}
				minCur = cur
			}
		}
		if serialA1 {
			// Some builder cannot build without stepping: fall back to
			// stepping every prefix minimum serially against the real ring,
			// in schedule order, publishing whatever caches those steps
			// build — the previous generation's phase A1. (The scan itself
			// mutates nothing, so plan-then-step equals step-during-scan.)
			for _, bj := range e.builds {
				e.isA1[bj.k] = true
				e.parRes[bj.k] = e.stepMachine(int(bj.pid), now, nil)
			}
		} else if len(e.builds) > 0 {
			// Fan the builds out across the parked workers, one or more
			// whole builders per worker (a builder's own range is
			// order-dependent through its merge cursors and cannot split).
			nbld := nsh
			if nbld > len(e.builds) {
				nbld = len(e.builds)
			}
			e.parNbld = nbld
			if nbld < 2 {
				e.runBuilds(0)
			} else {
				e.parBuild = true
				e.parDone.Add(nbld - 1)
				for s := 1; s < nbld; s++ {
					e.shard[s].wake <- struct{}{}
				}
				e.runBuilds(0)
				e.parDone.Wait()
				e.parBuild = false
			}
		}
		// Seed every shard's shadow ring: same delivery times, the same
		// immutable multicast lists, and the combined caches as published
		// by phase A1 (and previous ticks). A shard machine that still
		// finds a batch cache-less (payload-heterogeneous groups only)
		// builds into its shard's shadow, invisible to other shards.
		for s := 0; s < nsh; s++ {
			sb := &e.shard[s]
			for len(sb.shadow) < nb {
				sb.shadow = append(sb.shadow, &Batch{Builder: -1})
			}
			for k := 0; k < nb; k++ {
				rb := e.ringBuf[e.ringHead+k]
				shb := sb.shadow[k]
				shb.At = rb.At
				shb.MCs = rb.MCs
				shb.Combined = rb.Combined
				shb.Builder = rb.Builder
			}
			sb.nshadow = nb
		}
	} else {
		for s := 0; s < nsh; s++ {
			e.shard[s].nshadow = 0
		}
	}

	// Phase A2: fan the remaining positions out across the shards. The
	// engine's goroutine runs shard 0 itself. Staged accounting requires
	// no Observer (hook order is a per-step contract that only the full
	// replay preserves).
	e.parStaged = e.obs == nil
	e.parNow, e.parN, e.parNsh, e.parNb = now, n, nsh, nb
	t1 := time.Now()
	e.parDone.Add(nsh - 1)
	for s := 1; s < nsh; s++ {
		e.shard[s].wake <- struct{}{}
	}
	e.runShard(0)
	e.parDone.Wait()
	t2 := time.Now()

	// Phase B: merge the per-shard reductions (one O(shards·batches)
	// pass), then apply the order-dependent residue in schedule order —
	// or, with an Observer attached, replay the full finishStep.
	informed := false
	if e.parStaged {
		var steps, msgs, bytes, texecs, prim, sec int64
		for s := 0; s < nsh; s++ {
			sb := &e.shard[s]
			steps += sb.steps
			msgs += sb.msgs
			bytes += sb.bytes
			texecs += sb.taskExecs
			prim += sb.primary
			sec += sb.secondary
		}
		e.res.TotalSteps += steps
		e.res.TaskExecutions += texecs
		e.res.PrimaryExecutions += prim
		e.res.SecondaryExecutions += sec
		e.res.TotalMessages += msgs
		if !e.res.Solved {
			e.res.Work += steps
			e.res.Messages += msgs
			e.res.Bytes += bytes
		}
		// Batch b's remaining count drops once per stepper whose first
		// unconsumed offset is ≤ b's: a running prefix sum over the
		// shards' consumption histograms.
		cum := int32(0)
		for o := 0; o < nb; o++ {
			for s := 0; s < nsh; s++ {
				cum += e.shard[s].consumed[o]
			}
			e.ringBuf[e.ringHead+o].remaining -= cum
		}
		e.stagedAcct = true
		for k, pid := range sl {
			e.finishStepResidue(int(pid), now, &e.parRes[k], &informed)
		}
		e.stagedAcct = false
	} else {
		for k, pid := range sl {
			e.finishStep(int(pid), now, &e.parRes[k], &informed)
		}
	}

	// Reclaim shard-built shadow caches (the real batch kept the phase-A1
	// cache, so a differing shadow cache is a duplicate owned by its
	// builder) and drop the shadows' references so retired multicasts and
	// caches do not outlive the tick through shard scratch.
	for s := 0; s < nsh; s++ {
		sb := &e.shard[s]
		for k := 0; k < sb.nshadow; k++ {
			shb := sb.shadow[k]
			if shb.Combined != nil && shb.Combined != e.ringBuf[e.ringHead+k].Combined {
				if rc := e.recyclers[shb.Builder]; rc != nil {
					rc.RecyclePayload(shb.Combined)
				}
			}
			shb.MCs = nil
			shb.Combined = nil
			shb.Builder = -1
		}
		sb.nshadow = 0
	}
	e.phaseNs[0] += int64(t1.Sub(t0))
	e.phaseNs[1] += int64(t2.Sub(t1))
	e.phaseNs[2] += int64(time.Since(t2))
	e.parTicks++
	return n, informed, true
}
