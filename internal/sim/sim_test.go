package sim

import (
	"errors"
	"testing"
)

// seqMachine performs the t tasks in cyclic order starting at a
// pid-dependent offset, one per step, broadcasting after each, and halts
// when it believes all t tasks are done. It trusts received payloads of
// type int (a task id) as "done" news.
type seqMachine struct {
	t    int
	off  int
	next int // tasks attempted (index into the cyclic order)
	done []bool
	left int
}

func newSeqMachine(t int) *seqMachine { return newSeqMachineAt(t, 0) }

func newSeqMachineAt(t, off int) *seqMachine {
	return &seqMachine{t: t, off: off % t, done: make([]bool, t), left: t}
}

func (m *seqMachine) Step(now int64, inbox []Delivery) StepResult {
	for _, msg := range inbox {
		if z, ok := msg.Payload().(int); ok && !m.done[z] {
			m.done[z] = true
			m.left--
		}
	}
	for m.next < m.t && m.done[(m.off+m.next)%m.t] {
		m.next++
	}
	if m.left == 0 {
		return StepResult{Halt: true}
	}
	if m.next >= m.t {
		return StepResult{} // idle; waiting for news
	}
	z := (m.off + m.next) % m.t
	m.done[z] = true
	m.left--
	m.next++
	r := StepResult{Broadcast: z, Halt: m.left == 0}
	r.Perform(z)
	return r
}

func (m *seqMachine) KnowsAllDone() bool { return m.left == 0 }

// fixedAdv: everyone steps each unit, delay exactly fix.
type fixedAdv struct {
	d, fix int64
}

func (a *fixedAdv) D() int64 { return a.d }
func (a *fixedAdv) Schedule(v *View, dec *Decision) {
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}
func (a *fixedAdv) Delay(from, to int, sentAt int64) int64 { return a.fix }

func TestSingleProcessorSolves(t *testing.T) {
	ms := []Machine{newSeqMachine(5)}
	res, err := Run(Config{P: 1, T: 5}, ms, &fixedAdv{d: 1, fix: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	// 5 steps perform 5 tasks; the 5th step also halts knowing all done.
	if res.Work != 5 {
		t.Fatalf("Work = %d, want 5", res.Work)
	}
	if res.SolvedAt != 4 {
		t.Fatalf("SolvedAt = %d, want 4", res.SolvedAt)
	}
	if res.Messages != 0 {
		// Single processor: broadcast goes to zero recipients.
		t.Fatalf("Messages = %d, want 0", res.Messages)
	}
	if res.HaltedEarly {
		t.Fatal("halt at completion flagged as early")
	}
}

func TestTwoProcessorsShareWork(t *testing.T) {
	// Two seq machines starting at opposite offsets with delay 1: news
	// flows quickly, so each skips most of the other's half.
	ms := []Machine{newSeqMachineAt(10, 0), newSeqMachineAt(10, 5)}
	res, err := Run(Config{P: 2, T: 10}, ms, &fixedAdv{d: 1, fix: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("not solved")
	}
	if res.Work >= 20 {
		t.Fatalf("Work = %d, expected sharing to beat oblivious 20", res.Work)
	}
	if res.TaskExecutions < 10 {
		t.Fatalf("TaskExecutions = %d < t", res.TaskExecutions)
	}
	if res.PrimaryExecutions < 10 {
		t.Fatalf("PrimaryExecutions = %d < t (each task first-performed once)", res.PrimaryExecutions)
	}
	if res.PrimaryExecutions+res.SecondaryExecutions != res.TaskExecutions {
		t.Fatal("primary + secondary ≠ total executions")
	}
}

func TestWorkStopsAccruingAtSolved(t *testing.T) {
	// One fast solver and one processor that never performs tasks: after σ
	// the idler's steps must not count toward Work but do count toward
	// TotalSteps.
	ms := []Machine{newSeqMachine(3), newSeqMachine(3)}
	res, err := Run(Config{P: 2, T: 3}, ms, &fixedAdv{d: 5, fix: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps < res.Work {
		t.Fatalf("TotalSteps %d < Work %d", res.TotalSteps, res.Work)
	}
}

func TestMessageAccounting(t *testing.T) {
	// P processors, each broadcast costs P-1 point-to-point messages.
	p := 4
	ms := make([]Machine, p)
	for i := range ms {
		ms[i] = newSeqMachine(2)
	}
	res, err := Run(Config{P: p, T: 2}, ms, &fixedAdv{d: 2, fix: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages%int64(p-1) != 0 {
		t.Fatalf("Messages = %d not a multiple of p-1 = %d", res.Messages, p-1)
	}
	if res.Messages == 0 {
		t.Fatal("expected some messages")
	}
}

func TestDelayRespected(t *testing.T) {
	// With a huge delay, two seq machines can't coordinate: both perform
	// all tasks (work = 2t at least until one finishes).
	tt := 6
	ms := []Machine{newSeqMachine(tt), newSeqMachine(tt)}
	res, err := Run(Config{P: 2, T: tt}, ms, &fixedAdv{d: 100, fix: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != int64(2*tt) {
		t.Fatalf("Work = %d, want %d (no effective communication)", res.Work, 2*tt)
	}
	if res.SecondaryExecutions != 0 && res.PrimaryExecutions != int64(2*tt)-res.SecondaryExecutions {
		t.Fatal("execution accounting inconsistent")
	}
}

func TestStepCapReturnsError(t *testing.T) {
	// A machine that never performs anything can't solve Do-All.
	idler := &idleMachine{}
	_, err := Run(Config{P: 1, T: 1, MaxSteps: 50}, []Machine{idler}, &fixedAdv{d: 1, fix: 1})
	if !errors.Is(err, ErrStepCap) {
		t.Fatalf("err = %v, want ErrStepCap", err)
	}
}

type idleMachine struct{}

func (m *idleMachine) Step(now int64, inbox []Delivery) StepResult { return StepResult{} }
func (m *idleMachine) KnowsAllDone() bool                          { return false }

func TestCrashedProcessorsTakeNoSteps(t *testing.T) {
	ms := []Machine{newSeqMachine(4), newSeqMachine(4)}
	adv := &crashAdv{fixedAdv: fixedAdv{d: 1, fix: 1}, crashAt: 0, victim: 1}
	res, err := Run(Config{P: 2, T: 4}, ms, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerProcWork[1] != 0 {
		t.Fatalf("crashed processor did %d steps", res.PerProcWork[1])
	}
	if !res.Solved {
		t.Fatal("survivor did not solve")
	}
}

type crashAdv struct {
	fixedAdv
	crashAt int64
	victim  int
}

func (a *crashAdv) Schedule(v *View, dec *Decision) {
	a.fixedAdv.Schedule(v, dec)
	if v.Now == a.crashAt {
		dec.Crash = append(dec.Crash, a.victim)
	}
}

func TestHaltedEarlyDetection(t *testing.T) {
	// A machine that halts immediately without doing anything violates
	// Proposition 2.1 and must be flagged.
	quitter := &quitMachine{}
	worker := newSeqMachine(2)
	res, err := Run(Config{P: 2, T: 2}, []Machine{quitter, worker}, &fixedAdv{d: 1, fix: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedEarly {
		t.Fatal("early halt not detected")
	}
}

type quitMachine struct{}

func (m *quitMachine) Step(now int64, inbox []Delivery) StepResult { return StepResult{Halt: true} }
func (m *quitMachine) KnowsAllDone() bool                          { return false }

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		ms := []Machine{newSeqMachine(8), newSeqMachine(8), newSeqMachine(8)}
		res, err := Run(Config{P: 3, T: 8}, ms, &fixedAdv{d: 3, fix: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Work != b.Work || a.Messages != b.Messages || a.SolvedAt != b.SolvedAt {
		t.Fatalf("nondeterministic results: %+v vs %+v", a, b)
	}
}

func TestBadDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delay outside [1,d]")
		}
	}()
	ms := []Machine{newSeqMachine(2), newSeqMachine(2)}
	_, _ = Run(Config{P: 2, T: 2}, ms, &fixedAdv{d: 1, fix: 0})
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{P: 2, T: 1}, []Machine{newSeqMachine(1)}, &fixedAdv{d: 1, fix: 1}); err == nil {
		t.Fatal("machine count mismatch accepted")
	}
	if _, err := Run(Config{P: 0, T: 1}, nil, &fixedAdv{d: 1, fix: 1}); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := Run(Config{P: 1, T: 1}, []Machine{newSeqMachine(1)}, &fixedAdv{d: 0, fix: 0}); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestDelayQueueOrdering(t *testing.T) {
	q := newDelayQueue()
	q.push(Message{From: 0, To: 1, DeliverAt: 5, Payload: "a"})
	q.push(Message{From: 0, To: 1, DeliverAt: 3, Payload: "b"})
	q.push(Message{From: 0, To: 1, DeliverAt: 5, Payload: "c"})
	if got := q.popDue(2); len(got) != 0 {
		t.Fatalf("popDue(2) = %v, want empty", got)
	}
	got := q.popDue(5)
	if len(got) != 3 {
		t.Fatalf("popDue(5) returned %d messages, want 3", len(got))
	}
	if got[0].Payload != "b" || got[1].Payload != "a" || got[2].Payload != "c" {
		t.Fatalf("wrong order: %v %v %v", got[0].Payload, got[1].Payload, got[2].Payload)
	}
	if q.len() != 0 {
		t.Fatal("queue not drained")
	}
}
