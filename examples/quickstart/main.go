// Quickstart: solve a small Do-All instance with the deterministic
// algorithm DA(q) through the declarative Scenario API and print the
// complexity measures. The scenario round-trips through JSON on the way —
// the spec you run is the spec you could have loaded from a file — and an
// Observer hook counts broadcasts live without touching the engine.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"doall"
)

func main() {
	sc := doall.Scenario{
		Algorithm: "DA", // resolved through the open algorithm registry
		Adversary: "fair",
		P:         8,  // processors
		T:         64, // tasks
		Q:         2,  // progress-tree arity
		D:         4,  // message-delay bound (unknown to the algorithm!)
		Seed:      42,
	}

	// 1. Scenarios are plain data: marshal, ship, load, run.
	spec, err := json.Marshal(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n", spec)
	loaded, err := doall.ParseScenario(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run under the d-adversary, tapping the engine's observer hooks.
	//    The algorithm never learns d; only the analysis does.
	var broadcasts int
	res, err := doall.RunScenarioWith(loaded, doall.ScenarioOptions{
		Observer: &doall.FuncObserver{
			Multicast: func(from int, now int64, payload any, recipients int) { broadcasts++ },
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Sim
	fmt.Printf("solved: %v at global time %d\n", r.Solved, r.SolvedAt)
	fmt.Printf("work W = %d   (oblivious algorithm would use p·t = %d)\n", r.Work, sc.P*sc.T)
	fmt.Printf("messages M = %d (from %d broadcasts, observed live)\n", r.Messages, broadcasts)
	fmt.Printf("task executions: %d primary + %d secondary\n",
		r.PrimaryExecutions, r.SecondaryExecutions)
}
