// Command experiments regenerates every experiment in DESIGN.md's index
// (E1–E10) and prints the result tables, optionally as Markdown for
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # quick scale, plain text
//	experiments -scale full      # the sizes used in EXPERIMENTS.md
//	experiments -markdown        # Markdown output
//	experiments -only E5,E6      # subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"doall/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.String("scale", "quick", "experiment scale: quick or full")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default all)")
	)
	flag.Parse()

	sc := harness.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = harness.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	tables, err := harness.AllExperiments(sc)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		if len(want) > 0 && !want[tb.ID] {
			continue
		}
		if *markdown {
			fmt.Println(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}
	return nil
}
