package harness

import (
	"fmt"
	"reflect"
	"testing"

	"doall/internal/adversary"
	"doall/internal/sim"
)

// TestEngineEquivalence asserts the tentpole contract of the multicast-
// native engine: for every algorithm × adversary pair, sim.Run reproduces
// sim.RunLegacy's Result exactly — Work, Messages, SolvedAt, primary and
// secondary executions, byte volume, per-processor work, everything.
// Machines and adversaries are rebuilt from identical seeds for each
// engine so both executions start from identical state.
func TestEngineEquivalence(t *testing.T) {
	algos := []Algo{AlgoAllToAll, AlgoObliDo, AlgoDA, AlgoPaRan1, AlgoPaRan2, AlgoPaDet}
	sizes := []struct{ p, t int }{{2, 8}, {5, 16}, {16, 64}}
	advs := []string{"fair", "random", "crash-fair", "crash-random", "slow-all", "crash-slow-all", "crash-stage-det", "stage-det", "stage-online",
		"restart-fair", "restart-random", "restart-slow-all", "omit-fair", "omit-random", "omit-subset-fair", "restart-omit-fair"}

	for _, algo := range algos {
		for _, size := range sizes {
			for _, d := range []int64{1, 3} {
				for _, advName := range advs {
					spec := Spec{Algo: algo, P: size.p, T: size.t, D: d, Seed: 17}
					name := fmt.Sprintf("%s/p%d-t%d-d%d/%s", algo, size.p, size.t, d, advName)
					t.Run(name, func(t *testing.T) {
						legacy, errL := runEquivCase(spec, advName, sim.RunLegacy)
						fresh, errN := runEquivCase(spec, advName, sim.Run)
						if (errL == nil) != (errN == nil) {
							t.Fatalf("error mismatch: legacy=%v new=%v", errL, errN)
						}
						if !reflect.DeepEqual(legacy, fresh) {
							t.Fatalf("Result diverged:\nlegacy: %+v\nnew:    %+v", legacy, fresh)
						}
					})
				}
			}
		}
	}
}

// runEquivCase builds fresh machines and a fresh adversary for the spec
// and executes them with the given engine.
func runEquivCase(s Spec, advName string, engine func(sim.Config, []sim.Machine, sim.Adversary) (*sim.Result, error)) (*sim.Result, error) {
	ms, err := BuildMachines(s)
	if err != nil {
		return nil, fmt.Errorf("build machines: %w", err)
	}
	adv, err := buildEquivAdversary(s, advName)
	if err != nil {
		return nil, err
	}
	return engine(sim.Config{P: s.P, T: s.T}, ms, adv)
}

func buildEquivAdversary(s Spec, advName string) (sim.Adversary, error) {
	crashes := []adversary.CrashEvent{{Pid: 0, At: 1}, {Pid: s.P - 1, At: 3}}
	switch advName {
	case "fair":
		return adversary.NewFair(s.D), nil
	case "random":
		return adversary.NewRandom(s.D, 0.6, s.Seed^0xbeef), nil
	case "crash-fair":
		return adversary.NewCrashing(adversary.NewFair(s.D), crashes), nil
	case "crash-random":
		return adversary.NewCrashing(adversary.NewRandom(s.D, 0.6, s.Seed^0xbeef), crashes), nil
	case "slow-all":
		// Every processor slow: the schedule is empty off-period, so the
		// new engine's idle fast-forward engages and must stay exact.
		slow := make([]int, s.P)
		for i := range slow {
			slow[i] = i
		}
		return adversary.NewSlowSet(s.D, slow, 5), nil
	case "crash-slow-all":
		// Crash events timed inside the idle stretches of an all-slow
		// schedule (period 5, crashes at t=1 and t=3): the fast-forward
		// must not jump over them (Crashing clamps NextWake).
		slow := make([]int, s.P)
		for i := range slow {
			slow[i] = i
		}
		return adversary.NewCrashing(adversary.NewSlowSet(s.D, slow, 5), crashes), nil
	case "crash-stage-det":
		return adversary.NewCrashing(adversary.NewStageDeterministic(s.D, s.T), crashes), nil
	case "stage-det":
		return adversary.NewStageDeterministic(s.D, s.T), nil
	case "stage-online":
		return adversary.NewStageOnline(s.D, s.T), nil
	case "restart-fair":
		return adversary.NewRestarting(adversary.NewFair(s.D), restartsFor(s)), nil
	case "restart-random":
		return adversary.NewRestarting(adversary.NewRandom(s.D, 0.6, s.Seed^0xbeef), restartsFor(s)), nil
	case "restart-slow-all":
		// Revives timed inside the idle stretches of an all-slow schedule:
		// the engine's fast-forward must not jump over them (Restarting
		// clamps NextWake).
		slow := make([]int, s.P)
		for i := range slow {
			slow[i] = i
		}
		return adversary.NewRestarting(adversary.NewSlowSet(s.D, slow, 5), restartsFor(s)), nil
	case "omit-fair":
		return adversary.NewOmitting(adversary.NewFair(s.D), omitsFor(s), nil), nil
	case "omit-random":
		return adversary.NewOmitting(adversary.NewRandom(s.D, 0.6, s.Seed^0xbeef), omitsFor(s), nil), nil
	case "omit-subset-fair":
		// Deliver-to-subset omission: only the copies addressed to the
		// first two processors are dropped.
		return adversary.NewOmitting(adversary.NewFair(s.D), omitsFor(s), []int{0, 1}), nil
	case "restart-omit-fair":
		// The full fault plane composed: restartable crashes over
		// message omission over fixed delays.
		return adversary.NewRestarting(
			adversary.NewOmitting(adversary.NewFair(s.D), omitsFor(s), nil),
			restartsFor(s)), nil
	}
	return nil, fmt.Errorf("unknown equivalence adversary %q", advName)
}

// restartsFor schedules crash-restart faults that exercise both the
// downtime and the rebased re-entry: the first and last processors go
// down early and revive mid-run.
func restartsFor(s Spec) []adversary.RestartEvent {
	return []adversary.RestartEvent{
		{Pid: 0, CrashAt: 1, ReviveAt: 1 + 3*s.D},
		{Pid: s.P - 1, CrashAt: 3, ReviveAt: 3 + 5*s.D},
	}
}

// omitsFor schedules omission windows covering the early broadcasts of
// two senders (every send in the window loses its copies).
func omitsFor(s Spec) []adversary.OmitWindow {
	return []adversary.OmitWindow{
		{Pid: 0, From: 0, Until: 4 * s.D},
		{Pid: s.P / 2, From: s.D, Until: 6 * s.D},
	}
}

// TestEngineEquivalenceNonUniformDelays drives the engine's per-recipient
// scheduling path (non-uniform delays within one multicast) explicitly:
// a delay that depends on the recipient id defeats the uniform-delay
// single-event fast path.
func TestEngineEquivalenceNonUniformDelays(t *testing.T) {
	for _, algo := range []Algo{AlgoDA, AlgoPaRan1, AlgoPaDet} {
		spec := Spec{Algo: algo, P: 8, T: 32, D: 5, Seed: 23}
		build := func() ([]sim.Machine, sim.Adversary, error) {
			ms, err := BuildMachines(spec)
			return ms, &recipientSkewAdv{d: spec.D}, err
		}
		msL, advL, err := build()
		if err != nil {
			t.Fatal(err)
		}
		legacy, errL := sim.RunLegacy(sim.Config{P: spec.P, T: spec.T}, msL, advL)
		msN, advN, err := build()
		if err != nil {
			t.Fatal(err)
		}
		fresh, errN := sim.Run(sim.Config{P: spec.P, T: spec.T}, msN, advN)
		if (errL == nil) != (errN == nil) {
			t.Fatalf("%s: error mismatch: legacy=%v new=%v", algo, errL, errN)
		}
		if !reflect.DeepEqual(legacy, fresh) {
			t.Fatalf("%s: Result diverged:\nlegacy: %+v\nnew:    %+v", algo, legacy, fresh)
		}
	}
}

// recipientSkewAdv schedules everyone and delays each message by a
// deterministic function of the recipient, so one multicast fans out to
// several delivery times.
type recipientSkewAdv struct {
	d int64
}

func (a *recipientSkewAdv) D() int64 { return a.d }

func (a *recipientSkewAdv) Schedule(v *sim.View, dec *sim.Decision) {
	for i := 0; i < v.P; i++ {
		dec.Active = append(dec.Active, i)
	}
}

func (a *recipientSkewAdv) Delay(from, to int, sentAt int64) int64 {
	return 1 + (int64(to)+sentAt)%a.d
}
