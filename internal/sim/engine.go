package sim

import (
	"fmt"

	"doall/internal/bitset"
)

// Run executes machines under the adversary and returns the measured
// complexities. It is deterministic given deterministic machines and
// adversary, and produces Results identical to RunLegacy's for every
// algorithm × adversary pair (asserted by the equivalence tests).
//
// This is the multicast-native engine: one broadcast is one Multicast
// record plus one timing-wheel event (uniform delays) or p-1 lightweight
// events (non-uniform), never p-1 heap-queued Message copies. Inbox
// slices are reused across ticks, the adversary View is built once and
// updated in place, the adversary is consulted once per broadcast when
// it implements MulticastDelayer, and idle stretches announced via
// Decision.NextWake are fast-forwarded instead of ticked through.
func Run(cfg Config, machines []Machine, adv Adversary) (*Result, error) {
	maxSteps, err := validateRun(cfg, machines, adv)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg, machines, adv)

	for now := int64(0); now < maxSteps; {
		if e.stopped == cfg.P {
			break
		}
		e.tick(now)
		if e.res.Solved && cfg.StopAtSolved {
			break
		}
		next := now + 1
		if e.idle && e.nextWake > next {
			// Nothing stepped and the adversary promised to stay idle
			// until nextWake: jump straight to the next instant at which
			// anything can happen (a wake-up or a message delivery). The
			// skipped units are exact no-ops — no steps, no deliveries,
			// no accounting — so Results are unchanged.
			target := e.nextWake
			if due := e.wheel.nextDue(); due >= 0 && due < target {
				target = due
			}
			if target > next {
				next = target
			}
		}
		now = next
	}
	if !e.res.Solved {
		return e.res, ErrStepCap
	}
	return e.res, nil
}

type engine struct {
	cfg      Config
	machines []Machine
	adv      Adversary
	obs      Observer // cfg.Observer; nil = zero-cost no hooks
	batched  MulticastDelayer // adv, when it supports batched delays
	d        int64            // adv.D(), cached
	wheel    *wheel
	inbox    [][]Message
	crashed  []bool
	halted   []bool
	stopped  int // processors crashed or halted
	done     []bool
	undone   int
	inflight int // undelivered point-to-point messages
	res      *Result
	view     View          // reused across ticks; only Now/Undone/InFlight change
	delays   []int64       // scratch for per-recipient delays, length P
	allBut   []*bitset.Set // lazily built all-but-sender recipient sets
	idle     bool
	nextWake int64
}

func newEngine(cfg Config, machines []Machine, adv Adversary) *engine {
	e := &engine{
		cfg:      cfg,
		machines: machines,
		adv:      adv,
		obs:      cfg.Observer,
		d:        adv.D(),
		wheel:    newWheel(adv.D()),
		inbox:    make([][]Message, cfg.P),
		crashed:  make([]bool, cfg.P),
		halted:   make([]bool, cfg.P),
		done:     make([]bool, cfg.T),
		undone:   cfg.T,
		delays:   make([]int64, cfg.P),
		allBut:   make([]*bitset.Set, cfg.P),
		res: &Result{
			SolvedAt:    -1,
			PerProcWork: make([]int64, cfg.P),
			FirstDoneAt: make([]int64, cfg.T),
		},
	}
	for z := range e.res.FirstDoneAt {
		e.res.FirstDoneAt[z] = -1
	}
	e.batched, _ = adv.(MulticastDelayer)
	e.view = View{
		P:         cfg.P,
		T:         cfg.T,
		DoneTasks: e.done, // shared; adversaries must not mutate
		Machines:  machines,
		Inboxes:   e.inbox,
		Crashed:   e.crashed,
		Halted:    e.halted,
	}
	return e
}

// allButSet returns the cached recipient set {0..P-1} \ {i}.
func (e *engine) allButSet(i int) *bitset.Set {
	if e.allBut[i] == nil {
		s := bitset.New(e.cfg.P)
		for j := 0; j < e.cfg.P; j++ {
			if j != i {
				s.Set(j)
			}
		}
		e.allBut[i] = s
	}
	return e.allBut[i]
}

// deliver appends the due event's messages to the recipient inboxes.
func (e *engine) deliver(ev wevent, at int64) {
	mc := ev.mc
	if ev.to >= 0 {
		e.inflight--
		e.deliverOne(mc, int(ev.to), at)
		return
	}
	e.inflight -= e.cfg.P - 1
	r := mc.Recipients
	for j := r.NextSet(0); j >= 0; j = r.NextSet(j + 1) {
		e.deliverOne(mc, j, at)
	}
}

func (e *engine) deliverOne(mc *Multicast, j int, at int64) {
	if !e.crashed[j] && !e.halted[j] {
		m := Message{From: mc.From, To: j, SentAt: mc.SentAt, DeliverAt: at, Payload: mc.Payload}
		e.inbox[j] = append(e.inbox[j], m)
		if e.obs != nil {
			e.obs.OnDeliver(m)
		}
	}
}

// tick advances one global time unit (mirrors legacyState.tick step for
// step; any observable divergence is an engine bug).
func (e *engine) tick(now int64) {
	// 1. Deliver messages due now (and any skipped over, defensively).
	e.wheel.advanceTo(now, e.deliver)

	// 2. Ask the adversary for this unit's schedule.
	v := &e.view
	v.Now = now
	v.Undone = e.undone
	v.InFlight = e.inflight
	dec := e.adv.Schedule(v)
	for _, i := range dec.Crash {
		if i >= 0 && i < e.cfg.P && !e.crashed[i] {
			if !e.halted[i] {
				e.stopped++
			}
			e.crashed[i] = true
			if e.obs != nil {
				e.obs.OnCrash(i, now)
			}
		}
	}
	e.nextWake = dec.NextWake
	stepped := 0

	// 3. Execute the scheduled local steps.
	informed := false
	for _, i := range dec.Active {
		if i < 0 || i >= e.cfg.P || e.crashed[i] || e.halted[i] {
			continue
		}
		inbox := e.inbox[i]
		r := e.machines[i].Step(now, inbox)
		// The machine consumed its inbox; reuse the backing array for
		// future deliveries (machines must not retain the slice).
		clear(inbox)
		e.inbox[i] = inbox[:0]
		stepped++
		if e.obs != nil {
			e.obs.OnStep(i, now, &r)
		}
		if len(r.Performed) > 1 {
			panic(fmt.Sprintf("sim: machine %d performed %d tasks in one step", i, len(r.Performed)))
		}

		e.res.TotalSteps++
		e.res.PerProcWork[i]++
		if !e.res.Solved {
			e.res.Work++
		}

		for _, z := range r.Performed {
			if z < 0 || z >= e.cfg.T {
				panic(fmt.Sprintf("sim: machine %d performed out-of-range task %d", i, z))
			}
			e.res.TaskExecutions++
			if e.res.FirstDoneAt[z] == -1 || e.res.FirstDoneAt[z] == now {
				e.res.PrimaryExecutions++
			} else {
				e.res.SecondaryExecutions++
			}
			if !e.done[z] {
				e.done[z] = true
				e.undone--
				e.res.FirstDoneAt[z] = now
			}
		}

		if r.Broadcast != nil && e.cfg.P > 1 {
			e.broadcast(i, now, r.Broadcast)
		}

		for _, snd := range r.Sends {
			if snd.To < 0 || snd.To >= e.cfg.P || snd.To == i || snd.Payload == nil {
				continue
			}
			delay := e.adv.Delay(i, snd.To, now)
			if delay < 1 || delay > e.d {
				panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", delay, e.d))
			}
			mc := &Multicast{From: i, SentAt: now, Payload: snd.Payload}
			e.wheel.push(wevent{mc: mc, to: int32(snd.To)}, now+delay)
			e.inflight++
			e.res.TotalMessages++
			if !e.res.Solved {
				e.res.Messages++
				if sz, ok := snd.Payload.(Payload); ok {
					e.res.Bytes += int64(sz.WireSize())
				}
			}
			if e.obs != nil {
				e.obs.OnMulticast(i, now, snd.Payload, 1)
			}
		}

		if r.Halt {
			if !e.halted[i] {
				e.stopped++
			}
			e.halted[i] = true
			if !e.res.Solved && !(e.undone == 0 && e.machines[i].KnowsAllDone()) {
				e.res.HaltedEarly = true
			}
		}
		if e.undone == 0 && e.machines[i].KnowsAllDone() {
			informed = true
		}
	}
	e.idle = stepped == 0

	// 4. Solved check: all tasks done and some live processor informed.
	if !e.res.Solved && e.undone == 0 {
		if !informed {
			for i, m := range e.machines {
				if !e.crashed[i] && m.KnowsAllDone() {
					informed = true
					break
				}
			}
		}
		if informed {
			e.res.Solved = true
			e.res.SolvedAt = now
			if e.obs != nil {
				e.obs.OnSolved(now, e.res)
			}
		}
	}
}

// broadcast schedules one multicast: one adversary call (when batched),
// one Multicast record, and one wheel event when all recipients share a
// delay — the p²-allocations hot path of the legacy engine reduced to
// O(1) amortized.
func (e *engine) broadcast(i int, now int64, payload any) {
	p := e.cfg.P
	mc := &Multicast{From: i, SentAt: now, Payload: payload}
	delays := e.delays
	if e.batched != nil {
		e.batched.DelayMulticast(i, now, delays)
	} else {
		for j := 0; j < p; j++ {
			if j != i {
				delays[j] = e.adv.Delay(i, j, now)
			}
		}
	}
	uniform := true
	first := int64(-1)
	for j := 0; j < p; j++ {
		if j == i {
			continue
		}
		dl := delays[j]
		if dl < 1 || dl > e.d {
			panic(fmt.Sprintf("sim: adversary delay %d outside [1,%d]", dl, e.d))
		}
		if first < 0 {
			first = dl
		} else if dl != first {
			uniform = false
		}
	}
	if uniform {
		mc.Recipients = e.allButSet(i)
		e.wheel.push(wevent{mc: mc, to: -1}, now+first)
	} else {
		for j := 0; j < p; j++ {
			if j != i {
				e.wheel.push(wevent{mc: mc, to: int32(j)}, now+delays[j])
			}
		}
	}
	e.inflight += p - 1
	n := int64(p - 1)
	e.res.TotalMessages += n
	if !e.res.Solved {
		e.res.Messages += n
		if sz, ok := payload.(Payload); ok {
			e.res.Bytes += int64(sz.WireSize()) * n
		}
	}
	if e.obs != nil {
		e.obs.OnMulticast(i, now, payload, p-1)
	}
}
