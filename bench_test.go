// Benchmarks regenerating every experiment in DESIGN.md's index (E1–E10).
// Each benchmark runs its experiment's workload and reports the measured
// work (and where meaningful, messages) as custom metrics, so
// `go test -bench=. -benchmem` reproduces the paper's evaluation shape:
//
//   - E1/E2: work forced by the lower-bound adversaries vs the Ω formula
//   - E3/E4: contention and d-contention vs their analytic bounds
//   - E5–E7: DA and PA work growth in d vs their O(·) curves
//   - E8:    the p·t wall at d = Ω(t)
//   - E9:    message complexity ceilings
//   - E10:   DA vs PA crossover
//
// Absolute ns/op numbers are simulator speed, not the paper's testbed;
// the work/messages metrics are the reproduction targets.
package doall_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"doall"
	"doall/internal/adversary"
	"doall/internal/bitset"
	"doall/internal/bounds"
	"doall/internal/harness"
	"doall/internal/perm"
	"doall/internal/sim"
)

// benchSpec runs one harness spec b.N times, reporting work and messages.
func benchSpec(b *testing.B, spec harness.Spec) {
	b.Helper()
	var work, msgs int64
	for i := 0; i < b.N; i++ {
		res, err := harness.Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
		msgs = res.Messages
	}
	b.ReportMetric(float64(work), "work")
	b.ReportMetric(float64(msgs), "messages")
}

// E1: deterministic lower bound (Theorem 3.1). Forced work of DA under
// the off-line stage adversary, against the Ω formula.
func BenchmarkE1LowerBoundDet(b *testing.B) {
	const p, t, d = 8, 512, 8
	var work int64
	for i := 0; i < b.N; i++ {
		ms, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoDA, P: p, T: t, D: d, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		adv := adversary.NewStageDeterministic(d, t)
		res, err := sim.Run(sim.Config{P: p, T: t}, ms, adv)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
	}
	b.ReportMetric(float64(work), "forced-work")
	b.ReportMetric(bounds.LowerBound(p, t, d), "omega-bound")
}

// E2: randomized lower bound (Theorem 3.4). Forced work of PaRan2 under
// the adaptive intent-observing adversary.
func BenchmarkE2LowerBoundRand(b *testing.B) {
	const p, t, d = 8, 512, 8
	var work int64
	for i := 0; i < b.N; i++ {
		ms := doall.NewPaRan2(p, t, int64(i))
		adv := adversary.NewStageOnline(d, t)
		res, err := sim.Run(sim.Config{P: p, T: t}, ms, adv)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
	}
	b.ReportMetric(float64(work), "forced-work")
	b.ReportMetric(bounds.LowerBound(p, t, d), "omega-bound")
}

// E3: contention of searched schedule lists (Lemma 4.1) and ObliDo's
// primary executions (Lemma 4.2).
func BenchmarkE3Contention(b *testing.B) {
	const n = 5
	var cont int
	var primary int64
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(3))
		res := perm.FindLowContentionList(n, n, 100, r)
		cont = res.Cont
		ms := doall.NewObliDo(n, n, res.List)
		rr, err := sim.Run(sim.Config{P: n, T: n}, ms, adversary.NewFair(2))
		if err != nil {
			b.Fatal(err)
		}
		primary = rr.PrimaryExecutions
	}
	b.ReportMetric(float64(cont), "Cont")
	b.ReportMetric(float64(perm.HarmonicBound(n)), "3nHn-bound")
	b.ReportMetric(float64(primary), "primary-execs")
}

// E4: d-contention of random schedule lists vs the Theorem 4.4 bound.
func BenchmarkE4DContention(b *testing.B) {
	const n, p, d = 128, 8, 4
	var est int
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(4))
		l := perm.RandomList(p, n, r)
		est = perm.DContEstimate(l, d, 30, r)
	}
	b.ReportMetric(float64(est), "dcont-estimate")
	b.ReportMetric(perm.DContBound(n, p, d), "thm44-bound")
}

// E5: DA(q) work vs delay (Theorem 5.5) at a representative point of the
// sweep; the full sweep is cmd/experiments -only E5.
func BenchmarkE5DAWork(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoDA, P: 8, T: 256, Q: 2, D: 4, Seed: 5})
}

// E5 ablation: arity q = 4 at the same point.
func BenchmarkE5DAWorkQ4(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoDA, P: 8, T: 256, Q: 4, D: 4, Seed: 5})
}

// E6: PaRan1 work vs delay (Theorem 6.2/Corollary 6.4).
func BenchmarkE6PaRanWork(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoPaRan1, P: 8, T: 256, D: 4, Seed: 6})
}

// E6 variant: PaRan2 (same expected work, fewer random bits).
func BenchmarkE6PaRan2Work(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoPaRan2, P: 8, T: 256, D: 4, Seed: 6})
}

// E7: PaDet work with a searched low-d-contention list (Theorem 6.3).
func BenchmarkE7PaDetWork(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoPaDet, P: 8, T: 256, D: 4, Seed: 7})
}

// E8: the quadratic wall at d = Ω(t) (Proposition 2.2).
func BenchmarkE8LargeDelay(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoDA, P: 8, T: 128, D: 256, Seed: 8})
}

// E8 baseline: the oblivious algorithm at the same point.
func BenchmarkE8Oblivious(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoAllToAll, P: 8, T: 128, D: 256, Seed: 8})
}

// E9: message complexity (Theorem 5.6: M = O(p·W)).
func BenchmarkE9Messages(b *testing.B) {
	benchSpec(b, harness.Spec{Algo: harness.AlgoDA, P: 8, T: 256, Q: 2, D: 4, Seed: 9})
}

// E10: DA vs PaDet crossover point (Section 1.2 discussion).
func BenchmarkE10Crossover(b *testing.B) {
	var wDA, wPA int64
	for i := 0; i < b.N; i++ {
		da, err := harness.Execute(harness.Spec{Algo: harness.AlgoDA, P: 8, T: 512, D: 8, Seed: 10})
		if err != nil {
			b.Fatal(err)
		}
		pa, err := harness.Execute(harness.Spec{Algo: harness.AlgoPaDet, P: 8, T: 512, D: 8, Seed: 10})
		if err != nil {
			b.Fatal(err)
		}
		wDA, wPA = da.Work, pa.Work
	}
	b.ReportMetric(float64(wDA), "work-DA")
	b.ReportMetric(float64(wPA), "work-PaDet")
}

// Substrate microbenchmarks: simulator step throughput and the
// permutation toolkit, so regressions in the engine are visible
// independently of algorithm behavior.

func BenchmarkSimulatorSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := doall.NewPaRan1(16, 512, 1)
		if _, err := sim.Run(sim.Config{P: 16, T: 512}, ms, adversary.NewFair(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine benchmarks: the multicast-native engine (sim.Run) against the
// per-message legacy engine (sim.RunLegacy) on broadcast-heavy configs.
// Machines are cloned from one pristine set outside the timer so the
// numbers isolate engine throughput; run with -benchmem to see the
// allocation drop per multicast.
func benchEngine(b *testing.B, engine func(sim.Config, []sim.Machine, sim.Adversary) (*sim.Result, error), p, t int, d int64) {
	b.Helper()
	pristine, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoPaRan1, P: p, T: t, D: d, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	adv := adversary.NewFair(d)
	var work int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ms, ok := sim.CloneMachines(pristine)
		if !ok {
			b.Fatal("PaRan1 machines must be cloneable")
		}
		b.StartTimer()
		res, err := engine(sim.Config{P: p, T: t}, ms, adv)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
	}
	b.ReportMetric(float64(work), "work")
}

// The ISSUE-1 acceptance config: broadcast-heavy PA at p=256, t=1024,
// d=8. The multicast engine must beat the legacy engine ≥ 5×. With the
// observer hooks threaded through the engine this benchmark doubles as
// the nil-observer overhead guard: Config.Observer is nil here, so ns/op
// must stay within noise of the BENCH_0.json multicast-engine numbers.
func BenchmarkEngineMulticastPA256(b *testing.B) { benchEngine(b, sim.Run, 256, 1024, 8) }
func BenchmarkEngineLegacyPA256(b *testing.B)    { benchEngine(b, sim.RunLegacy, 256, 1024, 8) }

// A mid-size point for quicker regression tracking.
func BenchmarkEngineMulticastPA64(b *testing.B) { benchEngine(b, sim.Run, 64, 512, 4) }
func BenchmarkEngineLegacyPA64(b *testing.B)    { benchEngine(b, sim.RunLegacy, 64, 512, 4) }

// The ISSUE-3 steady state: one reusable engine and one machine set,
// reset in place between runs. This is the sweep's per-trial inner loop
// minus machine construction; with -benchmem it must report 0 B/op and
// 0 allocs/op — the allocation-free steady state the scratch-reuse
// contracts exist for (gated by TestZeroSteadyStateAllocs*).
func BenchmarkEngineSteadyStatePA256(b *testing.B) {
	const p, t, d = 256, 1024, 8
	ms, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoPaRan1, P: p, T: t, D: d, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	adv := adversary.NewFair(d)
	eng := sim.NewEngine()
	// One warm-up run grows every buffer and pool to its steady size, so
	// the timed loop measures the true steady state.
	if _, err := eng.Run(sim.Config{P: p, T: t}, ms, adv); err != nil {
		b.Fatal(err)
	}
	var work int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.ResetMachines(ms) {
			b.Fatal("PaRan1 machines must be resettable")
		}
		res, err := eng.Run(sim.Config{P: p, T: t}, ms, adv)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
	}
	b.ReportMetric(float64(work), "work")
}

// The same acceptance config with every observer hook live (cheap
// counting callbacks), quantifying the cost of a non-nil observer; the
// delta between this and BenchmarkEngineMulticastPA256 is the full hook
// overhead.
func BenchmarkEngineMulticastPA256Observer(b *testing.B) {
	const p, t, d = 256, 1024, 8
	var events int64
	obs := &sim.FuncObserver{
		Step:      func(int, int64, *sim.StepResult) { events++ },
		Multicast: func(int, int64, any, int) { events++ },
		Deliver:   func(sim.Message) { events++ },
		Crash:     func(int, int64) { events++ },
		Solved:    func(int64, *sim.Result) { events++ },
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ms, err := harness.BuildMachines(harness.Spec{Algo: harness.AlgoPaRan1, P: p, T: t, D: d, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		adv := adversary.NewFair(d)
		b.StartTimer()
		if _, err := sim.Run(sim.Config{P: p, T: t, Observer: obs}, ms, adv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events)/float64(b.N), "events")
}

// BenchmarkScenarioRun measures the declarative path end to end —
// registry lookup, adversary-expression resolution, machine construction,
// simulation — so the Scenario layer's overhead stays visible next to the
// raw engine numbers.
func BenchmarkScenarioRun(b *testing.B) {
	sc := doall.Scenario{Algorithm: "PaRan1", Adversary: "crashing(slow-set(fair))", P: 64, T: 512, D: 4, Seed: 42}
	var work int64
	for i := 0; i < b.N; i++ {
		res, err := doall.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Sim.Work
	}
	b.ReportMetric(float64(work), "work")
}

// BenchmarkSweepRunner exercises the sharded (p, t, d, algo) sweep used
// for the BENCH_*.json baselines on a small grid.
func BenchmarkSweepRunner(b *testing.B) {
	cfg := harness.SweepConfig{
		Algos:    []harness.Algo{harness.AlgoPaRan1, harness.AlgoDA},
		Ps:       []int{8, 16},
		Ts:       []int{64},
		Ds:       []int64{1, 4},
		BaseSeed: 1,
	}
	for i := 0; i < b.N; i++ {
		cells := harness.RunSweep(cfg)
		for _, c := range cells {
			if c.Err != "" {
				b.Fatalf("cell %+v failed: %s", c, c.Err)
			}
		}
	}
}

func BenchmarkDLRM(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := perm.Random(1024, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm.DLRM(p, 16)
	}
}

func BenchmarkContentionSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		perm.FindLowContentionList(5, 5, 20, r)
	}
}

// BenchmarkEngineSteadyStatePA1024 is the large-shape sibling of the
// PA256 steady-state benchmark: PaRan1 at p=1024, t=65536 under the fair
// adversary on one warmed reusable engine — the grouped delivery path
// and the versioned knowledge plane end to end, still at 0 allocs/op.
func BenchmarkEngineSteadyStatePA1024(b *testing.B) {
	const p, t, d = 1024, 65536, 8
	ms := doall.NewPaRan1(p, t, 42)
	adv := adversary.NewFair(d)
	eng := sim.NewEngine()
	// Pool and slice capacities converge over the first few runs at this
	// shape (buffer-to-use pairings shift until every pooled buffer has
	// its maximal capacity); warm until steady so the timed loop measures
	// the true 0 allocs/op state.
	for w := 0; w < 4; w++ {
		sim.ResetMachines(ms)
		if _, err := eng.Run(sim.Config{P: p, T: t}, ms, adv); err != nil {
			b.Fatal(err)
		}
	}
	var work int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.ResetMachines(ms) {
			b.Fatal("PaRan1 machines must be resettable")
		}
		res, err := eng.Run(sim.Config{P: p, T: t}, ms, adv)
		if err != nil {
			b.Fatal(err)
		}
		work = res.Work
	}
	b.ReportMetric(float64(work), "work")
}

// BenchmarkVersionedMergeKernels pins the word-level union kernels under
// the versioned knowledge plane's three merge regimes. The shapes mirror
// what a p=65536 run does per delivery: full-width base unions (first
// contact / post-rebase gap), short delta-chain suffixes (the steady
// in-sequence path), and the base-plus-chain fallback a cursor gap forces.
func BenchmarkVersionedMergeKernels(b *testing.B) {
	const n = 1 << 20 // one knowledge set: 16 Ki words

	// base-union: the raw Set kernel. dst restarts from a ~third-dense
	// pristine every iteration (a memcopy; the counting union dominates)
	// so each union does full-width real work rather than measuring the
	// saturated skip path.
	b.Run("base-union", func(b *testing.B) {
		r := rand.New(rand.NewSource(1))
		pristine, src := bitset.New(n), bitset.New(n)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				pristine.Set(i)
			case 1:
				src.Set(i)
			}
		}
		dst := bitset.New(n)
		var added int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.CopyFrom(pristine)
			added = dst.UnionWith(src)
		}
		b.ReportMetric(float64(added), "bits-added")
	})

	// chain-suffix: the in-sequence Merger path — cursor at version 1,
	// snapshot four delta segments ahead, so each Merge walks only the
	// chain suffix. Strides are sized to stay under the rebase threshold
	// (the suffix path must not silently become a base merge).
	b.Run("chain-suffix", func(b *testing.B) {
		src := bitset.NewVersioned(n)
		for i := 0; i < n; i += 64 {
			src.Set(i)
		}
		s1 := src.Snapshot()
		v1 := s1.Ver()
		var snaps []*bitset.Snapshot
		for round := 1; round <= 4; round++ {
			for i := round; i < n; i += 1024 {
				src.Set(i)
			}
			snaps = append(snaps, src.Snapshot())
		}
		tip := snaps[len(snaps)-1]
		if tip.BaseVer() > v1 {
			b.Fatalf("setup rebased (baseVer=%d > cursor=%d); shrink the rounds", tip.BaseVer(), v1)
		}
		dst := bitset.NewVersioned(n)
		m := bitset.NewMerger(1)
		m.Note(0, v1)
		m.Merge(dst, 0, tip) // pre-merge: the timed loop measures the pure segment scans
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Note(0, v1)
			m.Merge(dst, 0, tip)
		}
		b.ReportMetric(float64(tip.ChainLen()), "chain-len")
	})

	// cursor-gap: the fallback — a cursor behind the snapshot's base
	// version forces the full base union plus the whole chain. The source
	// is grown through enough dirty words that Snapshot rebases, so the
	// epoch genuinely has a base.
	b.Run("cursor-gap", func(b *testing.B) {
		src := bitset.NewVersioned(n)
		r := rand.New(rand.NewSource(2))
		var snap *bitset.Snapshot
		for round := 0; round < 12; round++ {
			for i := 0; i < n/8; i++ {
				src.Set(r.Intn(n))
			}
			if snap != nil {
				src.Recycle(snap)
			}
			snap = src.Snapshot()
		}
		if snap.Base() == nil || snap.BaseVer() == 0 {
			b.Fatal("setup did not produce a rebased epoch; grow the rounds")
		}
		// One sparse round on top of the base, so the gap path walks a
		// non-empty chain as well as the full base.
		for i := 0; i < n; i += 4096 {
			src.Set(i)
		}
		src.Recycle(snap)
		snap = src.Snapshot()
		dst := bitset.NewVersioned(n)
		m := bitset.NewMerger(1)
		m.Merge(dst, 0, snap) // pre-merge; timed loop is the gap-path scan
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Merge(dst, 0, snap)
		}
		b.ReportMetric(float64(snap.ChainLen()), "chain-len")
	})
}

// BenchmarkParallelTickPA65536 is the intra-run sharding reproduction
// vehicle: PaRan1 under the fair adversary at p=65536, t=2^20, d=8 on one
// reusable engine, sequential versus sharded. On a multi-core runner the
// sharded line is where the ≥2× ns/op improvement shows up; on a
// single-core machine it instead bounds the sharding overhead (the two
// lines must stay close). Full shape allocates ~32 GiB of shared
// permutation backing — -short drops to p=4096, t=2^16 (~128 MiB), which
// is also what CI's bench smoke runs.
func BenchmarkParallelTickPA65536(b *testing.B) {
	p, t := 65536, 1<<20
	const d = 8
	if testing.Short() {
		p, t = 4096, 1<<16
	}
	ms := doall.NewPaRan1(p, t, 42)
	adv := adversary.NewFair(d)
	shardCounts := []int{1, 2}
	if auto := doall.ResolveShards(doall.ShardsAuto, p); auto > 2 {
		shardCounts = append(shardCounts, auto)
	}
	for _, s := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			eng := sim.NewEngine()
			defer eng.Close()
			cfg := sim.Config{P: p, T: t, Shards: s}
			var work int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !sim.ResetMachines(ms) {
					b.Fatal("PaRan1 machines must be resettable")
				}
				res, err := eng.Run(cfg, ms, adv)
				if err != nil {
					b.Fatal(err)
				}
				work = res.Work
			}
			b.ReportMetric(float64(work), "work")
		})
	}

	// Phase sub-benchmarks: the same shape on the sharded engine, with
	// ns/op overridden to that phase's wall-clock share (from the
	// engine's PhaseProfile deltas), so the serial fraction of the tick —
	// a1 + b against the total — is a measured number, not a guess.
	phaseShards := doall.ResolveShards(doall.ShardsAuto, p)
	if phaseShards < 2 {
		phaseShards = 2
	}
	for pi, phase := range []string{"A1", "A2", "B"} {
		b.Run("phase="+phase, func(b *testing.B) {
			eng := sim.NewEngine()
			defer eng.Close()
			cfg := sim.Config{P: p, T: t, Shards: phaseShards}
			b.ReportAllocs()
			start := eng.PhaseProfile()
			for i := 0; i < b.N; i++ {
				if !sim.ResetMachines(ms) {
					b.Fatal("PaRan1 machines must be resettable")
				}
				if _, err := eng.Run(cfg, ms, adv); err != nil {
					b.Fatal(err)
				}
			}
			prof := eng.PhaseProfile()
			var dur time.Duration
			switch pi {
			case 0:
				dur = prof.A1 - start.A1
			case 1:
				dur = prof.A2 - start.A2
			case 2:
				dur = prof.B - start.B
			}
			b.ReportMetric(float64(dur.Nanoseconds())/float64(b.N), "ns/op")
			b.ReportMetric(float64(prof.Ticks-start.Ticks)/float64(b.N), "ticks/op")
		})
	}
}
