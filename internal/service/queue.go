package service

// jobQueue is the daemon's bounded priority queue of admitted jobs: a
// heap ordered by (Priority descending, submission sequence ascending),
// so equal-priority jobs run FIFO. Cancellation is lazy — a canceled
// queued job stays in the heap and is discarded when popped — which
// keeps every queue operation O(log n) without index bookkeeping.
// Boundedness is enforced at admission (Config.QueueLimit), not here.
type jobQueue []*task

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].job.Priority != q[j].job.Priority {
		return q[i].job.Priority > q[j].job.Priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*task)) }

// Pop implements heap.Interface.
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
