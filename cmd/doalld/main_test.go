package main

import (
	"bufio"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"doall"
)

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), nil, []string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "doalld ") || !strings.Contains(out.String(), doall.Version()) {
		t.Fatalf("-version printed %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), nil, []string{"-maxmem", "lots"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad -maxmem accepted")
	}
	if err := run(context.Background(), nil, []string{"-listen", "256.0.0.1:bad"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad -listen accepted")
	}
}

// syncWriter lets the test read daemon stdout lines while the daemon
// goroutine is still writing.
type syncWriter struct {
	mu sync.Mutex
	pw *io.PipeWriter
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pw.Write(p)
}

// Full daemon lifecycle in-process: boot on an ephemeral port, submit a
// job over HTTP, stream its results, shut down via context cancellation
// (the SIGTERM path), and boot again on the same checkpoint.
func TestDaemonServeSubmitShutdownResume(t *testing.T) {
	wal := t.TempDir() + "/doalld.wal"
	jobID := ""
	doc := []byte(`{"algos":["PaRan1"],"p":[4,8],"t":[16],"d":[1,2],"trials":2}`)

	for round := 0; round < 2; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		out := &syncWriter{pw: pw}
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, nil, []string{"-listen", "127.0.0.1:0", "-workers", "1", "-checkpoint", wal}, out, io.Discard)
			pw.Close()
		}()

		// Scrape the assigned address from the banner line.
		var addr string
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr = "http://" + strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		if addr == "" {
			t.Fatalf("round %d: no listen banner (daemon err: %v)", round, <-errc)
		}
		go io.Copy(io.Discard, pr) // keep the pipe drained

		c := &doall.ServiceClient{Base: addr}
		cctx, cdone := context.WithTimeout(context.Background(), 30*time.Second)

		if round == 0 {
			st, err := c.SubmitDoc(cctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			jobID = st.ID
			// Let at least one cell land in the checkpoint, then "SIGTERM".
			for {
				st, err = c.Status(cctx, jobID)
				if err != nil {
					t.Fatal(err)
				}
				if st.CellsDone >= 1 || st.State.Terminal() {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
		} else {
			// Round 1: the job resumed from the checkpoint; follow it home.
			st, err := c.WaitDone(cctx, jobID, 10*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != doall.JobDone || st.CellsDone != 4 {
				t.Fatalf("resumed job: %+v", st)
			}
			n := 0
			tr, err := c.Results(cctx, jobID, func(doall.ResultCell) error { n++; return nil })
			if err != nil || !tr.Done || n != 4 {
				t.Fatalf("results after resume: %+v, %d cells, %v", tr, n, err)
			}
		}

		cancel() // the SIGINT/SIGTERM path
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("round %d: daemon exited with %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: daemon did not shut down", round)
		}
		cdone()
	}
}

// TestDaemonTwinFlag boots the daemon with the checked-in TWIN_FIT.json
// and exercises POST /v1/predict both ways: in-envelope answers come
// from the twin, alien shapes fall back to a real simulation.
func TestDaemonTwinFlag(t *testing.T) {
	if err := run(context.Background(), nil, []string{"-twin", t.TempDir() + "/nope.json"}, io.Discard, io.Discard); err == nil {
		t.Fatal("missing -twin file accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	out := &syncWriter{pw: pw}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, nil, []string{"-listen", "127.0.0.1:0", "-workers", "1", "-twin", "../../TWIN_FIT.json"}, out, io.Discard)
		pw.Close()
	}()
	var addr string
	loaded := false
	sc := bufio.NewScanner(pr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = "http://" + strings.TrimSpace(line[i+len("listening on "):])
		}
		if strings.Contains(line, "analytical twin loaded") {
			loaded = true
			break
		}
	}
	if addr == "" || !loaded {
		t.Fatalf("no listen/twin banner (daemon err: %v)", <-errc)
	}
	go io.Copy(io.Discard, pr)

	c := &doall.ServiceClient{Base: addr}
	cctx, cdone := context.WithTimeout(context.Background(), 30*time.Second)
	defer cdone()

	// A shape inside the recorded BENCH grids: answered analytically.
	res, err := c.Predict(cctx, doall.TwinQuery{Algo: "DA", P: 64, T: 1024, D: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "twin" || !res.Prediction.InEnvelope || res.Prediction.Work <= 0 {
		t.Fatalf("in-envelope predict: %+v", res)
	}

	// A tiny alien shape: simulated.
	res, err = c.Predict(cctx, doall.TwinQuery{Algo: "DA", P: 4, T: 16, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fallback" || res.Prediction.Work <= 0 {
		t.Fatalf("out-of-envelope predict: %+v", res)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
