package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"doall"
)

func TestSweepFlagParsing(t *testing.T) {
	cases := []struct {
		name string
		f    sweepFlags
		want doall.SweepConfig
	}{
		{
			name: "plain grid",
			f:    sweepFlags{algos: "DA,PaRan1", ps: "4,8", ts: "16", ds: "1,2", adv: "fair", trials: 2, seed: 5},
			want: doall.SweepConfig{
				Algos: []string{"DA", "PaRan1"}, Ps: []int{4, 8}, Ts: []int{16}, Ds: []int64{1, 2},
				Adversary: "fair", BaseSeed: 5, Trials: 2, Shards: 1,
			},
		},
		{
			name: "whitespace and empties",
			f:    sweepFlags{algos: " DA , ,PaDet ", ps: "4", ts: "8", ds: "1", adv: "fair"},
			want: doall.SweepConfig{
				Algos: []string{"DA", "PaDet"}, Ps: []int{4}, Ts: []int{8}, Ds: []int64{1},
				Adversary: "fair", Shards: 1,
			},
		},
		{
			name: "adversary expression with commas",
			f:    sweepFlags{algos: "PaRan1", ps: "4", ts: "8", ds: "2", adv: "crashing(crash=0@3,crash=1@5)"},
			want: doall.SweepConfig{
				Algos: []string{"PaRan1"}, Ps: []int{4}, Ts: []int{8}, Ds: []int64{2},
				Adversary: "crashing(crash=0@3,crash=1@5)", Shards: 1,
			},
		},
		{
			name: "semicolon adversary grid",
			f:    sweepFlags{algos: "PaRan1", ps: "4", ts: "8", ds: "2", adv: "fair", advs: "fair; crashing ;slow-set(period=2)"},
			want: doall.SweepConfig{
				Algos: []string{"PaRan1"}, Ps: []int{4}, Ts: []int{8}, Ds: []int64{2},
				Adversary: "fair", Adversaries: []string{"fair", "crashing", "slow-set(period=2)"},
				Shards: 1,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.f.config()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("config = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestSweepFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		f    sweepFlags
		want string
	}{
		{"bad p", sweepFlags{algos: "DA", ps: "4,x", ts: "8", ds: "1", adv: "fair"}, "-p"},
		{"bad t", sweepFlags{algos: "DA", ps: "4", ts: "", ds: "1", adv: "fair"}, "-t"},
		{"bad d", sweepFlags{algos: "DA", ps: "4", ts: "8", ds: "one", adv: "fair"}, "-d"},
		{"empty t axis", sweepFlags{algos: "DA", ps: "4", ts: " , ", ds: "1", adv: "fair"}, "-t"},
		{"unknown algo", sweepFlags{algos: "DA,NoSuch", ps: "4", ts: "8", ds: "1", adv: "fair"}, "unknown algorithm"},
		{"crash pid beyond largest p", sweepFlags{algos: "DA", ps: "4,8", ts: "8", ds: "1", adv: "crashing(crash=9@1)"}, "outside [0, 8)"},
		{"unknown adv", sweepFlags{algos: "DA", ps: "4", ts: "8", ds: "1", adv: "nope"}, "unknown adversary"},
		{"unknown adv in grid", sweepFlags{algos: "DA", ps: "4", ts: "8", ds: "1", adv: "fair", advs: "fair;nope"}, "unknown adversary"},
		{"bad expression", sweepFlags{algos: "DA", ps: "4", ts: "8", ds: "1", adv: "crashing(crash=zap)"}, "PID@TIME"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.f.config()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("config() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSweepValidationUsesGridShape guards against the probe rejecting
// parameters that are valid for the actual grid: delay/slow bounds must
// be checked against the grid's largest d and p, not a fixed tiny shape.
func TestSweepValidationUsesGridShape(t *testing.T) {
	for _, f := range []sweepFlags{
		{algos: "PaRan1", ps: "16", ts: "16", ds: "8", adv: "fair(delay=2)"},
		{algos: "PaRan1", ps: "16", ts: "16", ds: "2", adv: "slow-set(slow=9)"},
		{algos: "PaRan1", ps: "4,16", ts: "16", ds: "1,8", adv: "crashing(crash=7@3)"},
	} {
		if _, err := f.config(); err != nil {
			t.Errorf("config(%+v) rejected a grid-valid adversary: %v", f, err)
		}
	}
}

// TestSweepEndToEndRecordsAdversaries runs a tiny real sweep through the
// CLI path and checks the BENCH-schema JSON carries the adversary axis.
func TestSweepEndToEndRecordsAdversaries(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2",
		"-advs", "fair;slow-set(period=2)", "-seed", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("sweep output is not a SweepReport: %v", err)
	}
	if rep.Adversary != "fair;slow-set(period=2)" {
		t.Errorf("report adversary = %q", rep.Adversary)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for i, want := range []string{"fair", "slow-set(period=2)"} {
		if rep.Cells[i].Adversary != want {
			t.Errorf("cell %d adversary = %q, want %q", i, rep.Cells[i].Adversary, want)
		}
		if rep.Cells[i].Err != "" {
			t.Errorf("cell %d failed: %s", i, rep.Cells[i].Err)
		}
	}
}

// TestSweepFaultPlaneAxes drives restarting/omitting expressions as
// -advs sweep axes end to end.
func TestSweepFaultPlaneAxes(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1,DA", "-p", "4", "-t", "16", "-d", "2",
		"-advs", "restarting(down=4);omitting(drop=1@0:9)", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("sweep output is not a SweepReport: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(rep.Cells))
	}
	seen := map[string]int{}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Algo, c.Adversary, c.Err)
		}
		seen[c.Adversary]++
	}
	if seen["restarting(down=4)"] != 2 || seen["omitting(drop=1@0:9)"] != 2 {
		t.Errorf("adversary axis mis-recorded: %v", seen)
	}
}

// TestSweepFaultPlanePreValidates asserts malformed fault expressions
// are rejected before the sweep starts (the -advs fail-fast path).
func TestSweepFaultPlanePreValidates(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2",
		"-advs", "restarting(down=0)"}, &out)
	if err == nil || !strings.Contains(err.Error(), "down=0") {
		t.Fatalf("sweep accepted a malformed restarting expression: %v", err)
	}
}

func TestExperimentsSubsetRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "E3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E3") {
		t.Fatalf("E3 table missing from output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "E5") {
		t.Fatal("-only filter leaked other experiments")
	}
}

func TestUnknownScaleRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "enormous"}, &out); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// TestProfilingFlags drives -cpuprofile/-memprofile through a tiny real
// sweep and checks both profiles land on disk non-empty; bad paths must
// fail before any sweep work.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2",
		"-cpuprofile", cpu, "-memprofile", mem}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("profiled sweep lost its report: %v", err)
	}
}

func TestProfilingFlagBadPathsFailFast(t *testing.T) {
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		var out bytes.Buffer
		err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2",
			flag, filepath.Join(t.TempDir(), "no", "such", "dir", "p.out")}, &out)
		if err == nil || !strings.Contains(err.Error(), flag) {
			t.Fatalf("%s with unwritable path: err = %v, want %s error", flag, err, flag)
		}
		if out.Len() != 0 {
			t.Fatalf("%s: sweep ran despite unwritable profile path", flag)
		}
	}
}

// TestProgressFlag checks the -progress meter: one update per cell on
// stderr, ending in a newline, without disturbing the JSON on stdout.
func TestProgressFlag(t *testing.T) {
	var out, errw bytes.Buffer
	err := runWithStderr([]string{"-sweep", "-algos", "PaRan1", "-p", "4,8", "-t", "16", "-d", "1,2",
		"-progress", "-workers", "1"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("progress meter corrupted the report: %v", err)
	}
	got := errw.String()
	for done := 1; done <= 4; done++ {
		want := fmt.Sprintf("sweep: %d/4 cells", done)
		if !strings.Contains(got, want) {
			t.Errorf("stderr missing %q:\n%q", want, got)
		}
	}
	if !strings.HasSuffix(got, "\n") {
		t.Errorf("progress meter does not end with a newline: %q", got)
	}
}

func TestTheoryFlagEmitsBoundsColumns(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-theory", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep doall.SweepReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Theory || len(rep.Cells) != 1 {
		t.Fatalf("report theory=%v cells=%d", rep.Theory, len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.LowerBound <= 0 || c.DAUpperBound <= 0 || c.PAUpperBound <= 0 || c.WorkOverLB <= 0 {
		t.Fatalf("theory columns missing: %+v", c)
	}
	want, _, _ := doall.TheoryBounds(4, 16, 2, 0.5)
	if c.LowerBound != want {
		t.Fatalf("lower bound %v, want %v", c.LowerBound, want)
	}
}

func TestTheoryOffOmitsBoundsColumns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "lower_bound") {
		t.Fatalf("theory columns emitted without -theory:\n%s", out.String())
	}
}

func TestMaxMemFailsFastOnLargeGrid(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4096", "-t", "262144", "-d", "8", "-maxmem", "1m"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-maxmem") {
		t.Fatalf("undersized budget not rejected: %v", err)
	}
	if out.Len() != 0 {
		t.Fatal("sweep ran despite failing the memory budget")
	}
	// A generous budget lets the same flags pass validation (tiny grid
	// so the test stays fast).
	if err := run([]string{"-sweep", "-algos", "PaRan1", "-p", "4", "-t", "16", "-d", "2", "-maxmem", "2g"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"1024": 1024, "4k": 4 << 10, "512M": 512 << 20, "8g": 8 << 30,
		"1gib": 1 << 30, "2GB": 2 << 30, "1t": 1 << 40,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Fatalf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "0", "4q"} {
		if _, err := parseBytes(bad); err == nil {
			t.Fatalf("parseBytes(%q) accepted", bad)
		}
	}
}

// TestCalibrateAndTwinStamping drives the analytical-twin loop end to
// end through the CLI: sweep → -calibrate fit → re-sweep with -twin
// stamping predicted columns next to the measured ones.
func TestCalibrateAndTwinStamping(t *testing.T) {
	dir := t.TempDir()
	rep := filepath.Join(dir, "rep.json")
	fit := filepath.Join(dir, "fit.json")
	stamped := filepath.Join(dir, "stamped.json")

	var out bytes.Buffer
	if err := run([]string{"-sweep", "-algos", "DA,PaRan1", "-p", "4,8", "-t", "16,32", "-d", "1,2", "-out", rep}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-calibrate", "-bench", rep, "-out", fit}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fit)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := doall.LoadTwin(data)
	if err != nil {
		t.Fatalf("calibrated fit does not load back: %v", err)
	}
	if len(tw.Groups) != 2 {
		t.Fatalf("fit has %d groups, want 2 (DA/fair, PaRan1/fair)", len(tw.Groups))
	}

	// The same grid re-swept with -twin carries predicted columns, and the
	// predictions agree with the measurements (the twin was fit on exactly
	// these cells, so its band covers them).
	if err := run([]string{"-sweep", "-algos", "DA,PaRan1", "-p", "4,8", "-t", "16,32", "-d", "1,2", "-twin", fit, "-out", stamped}, &out); err != nil {
		t.Fatal(err)
	}
	sdata, err := os.ReadFile(stamped)
	if err != nil {
		t.Fatal(err)
	}
	var report doall.SweepReport
	if err := json.Unmarshal(sdata, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range report.Cells {
		if c.PredWork <= 0 {
			t.Fatalf("%s p=%d t=%d d=%d: no pred_work stamped", c.Algo, c.P, c.T, c.D)
		}
		if rel := (c.PredWork - c.Work) / c.Work; rel > 3 || rel < -0.75 {
			t.Fatalf("%s p=%d t=%d d=%d: pred_work %v wildly off measured %v", c.Algo, c.P, c.T, c.D, c.PredWork, c.Work)
		}
	}

	// A stale or corrupt fit fails fast, before any grid time burns.
	if err := os.WriteFile(fit, []byte(`{"version":99,"groups":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", "-algos", "DA", "-p", "4", "-t", "16", "-d", "1", "-twin", fit, "-out", stamped}, &out); err == nil {
		t.Fatal("stale fit version accepted")
	}
	if err := run([]string{"-calibrate", "-bench", filepath.Join(dir, "missing.json"), "-out", fit}, &out); err == nil {
		t.Fatal("missing calibration input accepted")
	}
}
