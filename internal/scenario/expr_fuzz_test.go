package scenario

import (
	"strings"
	"testing"
)

// fuzzSeedExprs is the seed corpus: every registered adversary (flat and
// with representative parameters), the documented combinator stacks, the
// new fault-plane expressions, and a bestiary of near-miss inputs the
// parser must reject gracefully.
func fuzzSeedExprs() []string {
	seeds := []string{
		// Every registered flat name.
		"fair", "random", "crashing", "restarting", "omitting",
		"slow-set", "stage-det", "stage-online",
		// Parameterized forms from the documentation and the CLIs.
		"fair(delay=2)",
		"random(activity=0.5)",
		"random(activity=0.5, seed=7)",
		"crashing(crash=0@3, crash=2@9)",
		"crashing(slow-set(fair))",
		"slow-set(slow=1, slow=3, period=8)",
		"slow-set(period=2)",
		"crashing(slow-set(fair),crash=0@5)",
		// The fault plane.
		"restarting(fair, down=64)",
		"restarting(crash=1@10, crash=2@20, down=30)",
		"restarting(random(activity=0.8), down=4)",
		"omitting(fair)",
		"omitting(drop=1@3)",
		"omitting(drop=1@0:50, to=2, to=3)",
		"omitting(slow-set(fair), drop=0@5:9)",
		"restarting(omitting(fair, drop=2@0:20), down=8)",
		// Near-misses and hostile shapes.
		"", "(", ")", "fair(", "fair)", "fair(,)", "fair(delay=)",
		"fair(delay", "crashing(crash=@)", "crashing(crash=1@)",
		"omitting(drop=1@9:3)", "restarting(down=-1)",
		"a(b(c(d(e(f(g))))))",
		strings.Repeat("crashing(", 80) + "fair" + strings.Repeat(")", 80),
		"fair(delay=99999999999999999999999999)",
		"  fair  (  delay = 1 )  ",
		"fair x", "fair,fair", "no-such-adversary(x=y)",
	}
	return seeds
}

// FuzzParseAdversary fuzzes the adversary-expression front door: parse,
// canonicalize, re-parse (the canonical form must be a fixed point), and
// resolve through the registry against a small scenario. Nothing in the
// pipeline may panic or run away on arbitrary input — errors are the
// only acceptable failure mode.
func FuzzParseAdversary(f *testing.F) {
	for _, s := range fuzzSeedExprs() {
		f.Add(s)
	}
	sc := Scenario{Algorithm: AlgoPaRan1, P: 5, T: 8, D: 2, Seed: 3}.WithDefaults()
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := parseAdvExpr(expr)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// The canonical form must re-parse to itself.
		canon := e.String()
		e2, err := parseAdvExpr(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, expr, err)
		}
		if canon2 := e2.String(); canon2 != canon {
			t.Fatalf("canonicalization is not a fixed point: %q -> %q -> %q", expr, canon, canon2)
		}
		// Resolving through the registry must never panic; unknown names
		// and bad parameters must surface as errors.
		run := sc
		run.Adversary = expr
		if adv, err := run.BuildAdversary(); err == nil && adv == nil {
			t.Fatalf("BuildAdversary(%q) returned nil adversary without error", expr)
		}
	})
}
