package bounds

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// bench2Eps is the DA bound exponent every recorded BENCH grid was
// annotated with: the default binary progress tree's ε. scenario.addTheory
// now derives ε from the cell's q via EpsilonForQ, so
// TestEpsilonForQMatchesRecordedBaselines pins that the derivation still
// reproduces this constant for q-less cells.
const bench2Eps = 0.5

// TestEpsilonForQMatchesRecordedBaselines proves the two halves of the
// ε-from-q contract against the recorded grids: (1) an unset q (every
// BENCH_*.json cell predates the q knob) derives exactly the ε = 0.5 the
// baselines were recorded with, so their DAUpperBound columns reproduce
// bit-for-bit through the derived path; (2) a non-default q yields a
// genuinely different bound — the old hardcoded 0.5 would have silently
// mislabeled DA(q≠2) sweeps.
func TestEpsilonForQMatchesRecordedBaselines(t *testing.T) {
	if EpsilonForQ(0) != bench2Eps {
		t.Fatalf("EpsilonForQ(0) = %v, want recorded ε %v", EpsilonForQ(0), bench2Eps)
	}
	p, tt, d := 1024, 65536, 8
	viaDerived := DAUpperBound(p, tt, d, EpsilonForQ(0))
	viaConst := DAUpperBound(p, tt, d, bench2Eps)
	if viaDerived != viaConst {
		t.Fatalf("derived-ε DA bound %v ≠ recorded-ε bound %v", viaDerived, viaConst)
	}
	if wide := DAUpperBound(p, tt, d, EpsilonForQ(8)); wide >= viaConst {
		t.Fatalf("DA bound with q=8 (ε=%v) should drop below the q=2 bound: %v >= %v",
			EpsilonForQ(8), wide, viaConst)
	}
}

// bench2Cell is the subset of the BENCH_2.json cell schema the theory
// pins need.
type bench2Cell struct {
	Algo         string  `json:"algo"`
	P            int     `json:"p"`
	T            int     `json:"t"`
	D            int     `json:"d"`
	Work         int64   `json:"work"`
	LowerBound   float64 `json:"lower_bound"`
	DAUpperBound float64 `json:"da_upper_bound"`
	PAUpperBound float64 `json:"pa_upper_bound"`
	WorkOverLB   float64 `json:"work_over_lb"`
}

// closeEnough compares recorded against recomputed theory values. The
// recorded floats round-trip JSON exactly, so the tolerance only covers
// platform-level libm differences.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestTheoryColumnsPinnedToBench2 recomputes every theory column of the
// recorded BENCH_2.json grid from internal/bounds and requires exact
// agreement: the bound evaluators must never drift from what shipped
// benchmarks were annotated with.
func TestTheoryColumnsPinnedToBench2(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Fatalf("BENCH_2.json: %v", err)
	}
	var report struct {
		Theory bool         `json:"theory"`
		Cells  []bench2Cell `json:"cells"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_2.json: %v", err)
	}
	if !report.Theory {
		t.Fatal("BENCH_2.json was not recorded with -theory")
	}
	if len(report.Cells) == 0 {
		t.Fatal("BENCH_2.json has no cells")
	}
	for _, c := range report.Cells {
		if lb := LowerBound(c.P, c.T, c.D); !closeEnough(lb, c.LowerBound) {
			t.Errorf("%s p=%d t=%d d=%d: LowerBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, lb, c.LowerBound)
		}
		if da := DAUpperBound(c.P, c.T, c.D, bench2Eps); !closeEnough(da, c.DAUpperBound) {
			t.Errorf("%s p=%d t=%d d=%d: DAUpperBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, da, c.DAUpperBound)
		}
		if pa := PAUpperBound(c.P, c.T, c.D); !closeEnough(pa, c.PAUpperBound) {
			t.Errorf("%s p=%d t=%d d=%d: PAUpperBound = %v, recorded %v", c.Algo, c.P, c.T, c.D, pa, c.PAUpperBound)
		}
		if ratio := Overhead(c.Work, c.LowerBound); !closeEnough(ratio, c.WorkOverLB) {
			t.Errorf("%s p=%d t=%d d=%d: work/lb = %v, recorded %v", c.Algo, c.P, c.T, c.D, ratio, c.WorkOverLB)
		}
	}
}

// TestTheoryColumnsHardcodedPins is the file-independent half of the
// pin: a hand-copied sample of BENCH_2.json rows, so a regenerated (or
// corrupted) benchmark file cannot silently re-baseline the evaluators.
func TestTheoryColumnsHardcodedPins(t *testing.T) {
	cases := []struct {
		p, t, d           int
		lower, daUp, paUp float64
	}{
		{1024, 65536, 1, 81920.02254193803, 2359296, 465617.4909075831},
		{4096, 65536, 8, 230932.26968758524, 7160124.800757861, 840390.7310893631},
		{1024, 65536, 64, 239664.90078867265, 4194304, 908649.7476660539},
		{4096, 262144, 1, 335872.022542067, 18874368, 2231556.88058668},
	}
	for _, c := range cases {
		if lb := LowerBound(c.p, c.t, c.d); !closeEnough(lb, c.lower) {
			t.Errorf("p=%d t=%d d=%d: LowerBound = %v, want %v", c.p, c.t, c.d, lb, c.lower)
		}
		if da := DAUpperBound(c.p, c.t, c.d, bench2Eps); !closeEnough(da, c.daUp) {
			t.Errorf("p=%d t=%d d=%d: DAUpperBound = %v, want %v", c.p, c.t, c.d, da, c.daUp)
		}
		if pa := PAUpperBound(c.p, c.t, c.d); !closeEnough(pa, c.paUp) {
			t.Errorf("p=%d t=%d d=%d: PAUpperBound = %v, want %v", c.p, c.t, c.d, pa, c.paUp)
		}
	}
}
