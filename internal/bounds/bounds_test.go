package bounds

import (
	"math"
	"testing"
)

func TestLowerBoundDegenerate(t *testing.T) {
	if LowerBound(0, 10, 1) != 0 || LowerBound(10, 0, 1) != 0 || LowerBound(10, 10, 0) != 0 {
		t.Fatal("degenerate arguments should give 0")
	}
}

func TestLowerBoundAtLeastT(t *testing.T) {
	for _, c := range [][3]int{{1, 100, 1}, {8, 64, 4}, {16, 1024, 32}} {
		if lb := LowerBound(c[0], c[1], c[2]); lb < float64(c[1]) {
			t.Errorf("LowerBound%v = %v below t", c, lb)
		}
	}
}

func TestLowerBoundGrowsWithD(t *testing.T) {
	// For d ≤ t the bound must grow in d (more delay ⇒ more forced work).
	prev := 0.0
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		lb := LowerBound(16, 64, d)
		if lb <= prev {
			t.Fatalf("LowerBound not increasing at d=%d: %v ≤ %v", d, lb, prev)
		}
		prev = lb
	}
}

func TestLowerBoundApproachesQuadratic(t *testing.T) {
	// As d → t the bound reaches Ω(p·t): at d = t it is within a constant
	// factor of p·t.
	p, tt := 8, 256
	lb := LowerBound(p, tt, tt)
	if lb < ObliviousWork(p, tt) {
		t.Fatalf("LowerBound at d=t is %v, want ≥ p·t = %v", lb, ObliviousWork(p, tt))
	}
}

func TestDAUpperBoundDominatesLowerBoundShape(t *testing.T) {
	// Upper bound must sit above the lower bound for all tested configs
	// (same model, so UB ≥ LB up to constants; with constant 1 both, DA's
	// p^ε term keeps it above).
	for _, d := range []int{1, 2, 8, 32, 128} {
		ub := DAUpperBound(16, 256, d, 0.5)
		lb := LowerBound(16, 256, d)
		if ub < lb/10 {
			t.Errorf("d=%d: DA UB %v implausibly below LB %v", d, ub, lb)
		}
	}
}

func TestDAUpperBoundMonotoneInEps(t *testing.T) {
	// Larger ε means more work in the t·p^ε term for p > 1.
	if DAUpperBound(16, 64, 2, 0.2) >= DAUpperBound(16, 64, 2, 0.8) {
		t.Fatal("DA bound not increasing in ε")
	}
}

func TestPAUpperBoundSubquadraticForSmallD(t *testing.T) {
	// For d = o(t) the PA bound must be well below p·t at scale.
	p, tt, d := 64, 4096, 4
	if PAUpperBound(p, tt, d) >= ObliviousWork(p, tt) {
		t.Fatal("PA bound not subquadratic for small d")
	}
}

func TestPABeatsDAForLargeT(t *testing.T) {
	// Section 1.2: efficient PA algorithms are within a log factor of
	// optimal while DA carries a p^ε overhead, so for large t PA's bound
	// is smaller.
	p, tt, d := 64, 1<<16, 8
	if PAUpperBound(p, tt, d) >= DAUpperBound(p, tt, d, 0.5) {
		t.Fatal("PA bound should beat DA bound for large t")
	}
}

func TestPAMessageBound(t *testing.T) {
	p, tt, d := 8, 64, 2
	if PAMessageBound(p, tt, d) != float64(p)*PAUpperBound(p, tt, d) {
		t.Fatal("PAMessageBound ≠ p·PAUpperBound")
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(100, 0) != 0 {
		t.Fatal("Overhead with zero bound should be 0")
	}
	if math.Abs(Overhead(150, 100)-1.5) > 1e-12 {
		t.Fatal("Overhead(150,100) ≠ 1.5")
	}
}

// TestOverheadClampsDegenerateInputs pins the clamp contract: NaN and
// negative bounds, and negative measured work, all yield 0 instead of
// propagating NaN/±Inf/negative ratios into report columns or twin
// residual fits.
func TestOverheadClampsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name     string
		measured int64
		bound    float64
	}{
		{"nan bound", 100, math.NaN()},
		{"negative bound", 100, -5},
		{"zero bound", 100, 0},
		{"negative measured", -100, 50},
		{"negative both", -100, -50},
	}
	for _, c := range cases {
		if got := Overhead(c.measured, c.bound); got != 0 {
			t.Errorf("%s: Overhead(%d, %v) = %v, want 0", c.name, c.measured, c.bound, got)
		}
	}
	// +Inf bound is not clamped but divides to a clean 0.
	if got := Overhead(100, math.Inf(1)); got != 0 {
		t.Errorf("Overhead(100, +Inf) = %v, want 0", got)
	}
	// The clamp never touches legitimate ratios.
	if got := Overhead(0, 100); got != 0 {
		t.Errorf("Overhead(0, 100) = %v, want 0", got)
	}
	if got := Overhead(300, 200); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Overhead(300, 200) = %v, want 1.5", got)
	}
}

// TestEpsilonForQ pins Theorem 5.5's exponent derivation: ε = 1/log₂(2q),
// so the default binary progress tree reproduces the paper's headline
// ε = 1/2 exactly (bit-for-bit — the recorded BENCH theory columns
// depend on it) and ε decreases strictly as the tree widens.
func TestEpsilonForQ(t *testing.T) {
	if got := EpsilonForQ(2); got != 0.5 {
		t.Fatalf("EpsilonForQ(2) = %v, want exactly 0.5", got)
	}
	// Unset and nonsensical arities fall back to the default tree.
	for _, q := range []int{0, 1, -3} {
		if got := EpsilonForQ(q); got != 0.5 {
			t.Errorf("EpsilonForQ(%d) = %v, want default 0.5", q, got)
		}
	}
	if got, want := EpsilonForQ(8), 0.25; math.Abs(got-want) > 1e-15 {
		t.Errorf("EpsilonForQ(8) = %v, want %v", got, want)
	}
	if got, want := EpsilonForQ(32), 1.0/6; math.Abs(got-want) > 1e-15 {
		t.Errorf("EpsilonForQ(32) = %v, want %v", got, want)
	}
	prev := EpsilonForQ(2)
	for q := 3; q <= 64; q++ {
		cur := EpsilonForQ(q)
		if cur >= prev {
			t.Fatalf("EpsilonForQ not strictly decreasing at q=%d: %v >= %v", q, cur, prev)
		}
		prev = cur
	}
}
