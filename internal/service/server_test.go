package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doall/internal/scenario"
	"doall/internal/service/buildinfo"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func TestHTTPSubmitStatusResults(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	// Submit a bare sweep document — the exact JSON the sweep flags mean.
	st, err := c.SubmitDoc(ctx, []byte(`{"algos":["PaRan1"],"p":[4,8],"t":[16],"d":[1,2],"base_seed":3,"trials":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.CellsTotal != 4 {
		t.Fatalf("submit: %+v", st)
	}

	// The results stream must deliver every cell exactly once, then a
	// done trailer.
	seen := map[int]bool{}
	tr, err := c.Results(ctx, st.ID, func(rc ResultCell) error {
		if seen[rc.I] {
			t.Errorf("cell %d streamed twice", rc.I)
		}
		seen[rc.I] = true
		if rc.Cell.P == 0 || rc.Cell.Algo == "" {
			t.Errorf("cell %d missing identity: %+v", rc.I, rc.Cell)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.State != JobDone || tr.CellsDone != 4 || len(seen) != 4 {
		t.Fatalf("trailer: %+v, %d cells seen", tr, len(seen))
	}

	// Status agrees, and the streamed cells match a direct sweep.
	st, err = c.Status(ctx, st.ID)
	if err != nil || st.State != JobDone {
		t.Fatalf("status: %+v, %v", st, err)
	}
	jobs, err := c.List(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("list: %+v, %v", jobs, err)
	}
}

func TestHTTPStreamFollowsLiveJob(t *testing.T) {
	// Open the results stream while the job is still queued; it must
	// follow the job live to completion.
	_, c := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tr, err := c.Results(ctx, st.ID, func(ResultCell) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || n != 4 {
		t.Fatalf("live stream: trailer %+v after %d cells", tr, n)
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: -1, QueueLimit: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, Job{Sweep: testSweep()}); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("queue overflow over HTTP: %v", err)
	}
	got, err := c.Cancel(ctx, st.ID)
	if err != nil || got.State != JobCanceled {
		t.Fatalf("cancel: %+v, %v", got, err)
	}
	if _, err := c.Status(ctx, "j424242"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status of unknown job: %v", err)
	}
	if _, err := c.Cancel(ctx, "j424242"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v", err)
	}
}

func TestHTTPMalformedSubmit(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: -1})
	_ = s
	ctx := context.Background()
	for _, doc := range []string{
		`{`,
		`{"nonsense":true}`,
		`{"algorithm":"NoSuchAlgo","p":4,"t":16}`,
		`{"algos":["DA"],"p":[4],"t":[16],"d":[1],"typo":1}`,
		`{"sweep":{"algos":["DA"],"p":[4],"t":[16],"d":[1]},"timeout":"-3s"}`,
		`{"algorithm":"DA","p":4,"t":16,"backend":"runtime"}`,
	} {
		_, err := c.SubmitDoc(ctx, []byte(doc))
		if err == nil {
			t.Errorf("daemon accepted %q", doc)
			continue
		}
		if !strings.Contains(err.Error(), "400") {
			t.Errorf("submit %q: error %v, want HTTP 400", doc, err)
		}
	}
}

func TestHTTPDrainHealthMetricsVersion(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: -1})
	ctx := context.Background()

	ok, draining, err := c.Health(ctx)
	if err != nil || !ok || draining {
		t.Fatalf("healthz: ok=%v draining=%v err=%v", ok, draining, err)
	}
	v, err := c.Version(ctx)
	if err != nil || v != buildinfo.Version() {
		t.Fatalf("version: %q, %v (want %q)", v, err, buildinfo.Version())
	}

	if _, err := c.Submit(ctx, Job{Sweep: testSweep()}); err != nil {
		t.Fatal(err)
	}

	// Scrape the exposition text directly.
	resp, err := c.http().Get(c.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"doalld_up 1",
		"doalld_jobs_submitted_total 1",
		`doalld_jobs{state="queued"} 1`,
		"doalld_queue_depth 1",
		"doalld_engine_pool_size",
		"doalld_sim_steps_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, Job{Sweep: testSweep()}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit after drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("service not draining after /v1/drain")
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: -1})
	for path, method := range map[string]string{
		"/healthz":    http.MethodDelete,
		"/metrics":    http.MethodPost,
		"/v1/version": http.MethodPost,
		"/v1/drain":   http.MethodGet,
		"/v1/jobs":    http.MethodDelete,
	} {
		req, _ := http.NewRequest(method, c.url(path), nil)
		resp, err := c.http().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 405", method, path, resp.StatusCode)
		}
	}
}

// Restart the daemon under an open HTTP stream: the stream must end with
// an interrupted trailer, and a fresh daemon + stream must finish the job
// with results identical to an uninterrupted run.
func TestHTTPResumeAcrossRestart(t *testing.T) {
	wal := t.TempDir() + "/doalld.wal"

	s1, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c1 := &Client{Base: ts1.URL, HTTP: ts1.Client()}
	ctx := context.Background()

	st, err := c1.Submit(ctx, Job{Sweep: testSweep()})
	if err != nil {
		t.Fatal(err)
	}
	waitFirstCell(t, s1, st.ID)
	done := make(chan ResultTrailer, 1)
	go func() {
		tr, _ := c1.Results(ctx, st.ID, nil)
		done <- tr
	}()
	time.Sleep(10 * time.Millisecond) // let the stream attach
	s1.Close()
	select {
	case tr := <-done:
		if tr.Done && tr.State != JobDone {
			t.Errorf("stream under shutdown: %+v", tr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on daemon shutdown")
	}
	ts1.Close()

	s2, err := New(Config{Workers: 1, Checkpoint: wal})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	c2 := &Client{Base: ts2.URL, HTTP: ts2.Client()}

	seen := map[int]scenario.Cell{}
	tr, err := c2.Results(ctx, st.ID, func(rc ResultCell) error {
		seen[rc.I] = rc.Cell
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.State != JobDone || len(seen) != 4 {
		t.Fatalf("post-restart stream: %+v, %d cells", tr, len(seen))
	}
	want := stripCellNs(scenario.RunSweep(testSweep().Config()))
	for i, w := range want {
		got := seen[i]
		got.NsPerRun = 0
		if got != w {
			t.Fatalf("cell %d differs after HTTP resume:\ngot:  %+v\nwant: %+v", i, got, w)
		}
	}
}
