package sim

import "math/bits"

// ledgerChunkWords is the chunk granularity of the task ledger: 64 words
// = 4096 tasks per chunk. Chunks carry their own undone counts so sweeps
// over the ledger (adversary candidate scans, undone iteration) skip
// fully-done regions 4096 tasks at a time — at the t = 262144 shapes the
// large-grid sweeps run, that turns O(t) scans into O(done chunks +
// undone tasks).
const ledgerChunkWords = 64

// TaskLedger is the chunked global done-task ledger shared by both
// simulation engines and exposed to adversaries through View.Tasks. It
// packs task-done flags 64 per word (8× denser than the []bool it
// replaced, which matters once t reaches the hundreds of thousands),
// keeps the global undone count, and maintains per-chunk undone counts
// for skip-scanning. It is not safe for concurrent use in general;
// concurrent read-only access (Done, Undone) is safe while no writer
// runs — the parallel tick engine's A2 shards rely on this, reading
// pre-tick done states while every MarkDone waits for the serial
// phase B.
type TaskLedger struct {
	n           int
	words       []uint64
	chunkUndone []int32
	undone      int
}

// NewTaskLedger returns a ledger for t tasks, none done.
func NewTaskLedger(t int) *TaskLedger {
	l := &TaskLedger{}
	l.Reset(t)
	return l
}

// Reset re-shapes the ledger for t tasks, none done, reusing its arrays
// when the shape allows.
func (l *TaskLedger) Reset(t int) {
	nw := (t + 63) / 64
	nc := (nw + ledgerChunkWords - 1) / ledgerChunkWords
	if cap(l.words) >= nw {
		l.words = l.words[:nw]
		clear(l.words)
	} else {
		l.words = make([]uint64, nw)
	}
	if cap(l.chunkUndone) >= nc {
		l.chunkUndone = l.chunkUndone[:nc]
	} else {
		l.chunkUndone = make([]int32, nc)
	}
	l.n = t
	l.undone = t
	for c := range l.chunkUndone {
		lo := c * ledgerChunkWords * 64
		hi := lo + ledgerChunkWords*64
		if hi > t {
			hi = t
		}
		l.chunkUndone[c] = int32(hi - lo)
	}
}

// Len returns the number of tasks.
func (l *TaskLedger) Len() int { return l.n }

// Undone returns the number of tasks not yet performed by anyone.
func (l *TaskLedger) Undone() int { return l.undone }

// Done reports whether task z has been performed by anyone.
func (l *TaskLedger) Done(z int) bool {
	return l.words[z>>6]&(1<<(uint(z)&63)) != 0
}

// MarkDone records task z as performed, reporting whether this was its
// first performance.
func (l *TaskLedger) MarkDone(z int) bool {
	w := z >> 6
	bit := uint64(1) << (uint(z) & 63)
	if l.words[w]&bit != 0 {
		return false
	}
	l.words[w] |= bit
	l.undone--
	l.chunkUndone[w/ledgerChunkWords]--
	return true
}

// NextUndone returns the first undone task at or after from, or -1 if
// none. Fully-done chunks are skipped whole, so iterating all undone
// tasks costs O(chunks + undone), not O(t).
func (l *TaskLedger) NextUndone(from int) int {
	if from < 0 {
		from = 0
	}
	for from < l.n {
		c := from >> 6 / ledgerChunkWords
		if l.chunkUndone[c] == 0 {
			from = (c + 1) * ledgerChunkWords * 64
			continue
		}
		w := l.words[from>>6]
		if rest := ^w >> (uint(from) & 63); rest != 0 {
			z := from + bits.TrailingZeros64(rest)
			if z >= l.n {
				return -1
			}
			return z
		}
		from = (from | 63) + 1
	}
	return -1
}
