package harness

import "doall/internal/scenario"

// The sharded (algorithm, adversary, p, t, d) sweep runner lives in
// internal/scenario (it operates on Scenarios); these aliases keep the
// harness vocabulary working for the experiment tables, benchmarks, and
// BENCH_*.json tooling that grew up around it.
type (
	// SweepConfig declares an (algorithm, adversary, p, t, d) grid.
	SweepConfig = scenario.SweepConfig
	// Cell is one measured grid point of a sweep.
	Cell = scenario.Cell
	// SweepReport is the JSON envelope of a sweep (the BENCH_*.json
	// schema).
	SweepReport = scenario.SweepReport
)

// CellSeed derives the deterministic seed of one grid cell; see
// scenario.CellSeed.
func CellSeed(base int64, algo Algo, p, t int, d int64) int64 {
	return scenario.CellSeed(base, algo, p, t, d)
}

// RunSweep measures every cell of the grid; see scenario.RunSweep.
func RunSweep(c SweepConfig) []Cell { return scenario.RunSweep(c) }

// NewSweepReport runs the sweep and wraps it for serialization.
func NewSweepReport(c SweepConfig) SweepReport { return scenario.NewSweepReport(c) }
