package core

import (
	"doall/internal/bitset"
	"doall/internal/sim"
	"doall/internal/wire"
)

// Sizer is the wire-size-aware payload interface consumed by the
// simulation engine: the engine queries WireSize once per multicast for
// byte accounting (message *count* remains the paper's complexity
// measure) and shares the payload value, uncopied, with every recipient.
// It is an alias of sim.Payload so core payload types satisfy the engine
// contract by construction; implementations must be immutable once sent.
type Sizer = sim.Payload

// The multicast payloads are shared across recipients without copying,
// so they must satisfy the engine's payload contract.
var (
	_ sim.Payload = TreeSnapshot{}
	_ sim.Payload = DoneSet{}
)

// TreeSnapshot is the DA multicast payload: a snapshot of the sender's
// progress-tree bits. Receivers must treat it as immutable (it is shared
// across the recipients of one multicast).
type TreeSnapshot struct {
	Bits *bitset.Set
}

// WireSize implements Sizer.
func (s TreeSnapshot) WireSize() int { return wire.Size(wire.KindTree, s.Bits) }

// Encode serializes the snapshot with the wire format.
func (s TreeSnapshot) Encode() []byte { return wire.Encode(wire.KindTree, s.Bits) }

// DoneSet is the PA multicast payload: the sender's known-done job set.
// Immutable once sent.
type DoneSet struct {
	Bits *bitset.Set
}

// WireSize implements Sizer.
func (s DoneSet) WireSize() int { return wire.Size(wire.KindDoneSet, s.Bits) }

// Encode serializes the done-set with the wire format.
func (s DoneSet) Encode() []byte { return wire.Encode(wire.KindDoneSet, s.Bits) }

// DecodePayload parses an encoded payload back into its typed form.
func DecodePayload(msg []byte) (any, error) {
	kind, bits, err := wire.Decode(msg)
	if err != nil {
		return nil, err
	}
	switch kind {
	case wire.KindTree:
		return TreeSnapshot{Bits: bits}, nil
	default:
		return DoneSet{Bits: bits}, nil
	}
}
